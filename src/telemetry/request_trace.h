/// \file
/// Causal request tracing: every user-visible operation (a source eval,
/// a background compile, an interrupt batch, an eviction) is assigned a
/// monotonic request id and tracked from submission to completion as a
/// span tree of named latency segments. The id is the journal sequence
/// number of the operation's originating event, so ids are stable across
/// record/replay and can be cross-referenced against the flight
/// recorder ("which journal event started request 12?").
///
/// The critical-path analyzer's contract is that a finished request's
/// segments PARTITION its end-to-end wall time: each segment is a
/// consecutive interval (queue wait, cache lookup, synth/techmap/place,
/// admission deferral, adoption, first hardware tick), so the segment
/// durations sum to total latency by construction. Consumers:
///
///   - REPL `:requests` (recent table) and `:why <id>` (decomposition);
///   - `/requests` on the monitor server (NDJSON, one request per line);
///   - `cascade_request_<segment>_ns` histograms on `/metrics` (each
///     segment feeds a `request.<segment>_ns` registry histogram);
///   - `{"schema":"cascade.requests.v1"}` JSON for tools.
///
/// Thread-safe: the runtime thread begins/annotates/ends requests while
/// the monitor server thread renders json()/ndjson() concurrently.

#ifndef CASCADE_TELEMETRY_REQUEST_TRACE_H
#define CASCADE_TELEMETRY_REQUEST_TRACE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace cascade::telemetry {

/// One named latency segment of a request. Names are string literals
/// (static storage), mirroring the tracer's span-name convention.
struct RequestSegment {
    const char* name = "";
    double dur_us = 0;
};

/// One tracked request: identity, outcome, and its segment partition.
struct RequestRecord {
    uint64_t id = 0;       ///< journal seq of the originating event
    const char* kind = ""; ///< "eval" | "compile" | "interrupt" | "evict"
    uint64_t version = 0;  ///< program version the request acted on
    uint64_t tenant = 0;   ///< submitting tenant (0 in exclusive mode)
    double start_us = 0;   ///< tracer timestamp at submission
    double end_us = 0;     ///< tracer timestamp at completion
    bool done = false;
    bool ok = false;
    bool cache_hit = false;
    std::vector<RequestSegment> segments;

    double total_us() const { return end_us - start_us; }
    double segment_sum_us() const;
};

class RequestTracker {
  public:
    /// \p registry receives per-segment latency histograms
    /// ("request.<segment>_ns", "request.total_ns") when non-null;
    /// \p capacity bounds the ring of retained finished requests.
    explicit RequestTracker(Registry* registry = nullptr,
                            size_t capacity = 256);

    RequestTracker(const RequestTracker&) = delete;
    RequestTracker& operator=(const RequestTracker&) = delete;

    /// Opens a request. \p id must be this tracker's unique key (the
    /// journal seq of the originating event guarantees that).
    void begin(uint64_t id, const char* kind, uint64_t version,
               uint64_t tenant, double start_us);
    /// Appends one named segment to an open request.
    void add_segment(uint64_t id, const char* name, double dur_us);
    /// Tags an open request with the compile cache outcome.
    void annotate_cache(uint64_t id, bool hit);
    /// Completes a request and feeds the segment histograms. Returns
    /// false (a no-op) for ids that are not open — already closed as
    /// superseded, or never tracked.
    bool end(uint64_t id, bool ok, double end_us);
    /// begin + one segment spanning the whole interval + end, for
    /// single-phase requests (evals, interrupt batches, evictions).
    void complete(uint64_t id, const char* kind, uint64_t version,
                  uint64_t tenant, double start_us, double end_us,
                  const char* segment, bool ok);

    /// Finished requests, oldest first (bounded by the ring capacity).
    std::vector<RequestRecord> recent() const;
    /// Looks up one request, open or finished. False if unknown.
    bool find(uint64_t id, RequestRecord* out) const;
    size_t open_count() const;
    uint64_t completed_total() const; ///< lifetime finished count

    /// {"schema":"cascade.requests.v1",...} over the retained requests.
    std::string json() const;
    /// One finished-or-open request object per line (GET /requests).
    std::string ndjson() const;
    /// The REPL's :requests view (recent requests, hottest segment).
    std::string table() const;
    /// The REPL's :why <id> view: the critical-path decomposition of one
    /// request, with the segment sum checked against end-to-end latency.
    std::string why(uint64_t id) const;

  private:
    RequestRecord* find_open_locked(uint64_t id);
    void retire_locked(RequestRecord record);
    void feed_histograms(const RequestRecord& record);

    mutable std::mutex mutex_;
    Registry* registry_;
    std::map<std::string, Histogram*> histograms_; ///< lazy, by name
    std::vector<RequestRecord> open_;
    std::vector<RequestRecord> ring_; ///< finished, insertion order
    size_t ring_next_ = 0;
    size_t ring_count_ = 0;
    uint64_t completed_ = 0;
};

} // namespace cascade::telemetry

#endif // CASCADE_TELEMETRY_REQUEST_TRACE_H
