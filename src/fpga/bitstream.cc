#include "fpga/bitstream.h"

#include "common/check.h"

namespace cascade::fpga {

Bitstream::Bitstream(std::shared_ptr<const Netlist> netlist)
    : nl_(std::move(netlist))
{
    CASCADE_CHECK(nl_ != nullptr);
    values_.resize(nl_->nodes.size());
    for (size_t i = 0; i < nl_->nodes.size(); ++i) {
        const Node& n = nl_->nodes[i];
        values_[i] = n.op == Op::Const ? n.cval : BitVector(n.width, 0);
    }
    reg_state_.reserve(nl_->regs.size());
    for (const RegDef& r : nl_->regs) {
        reg_state_.push_back(r.init);
    }
    mem_state_.reserve(nl_->mems.size());
    for (const MemDef& m : nl_->mems) {
        std::vector<BitVector> contents(m.size, BitVector(m.width, 0));
        for (const auto& [addr, value] : m.init) {
            if (addr < m.size) {
                contents[addr] = value.resized(m.width);
            }
        }
        mem_state_.push_back(std::move(contents));
    }
    for (size_t i = 0; i < nl_->inputs.size(); ++i) {
        input_index_[nl_->inputs[i].name] = static_cast<int>(i);
    }
    for (size_t i = 0; i < nl_->outputs.size(); ++i) {
        output_index_[nl_->outputs[i].name] = static_cast<int>(i);
    }
    for (size_t i = 0; i < nl_->regs.size(); ++i) {
        reg_index_[nl_->regs[i].name] = static_cast<uint32_t>(i);
    }
    for (size_t i = 0; i < nl_->mems.size(); ++i) {
        mem_index_[nl_->mems[i].name] = static_cast<uint32_t>(i);
    }
    reg_latch_count_.assign(nl_->regs.size(), 0);
    eval_comb();
    prev_reg_clock_.resize(nl_->regs.size());
    for (size_t i = 0; i < nl_->regs.size(); ++i) {
        prev_reg_clock_[i] = nl_->regs[i].clock != kNoClock &&
                             values_[nl_->regs[i].clock].bit(0);
    }
    prev_port_clock_.resize(nl_->write_ports.size());
    for (size_t i = 0; i < nl_->write_ports.size(); ++i) {
        prev_port_clock_[i] = values_[nl_->write_ports[i].clock].bit(0);
    }
}

int
Bitstream::input_index(const std::string& name) const
{
    const auto it = input_index_.find(name);
    return it == input_index_.end() ? -1 : it->second;
}

int
Bitstream::output_index(const std::string& name) const
{
    const auto it = output_index_.find(name);
    return it == output_index_.end() ? -1 : it->second;
}

void
Bitstream::set_input(const std::string& name, const BitVector& value)
{
    const int i = input_index(name);
    CASCADE_CHECK(i >= 0);
    set_input(i, value);
}

void
Bitstream::set_input(int index, const BitVector& value)
{
    const PortDef& port = nl_->inputs[static_cast<size_t>(index)];
    values_[port.node] = value.resized(port.width);
}

const BitVector&
Bitstream::output(const std::string& name) const
{
    const int i = output_index(name);
    CASCADE_CHECK(i >= 0);
    return output(i);
}

const BitVector&
Bitstream::output(int index) const
{
    return values_[nl_->outputs[static_cast<size_t>(index)].node];
}

void
Bitstream::eval_comb()
{
    if (profile_) {
        eval_comb_profiled();
        return;
    }
    // Nodes are in topological order by construction: a single pass
    // settles everything.
    const size_t n = nl_->nodes.size();
    std::vector<BitVector> argv;
    for (size_t i = 0; i < n; ++i) {
        const Node& node = nl_->nodes[i];
        switch (node.op) {
          case Op::Const:
          case Op::Input:
            continue;
          case Op::RegQ:
            values_[i] = reg_state_[node.aux];
            continue;
          case Op::MemRead: {
            const uint64_t addr = values_[node.args[0]].to_uint64();
            const auto& mem = mem_state_[node.aux];
            values_[i] = addr < mem.size()
                             ? mem[addr]
                             : BitVector(node.width, 0);
            continue;
          }
          default: {
            argv.clear();
            for (uint32_t a : node.args) {
                argv.push_back(values_[a]);
            }
            values_[i] = eval_node(node, argv);
            continue;
          }
        }
    }
}

void
Bitstream::eval_comb_profiled()
{
    // Instrumented twin of eval_comb: same evaluation order and
    // semantics, plus per-node eval/toggle counting. Kept separate so
    // the unprofiled path stays branch-free per node.
    const size_t n = nl_->nodes.size();
    std::vector<BitVector> argv;
    for (size_t i = 0; i < n; ++i) {
        const Node& node = nl_->nodes[i];
        BitVector next;
        switch (node.op) {
          case Op::Const:
          case Op::Input:
            continue;
          case Op::RegQ:
            next = reg_state_[node.aux];
            break;
          case Op::MemRead: {
            const uint64_t addr = values_[node.args[0]].to_uint64();
            const auto& mem = mem_state_[node.aux];
            next = addr < mem.size() ? mem[addr]
                                     : BitVector(node.width, 0);
            break;
          }
          default: {
            argv.clear();
            for (uint32_t a : node.args) {
                argv.push_back(values_[a]);
            }
            next = eval_node(node, argv);
            break;
          }
        }
        ++eval_count_[i];
        if (!(values_[i] == next)) {
            ++toggle_count_[i];
        }
        values_[i] = std::move(next);
    }
}

void
Bitstream::set_profiling(bool on)
{
    profile_ = on;
    if (on && eval_count_.size() != nl_->nodes.size()) {
        eval_count_.assign(nl_->nodes.size(), 0);
        toggle_count_.assign(nl_->nodes.size(), 0);
    }
}

std::map<std::string, Bitstream::SourceActivity>
Bitstream::activity_by_source() const
{
    std::map<std::string, SourceActivity> out;
    for (size_t i = 0; i < eval_count_.size(); ++i) {
        if (eval_count_[i] == 0) {
            continue;
        }
        SourceActivity& a = out[nl_->source_of(static_cast<uint32_t>(i))];
        a.evals += eval_count_[i];
        a.toggles += toggle_count_[i];
    }
    return out;
}

uint64_t
Bitstream::latch_count(const std::string& name) const
{
    const auto it = reg_index_.find(name);
    return it == reg_index_.end() ? 0 : reg_latch_count_[it->second];
}

void
Bitstream::step()
{
    ++cycles_;
    eval_comb();
    // Cascade derived clock domains: latch every register whose clock
    // rose, re-settle, repeat until no clock rises (bounded).
    for (int iter = 0; iter < 8; ++iter) {
        std::vector<std::pair<uint32_t, BitVector>> latches;
        for (size_t r = 0; r < nl_->regs.size(); ++r) {
            const RegDef& reg = nl_->regs[r];
            if (reg.clock == kNoClock) {
                continue;
            }
            const bool now = values_[reg.clock].bit(0);
            if (now && !prev_reg_clock_[r]) {
                latches.emplace_back(static_cast<uint32_t>(r),
                                     values_[reg.next]);
                ++reg_latch_count_[r];
            }
            prev_reg_clock_[r] = now;
        }
        struct MemLatch {
            uint32_t mem;
            uint64_t addr;
            BitVector data;
        };
        std::vector<MemLatch> mem_latches;
        for (size_t p = 0; p < nl_->write_ports.size(); ++p) {
            const MemWritePort& port = nl_->write_ports[p];
            const bool now = values_[port.clock].bit(0);
            if (now && !prev_port_clock_[p] &&
                values_[port.enable].to_bool()) {
                mem_latches.push_back({port.mem,
                                       values_[port.addr].to_uint64(),
                                       values_[port.data]});
            }
            prev_port_clock_[p] = now;
        }
        if (latches.empty() && mem_latches.empty()) {
            break;
        }
        for (auto& [r, v] : latches) {
            reg_state_[r] = std::move(v);
        }
        for (auto& ml : mem_latches) {
            if (ml.addr < mem_state_[ml.mem].size()) {
                mem_state_[ml.mem][ml.addr] = std::move(ml.data);
            }
        }
        eval_comb();
    }
    if (debug_armed_) {
        debug_step_check();
    }
}

void
Bitstream::arm_debug(std::vector<DebugTrigger> triggers,
                     std::vector<DebugProbe> probes, size_t ring_depth)
{
    debug_triggers_ = std::move(triggers);
    debug_probes_ = std::move(probes);
    debug_ring_.clear();
    debug_ring_depth_ = ring_depth == 0 ? 1 : ring_depth;
    debug_fired_ = 0;
    debug_fire_cycle_ = 0;
    debug_armed_ = !debug_triggers_.empty() || !debug_probes_.empty();
}

void
Bitstream::disarm_debug()
{
    debug_armed_ = false;
    debug_triggers_.clear();
    debug_probes_.clear();
    debug_ring_.clear();
    debug_fired_ = 0;
    debug_fire_cycle_ = 0;
}

void
Bitstream::debug_step_check()
{
    if (debug_fired_ != 0) {
        // Sticky: the window is frozen at the firing cycle so the MMIO
        // traffic that drains the fire does not scroll it away.
        return;
    }
    if (!debug_probes_.empty()) {
        std::vector<BitVector> vals;
        vals.reserve(debug_probes_.size());
        for (const DebugProbe& p : debug_probes_) {
            vals.push_back(output(p.output));
        }
        debug_ring_.push_back(DebugSample{cycles_, std::move(vals)});
        while (debug_ring_.size() > debug_ring_depth_) {
            debug_ring_.pop_front();
        }
    }
    for (DebugTrigger& t : debug_triggers_) {
        const BitVector& v = output(t.output);
        bool fired = false;
        if (t.watch) {
            fired = t.has_prev && v != t.prev;
        } else {
            // Condition cells are 1-bit comparators; fire on the rising
            // edge so a condition already true at arming does not trip.
            fired = t.has_prev && !t.prev.to_bool() && v.to_bool();
        }
        t.prev = v;
        t.has_prev = true;
        if (fired && debug_fired_ == 0) {
            debug_fired_ = t.id;
            debug_fire_cycle_ = cycles_;
        }
    }
}

const BitVector&
Bitstream::reg_value(const std::string& name) const
{
    return reg_state_[reg_index_.at(name)];
}

void
Bitstream::set_reg(const std::string& name, const BitVector& value)
{
    const uint32_t r = reg_index_.at(name);
    reg_state_[r] = value.resized(nl_->regs[r].width);
}

const BitVector&
Bitstream::mem_value(const std::string& name, uint64_t idx) const
{
    return mem_state_[mem_index_.at(name)][idx];
}

void
Bitstream::set_mem(const std::string& name, uint64_t idx,
                   const BitVector& value)
{
    const uint32_t m = mem_index_.at(name);
    CASCADE_CHECK(idx < mem_state_[m].size());
    mem_state_[m][idx] = value.resized(nl_->mems[m].width);
}

} // namespace cascade::fpga
