#include "fpga/synth.h"

#include <algorithm>
#include <functional>
#include <map>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "verilog/printer.h"

namespace cascade::fpga {

using namespace verilog;

namespace {

constexpr uint32_t kUndef = ~0u;
constexpr uint64_t kMaxUnroll = 1u << 17;

/// Provenance label for a source process: its print collapsed to one
/// line and truncated, so netlist nodes can be attributed back to the
/// always/assign/initial construct that synthesized them.
std::string
proc_label(const ModuleItem& item)
{
    const std::string full = print(item, 0);
    std::string out;
    bool in_space = false;
    for (char c : full) {
        if (c == ' ' || c == '\t' || c == '\n') {
            in_space = !out.empty();
            continue;
        }
        if (in_space) {
            out += ' ';
            in_space = false;
        }
        out += c;
    }
    while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
        out.pop_back();
    }
    constexpr size_t kMaxLabel = 56;
    if (out.size() > kMaxLabel) {
        out.resize(kMaxLabel - 1);
        out += "…";
    }
    return out;
}

class Synthesizer : public LocalScope {
  public:
    Synthesizer(const ElaboratedModule& em, Diagnostics* diags)
        : em_(em), diags_(diags), typer_(em, this)
    {}

    uint32_t
    local_width(const std::string& name) const override
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            const auto found = it->widths.find(name);
            if (found != it->widths.end()) {
                return found->second;
            }
        }
        return 0;
    }

    bool
    local_signed(const std::string& name) const override
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            const auto found = it->is_signed.find(name);
            if (found != it->is_signed.end()) {
                return found->second;
            }
        }
        return false;
    }

    std::unique_ptr<Netlist>
    run()
    {
        nl_ = std::make_unique<Netlist>();
        b_ = std::make_unique<NetlistBuilder>(nl_.get());
        const size_t n = em_.nets.size();
        env_.assign(n, kUndef);
        reg_index_.assign(n, -1);
        mem_index_.assign(n, -1);

        classify_processes();
        if (!ok_) {
            return nullptr;
        }
        create_sources();
        run_initial_blocks();
        execute_comb();
        execute_seq();
        if (!ok_) {
            return nullptr;
        }
        for (const NetInfo& net : em_.nets) {
            if (net.is_port && net.dir == PortDir::Output) {
                const uint32_t id = em_.net_id(net.name);
                b_->set_source(net.name);
                if (env_[id] == kUndef) {
                    env_[id] = b_->constant(net.width, 0);
                }
                b_->output(net.name, env_[id]);
                b_->name_node(env_[id], net.name);
            }
        }
        return std::move(nl_);
    }

  private:
    // -- classification ----------------------------------------------------

    struct Proc {
        const ModuleItem* item = nullptr;
        bool seq = false;
        std::vector<uint32_t> defs; ///< root nets written
        std::vector<uint32_t> uses; ///< nets read
    };

    void
    error(SourceLoc loc, const std::string& msg) const
    {
        diags_->error(loc, msg);
        ok_ = false;
    }

    void
    classify_processes()
    {
        std::vector<bool> driven(em_.nets.size(), false);
        auto mark_defs = [&](Proc& p) {
            std::sort(p.defs.begin(), p.defs.end());
            p.defs.erase(std::unique(p.defs.begin(), p.defs.end()),
                         p.defs.end());
            for (uint32_t d : p.defs) {
                if (driven[d]) {
                    error(p.item->loc, "net '" + em_.nets[d].name +
                                           "' has multiple drivers");
                }
                driven[d] = true;
            }
        };
        for (const auto& item : em_.decl->items) {
            switch (item->kind) {
              case ItemKind::ContinuousAssign: {
                Proc p;
                p.item = item.get();
                const auto& a = static_cast<const ContinuousAssign&>(*item);
                collect_lvalue_roots(*a.lhs, &p.defs);
                collect_uses(*a.rhs, &p.uses);
                collect_lvalue_index_uses(*a.lhs, &p.uses);
                mark_defs(p);
                comb_.push_back(std::move(p));
                break;
              }
              case ItemKind::Always: {
                const auto& ab = static_cast<const AlwaysBlock&>(*item);
                Proc p;
                p.item = item.get();
                p.seq = false;
                for (const auto& s : ab.sensitivity) {
                    if (s.edge != EdgeKind::Level) {
                        p.seq = true;
                    }
                }
                collect_stmt_defs(*ab.body, &p.defs);
                collect_stmt_uses(*ab.body, &p.uses);
                if (p.seq) {
                    if (ab.sensitivity.size() != 1) {
                        error(ab.loc,
                              "hardware compilation supports exactly one "
                              "edge trigger per always block");
                    }
                    mark_defs(p);
                    seq_.push_back(std::move(p));
                } else {
                    mark_defs(p);
                    comb_.push_back(std::move(p));
                }
                break;
              }
              case ItemKind::Initial:
                initial_.push_back(
                    static_cast<const InitialBlock*>(item.get()));
                break;
              case ItemKind::Instantiation:
                error(item->loc, "cannot synthesize an instantiation; "
                                 "split/inline first");
                break;
              default:
                break;
            }
        }
        // Record which regs hold state (written from a sequential process
        // or never written at all).
        std::vector<bool> comb_written(em_.nets.size(), false);
        for (const Proc& p : comb_) {
            for (uint32_t d : p.defs) {
                comb_written[d] = true;
            }
        }
        for (size_t i = 0; i < em_.nets.size(); ++i) {
            const NetInfo& net = em_.nets[i];
            is_state_.push_back(net.is_reg && !comb_written[i]);
        }
    }

    void
    collect_lvalue_roots(const Expr& lhs, std::vector<uint32_t>* out) const
    {
        switch (lhs.kind) {
          case ExprKind::Identifier: {
            const auto& id = static_cast<const IdentifierExpr&>(lhs);
            if (id.simple()) {
                const auto it = em_.net_index.find(id.path[0]);
                if (it != em_.net_index.end()) {
                    out->push_back(it->second);
                }
            }
            return;
          }
          case ExprKind::Index:
            collect_lvalue_roots(*static_cast<const IndexExpr&>(lhs).base,
                                 out);
            return;
          case ExprKind::RangeSelect:
            collect_lvalue_roots(
                *static_cast<const RangeSelectExpr&>(lhs).base, out);
            return;
          case ExprKind::IndexedSelect:
            collect_lvalue_roots(
                *static_cast<const IndexedSelectExpr&>(lhs).base, out);
            return;
          case ExprKind::Concat:
            for (const auto& e :
                 static_cast<const ConcatExpr&>(lhs).elements) {
                collect_lvalue_roots(*e, out);
            }
            return;
          default:
            return;
        }
    }

    void
    collect_uses(const Expr& e, std::vector<uint32_t>* out) const
    {
        switch (e.kind) {
          case ExprKind::Identifier: {
            const auto& id = static_cast<const IdentifierExpr&>(e);
            if (id.simple()) {
                const auto it = em_.net_index.find(id.path[0]);
                if (it != em_.net_index.end()) {
                    out->push_back(it->second);
                }
            }
            return;
          }
          case ExprKind::Unary:
            collect_uses(*static_cast<const UnaryExpr&>(e).operand, out);
            return;
          case ExprKind::Binary: {
            const auto& b = static_cast<const BinaryExpr&>(e);
            collect_uses(*b.lhs, out);
            collect_uses(*b.rhs, out);
            return;
          }
          case ExprKind::Ternary: {
            const auto& t = static_cast<const TernaryExpr&>(e);
            collect_uses(*t.cond, out);
            collect_uses(*t.then_expr, out);
            collect_uses(*t.else_expr, out);
            return;
          }
          case ExprKind::Concat:
            for (const auto& el :
                 static_cast<const ConcatExpr&>(e).elements) {
                collect_uses(*el, out);
            }
            return;
          case ExprKind::Replicate:
            collect_uses(*static_cast<const ReplicateExpr&>(e).body, out);
            return;
          case ExprKind::Index: {
            const auto& i = static_cast<const IndexExpr&>(e);
            collect_uses(*i.base, out);
            collect_uses(*i.index, out);
            return;
          }
          case ExprKind::RangeSelect:
            collect_uses(*static_cast<const RangeSelectExpr&>(e).base, out);
            return;
          case ExprKind::IndexedSelect: {
            const auto& s = static_cast<const IndexedSelectExpr&>(e);
            collect_uses(*s.base, out);
            collect_uses(*s.offset, out);
            return;
          }
          case ExprKind::Call: {
            const auto& c = static_cast<const CallExpr&>(e);
            for (const auto& a : c.args) {
                collect_uses(*a, out);
            }
            const auto it = em_.functions.find(c.callee);
            if (it != em_.functions.end() && it->second->body != nullptr) {
                collect_stmt_uses(*it->second->body, out);
            }
            return;
          }
          case ExprKind::SystemCall:
            for (const auto& a :
                 static_cast<const SystemCallExpr&>(e).args) {
                collect_uses(*a, out);
            }
            return;
          default:
            return;
        }
    }

    void
    collect_lvalue_index_uses(const Expr& lhs,
                              std::vector<uint32_t>* out) const
    {
        switch (lhs.kind) {
          case ExprKind::Index: {
            const auto& i = static_cast<const IndexExpr&>(lhs);
            collect_uses(*i.index, out);
            collect_lvalue_index_uses(*i.base, out);
            return;
          }
          case ExprKind::IndexedSelect: {
            const auto& s = static_cast<const IndexedSelectExpr&>(lhs);
            collect_uses(*s.offset, out);
            collect_lvalue_index_uses(*s.base, out);
            return;
          }
          case ExprKind::RangeSelect:
            collect_lvalue_index_uses(
                *static_cast<const RangeSelectExpr&>(lhs).base, out);
            return;
          case ExprKind::Concat:
            for (const auto& e :
                 static_cast<const ConcatExpr&>(lhs).elements) {
                collect_lvalue_index_uses(*e, out);
            }
            return;
          default:
            return;
        }
    }

    void
    collect_stmt_defs(const Stmt& stmt, std::vector<uint32_t>* out) const
    {
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const auto& s :
                 static_cast<const BlockStmt&>(stmt).stmts) {
                collect_stmt_defs(*s, out);
            }
            return;
          case StmtKind::BlockingAssign:
            collect_lvalue_roots(
                *static_cast<const BlockingAssignStmt&>(stmt).lhs, out);
            return;
          case StmtKind::NonblockingAssign:
            collect_lvalue_roots(
                *static_cast<const NonblockingAssignStmt&>(stmt).lhs, out);
            return;
          case StmtKind::If: {
            const auto& s = static_cast<const IfStmt&>(stmt);
            collect_stmt_defs(*s.then_stmt, out);
            if (s.else_stmt != nullptr) {
                collect_stmt_defs(*s.else_stmt, out);
            }
            return;
          }
          case StmtKind::Case:
            for (const auto& item :
                 static_cast<const CaseStmt&>(stmt).items) {
                collect_stmt_defs(*item.stmt, out);
            }
            return;
          case StmtKind::For: {
            const auto& s = static_cast<const ForStmt&>(stmt);
            collect_stmt_defs(*s.init, out);
            collect_stmt_defs(*s.step, out);
            collect_stmt_defs(*s.body, out);
            return;
          }
          case StmtKind::While:
            collect_stmt_defs(*static_cast<const WhileStmt&>(stmt).body,
                              out);
            return;
          case StmtKind::Repeat:
            collect_stmt_defs(*static_cast<const RepeatStmt&>(stmt).body,
                              out);
            return;
          default:
            return;
        }
    }

    void
    collect_stmt_uses(const Stmt& stmt, std::vector<uint32_t>* out) const
    {
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const auto& s :
                 static_cast<const BlockStmt&>(stmt).stmts) {
                collect_stmt_uses(*s, out);
            }
            return;
          case StmtKind::BlockingAssign: {
            const auto& a = static_cast<const BlockingAssignStmt&>(stmt);
            collect_uses(*a.rhs, out);
            collect_lvalue_index_uses(*a.lhs, out);
            return;
          }
          case StmtKind::NonblockingAssign: {
            const auto& a =
                static_cast<const NonblockingAssignStmt&>(stmt);
            collect_uses(*a.rhs, out);
            collect_lvalue_index_uses(*a.lhs, out);
            return;
          }
          case StmtKind::If: {
            const auto& s = static_cast<const IfStmt&>(stmt);
            collect_uses(*s.cond, out);
            collect_stmt_uses(*s.then_stmt, out);
            if (s.else_stmt != nullptr) {
                collect_stmt_uses(*s.else_stmt, out);
            }
            return;
          }
          case StmtKind::Case: {
            const auto& s = static_cast<const CaseStmt&>(stmt);
            collect_uses(*s.subject, out);
            for (const auto& item : s.items) {
                for (const auto& l : item.labels) {
                    collect_uses(*l, out);
                }
                collect_stmt_uses(*item.stmt, out);
            }
            return;
          }
          case StmtKind::For: {
            const auto& s = static_cast<const ForStmt&>(stmt);
            collect_stmt_uses(*s.init, out);
            collect_uses(*s.cond, out);
            collect_stmt_uses(*s.step, out);
            collect_stmt_uses(*s.body, out);
            return;
          }
          case StmtKind::While: {
            const auto& s = static_cast<const WhileStmt&>(stmt);
            collect_uses(*s.cond, out);
            collect_stmt_uses(*s.body, out);
            return;
          }
          case StmtKind::Repeat: {
            const auto& s = static_cast<const RepeatStmt&>(stmt);
            collect_uses(*s.count, out);
            collect_stmt_uses(*s.body, out);
            return;
          }
          case StmtKind::SystemTask:
            error(stmt.loc,
                  "system task survived to synthesis (not wrapped)");
            return;
          default:
            return;
        }
    }

    // -- sources -----------------------------------------------------------

    void
    create_sources()
    {
        for (size_t i = 0; i < em_.nets.size(); ++i) {
            const NetInfo& net = em_.nets[i];
            b_->set_source(net.name);
            if (net.array_size > 0) {
                mem_index_[i] = static_cast<int32_t>(
                    b_->memory(net.name, net.width, net.array_size));
                continue;
            }
            if (net.is_port && net.dir == PortDir::Input) {
                env_[i] = b_->input(net.name, net.width);
                continue;
            }
            if (is_state_[i]) {
                BitVector init(net.width, 0);
                if (net.init != nullptr) {
                    Diagnostics scratch;
                    auto v = eval_const_expr(*net.init, em_.params,
                                             &scratch);
                    if (v.has_value()) {
                        init = v->resized(net.width);
                    } else {
                        diags_->warning(net.init->loc,
                                        "non-constant initializer treated "
                                        "as 0 in hardware");
                    }
                }
                reg_index_[i] = static_cast<int32_t>(nl_->regs.size());
                env_[i] = b_->reg(net.name, net.width, init);
            }
        }
    }

    // -- expression construction -------------------------------------------

    /// Local frame for function inlining.
    struct Frame {
        const FunctionDecl* fn = nullptr;
        std::unordered_map<std::string, uint32_t> locals; ///< name -> node
        std::unordered_map<std::string, uint32_t> widths;
        std::unordered_map<std::string, bool> is_signed;
    };

    uint32_t
    lookup(const std::string& name)
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            const auto found = it->locals.find(name);
            if (found != it->locals.end()) {
                return found->second;
            }
        }
        const auto pit = em_.params.find(name);
        if (pit != em_.params.end()) {
            return b_->constant(pit->second);
        }
        const auto nit = em_.net_index.find(name);
        if (nit != em_.net_index.end()) {
            if (env_[nit->second] == kUndef) {
                // Read of a never-driven net: constant zero.
                env_[nit->second] =
                    b_->constant(em_.nets[nit->second].width, 0);
            }
            return env_[nit->second];
        }
        ok_ = false;
        return b_->constant(1, 0);
    }

    bool
    expr_signed(const Expr& e) const
    {
        return typer_.is_signed(e);
    }

    uint32_t
    build_self(const Expr& e)
    {
        return build_ctx(e, std::max(1u, typer_.self_width(e)));
    }

    uint32_t
    build_ctx(const Expr& e, uint32_t W)
    {
        switch (e.kind) {
          case ExprKind::Number: {
            const auto& n = static_cast<const NumberExpr&>(e);
            return b_->constant(n.value.resized(W, n.is_signed));
          }
          case ExprKind::Identifier: {
            const auto& id = static_cast<const IdentifierExpr&>(e);
            CASCADE_CHECK(id.simple());
            const uint32_t v = lookup(id.path[0]);
            // Locals first: a function input may shadow a module net.
            return b_->resize(v, W, typer_.is_signed(e));
          }
          case ExprKind::Unary: {
            const auto& u = static_cast<const UnaryExpr&>(e);
            switch (u.op) {
              case UnaryOp::Plus:
                return build_ctx(*u.operand, W);
              case UnaryOp::Minus: {
                const uint32_t v = build_ctx(*u.operand, W);
                return b_->make(Op::Sub, W,
                                {b_->constant(W, 0), v});
              }
              case UnaryOp::BitwiseNot:
                return b_->make(Op::Not, W, {build_ctx(*u.operand, W)});
              case UnaryOp::LogicalNot:
                return b_->zext(
                    b_->make(Op::Not, 1,
                             {b_->to_bool(build_self(*u.operand))}),
                    W);
              case UnaryOp::ReduceAnd:
                return b_->zext(
                    b_->make(Op::ReduceAnd, 1, {build_self(*u.operand)}),
                    W);
              case UnaryOp::ReduceOr:
                return b_->zext(b_->to_bool(build_self(*u.operand)), W);
              case UnaryOp::ReduceXor:
                return b_->zext(
                    b_->make(Op::ReduceXor, 1, {build_self(*u.operand)}),
                    W);
              case UnaryOp::ReduceNand:
                return b_->zext(
                    b_->make(Op::Not, 1,
                             {b_->make(Op::ReduceAnd, 1,
                                       {build_self(*u.operand)})}),
                    W);
              case UnaryOp::ReduceNor:
                return b_->zext(
                    b_->make(Op::Not, 1,
                             {b_->to_bool(build_self(*u.operand))}),
                    W);
              case UnaryOp::ReduceXnor:
                return b_->zext(
                    b_->make(Op::Not, 1,
                             {b_->make(Op::ReduceXor, 1,
                                       {build_self(*u.operand)})}),
                    W);
            }
            CASCADE_UNREACHABLE();
          }
          case ExprKind::Binary:
            return build_binary(static_cast<const BinaryExpr&>(e), W);
          case ExprKind::Ternary: {
            const auto& t = static_cast<const TernaryExpr&>(e);
            return b_->mux(b_->to_bool(build_self(*t.cond)),
                           build_ctx(*t.then_expr, W),
                           build_ctx(*t.else_expr, W));
          }
          case ExprKind::Concat: {
            const auto& c = static_cast<const ConcatExpr&>(e);
            std::vector<uint32_t> parts;
            uint32_t total = 0;
            for (const auto& el : c.elements) {
                parts.push_back(build_self(*el));
                total += b_->width_of(parts.back());
            }
            uint32_t cat =
                parts.size() == 1
                    ? parts[0]
                    : b_->make(Op::Concat, total, std::move(parts));
            return b_->zext(cat, W);
          }
          case ExprKind::Replicate: {
            const auto& r = static_cast<const ReplicateExpr&>(e);
            Diagnostics scratch;
            auto n = eval_const_expr(*r.count, em_.params, &scratch);
            const uint64_t count = n.has_value() ? n->to_uint64() : 1;
            const uint32_t body = build_self(*r.body);
            const uint32_t bw = b_->width_of(body);
            std::vector<uint32_t> parts(count, body);
            uint32_t cat =
                count == 1
                    ? body
                    : b_->make(Op::Concat,
                               static_cast<uint32_t>(count) * bw,
                               std::move(parts));
            return b_->zext(cat, W);
          }
          case ExprKind::Index: {
            const auto& ix = static_cast<const IndexExpr&>(e);
            // Memory element read.
            if (ix.base->kind == ExprKind::Identifier) {
                const auto& id =
                    static_cast<const IdentifierExpr&>(*ix.base);
                if (id.simple()) {
                    const auto it = em_.net_index.find(id.path[0]);
                    if (it != em_.net_index.end() &&
                        mem_index_[it->second] >= 0) {
                        const NetInfo& net = em_.nets[it->second];
                        uint32_t addr = build_self(*ix.index);
                        if (net.array_base != 0) {
                            addr = b_->make(
                                Op::Sub, b_->width_of(addr),
                                {addr,
                                 b_->constant(
                                     b_->width_of(addr),
                                     static_cast<uint64_t>(
                                         net.array_base))});
                        }
                        const uint32_t rd = b_->mem_read(
                            static_cast<uint32_t>(mem_index_[it->second]),
                            addr, net.width);
                        return b_->resize(rd, W, net.is_signed);
                    }
                }
            }
            const uint32_t base = build_self(*ix.base);
            const uint32_t idx = build_self(*ix.index);
            return b_->zext(
                b_->make(Op::DynSlice, 1, {base, b_->zext(idx, 32)}), W);
          }
          case ExprKind::RangeSelect: {
            const auto& r = static_cast<const RangeSelectExpr&>(e);
            Diagnostics scratch;
            auto msb = eval_const_expr(*r.msb, em_.params, &scratch);
            auto lsb = eval_const_expr(*r.lsb, em_.params, &scratch);
            if (!msb.has_value() || !lsb.has_value()) {
                error(e.loc, "non-constant range select");
                return b_->constant(W, 0);
            }
            const uint32_t base = build_self(*r.base);
            const uint32_t off = base_lsb(*r.base);
            const uint32_t lo =
                static_cast<uint32_t>(lsb->to_uint64()) - off;
            const uint32_t width = static_cast<uint32_t>(
                msb->to_uint64() - lsb->to_uint64() + 1);
            return b_->zext(slice_or_zero(base, lo, width), W);
          }
          case ExprKind::IndexedSelect: {
            const auto& s = static_cast<const IndexedSelectExpr&>(e);
            Diagnostics scratch;
            auto wv = eval_const_expr(*s.width, em_.params, &scratch);
            const uint32_t width =
                wv.has_value()
                    ? std::max<uint32_t>(
                          1, static_cast<uint32_t>(wv->to_uint64()))
                    : 1;
            const uint32_t base = build_self(*s.base);
            uint32_t offset = b_->zext(build_self(*s.offset), 32);
            const uint32_t declared = base_lsb(*s.base);
            if (!s.up) {
                offset = b_->make(
                    Op::Sub, 32,
                    {offset, b_->constant(32, width - 1)});
            }
            if (declared != 0) {
                offset = b_->make(Op::Sub, 32,
                                  {offset, b_->constant(32, declared)});
            }
            return b_->zext(
                b_->make(Op::DynSlice, width, {base, offset}), W);
          }
          case ExprKind::Call: {
            const auto& c = static_cast<const CallExpr&>(e);
            const auto it = em_.functions.find(c.callee);
            if (it == em_.functions.end()) {
                error(e.loc, "unknown function");
                return b_->constant(W, 0);
            }
            const uint32_t r = inline_function(*it->second, c);
            return b_->resize(r, W, it->second->ret_signed);
          }
          case ExprKind::SystemCall: {
            const auto& s = static_cast<const SystemCallExpr&>(e);
            if (s.callee == "$signed") {
                return b_->sext(build_self(*s.args[0]), W);
            }
            if (s.callee == "$unsigned") {
                return b_->zext(build_self(*s.args[0]), W);
            }
            error(e.loc, s.callee + " cannot be synthesized directly");
            return b_->constant(W, 0);
          }
          default:
            error(e.loc, "expression cannot be synthesized");
            return b_->constant(W, 0);
        }
    }

    /// Slices with an out-of-range guard (reads past the top return 0).
    uint32_t
    slice_or_zero(uint32_t base, uint32_t lo, uint32_t width)
    {
        const uint32_t bw = b_->width_of(base);
        if (lo >= bw) {
            return b_->constant(width, 0);
        }
        if (lo + width <= bw) {
            return b_->slice(base, lo, width);
        }
        return b_->zext(b_->slice(base, lo, bw - lo), width);
    }

    uint32_t
    base_lsb(const Expr& base) const
    {
        if (base.kind == ExprKind::Identifier) {
            const auto& id = static_cast<const IdentifierExpr&>(base);
            if (id.simple()) {
                // Function locals shadow nets; locals have lsb 0.
                for (auto it = frames_.rbegin(); it != frames_.rend();
                     ++it) {
                    if (it->locals.count(id.path[0]) != 0) {
                        return 0;
                    }
                }
                if (const NetInfo* net = em_.find_net(id.path[0])) {
                    return net->lsb;
                }
            }
        }
        return 0;
    }

    uint32_t
    build_binary(const BinaryExpr& b, uint32_t W)
    {
        const bool both_signed =
            expr_signed(*b.lhs) && expr_signed(*b.rhs);
        switch (b.op) {
          case BinaryOp::Add:
            return b_->make(Op::Add, W,
                            {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)});
          case BinaryOp::Sub:
            return b_->make(Op::Sub, W,
                            {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)});
          case BinaryOp::Mul:
            return b_->make(Op::Mul, W,
                            {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)});
          case BinaryOp::Div:
            return b_->make(both_signed ? Op::Divs : Op::Divu, W,
                            {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)});
          case BinaryOp::Mod:
            return b_->make(both_signed ? Op::Rems : Op::Remu, W,
                            {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)});
          case BinaryOp::Pow:
            return b_->make(Op::Pow, W,
                            {build_ctx(*b.lhs, W), build_self(*b.rhs)});
          case BinaryOp::BitAnd:
            return b_->make(Op::And, W,
                            {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)});
          case BinaryOp::BitOr:
            return b_->make(Op::Or, W,
                            {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)});
          case BinaryOp::BitXor:
            return b_->make(Op::Xor, W,
                            {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)});
          case BinaryOp::BitXnor:
            return b_->make(
                Op::Not, W,
                {b_->make(Op::Xor, W,
                          {build_ctx(*b.lhs, W), build_ctx(*b.rhs, W)})});
          case BinaryOp::Eq:
          case BinaryOp::CaseEq:
          case BinaryOp::Neq:
          case BinaryOp::CaseNeq:
          case BinaryOp::Lt:
          case BinaryOp::Leq:
          case BinaryOp::Gt:
          case BinaryOp::Geq: {
            const uint32_t Wc = std::max(typer_.self_width(*b.lhs),
                                         typer_.self_width(*b.rhs));
            const uint32_t l = build_ctx(*b.lhs, Wc);
            const uint32_t r = build_ctx(*b.rhs, Wc);
            uint32_t res;
            const Op lt = both_signed ? Op::Slt : Op::Ult;
            switch (b.op) {
              case BinaryOp::Eq:
              case BinaryOp::CaseEq:
                res = b_->make(Op::Eq, 1, {l, r});
                break;
              case BinaryOp::Neq:
              case BinaryOp::CaseNeq:
                res = b_->make(Op::Not, 1, {b_->make(Op::Eq, 1, {l, r})});
                break;
              case BinaryOp::Lt:
                res = b_->make(lt, 1, {l, r});
                break;
              case BinaryOp::Gt:
                res = b_->make(lt, 1, {r, l});
                break;
              case BinaryOp::Leq:
                res = b_->make(Op::Not, 1, {b_->make(lt, 1, {r, l})});
                break;
              case BinaryOp::Geq:
                res = b_->make(Op::Not, 1, {b_->make(lt, 1, {l, r})});
                break;
              default:
                CASCADE_UNREACHABLE();
            }
            return b_->zext(res, W);
          }
          case BinaryOp::LogicalAnd:
            return b_->zext(
                b_->make(Op::And, 1,
                         {b_->to_bool(build_self(*b.lhs)),
                          b_->to_bool(build_self(*b.rhs))}),
                W);
          case BinaryOp::LogicalOr:
            return b_->zext(
                b_->make(Op::Or, 1,
                         {b_->to_bool(build_self(*b.lhs)),
                          b_->to_bool(build_self(*b.rhs))}),
                W);
          case BinaryOp::Shl:
            return b_->make(Op::Shl, W,
                            {build_ctx(*b.lhs, W),
                             b_->zext(build_self(*b.rhs), 32)});
          case BinaryOp::Shr:
            return b_->make(Op::Lshr, W,
                            {build_ctx(*b.lhs, W),
                             b_->zext(build_self(*b.rhs), 32)});
          case BinaryOp::AShr: {
            const Op op = expr_signed(*b.lhs) ? Op::Ashr : Op::Lshr;
            return b_->make(op, W,
                            {build_ctx(*b.lhs, W),
                             b_->zext(build_self(*b.rhs), 32)});
          }
        }
        CASCADE_UNREACHABLE();
    }

    // -- statement execution -----------------------------------------------

    /// The write context: blocking writes go to env_/frames_; nonblocking
    /// writes go to next_ (merged against RegQ).
    struct SeqCtx {
        std::unordered_map<uint32_t, uint32_t> next; ///< net -> next node
        uint32_t clock = 0;
        bool active = false;
    };

    uint32_t
    guard_and(uint32_t guard, uint32_t cond)
    {
        if (guard == kTrueGuard_) {
            return b_->to_bool(cond);
        }
        return b_->make(Op::And, 1, {guard, b_->to_bool(cond)});
    }

    uint32_t
    guard_and_not(uint32_t guard, uint32_t cond)
    {
        const uint32_t n =
            b_->make(Op::Not, 1, {b_->to_bool(cond)});
        if (guard == kTrueGuard_) {
            return n;
        }
        return b_->make(Op::And, 1, {guard, n});
    }

    /// Reads the current (blocking-view) value of a root net / local.
    uint32_t
    read_root(const std::string& name)
    {
        return lookup(name);
    }

    void
    write_root(const std::string& name, uint32_t value, uint32_t guard)
    {
        // Function local?
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            const auto found = it->locals.find(name);
            if (found != it->locals.end()) {
                const uint32_t w = it->widths.at(name);
                uint32_t v = b_->zext(value, w);
                found->second =
                    guard == kTrueGuard_
                        ? v
                        : b_->mux(guard, v, found->second);
                return;
            }
        }
        const auto nit = em_.net_index.find(name);
        if (nit == em_.net_index.end()) {
            ok_ = false;
            return;
        }
        const uint32_t id = nit->second;
        const uint32_t w = em_.nets[id].width;
        uint32_t v = b_->zext(value, w);
        if (env_[id] == kUndef) {
            env_[id] = guard == kTrueGuard_
                           ? v
                           : b_->mux(guard, v, b_->constant(w, 0));
        } else {
            env_[id] = guard == kTrueGuard_
                           ? v
                           : b_->mux(guard, v, env_[id]);
        }
    }

    /// Handles "lhs = value" (blocking) by rebuilding the root's full value
    /// through the select chain.
    void
    assign_blocking(const Expr& lhs, uint32_t value, uint32_t guard)
    {
        switch (lhs.kind) {
          case ExprKind::Identifier: {
            const auto& id = static_cast<const IdentifierExpr&>(lhs);
            write_root(id.path[0], value, guard);
            return;
          }
          case ExprKind::Index: {
            const auto& ix = static_cast<const IndexExpr&>(lhs);
            if (is_memory_base(*ix.base)) {
                error(lhs.loc,
                      "blocking memory writes cannot be synthesized; use "
                      "nonblocking assignment");
                return;
            }
            const uint32_t base = build_self(*ix.base);
            const uint32_t idx = b_->zext(build_self(*ix.index), 32);
            assign_blocking(
                *ix.base,
                b_->set_slice_dyn(base, idx, b_->zext(value, 1)), guard);
            return;
          }
          case ExprKind::RangeSelect: {
            const auto& r = static_cast<const RangeSelectExpr&>(lhs);
            Diagnostics scratch;
            auto msb = eval_const_expr(*r.msb, em_.params, &scratch);
            auto lsb = eval_const_expr(*r.lsb, em_.params, &scratch);
            if (!msb.has_value() || !lsb.has_value()) {
                error(lhs.loc, "non-constant range in assignment");
                return;
            }
            const uint32_t base = build_self(*r.base);
            const uint32_t lo =
                static_cast<uint32_t>(lsb->to_uint64()) - base_lsb(*r.base);
            const uint32_t w = static_cast<uint32_t>(
                msb->to_uint64() - lsb->to_uint64() + 1);
            assign_blocking(
                *r.base,
                b_->set_slice_const(base, lo, b_->zext(value, w)), guard);
            return;
          }
          case ExprKind::IndexedSelect: {
            const auto& s = static_cast<const IndexedSelectExpr&>(lhs);
            Diagnostics scratch;
            auto wv = eval_const_expr(*s.width, em_.params, &scratch);
            const uint32_t w =
                wv.has_value()
                    ? std::max<uint32_t>(
                          1, static_cast<uint32_t>(wv->to_uint64()))
                    : 1;
            const uint32_t base = build_self(*s.base);
            uint32_t off = b_->zext(build_self(*s.offset), 32);
            if (!s.up) {
                off = b_->make(Op::Sub, 32,
                               {off, b_->constant(32, w - 1)});
            }
            const uint32_t declared = base_lsb(*s.base);
            if (declared != 0) {
                off = b_->make(Op::Sub, 32,
                               {off, b_->constant(32, declared)});
            }
            assign_blocking(
                *s.base, b_->set_slice_dyn(base, off, b_->zext(value, w)),
                guard);
            return;
          }
          case ExprKind::Concat: {
            const auto& c = static_cast<const ConcatExpr&>(lhs);
            uint32_t remaining = b_->width_of(value);
            for (const auto& e : c.elements) {
                const uint32_t w = typer_.self_width(*e);
                const uint32_t lo = remaining >= w ? remaining - w : 0;
                assign_blocking(*e, slice_or_zero(value, lo, w), guard);
                remaining = lo;
            }
            return;
          }
          default:
            error(lhs.loc, "unsupported assignment target");
            return;
        }
    }

    bool
    is_memory_base(const Expr& base) const
    {
        if (base.kind != ExprKind::Identifier) {
            return false;
        }
        const auto& id = static_cast<const IdentifierExpr&>(base);
        if (!id.simple()) {
            return false;
        }
        const auto it = em_.net_index.find(id.path[0]);
        return it != em_.net_index.end() && mem_index_[it->second] >= 0;
    }

    /// Handles "lhs <= value" against the seq context.
    void
    assign_nonblocking(const Expr& lhs, uint32_t value, uint32_t guard,
                       SeqCtx* ctx)
    {
        // Memory write port?
        if (lhs.kind == ExprKind::Index) {
            const auto& ix = static_cast<const IndexExpr&>(lhs);
            if (is_memory_base(*ix.base)) {
                const auto& id =
                    static_cast<const IdentifierExpr&>(*ix.base);
                const uint32_t net_id = em_.net_id(id.path[0]);
                const NetInfo& net = em_.nets[net_id];
                uint32_t addr = b_->zext(build_self(*ix.index), 32);
                if (net.array_base != 0) {
                    addr = b_->make(
                        Op::Sub, 32,
                        {addr, b_->constant(
                                   32, static_cast<uint64_t>(
                                           net.array_base))});
                }
                const uint32_t en =
                    guard == kTrueGuard_ ? b_->constant(1, 1) : guard;
                b_->mem_write(
                    static_cast<uint32_t>(mem_index_[net_id]), addr,
                    b_->zext(value, net.width), en, ctx->clock);
                return;
            }
        }
        if (lhs.kind == ExprKind::Concat) {
            const auto& c = static_cast<const ConcatExpr&>(lhs);
            uint32_t remaining = b_->width_of(value);
            for (const auto& e : c.elements) {
                const uint32_t w = typer_.self_width(*e);
                const uint32_t lo = remaining >= w ? remaining - w : 0;
                assign_nonblocking(*e, slice_or_zero(value, lo, w), guard,
                                   ctx);
                remaining = lo;
            }
            return;
        }

        // Identify the root net and build the new full value against the
        // pending next view.
        std::vector<uint32_t> roots;
        collect_lvalue_roots(lhs, &roots);
        if (roots.size() != 1) {
            error(lhs.loc, "unsupported nonblocking target");
            return;
        }
        const uint32_t root = roots[0];
        if (mem_index_[root] >= 0) {
            error(lhs.loc, "nested memory-element selects are not "
                           "synthesizable assignment targets");
            return;
        }
        if (!is_state_[root]) {
            error(lhs.loc, "nonblocking assignment to non-state net '" +
                               em_.nets[root].name + "'");
            return;
        }
        auto it = ctx->next.find(root);
        const uint32_t cur =
            it != ctx->next.end() ? it->second : env_[root]; // RegQ
        const uint32_t full = rebuild_full(lhs, cur, value);
        ctx->next[root] =
            guard == kTrueGuard_ ? full : b_->mux(guard, full, cur);
    }

    /// Builds the root's full next value with \p value spliced in at the
    /// location \p lhs selects, starting from \p cur.
    uint32_t
    rebuild_full(const Expr& lhs, uint32_t cur, uint32_t value)
    {
        switch (lhs.kind) {
          case ExprKind::Identifier:
            return b_->zext(value, b_->width_of(cur));
          case ExprKind::Index: {
            const auto& ix = static_cast<const IndexExpr&>(lhs);
            const uint32_t idx = b_->zext(build_self(*ix.index), 32);
            // cur corresponds to the root; for nested selects, splice
            // innermost-out. Only single-level selects are supported here.
            return b_->set_slice_dyn(cur, idx, b_->zext(value, 1));
          }
          case ExprKind::RangeSelect: {
            const auto& r = static_cast<const RangeSelectExpr&>(lhs);
            Diagnostics scratch;
            auto msb = eval_const_expr(*r.msb, em_.params, &scratch);
            auto lsb = eval_const_expr(*r.lsb, em_.params, &scratch);
            if (!msb.has_value() || !lsb.has_value()) {
                error(lhs.loc, "non-constant range in assignment");
                return cur;
            }
            const uint32_t lo =
                static_cast<uint32_t>(lsb->to_uint64()) - base_lsb(*r.base);
            const uint32_t w = static_cast<uint32_t>(
                msb->to_uint64() - lsb->to_uint64() + 1);
            return b_->set_slice_const(cur, lo, b_->zext(value, w));
          }
          case ExprKind::IndexedSelect: {
            const auto& s = static_cast<const IndexedSelectExpr&>(lhs);
            Diagnostics scratch;
            auto wv = eval_const_expr(*s.width, em_.params, &scratch);
            const uint32_t w =
                wv.has_value()
                    ? std::max<uint32_t>(
                          1, static_cast<uint32_t>(wv->to_uint64()))
                    : 1;
            uint32_t off = b_->zext(build_self(*s.offset), 32);
            if (!s.up) {
                off = b_->make(Op::Sub, 32,
                               {off, b_->constant(32, w - 1)});
            }
            const uint32_t declared = base_lsb(*s.base);
            if (declared != 0) {
                off = b_->make(Op::Sub, 32,
                               {off, b_->constant(32, declared)});
            }
            return b_->set_slice_dyn(cur, off, b_->zext(value, w));
          }
          default:
            error(lhs.loc, "unsupported nonblocking target");
            return cur;
        }
    }

    void
    exec(const Stmt& stmt, uint32_t guard, SeqCtx* ctx)
    {
        if (!ok_) {
            return;
        }
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const auto& s :
                 static_cast<const BlockStmt&>(stmt).stmts) {
                exec(*s, guard, ctx);
            }
            return;
          case StmtKind::BlockingAssign: {
            const auto& a = static_cast<const BlockingAssignStmt&>(stmt);
            const uint32_t lw = lvalue_width(*a.lhs);
            const uint32_t W = std::max(lw, typer_.self_width(*a.rhs));
            const uint32_t v =
                slice_or_zero(build_ctx(*a.rhs, W), 0, lw);
            assign_blocking(*a.lhs, v, guard);
            return;
          }
          case StmtKind::NonblockingAssign: {
            const auto& a =
                static_cast<const NonblockingAssignStmt&>(stmt);
            if (ctx == nullptr || !ctx->active) {
                error(stmt.loc, "nonblocking assignment outside an "
                                "edge-triggered block");
                return;
            }
            const uint32_t lw = lvalue_width(*a.lhs);
            const uint32_t W = std::max(lw, typer_.self_width(*a.rhs));
            const uint32_t v =
                slice_or_zero(build_ctx(*a.rhs, W), 0, lw);
            assign_nonblocking(*a.lhs, v, guard, ctx);
            return;
          }
          case StmtKind::If: {
            const auto& s = static_cast<const IfStmt&>(stmt);
            const uint32_t cond = build_self(*s.cond);
            if (b_->is_const(cond)) {
                if (b_->const_val(cond).to_bool()) {
                    exec(*s.then_stmt, guard, ctx);
                } else if (s.else_stmt != nullptr) {
                    exec(*s.else_stmt, guard, ctx);
                }
                return;
            }
            exec(*s.then_stmt, guard_and(guard, cond), ctx);
            if (s.else_stmt != nullptr) {
                exec(*s.else_stmt, guard_and_not(guard, cond), ctx);
            }
            return;
          }
          case StmtKind::Case: {
            const auto& s = static_cast<const CaseStmt&>(stmt);
            const uint32_t Ws = typer_.self_width(*s.subject);
            uint32_t none_prev = kTrueGuard_;
            std::vector<std::pair<const Stmt*, uint32_t>> arms;
            const Stmt* dflt = nullptr;
            for (const auto& item : s.items) {
                if (item.labels.empty()) {
                    dflt = item.stmt.get();
                    continue;
                }
                uint32_t match = 0;
                bool have = false;
                for (const auto& label : item.labels) {
                    const uint32_t Wc =
                        std::max(Ws, typer_.self_width(*label));
                    const uint32_t eq = b_->make(
                        Op::Eq, 1,
                        {build_ctx(*s.subject, Wc),
                         build_ctx(*label, Wc)});
                    match = have ? b_->make(Op::Or, 1, {match, eq}) : eq;
                    have = true;
                }
                uint32_t arm_guard =
                    none_prev == kTrueGuard_
                        ? match
                        : b_->make(Op::And, 1, {none_prev, match});
                arms.emplace_back(item.stmt.get(),
                                  guard == kTrueGuard_
                                      ? arm_guard
                                      : b_->make(Op::And, 1,
                                                 {guard, arm_guard}));
                const uint32_t not_match =
                    b_->make(Op::Not, 1, {match});
                none_prev = none_prev == kTrueGuard_
                                ? not_match
                                : b_->make(Op::And, 1,
                                           {none_prev, not_match});
            }
            for (const auto& [arm_stmt, arm_guard] : arms) {
                if (b_->is_const(arm_guard) &&
                    !b_->const_val(arm_guard).to_bool()) {
                    continue;
                }
                exec(*arm_stmt, arm_guard, ctx);
            }
            if (dflt != nullptr) {
                uint32_t g = none_prev;
                if (guard != kTrueGuard_) {
                    g = g == kTrueGuard_
                            ? guard
                            : b_->make(Op::And, 1, {guard, g});
                }
                const bool dead = g != kTrueGuard_ && b_->is_const(g) &&
                                  !b_->const_val(g).to_bool();
                if (!dead) {
                    exec(*dflt, g, ctx);
                }
            }
            return;
          }
          case StmtKind::For: {
            const auto& s = static_cast<const ForStmt&>(stmt);
            exec(*s.init, guard, ctx);
            uint64_t iters = 0;
            while (true) {
                const uint32_t cond = build_self(*s.cond);
                if (!b_->is_const(cond)) {
                    error(stmt.loc,
                          "loop condition must be static for synthesis");
                    return;
                }
                if (!b_->const_val(cond).to_bool()) {
                    return;
                }
                if (++iters > kMaxUnroll) {
                    error(stmt.loc, "loop unrolling limit exceeded");
                    return;
                }
                exec(*s.body, guard, ctx);
                exec(*s.step, guard, ctx);
                if (!ok_) {
                    return;
                }
            }
          }
          case StmtKind::While: {
            const auto& s = static_cast<const WhileStmt&>(stmt);
            uint64_t iters = 0;
            while (true) {
                const uint32_t cond = build_self(*s.cond);
                if (!b_->is_const(cond)) {
                    error(stmt.loc,
                          "loop condition must be static for synthesis");
                    return;
                }
                if (!b_->const_val(cond).to_bool()) {
                    return;
                }
                if (++iters > kMaxUnroll) {
                    error(stmt.loc, "loop unrolling limit exceeded");
                    return;
                }
                exec(*s.body, guard, ctx);
                if (!ok_) {
                    return;
                }
            }
          }
          case StmtKind::Repeat: {
            const auto& s = static_cast<const RepeatStmt&>(stmt);
            const uint32_t count = build_self(*s.count);
            if (!b_->is_const(count)) {
                error(stmt.loc,
                      "repeat count must be static for synthesis");
                return;
            }
            const uint64_t n = b_->const_val(count).to_uint64();
            if (n > kMaxUnroll) {
                error(stmt.loc, "loop unrolling limit exceeded");
                return;
            }
            for (uint64_t i = 0; i < n && ok_; ++i) {
                exec(*s.body, guard, ctx);
            }
            return;
          }
          case StmtKind::SystemTask:
            error(stmt.loc,
                  "system tasks cannot be synthesized directly (the "
                  "hardware wrapper handles them)");
            return;
          case StmtKind::Null:
            return;
          default:
            error(stmt.loc, "statement cannot be synthesized");
            return;
        }
    }

    uint32_t
    lvalue_width(const Expr& lhs)
    {
        if (lhs.kind == ExprKind::Concat) {
            const auto& c = static_cast<const ConcatExpr&>(lhs);
            uint32_t sum = 0;
            for (const auto& e : c.elements) {
                sum += lvalue_width(*e);
            }
            return sum;
        }
        if (lhs.kind == ExprKind::Identifier) {
            const auto& id = static_cast<const IdentifierExpr&>(lhs);
            for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
                const auto found = it->widths.find(id.path[0]);
                if (found != it->widths.end()) {
                    return found->second;
                }
            }
        }
        return std::max(1u, typer_.self_width(lhs));
    }

    uint32_t
    inline_function(const FunctionDecl& fn, const CallExpr& call)
    {
        Frame frame;
        frame.fn = &fn;
        size_t arg_i = 0;
        for (size_t i = 0; i < fn.decls.size(); ++i) {
            const auto& nd = static_cast<const NetDecl&>(*fn.decls[i]);
            Diagnostics scratch;
            uint32_t width = 1;
            if (nd.range.valid()) {
                auto msb =
                    eval_const_expr(*nd.range.msb, em_.params, &scratch);
                auto lsb =
                    eval_const_expr(*nd.range.lsb, em_.params, &scratch);
                if (msb.has_value() && lsb.has_value()) {
                    width = static_cast<uint32_t>(msb->to_uint64() -
                                                  lsb->to_uint64() + 1);
                }
            }
            for (const auto& d : nd.decls) {
                uint32_t v;
                if (fn.decl_is_input[i] && arg_i < call.args.size()) {
                    v = build_ctx(*call.args[arg_i++], width);
                } else {
                    v = b_->constant(width, 0);
                }
                frame.locals[d.name] = v;
                frame.widths[d.name] = width;
                frame.is_signed[d.name] = nd.is_signed;
            }
        }
        uint32_t ret_width = 1;
        {
            Diagnostics scratch;
            if (fn.ret_range.valid()) {
                auto msb = eval_const_expr(*fn.ret_range.msb, em_.params,
                                           &scratch);
                auto lsb = eval_const_expr(*fn.ret_range.lsb, em_.params,
                                           &scratch);
                if (msb.has_value() && lsb.has_value()) {
                    ret_width = static_cast<uint32_t>(msb->to_uint64() -
                                                      lsb->to_uint64() + 1);
                }
            }
        }
        frame.locals[fn.name] = b_->constant(ret_width, 0);
        frame.widths[fn.name] = ret_width;
        frame.is_signed[fn.name] = fn.ret_signed;

        frames_.push_back(std::move(frame));
        if (fn.body != nullptr) {
            exec(*fn.body, kTrueGuard_, nullptr);
        }
        const uint32_t result = frames_.back().locals.at(fn.name);
        frames_.pop_back();
        return result;
    }

    // -- top-level phases ---------------------------------------------------

    void
    run_initial_blocks()
    {
        // Initial blocks must reduce to constants; their results become
        // register initial values and memory initial contents.
        for (const InitialBlock* ib : initial_) {
            b_->set_source(proc_label(*ib));
            SeqCtx ctx;
            ctx.active = true;
            ctx.clock = b_->constant(1, 0); // unused
            const size_t ports_before = nl_->write_ports.size();
            exec(*ib->body, kTrueGuard_, &ctx);
            if (!ok_) {
                return;
            }
            // Fold blocking results into register inits.
            for (size_t i = 0; i < em_.nets.size(); ++i) {
                if (reg_index_[i] < 0 || env_[i] == kUndef) {
                    continue;
                }
                const uint32_t q = nl_->regs[reg_index_[i]].q;
                if (env_[i] != q) {
                    if (!b_->is_const(env_[i])) {
                        error(ib->loc,
                              "initial block value for '" +
                                  em_.nets[i].name +
                                  "' is not constant; cannot synthesize");
                        return;
                    }
                    nl_->regs[reg_index_[i]].init =
                        b_->const_val(env_[i]).resized(
                            em_.nets[i].width);
                    env_[i] = q; // runtime value comes from the register
                }
            }
            // And nonblocking results.
            for (const auto& [net, node] : ctx.next) {
                if (reg_index_[net] < 0) {
                    continue;
                }
                if (!b_->is_const(node)) {
                    error(ib->loc, "initial block value for '" +
                                       em_.nets[net].name +
                                       "' is not constant");
                    return;
                }
                nl_->regs[reg_index_[net]].init =
                    b_->const_val(node).resized(em_.nets[net].width);
            }
            // Memory writes from initial blocks become initial contents.
            for (size_t p = ports_before; p < nl_->write_ports.size();
                 ++p) {
                const MemWritePort& port = nl_->write_ports[p];
                if (!b_->is_const(port.addr) || !b_->is_const(port.data) ||
                    !b_->is_const(port.enable)) {
                    error(ib->loc, "initial memory contents must be "
                                   "constant");
                    return;
                }
                if (b_->const_val(port.enable).to_bool()) {
                    mem_init_[port.mem]
                             [b_->const_val(port.addr).to_uint64()] =
                        b_->const_val(port.data);
                }
            }
            nl_->write_ports.resize(ports_before);
        }
    }

    void
    execute_comb()
    {
        // Topologically order combinational processes by wire def/use.
        const size_t n = comb_.size();
        std::vector<int> producer(em_.nets.size(), -1);
        for (size_t p = 0; p < n; ++p) {
            for (uint32_t d : comb_[p].defs) {
                producer[d] = static_cast<int>(p);
            }
        }
        std::vector<std::vector<uint32_t>> succ(n);
        std::vector<uint32_t> indeg(n, 0);
        for (size_t p = 0; p < n; ++p) {
            std::unordered_set<int> preds;
            for (uint32_t u : comb_[p].uses) {
                const int q = producer[u];
                if (q >= 0 && q != static_cast<int>(p)) {
                    preds.insert(q);
                }
            }
            for (int q : preds) {
                succ[static_cast<size_t>(q)].push_back(
                    static_cast<uint32_t>(p));
                ++indeg[p];
            }
        }
        std::queue<uint32_t> ready;
        for (size_t p = 0; p < n; ++p) {
            if (indeg[p] == 0) {
                ready.push(static_cast<uint32_t>(p));
            }
        }
        size_t done = 0;
        while (!ready.empty()) {
            const uint32_t p = ready.front();
            ready.pop();
            ++done;
            run_comb_process(comb_[p]);
            for (uint32_t s : succ[p]) {
                if (--indeg[s] == 0) {
                    ready.push(s);
                }
            }
        }
        if (done != n) {
            error(em_.decl->loc,
                  "combinational cycle detected during synthesis");
        }
    }

    void
    run_comb_process(const Proc& p)
    {
        b_->set_source(proc_label(*p.item));
        if (p.item->kind == ItemKind::ContinuousAssign) {
            const auto& a = static_cast<const ContinuousAssign&>(*p.item);
            const uint32_t lw = lvalue_width(*a.lhs);
            const uint32_t W = std::max(lw, typer_.self_width(*a.rhs));
            const uint32_t v =
                slice_or_zero(build_ctx(*a.rhs, W), 0, lw);
            assign_blocking(*a.lhs, v, kTrueGuard_);
            name_defs(p);
            return;
        }
        // Combinational always: default every target to 0 first so partial
        // assignments have defined semantics (latches are not inferred).
        const auto& ab = static_cast<const AlwaysBlock&>(*p.item);
        for (uint32_t d : p.defs) {
            if (env_[d] == kUndef) {
                env_[d] = b_->constant(em_.nets[d].width, 0);
            }
        }
        exec(*ab.body, kTrueGuard_, nullptr);
        name_defs(p);
    }

    /// Records net-name aliases for the nodes now holding each of
    /// \p p's defined nets (timing reports name hops after user nets).
    void
    name_defs(const Proc& p)
    {
        for (uint32_t d : p.defs) {
            if (env_[d] != kUndef) {
                b_->name_node(env_[d], em_.nets[d].name);
            }
        }
    }

    void
    execute_seq()
    {
        for (const Proc& p : seq_) {
            const auto& ab = static_cast<const AlwaysBlock&>(*p.item);
            b_->set_source(proc_label(*p.item));
            const auto& sens = ab.sensitivity[0];
            const auto& sig =
                static_cast<const IdentifierExpr&>(*sens.signal);
            // Edge detection follows the LSB, matching the interpreter.
            uint32_t clock = b_->slice(lookup(sig.path[0]), 0, 1);
            if (sens.edge == EdgeKind::Neg) {
                clock = b_->make(Op::Not, 1, {clock});
            }

            SeqCtx ctx;
            ctx.active = true;
            ctx.clock = clock;

            exec(*ab.body, kTrueGuard_, &ctx);

            // Nonblocking targets get their merged next expression;
            // blocking-assigned state regs get the final blocking view.
            for (uint32_t d : p.defs) {
                if (reg_index_[d] < 0) {
                    continue;
                }
                const uint32_t q = nl_->regs[reg_index_[d]].q;
                const auto it = ctx.next.find(d);
                if (it != ctx.next.end()) {
                    b_->set_reg_next(
                        static_cast<uint32_t>(reg_index_[d]), it->second,
                        clock);
                    b_->name_node(it->second, em_.nets[d].name);
                } else if (env_[d] != q) {
                    b_->set_reg_next(
                        static_cast<uint32_t>(reg_index_[d]), env_[d],
                        clock);
                    b_->name_node(env_[d], em_.nets[d].name);
                }
                // Other processes must keep seeing the register output.
                env_[d] = q;
            }
        }
        // Deliver memory initial contents collected from initial blocks.
        for (const auto& [mem, contents] : mem_init_) {
            nl_->mems[mem].init = contents;
        }
    }

    const ElaboratedModule& em_;
    Diagnostics* diags_;
    ExprTyper typer_;
    std::unique_ptr<Netlist> nl_;
    std::unique_ptr<NetlistBuilder> b_;

    mutable bool ok_ = true;
    std::vector<uint32_t> env_;
    std::vector<int32_t> reg_index_;
    std::vector<int32_t> mem_index_;
    std::vector<bool> is_state_;
    std::vector<Proc> comb_;
    std::vector<Proc> seq_;
    std::vector<const InitialBlock*> initial_;
    std::vector<Frame> frames_;
    std::map<uint32_t, std::map<uint64_t, BitVector>> mem_init_;

    /// Sentinel for "no guard" (always true).
    static constexpr uint32_t kTrueGuard_ = ~0u - 1;
};

} // namespace

std::unique_ptr<Netlist>
synthesize(const ElaboratedModule& em, Diagnostics* diags)
{
    Synthesizer synth(em, diags);
    return synth.run();
}

namespace {

/// Resolves a user-facing signal name against a netlist: exact register
/// name, exact net-name alias, exact port name, then a unique `.`/`_`
/// suffix match (so `:break n == 5` finds `root.n` or a flattened
/// `root_n`). Returns the node id, or ~0u with *err set.
uint32_t
resolve_debug_signal(const Netlist& nl, const std::string& name,
                     std::string* err)
{
    for (const RegDef& reg : nl.regs) {
        if (reg.name == name) {
            return reg.q;
        }
    }
    for (const auto& [node, alias] : nl.node_names) {
        if (alias == name) {
            return node;
        }
    }
    for (const PortDef& port : nl.inputs) {
        if (port.name == name) {
            return port.node;
        }
    }
    for (const PortDef& port : nl.outputs) {
        if (port.name == name) {
            return port.node;
        }
    }
    // Suffix match: candidate names must end in <sep><name> where sep is
    // a hierarchy separator. Ambiguity is an error, not a guess.
    const auto suffix_matches = [&name](const std::string& full) {
        if (full.size() <= name.size() ||
            full.compare(full.size() - name.size(), name.size(), name) !=
                0) {
            return false;
        }
        const char sep = full[full.size() - name.size() - 1];
        return sep == '.' || sep == '_';
    };
    uint32_t found = ~0u;
    std::string found_name;
    bool ambiguous = false;
    for (const RegDef& reg : nl.regs) {
        if (suffix_matches(reg.name)) {
            if (found != ~0u && found_name != reg.name) {
                ambiguous = true;
            }
            found = reg.q;
            found_name = reg.name;
        }
    }
    for (const auto& [node, alias] : nl.node_names) {
        if (suffix_matches(alias)) {
            if (found != ~0u && found_name != alias) {
                ambiguous = true;
            }
            found = node;
            found_name = alias;
        }
    }
    if (ambiguous) {
        if (err != nullptr) {
            *err = "signal '" + name +
                   "' is ambiguous in the synthesized netlist";
        }
        return ~0u;
    }
    if (found == ~0u && err != nullptr) {
        *err = "signal '" + name + "' not found in the synthesized netlist";
    }
    return found;
}

} // namespace

DebugInstrumented
instrument_debug_triggers(const Netlist& base,
                          const std::vector<DebugTriggerSpec>& specs,
                          const std::vector<std::string>& probes,
                          std::string* err)
{
    DebugInstrumented out;
    auto nl = std::make_unique<Netlist>(base);
    NetlistBuilder b(nl.get());
    for (const DebugTriggerSpec& spec : specs) {
        const uint32_t sig = resolve_debug_signal(*nl, spec.signal, err);
        if (sig == ~0u) {
            return out; // netlist stays null; *err already set
        }
        b.set_source("debug:" + spec.signal);
        uint32_t cell = sig;
        if (!spec.watch) {
            const uint32_t w = nl->nodes[sig].width;
            const uint32_t c = b.constant(spec.value.resized(w));
            if (spec.op == "==") {
                cell = b.make(Op::Eq, 1, {sig, c});
            } else if (spec.op == "!=") {
                cell = b.make(Op::Not, 1, {b.make(Op::Eq, 1, {sig, c})});
            } else if (spec.op == "<") {
                cell = b.make(Op::Ult, 1, {sig, c});
            } else if (spec.op == ">") {
                cell = b.make(Op::Ult, 1, {c, sig});
            } else if (spec.op == "<=") {
                cell = b.make(Op::Not, 1, {b.make(Op::Ult, 1, {c, sig})});
            } else if (spec.op == ">=") {
                cell = b.make(Op::Not, 1, {b.make(Op::Ult, 1, {sig, c})});
            } else {
                if (err != nullptr) {
                    *err = "unsupported debug comparison '" + spec.op + "'";
                }
                return out;
            }
        }
        const std::string oname =
            "__dbg" + std::to_string(out.trigger_outputs.size());
        b.output(oname, cell);
        out.trigger_outputs.push_back(
            static_cast<uint32_t>(nl->outputs.size() - 1));
    }
    for (const std::string& probe : probes) {
        const uint32_t sig = resolve_debug_signal(*nl, probe, nullptr);
        if (sig == ~0u) {
            continue; // best-effort: the ring captures what it can see
        }
        b.set_source("debug:" + probe);
        const std::string oname =
            "__dbgp" + std::to_string(out.probe_names.size());
        b.output(oname, sig);
        out.probe_names.push_back(probe);
        out.probe_outputs.push_back(
            static_cast<uint32_t>(nl->outputs.size() - 1));
        out.probe_widths.push_back(nl->nodes[sig].width);
    }
    out.netlist = std::move(nl);
    return out;
}

} // namespace cascade::fpga
