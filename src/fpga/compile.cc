#include "fpga/compile.h"

#include <chrono>
#include <cmath>

#include "common/check.h"
#include "telemetry/trace.h"

namespace cascade::fpga {

namespace {

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// Flow-phase duration histograms in the process registry (the compile
/// runs on the compile-server thread, which has no Runtime handle).
telemetry::Histogram*
phase_hist(const char* phase)
{
    return telemetry::Registry::global().histogram(
        std::string("fpga.compile.") + phase + "_ns");
}

} // namespace

CompileResult
compile(const verilog::ElaboratedModule& em, const CompileOptions& options)
{
    CompileResult result;
    result.report.seed = options.seed;
    TELEM_SPAN("fpga.compile");

    static telemetry::Histogram* const synth_ns = phase_hist("synth");
    static telemetry::Histogram* const techmap_ns = phase_hist("techmap");
    static telemetry::Histogram* const place_ns = phase_hist("place");
    static telemetry::Histogram* const timing_ns = phase_hist("timing");

    std::unique_ptr<Netlist> nl;
    {
        TELEM_SPAN_HIST("synth", synth_ns);
        const auto t = std::chrono::steady_clock::now();
        Diagnostics diags;
        nl = synthesize(em, &diags);
        result.report.synth_seconds = seconds_since(t);
        if (nl == nullptr) {
            result.error = "synthesis failed:\n" + diags.str();
            result.report.total_seconds =
                result.report.phase_sum_seconds();
            return result;
        }
    }
    result.report.netlist_nodes = nl->size();

    MappedDesign mapped;
    {
        TELEM_SPAN_HIST("techmap", techmap_ns);
        const auto t = std::chrono::steady_clock::now();
        mapped = technology_map(*nl);
        result.report.techmap_seconds = seconds_since(t);
    }
    result.report.area = mapped.area;
    result.report.cells = mapped.cells.size();

    PlacementResult placement;
    {
        TELEM_SPAN_HIST("place", place_ns);
        const auto t = std::chrono::steady_clock::now();
        PlaceOptions popts;
        popts.effort = options.effort;
        popts.seed = options.seed;
        placement = place(mapped, popts);
        result.report.place_seconds = seconds_since(t);
    }
    result.report.anneal_moves = placement.moves_evaluated;
    result.report.wirelength = placement.final_wirelength;

    {
        TELEM_SPAN_HIST("timing", timing_ns);
        const auto t = std::chrono::steady_clock::now();
        result.report.timing = analyze_timing(*nl, mapped, placement,
                                              options.target_clock_mhz);
        result.report.timing_seconds = seconds_since(t);
    }

    // Render the critical path as named user signals (provenance threads
    // from synthesis through mapping and placement). Consecutive hops
    // inside one named signal's cone collapse to a single entry.
    for (size_t i = 0; i < result.report.timing.critical_path.size();
         ++i) {
        const uint32_t node = result.report.timing.critical_path[i];
        std::string name = nl->name_of(node);
        if (!result.report.critical_path_names.empty() &&
            result.report.critical_path_names.back() == name) {
            result.report.critical_path_arrival_ns.back() =
                result.report.timing.critical_arrival_ns[i];
            continue;
        }
        result.report.critical_path_names.push_back(std::move(name));
        result.report.critical_path_arrival_ns.push_back(
            result.report.timing.critical_arrival_ns[i]);
    }

    result.report.total_seconds = result.report.phase_sum_seconds();
    CASCADE_CHECK(std::abs(result.report.total_seconds -
                           (result.report.synth_seconds +
                            result.report.techmap_seconds +
                            result.report.place_seconds +
                            result.report.timing_seconds)) <= 1e-12);

    result.netlist = std::shared_ptr<const Netlist>(std::move(nl));
    result.ok = true;
    return result;
}

std::unique_ptr<Bitstream>
FpgaDevice::program(const CompileResult& result, std::string* error,
                    bool allow_derated_clock,
                    double* actual_clock_mhz) const
{
    if (!result.ok) {
        if (error != nullptr) {
            *error = result.error;
        }
        return nullptr;
    }
    if (!result.report.area.fits(les_, bram_bits_)) {
        if (error != nullptr) {
            *error = "design does not fit: needs " +
                     std::to_string(result.report.area.les) + " LEs / " +
                     std::to_string(result.report.area.bram_bits) +
                     " BRAM bits";
        }
        telemetry::Registry::global()
            .counter("fpga.program.rejected_fit")
            ->inc();
        return nullptr;
    }
    double clock = clock_mhz_;
    if (!result.report.timing.met) {
        if (!allow_derated_clock) {
            if (error != nullptr) {
                *error = "timing closure failed: Fmax " +
                         std::to_string(result.report.timing.fmax_mhz) +
                         " MHz below target";
            }
            telemetry::Registry::global()
                .counter("fpga.program.rejected_timing")
                ->inc();
            return nullptr;
        }
        clock = result.report.timing.fmax_mhz * 0.9;
    }
    if (actual_clock_mhz != nullptr) {
        *actual_clock_mhz = clock;
    }
    telemetry::Registry::global().counter("fpga.program.loaded")->inc();
    return std::make_unique<Bitstream>(result.netlist);
}

} // namespace cascade::fpga
