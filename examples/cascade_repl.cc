/// \file
/// The cascade command-line tool: a Verilog REPL (paper §3.1). With a file
/// argument it runs in batch mode; without one it reads eval's from stdin,
/// stepping the program between inputs so IO side effects appear live.

#include <fstream>
#include <iostream>
#include <string>

#include "runtime/repl.h"
#include "runtime/runtime.h"

using cascade::runtime::Repl;
using cascade::runtime::Runtime;

int
main(int argc, char** argv)
{
    Runtime::Options options;
    options.compile_effort = 0.3;
    Runtime rt(options);
    Repl repl(&rt, &std::cout);

    if (argc > 1) {
        std::ifstream file(argv[1]);
        if (!file) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        const bool ok = repl.run_batch(file, 1u << 22);
        return ok ? 0 : 1;
    }

    std::cout << "Cascade: a JIT compiler for Verilog (type Verilog, "
                 ":help for meta-commands, ctrl-d to exit)\n";
    std::string line;
    bool announced_finish = false;
    while (true) {
        std::cout << repl.prompt() << std::flush;
        if (!std::getline(std::cin, line)) {
            break;
        }
        repl.feed(line + "\n");
        // Let the program run between inputs; side effects surface now.
        rt.run(512);
        if (rt.finished() && !announced_finish) {
            // Stay alive so :stats / :trace can inspect the finished run.
            std::cout << "($finish executed; :stats and :trace remain "
                         "available, ctrl-d to exit)\n";
            announced_finish = true;
        }
    }
    return 0;
}
