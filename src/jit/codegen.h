/// \file
/// Netlist → C++ lowering for the native JIT tier. generate_source emits a
/// self-contained translation unit (no cascade headers) that implements the
/// levelized netlist with the exact semantics of fpga::Bitstream — one
/// straight-line function per combinational level, word-level ops on the
/// ≤64-bit fast path, double-buffered sequential state in step() — behind a
/// flat extern "C" ABI (see kJitAbiVersion in jit_cache.h). The emitted
/// source deliberately mirrors Bitstream::eval_comb / Bitstream::step and
/// the BitVector op definitions bit for bit, so the differential suite can
/// require byte-identical outputs across all three tiers.

#ifndef CASCADE_JIT_CODEGEN_H
#define CASCADE_JIT_CODEGEN_H

#include <string>

#include "fpga/netlist.h"

namespace cascade::jit {

/// The generated translation unit, minus the digest symbol (the builder
/// digests this text and appends `cascade_jit_digest` afterwards, so the
/// kernel is content-addressed by its own source).
std::string generate_source(const fpga::Netlist& nl);

} // namespace cascade::jit

#endif // CASCADE_JIT_CODEGEN_H
