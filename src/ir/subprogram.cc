#include "ir/subprogram.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "ir/rewrite.h"

namespace cascade::ir {

using namespace verilog;

namespace {

/// Resolves instantiation parameter overrides to literal connections using
/// the parent's parameter environment.
bool
resolve_overrides(const Instantiation& inst,
                  const std::unordered_map<std::string, BitVector>& env,
                  Diagnostics* diags, std::vector<Connection>* out)
{
    for (const auto& c : inst.parameters) {
        if (c.expr == nullptr) {
            continue;
        }
        auto v = eval_const_expr(*c.expr, env, diags);
        if (!v.has_value()) {
            return false;
        }
        Connection lit;
        lit.name = c.name;
        lit.expr = std::make_unique<NumberExpr>(*std::move(v), true, false,
                                                c.expr->loc);
        out->push_back(std::move(lit));
    }
    return true;
}

/// Returns a name not yet declared in \p used, based on \p base.
std::string
fresh_name(const std::string& base,
           const std::unordered_set<std::string>& used)
{
    std::string name = base;
    while (used.count(name) != 0) {
        name = "_" + name;
    }
    return name;
}

/// Collects every name declared at module scope (ports, nets, params,
/// functions).
std::unordered_set<std::string>
declared_names(const ModuleDecl& decl)
{
    std::unordered_set<std::string> names;
    for (const auto& p : decl.ports) {
        names.insert(p.name);
    }
    for (const auto& hp : decl.header_params) {
        names.insert(static_cast<const ParamDecl&>(*hp).name);
    }
    for (const auto& item : decl.items) {
        switch (item->kind) {
          case ItemKind::NetDecl:
            for (const auto& d : static_cast<const NetDecl&>(*item).decls) {
                names.insert(d.name);
            }
            break;
          case ItemKind::ParamDecl:
            names.insert(static_cast<const ParamDecl&>(*item).name);
            break;
          case ItemKind::FunctionDecl:
            names.insert(static_cast<const FunctionDecl&>(*item).name);
            break;
          case ItemKind::Instantiation:
            names.insert(
                static_cast<const Instantiation&>(*item).instance_name);
            break;
          default:
            break;
        }
    }
    return names;
}

ExprPtr
make_id(const std::string& name)
{
    return std::make_unique<IdentifierExpr>(
        std::vector<std::string>{name});
}

ExprPtr
make_number(const BitVector& v)
{
    return std::make_unique<NumberExpr>(v, true, false);
}

/// The splitter's per-module transformation: removes instantiations,
/// promotes cross-module variables to ports (Fig. 4), and recurses into
/// children.
class SplitWorker {
  public:
    SplitWorker(const ModuleLibrary& lib,
                const std::set<std::string>& stdlib_types,
                Diagnostics* diags)
        : lib_(lib), stdlib_types_(stdlib_types), diags_(diags)
    {}

    bool
    run(const std::string& path, const ModuleDecl& decl,
        std::vector<Connection> params, std::vector<Subprogram>* out)
    {
        if (depth_ > 64) {
            diags_->error(decl.loc, "instantiation hierarchy too deep "
                                    "(recursive modules?)");
            return false;
        }

        Elaborator elab(diags_, &lib_);
        auto em = elab.elaborate(decl, params);
        if (em == nullptr) {
            return false;
        }

        auto source = decl.clone();

        // Gather instantiations (and remove them from the source below).
        std::vector<const Instantiation*> insts;
        for (const auto& item : source->items) {
            if (item->kind == ItemKind::Instantiation) {
                insts.push_back(
                    static_cast<const Instantiation*>(item.get()));
            }
        }

        // Elaborate each child so port widths are known, and recurse.
        struct ChildInfo {
            const Instantiation* inst; ///< valid until source->items swap
            std::string module_name;   ///< copy that outlives the swap
            std::unique_ptr<ElaboratedModule> em;
            std::vector<Connection> params;
            bool stdlib;
        };
        std::map<std::string, ChildInfo> children;
        for (const Instantiation* inst : insts) {
            ChildInfo info;
            info.inst = inst;
            info.module_name = inst->module_name;
            info.stdlib = stdlib_types_.count(inst->module_name) != 0;
            if (!resolve_overrides(*inst, em->params, diags_,
                                   &info.params)) {
                return false;
            }
            const ModuleDecl* child_decl = lib_.find(inst->module_name);
            CASCADE_CHECK(child_decl != nullptr); // elaboration checked
            Elaborator child_elab(diags_, &lib_);
            info.em = child_elab.elaborate(*child_decl, info.params);
            if (info.em == nullptr) {
                return false;
            }
            children.emplace(inst->instance_name, std::move(info));
        }

        // Which (instance, port) pairs does this module's code touch?
        // Pairs with explicit connections are always promoted.
        std::set<std::pair<std::string, std::string>> touched;
        // (instance, port) pairs written from procedural code: the promoted
        // output port must be a reg.
        std::set<std::pair<std::string, std::string>> proc_written;
        auto record = [&](const Expr& e) {
            if (e.kind != ExprKind::Identifier) {
                return;
            }
            const auto& id = static_cast<const IdentifierExpr&>(e);
            if (id.path.size() == 2 && children.count(id.path[0]) != 0) {
                touched.insert({id.path[0], id.path[1]});
            }
        };
        for (const auto& item : source->items) {
            // Connection expressions may reference sibling instances
            // (.clk(clk.val)), so instantiations are scanned too.
            for_each_expr(*item, record);
            // Procedural writes to hierarchical names.
            if (item->kind == ItemKind::Always ||
                item->kind == ItemKind::Initial) {
                const Stmt* body =
                    item->kind == ItemKind::Always
                        ? static_cast<const AlwaysBlock&>(*item).body.get()
                        : static_cast<const InitialBlock&>(*item)
                              .body.get();
                collect_proc_writes(*body, children, &proc_written);
            }
        }
        for (const auto& [name, info] : children) {
            size_t positional = 0;
            for (const auto& conn : info.inst->ports) {
                std::string port_name = conn.name;
                if (port_name.empty()) {
                    if (positional >= info.em->decl->ports.size()) {
                        break;
                    }
                    port_name = info.em->decl->ports[positional++].name;
                }
                if (conn.expr != nullptr) {
                    touched.insert({name, port_name});
                }
            }
        }

        // Build the promoted port set, remembering names.
        std::unordered_set<std::string> used = declared_names(*source);
        // (instance, port) -> promoted name.
        std::map<std::pair<std::string, std::string>, std::string>
            promoted;
        for (const auto& key : touched) {
            const auto& [inst_name, port_name] = key;
            const ChildInfo& info = children.at(inst_name);
            const NetInfo* child_port = info.em->find_net(port_name);
            if (child_port == nullptr || !child_port->is_port) {
                diags_->error(info.inst->loc,
                              "module '" + info.inst->module_name +
                                  "' has no port '" + port_name + "'");
                return false;
            }
            const std::string pname =
                fresh_name(inst_name + "_" + port_name, used);
            used.insert(pname);
            promoted[key] = pname;

            Port port;
            port.name = pname;
            // Child input -> we drive it -> our output, and vice versa.
            port.dir = child_port->dir == PortDir::Input ? PortDir::Output
                                                         : PortDir::Input;
            port.is_signed = child_port->is_signed;
            port.is_reg = port.dir == PortDir::Output &&
                          proc_written.count(key) != 0;
            if (child_port->width > 1) {
                port.range.msb = make_number(
                    BitVector(32, child_port->width - 1));
                port.range.lsb = make_number(BitVector(32, 0));
            }
            source->ports.push_back(std::move(port));
        }

        // Rewrite hierarchical references to the promoted names.
        rename_identifiers(source.get(),
                           [&promoted](std::vector<std::string>* p) {
                               if (p->size() == 2) {
                                   const auto it = promoted.find(
                                       {(*p)[0], (*p)[1]});
                                   if (it != promoted.end()) {
                                       *p = {it->second};
                                   }
                               }
                           });

        // Remove the instantiations and add glue assigns for connections.
        std::vector<ItemPtr> new_items;
        for (auto& item : source->items) {
            if (item->kind != ItemKind::Instantiation) {
                new_items.push_back(std::move(item));
            }
        }
        for (const auto& [name, info] : children) {
            size_t positional = 0;
            for (const auto& conn : info.inst->ports) {
                std::string port_name = conn.name;
                if (port_name.empty()) {
                    if (positional >= info.em->decl->ports.size()) {
                        break;
                    }
                    port_name = info.em->decl->ports[positional++].name;
                }
                if (conn.expr == nullptr) {
                    continue;
                }
                const std::string& pname =
                    promoted.at({name, port_name});
                const NetInfo* child_port = info.em->find_net(port_name);
                // Clone the (already rewritten? no - the connection lives in
                // the original inst, pre-rewrite) expression and rewrite its
                // hierarchical refs too.
                ExprPtr expr = conn.expr->clone();
                for_each_expr(expr.get(), [&promoted](Expr* e) {
                    if (e->kind == ExprKind::Identifier) {
                        auto* id = static_cast<IdentifierExpr*>(e);
                        if (id->path.size() == 2) {
                            const auto it = promoted.find(
                                {id->path[0], id->path[1]});
                            if (it != promoted.end()) {
                                id->path = {it->second};
                            }
                        }
                    }
                });
                if (child_port->dir == PortDir::Input) {
                    // assign <promoted output> = <connection expr>;
                    new_items.push_back(std::make_unique<ContinuousAssign>(
                        make_id(pname), std::move(expr), info.inst->loc));
                } else {
                    // assign <connection lvalue> = <promoted input>;
                    new_items.push_back(std::make_unique<ContinuousAssign>(
                        std::move(expr), make_id(pname), info.inst->loc));
                }
            }
        }
        source->items = std::move(new_items);

        // Bindings: own ports to "<path>.<port>"; promoted ports to the
        // child's net "<path>.<inst>.<port>".
        Subprogram sub;
        sub.path = path;
        sub.module_name = decl.name;
        sub.params = std::move(params);
        sub.is_stdlib = stdlib_types_.count(decl.name) != 0;
        for (const Port& p : source->ports) {
            PortBinding b;
            b.port = p.name;
            b.global_net = path + "." + p.name;
            sub.bindings.push_back(std::move(b));
        }
        for (const auto& [key, pname] : promoted) {
            for (auto& b : sub.bindings) {
                if (b.port == pname) {
                    b.global_net = path + "." + key.first + "." + key.second;
                }
            }
        }
        sub.source = std::move(source);
        out->push_back(std::move(sub));

        // Recurse into children. Their ports bind to
        // "<path>.<inst>.<port>", which is exactly what the child run
        // produces with path = "<path>.<inst>".
        for (auto& [name, info] : children) {
            const ModuleDecl* child_decl = lib_.find(info.module_name);
            ++depth_;
            const bool ok = run(path + "." + name, *child_decl,
                                std::move(info.params), out);
            --depth_;
            if (!ok) {
                return false;
            }
        }
        return true;
    }

  private:
    template <typename Children>
    void
    collect_proc_writes(
        const Stmt& stmt, const Children& children,
        std::set<std::pair<std::string, std::string>>* out) const
    {
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const auto& s :
                 static_cast<const BlockStmt&>(stmt).stmts) {
                collect_proc_writes(*s, children, out);
            }
            return;
          case StmtKind::BlockingAssign:
          case StmtKind::NonblockingAssign: {
            const Expr* lhs =
                stmt.kind == StmtKind::BlockingAssign
                    ? static_cast<const BlockingAssignStmt&>(stmt).lhs.get()
                    : static_cast<const NonblockingAssignStmt&>(stmt)
                          .lhs.get();
            // Walk to the base identifier through selects.
            while (lhs != nullptr) {
                if (lhs->kind == ExprKind::Identifier) {
                    const auto& id =
                        static_cast<const IdentifierExpr&>(*lhs);
                    if (id.path.size() == 2 &&
                        children.count(id.path[0]) != 0) {
                        out->insert({id.path[0], id.path[1]});
                    }
                    return;
                }
                if (lhs->kind == ExprKind::Index) {
                    lhs = static_cast<const IndexExpr&>(*lhs).base.get();
                } else if (lhs->kind == ExprKind::RangeSelect) {
                    lhs = static_cast<const RangeSelectExpr&>(*lhs)
                              .base.get();
                } else if (lhs->kind == ExprKind::IndexedSelect) {
                    lhs = static_cast<const IndexedSelectExpr&>(*lhs)
                              .base.get();
                } else {
                    return;
                }
            }
            return;
          }
          case StmtKind::If: {
            const auto& s = static_cast<const IfStmt&>(stmt);
            collect_proc_writes(*s.then_stmt, children, out);
            if (s.else_stmt != nullptr) {
                collect_proc_writes(*s.else_stmt, children, out);
            }
            return;
          }
          case StmtKind::Case:
            for (const auto& item :
                 static_cast<const CaseStmt&>(stmt).items) {
                collect_proc_writes(*item.stmt, children, out);
            }
            return;
          case StmtKind::For: {
            const auto& s = static_cast<const ForStmt&>(stmt);
            collect_proc_writes(*s.init, children, out);
            collect_proc_writes(*s.step, children, out);
            collect_proc_writes(*s.body, children, out);
            return;
          }
          case StmtKind::While:
            collect_proc_writes(
                *static_cast<const WhileStmt&>(stmt).body, children, out);
            return;
          case StmtKind::Repeat:
            collect_proc_writes(
                *static_cast<const RepeatStmt&>(stmt).body, children, out);
            return;
          default:
            return;
        }
    }

    const ModuleLibrary& lib_;
    const std::set<std::string>& stdlib_types_;
    Diagnostics* diags_;
    int depth_ = 0;
};

} // namespace

std::vector<Subprogram>
split_program(const ModuleDecl& root, const ModuleLibrary& library,
              const std::set<std::string>& stdlib_types, Diagnostics* diags)
{
    std::vector<Subprogram> out;
    SplitWorker worker(library, stdlib_types, diags);
    if (!worker.run("root", root, {}, &out)) {
        return {};
    }
    return out;
}

// ---------------------------------------------------------------------------
// Inliner
// ---------------------------------------------------------------------------

namespace {

class InlineWorker {
  public:
    InlineWorker(const ModuleLibrary& lib,
                 const std::set<std::string>& stdlib_types,
                 Diagnostics* diags)
        : lib_(lib), stdlib_types_(stdlib_types), diags_(diags)
    {}

    /// Returns a clone of \p decl with parameters frozen to literals and
    /// all non-stdlib children recursively merged in.
    std::unique_ptr<ModuleDecl>
    run(const ModuleDecl& decl, const std::vector<Connection>& params)
    {
        if (++depth_ > 64) {
            diags_->error(decl.loc, "instantiation hierarchy too deep");
            return nullptr;
        }
        Elaborator elab(diags_, &lib_);
        auto em = elab.elaborate(decl, params);
        if (em == nullptr) {
            return nullptr;
        }

        auto out = decl.clone();

        // Freeze parameters: drop declarations, prepend literal localparams.
        std::vector<ItemPtr> items;
        for (const auto& [name, value] : em->params) {
            auto lp = std::make_unique<ParamDecl>();
            lp->local = true;
            lp->name = name;
            lp->is_signed = em->param_signed.at(name);
            lp->value = make_number(value);
            items.push_back(std::move(lp));
        }
        out->header_params.clear();
        for (auto& item : out->items) {
            if (item->kind != ItemKind::ParamDecl) {
                items.push_back(std::move(item));
            }
        }
        out->items = std::move(items);

        // Repeatedly inline the first non-stdlib instantiation.
        while (true) {
            size_t index = out->items.size();
            for (size_t i = 0; i < out->items.size(); ++i) {
                if (out->items[i]->kind == ItemKind::Instantiation &&
                    stdlib_types_.count(
                        static_cast<const Instantiation&>(*out->items[i])
                            .module_name) == 0) {
                    index = i;
                    break;
                }
            }
            if (index == out->items.size()) {
                break;
            }
            auto inst_item = std::move(out->items[index]);
            out->items.erase(out->items.begin() +
                             static_cast<ptrdiff_t>(index));
            const auto& inst = static_cast<const Instantiation&>(*inst_item);
            if (!inline_one(inst, em->params, out.get())) {
                return nullptr;
            }
        }
        --depth_;
        return out;
    }

  private:
    bool
    inline_one(const Instantiation& inst,
               const std::unordered_map<std::string, BitVector>& env,
               ModuleDecl* out)
    {
        const ModuleDecl* child_decl = lib_.find(inst.module_name);
        if (child_decl == nullptr) {
            diags_->error(inst.loc, "instantiation of unknown module '" +
                                        inst.module_name + "'");
            return false;
        }
        std::vector<Connection> overrides;
        if (!resolve_overrides(inst, env, diags_, &overrides)) {
            return false;
        }
        auto child = run(*child_decl, overrides);
        if (child == nullptr) {
            return false;
        }

        // Pick a collision-free prefix for the child's names.
        std::unordered_set<std::string> parent_names = declared_names(*out);
        std::string prefix = inst.instance_name + "__";
        {
            bool collide = true;
            while (collide) {
                collide = false;
                for (const auto& n : declared_names(*child)) {
                    if (parent_names.count(prefix + n) != 0) {
                        collide = true;
                        prefix = "_" + prefix;
                        break;
                    }
                }
            }
        }

        // Rename the child's module-scope names.
        const std::unordered_set<std::string> child_names =
            declared_names(*child);
        rename_identifiers(child.get(),
                           [&](std::vector<std::string>* p) {
                               if (child_names.count((*p)[0]) != 0) {
                                   (*p)[0] = prefix + (*p)[0];
                               }
                           });
        for (auto& item : child->items) {
            switch (item->kind) {
              case ItemKind::NetDecl:
                for (auto& d : static_cast<NetDecl&>(*item).decls) {
                    d.name = prefix + d.name;
                }
                break;
              case ItemKind::ParamDecl: {
                auto& p = static_cast<ParamDecl&>(*item);
                p.name = prefix + p.name;
                break;
              }
              case ItemKind::FunctionDecl: {
                auto& f = static_cast<FunctionDecl&>(*item);
                f.name = prefix + f.name;
                break;
              }
              case ItemKind::Instantiation: {
                auto& i = static_cast<Instantiation&>(*item);
                i.instance_name = prefix + i.instance_name;
                break;
              }
              default:
                break;
            }
        }

        // Child ports become plain nets in the parent.
        for (const Port& p : child->ports) {
            auto nd = std::make_unique<NetDecl>();
            nd->is_reg = p.is_reg;
            nd->is_signed = p.is_signed;
            nd->range = p.range.clone();
            NetDeclarator d;
            d.name = prefix + p.name;
            nd->decls.push_back(std::move(d));
            out->items.push_back(std::move(nd));
        }

        // Glue assigns for the connections.
        size_t positional = 0;
        for (const auto& conn : inst.ports) {
            std::string port_name = conn.name;
            const Port* port = nullptr;
            if (port_name.empty()) {
                if (positional >= child->ports.size()) {
                    diags_->error(inst.loc, "too many port connections");
                    return false;
                }
                port = &child->ports[positional++];
                port_name = port->name;
            } else {
                for (const Port& p : child->ports) {
                    if (p.name == port_name) {
                        port = &p;
                        break;
                    }
                }
                if (port == nullptr) {
                    diags_->error(inst.loc, "module '" + inst.module_name +
                                                "' has no port '" +
                                                port_name + "'");
                    return false;
                }
            }
            if (conn.expr == nullptr) {
                continue;
            }
            ExprPtr expr = conn.expr->clone();
            if (port->dir == PortDir::Input) {
                out->items.push_back(std::make_unique<ContinuousAssign>(
                    make_id(prefix + port_name), std::move(expr),
                    inst.loc));
            } else {
                out->items.push_back(std::make_unique<ContinuousAssign>(
                    std::move(expr), make_id(prefix + port_name),
                    inst.loc));
            }
        }

        // Rewrite the parent's hierarchical references (r.y -> r__y).
        const std::string inst_name = inst.instance_name;
        rename_identifiers(out, [&](std::vector<std::string>* p) {
            if (p->size() == 2 && (*p)[0] == inst_name &&
                child_names.count((*p)[1]) != 0) {
                *p = {prefix + (*p)[1]};
            }
        });

        // Merge the child's items.
        for (auto& item : child->items) {
            out->items.push_back(std::move(item));
        }
        return true;
    }

    const ModuleLibrary& lib_;
    const std::set<std::string>& stdlib_types_;
    Diagnostics* diags_;
    int depth_ = 0;
};

} // namespace

std::unique_ptr<ModuleDecl>
inline_hierarchy(const ModuleDecl& top, const ModuleLibrary& library,
                 const std::set<std::string>& stdlib_types,
                 Diagnostics* diags)
{
    InlineWorker worker(library, stdlib_types, diags);
    return worker.run(top, {});
}

} // namespace cascade::ir
