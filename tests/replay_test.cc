/// \file
/// Deterministic record/replay tests: a session recorded across a mid-run
/// software-to-hardware adoption must replay with byte-identical output
/// and identical counters; a tampered journal must report the exact first
/// diverging event; the placement seed must be pinnable and surfaced.

#include "runtime/replay.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/repl.h"

namespace cascade::runtime {
namespace {

std::string
temp_path(const char* name)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("cascade_replay_test_") + name +
             std::to_string(::getpid())))
        .string();
}

Runtime::Options
hw_fast()
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;          // keep tests fast
    opts.open_loop_target_wall_s = 0.02; // small adaptive batches too
    return opts;
}

/// A counter with both $display and $monitor output; enough state that a
/// botched sw -> hw handoff would change the printed sequence.
const char* kProgram = "reg [15:0] n = 0;\n"
                       "wire [15:0] h;\n"
                       "assign h = (n * 16'h9E37) ^ (n >> 3);\n"
                       "always @(posedge clk.val) begin\n"
                       "  n <= n + 1;\n"
                       "  if (n % 64 == 0) $display(\"n=%d h=%d\", n, h);\n"
                       "end\n"
                       "initial $monitor(\"mon h=%d\", h[7:0]);\n";

/// Steps until adoption (bounded by wall time), then keeps running.
bool
step_until_hardware(Runtime* rt, double timeout_s = 60.0)
{
    const auto start = std::chrono::steady_clock::now();
    while (!rt->hardware_ready()) {
        rt->step();
        if (std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count() > timeout_s) {
            return false;
        }
    }
    return true;
}

TEST(Replay, RoundTripAcrossAdoptionIsByteIdentical)
{
    const std::string path = temp_path("roundtrip.jsonl");

    std::string recorded_output;
    uint64_t recorded_monitor_lines = 0;
    uint64_t recorded_interrupts = 0;
    {
        Runtime rt(hw_fast());
        rt.on_output = [&recorded_output](const std::string& text) {
            recorded_output += text;
        };
        std::string err;
        ASSERT_TRUE(rt.start_recording(path, &err)) << err;
        ASSERT_TRUE(rt.eval(kProgram));
        // Run in software, adopt hardware mid-run, keep running after.
        ASSERT_TRUE(step_until_hardware(&rt));
        EXPECT_TRUE(rt.hardware_ready());
        rt.run_for_ticks(1500);
        rt.stop_recording();
        recorded_monitor_lines =
            rt.telemetry().counter("monitor.lines")->value();
        recorded_interrupts =
            rt.telemetry().counter("interrupt.enqueued")->value();
        EXPECT_GT(recorded_monitor_lines, 0u);
    }
    ASSERT_FALSE(recorded_output.empty());

    ReplayLog log;
    std::string err;
    ASSERT_TRUE(load_journal(path, &log, &err)) << err;
    // The recording captured the adoption and at least one compile.
    bool saw_adopt = false;
    for (const auto& ev : log.events) {
        if (ev.type == "adopt") {
            saw_adopt = true;
        }
    }
    ASSERT_TRUE(saw_adopt);

    const Runtime::Options opts = options_from_header(log.header);
    EXPECT_EQ(opts.compile_effort, 0.05);

    Runtime rt2(opts);
    std::string replayed_output;
    rt2.on_output = [&replayed_output](const std::string& text) {
        replayed_output += text;
    };
    const ReplayReport report = replay_into(&rt2, log);
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_FALSE(report.diverged) << report.summary();
    EXPECT_GT(report.outputs_compared, 0u);

    // Byte-identical view output and identical observable counters, even
    // though the original adoption was timed by a background compile.
    EXPECT_EQ(replayed_output, recorded_output);
    EXPECT_EQ(rt2.telemetry().counter("monitor.lines")->value(),
              recorded_monitor_lines);
    EXPECT_EQ(rt2.telemetry().counter("interrupt.enqueued")->value(),
              recorded_interrupts);
    EXPECT_TRUE(rt2.hardware_ready());

    std::filesystem::remove(path);
}

TEST(Replay, TamperedJournalReportsFirstDivergingEvent)
{
    const std::string path = temp_path("tamper.jsonl");
    {
        Runtime::Options opts;
        opts.enable_hardware = false;
        Runtime rt(opts);
        std::string err;
        ASSERT_TRUE(rt.start_recording(path, &err)) << err;
        ASSERT_TRUE(rt.eval("reg [7:0] n = 0;\n"
                            "always @(posedge clk.val) begin\n"
                            "  n <= n + 1;\n"
                            "  $display(\"n=%d\", n);\n"
                            "  if (n == 20) $finish;\n"
                            "end\n"));
        rt.run(4000);
        rt.stop_recording();
    }

    // Tamper with one recorded $display payload ("n=  7" -> "n=  9").
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    in.close();
    std::string text = ss.str();
    const std::string needle = "n=  7";
    const size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, needle.size(), "n=  9");

    // Recover the tampered line's recorded seq for the assertion below.
    const size_t line_start = text.rfind('\n', at) + 1;
    const size_t line_end = text.find('\n', at);
    telemetry::JsonValue tampered_line;
    ASSERT_TRUE(telemetry::parse_json(
        text.substr(line_start, line_end - line_start), &tampered_line));
    const uint64_t tampered_seq = tampered_line.get_u64("seq");
    ASSERT_GT(tampered_seq, 0u);

    std::ofstream out(path, std::ios::trunc);
    out << text;
    out.close();

    const ReplayReport report = replay_journal(path);
    EXPECT_FALSE(report.ok);
    ASSERT_TRUE(report.diverged) << report.summary();
    EXPECT_EQ(report.divergence_seq, tampered_seq) << report.summary();
    EXPECT_EQ(report.divergence_type, "interrupt.enqueue");
    EXPECT_NE(report.expected.find("n=  9"), std::string::npos)
        << report.summary();
    EXPECT_NE(report.actual.find("n=  7"), std::string::npos)
        << report.summary();

    std::filesystem::remove(path);
}

TEST(Replay, RecordingRequiresFreshSession)
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval("reg r = 0;"));
    std::string err;
    EXPECT_FALSE(rt.start_recording(temp_path("late.jsonl"), &err));
    EXPECT_NE(err.find("fresh session"), std::string::npos) << err;
}

TEST(Replay, CompileSeedIsPinnedAndSurfaced)
{
    Runtime::Options opts = hw_fast();
    opts.compile_seed = 12345;
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval(kProgram));
    ASSERT_TRUE(step_until_hardware(&rt));
    ASSERT_TRUE(rt.last_compile_report().has_value());
    EXPECT_EQ(rt.last_compile_report()->seed, 12345u);
    EXPECT_NE(rt.stats_json().find("\"seed\":12345"), std::string::npos);
}

TEST(Replay, DefaultSeedIsProgramVersion)
{
    Runtime rt(hw_fast());
    ASSERT_TRUE(rt.eval(kProgram));
    ASSERT_TRUE(step_until_hardware(&rt));
    ASSERT_TRUE(rt.last_compile_report().has_value());
    // The bootstrap Clock eval is version 1; the user program is 2.
    EXPECT_EQ(rt.last_compile_report()->seed, 2u);
}

TEST(Replay, ReplRecordAndReplayMetaCommands)
{
    const std::string path = temp_path("repl.jsonl");
    {
        Runtime::Options opts;
        opts.enable_hardware = false;
        Runtime rt(opts);
        std::ostringstream out;
        Repl repl(&rt, &out);
        repl.feed(":record " + path + "\n");
        EXPECT_NE(out.str().find("recording"), std::string::npos);
        repl.feed("reg [7:0] n = 0;\n");
        repl.feed("always @(posedge clk.val) begin n <= n + 1; "
                  "$display(\"n=%d\", n); if (n == 3) $finish; end\n");
        rt.run(500);
        repl.feed(":record stop\n");
        EXPECT_NE(out.str().find("recording stopped"), std::string::npos);
    }
    {
        Runtime::Options opts;
        opts.enable_hardware = false;
        Runtime rt(opts);
        std::ostringstream out;
        Repl repl(&rt, &out);
        repl.feed(":replay " + path + "\n");
        EXPECT_NE(out.str().find("replay ok"), std::string::npos)
            << out.str();
    }
    std::filesystem::remove(path);
}

TEST(Replay, RequestTracingIsDeterministicAcrossReplay)
{
    // Request ids are journal sequence numbers, and the request.done
    // journal event carries no wall-clock fields, so a recording made
    // with tracing active must replay byte-identically and reproduce
    // the exact same request ids/kinds/outcomes.
    const std::string path = temp_path("requests.jsonl");

    std::string recorded_output;
    {
        Runtime rt(hw_fast());
        rt.on_output = [&recorded_output](const std::string& text) {
            recorded_output += text;
        };
        std::string err;
        ASSERT_TRUE(rt.start_recording(path, &err)) << err;
        ASSERT_TRUE(rt.eval(kProgram));
        ASSERT_TRUE(step_until_hardware(&rt));
        rt.run_for_ticks(1500);
        rt.stop_recording();
    }

    ReplayLog log;
    std::string err;
    ASSERT_TRUE(load_journal(path, &log, &err)) << err;

    // Every request.done id resolves to an earlier journal event of the
    // matching kind -- request ids ARE the originating event's seq.
    std::vector<std::tuple<uint64_t, std::string, bool>> recorded_done;
    bool saw_compile_done = false;
    for (const auto& ev : log.events) {
        if (ev.type != "request.done") {
            continue;
        }
        const uint64_t id = ev.data.get_u64("id");
        const std::string kind = ev.data.get_str("kind");
        recorded_done.emplace_back(id, kind,
                                   ev.data.get_bool("ok"));
        if (id < log.events.front().seq) {
            // Originated before recording began (the bootstrap compile
            // is launched at construction); no line to cross-check.
            continue;
        }
        bool origin_found = false;
        for (const auto& origin : log.events) {
            if (origin.seq != id) {
                continue;
            }
            origin_found = true;
            if (kind == "eval") {
                EXPECT_EQ(origin.type, "eval");
            } else if (kind == "compile") {
                EXPECT_EQ(origin.type, "compile.launch");
            } else if (kind == "interrupt") {
                EXPECT_EQ(origin.type, "interrupt.flush");
            } else if (kind == "evict") {
                EXPECT_EQ(origin.type, "hypervisor.evict");
            }
        }
        EXPECT_TRUE(origin_found) << "request " << id
                                  << " has no originating event";
        if (kind == "compile" && ev.data.get_bool("ok")) {
            saw_compile_done = true;
        }
    }
    ASSERT_FALSE(recorded_done.empty());
    ASSERT_TRUE(saw_compile_done)
        << "no successful compile request in the recording";

    // Replay the recording twice, re-recording each run. The two
    // replayed journals must be BYTE-identical -- request.done events
    // carry no wall-clock fields, so tracing does not break the CI
    // determinism diff.
    const auto replay_once = [&](const std::string& rerecord_path,
                                 std::string* output)
        -> std::vector<std::tuple<uint64_t, std::string, bool>> {
        Runtime rt2(options_from_header(log.header));
        rt2.on_output = [output](const std::string& text) {
            *output += text;
        };
        ReplayOptions ropts;
        ropts.record_path = rerecord_path;
        const ReplayReport report = replay_into(&rt2, log, ropts);
        EXPECT_TRUE(report.ok) << report.summary();
        std::vector<std::tuple<uint64_t, std::string, bool>> done;
        for (const auto& r : rt2.request_tracker().recent()) {
            done.emplace_back(r.id, r.kind, r.ok);
        }
        // Every request id the replayed tracker holds is the seq of an
        // originating event in the replayed session's own journal.
        for (const auto& ev : rt2.journal().ring()) {
            for (auto& d : done) {
                if (ev.seq != std::get<0>(d)) {
                    continue;
                }
                const std::string& kind = std::get<1>(d);
                if (kind == "compile") {
                    EXPECT_EQ(ev.type, "compile.launch");
                } else if (kind == "eval") {
                    EXPECT_EQ(ev.type, "eval");
                } else if (kind == "interrupt") {
                    EXPECT_EQ(ev.type, "interrupt.flush");
                }
            }
        }
        return done;
    };

    const std::string replay1 = temp_path("requests_replay1.jsonl");
    const std::string replay2 = temp_path("requests_replay2.jsonl");
    std::string output1;
    std::string output2;
    const auto done1 = replay_once(replay1, &output1);
    const auto done2 = replay_once(replay2, &output2);

    // Byte-identical user-visible output, and the recording's output
    // reproduced exactly even with tracing active.
    EXPECT_EQ(output1, recorded_output);
    EXPECT_EQ(output2, output1);

    // Identical request histories: same ids, kinds, and outcomes.
    EXPECT_EQ(done1, done2);
    bool replay_saw_compile = false;
    for (const auto& d : done1) {
        if (std::get<1>(d) == "compile" && std::get<2>(d)) {
            replay_saw_compile = true;
        }
    }
    EXPECT_TRUE(replay_saw_compile);

    // And the journals themselves are byte-identical, request.done
    // lines included (the CI determinism check's exact comparison).
    std::ifstream f1(replay1);
    std::ifstream f2(replay2);
    std::stringstream s1;
    std::stringstream s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    ASSERT_FALSE(s1.str().empty());
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_NE(s1.str().find("request.done"), std::string::npos);

    std::filesystem::remove(path);
    std::filesystem::remove(replay1);
    std::filesystem::remove(replay2);
}

} // namespace
} // namespace cascade::runtime
