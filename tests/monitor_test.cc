/// \file
/// Integration tests for the live monitoring endpoint: server lifecycle
/// (ephemeral ports, 404s, double-start rejection), /metrics scrapes that
/// must validate against the strict Prometheus checker and carry
/// per-tenant and per-site labels in shared mode, /events streaming whose
/// lines must be byte-identical to the on-disk journal mirror, /timeseries
/// sampling from the scheduler, and an induced SLO breach (a cold compile
/// against a sub-nanosecond threshold) that must flip /slo and /healthz
/// and journal a `slo.breach` event.

#include "runtime/runtime.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hypervisor/fabric_manager.h"
#include "service/compile_service.h"
#include "telemetry/export.h"
#include "telemetry/journal.h"
#include "telemetry/monitor_server.h"
#include "telemetry/sync.h"

namespace cascade {
namespace {

using hypervisor::FabricManager;
using runtime::Runtime;
using service::CompileService;

std::string
temp_path(const std::string& name)
{
    return (std::filesystem::temp_directory_path() /
            ("cascade_monitor_test_" + std::to_string(::getpid()) + "_" +
             name))
        .string();
}

const char* const kCounter = "reg [7:0] n = 0;\n"
                             "always @(posedge clk.val) begin\n"
                             "  n <= n + 1;\n"
                             "end\n";

TEST(Monitor, LifecycleEphemeralPortAnd404)
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    EXPECT_FALSE(rt.monitoring());
    EXPECT_EQ(rt.monitor_port(), 0);

    std::string err;
    ASSERT_TRUE(rt.start_monitor(0, &err)) << err;
    EXPECT_TRUE(rt.monitoring());
    const uint16_t port = rt.monitor_port();
    EXPECT_NE(port, 0);

    // A second start on the live runtime is rejected, not stacked.
    EXPECT_FALSE(rt.start_monitor(0, &err));
    EXPECT_NE(err.find("already"), std::string::npos) << err;

    int status = 0;
    std::string body;
    ASSERT_TRUE(telemetry::http_get(port, "/healthz", &status, &body,
                                    &err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;

    ASSERT_TRUE(
        telemetry::http_get(port, "/nonsense", &status, &body, &err))
        << err;
    EXPECT_EQ(status, 404);

    rt.stop_monitor();
    EXPECT_FALSE(rt.monitoring());
    rt.stop_monitor(); // idempotent
}

TEST(Monitor, MetricsScrapeIsValidPrometheusText)
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval(kCounter));
    rt.run(128);

    std::string err;
    ASSERT_TRUE(rt.start_monitor(0, &err)) << err;
    int status = 0;
    std::string body;
    ASSERT_TRUE(telemetry::http_get(rt.monitor_port(), "/metrics",
                                    &status, &body, &err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_TRUE(telemetry::validate_prometheus_text(body, &err))
        << err << "\n" << body.substr(0, 2000);

    // Both registries show up, scope-labeled, plus the service gauges.
    EXPECT_NE(body.find("cascade_up 1"), std::string::npos);
    EXPECT_NE(body.find("scope=\"runtime\""), std::string::npos);
    EXPECT_NE(body.find("scope=\"process\""), std::string::npos);
    EXPECT_NE(body.find("cascade_compile_service_queue_depth"),
              std::string::npos);
    EXPECT_NE(body.find("cascade_slo_breached 0"), std::string::npos);
}

TEST(Monitor, SharedModeMetricsCarryTenantAndSiteLabels)
{
    CompileService::Config cfg;
    cfg.workers = 2;
    CompileService svc(cfg);
    FabricManager fm;

    Runtime::Options oa;
    oa.enable_hardware = true;
    oa.compile_effort = 0.05;
    oa.compile_seed = 7;
    oa.tenant_name = "mon-a";
    Runtime a(oa, svc, fm);
    Runtime::Options ob = oa;
    ob.tenant_name = "mon-b";
    Runtime b(ob, svc, fm);

    ASSERT_TRUE(a.eval(kCounter));
    ASSERT_TRUE(b.eval(kCounter));
    ASSERT_TRUE(a.wait_for_hardware(120.0));
    ASSERT_TRUE(b.wait_for_hardware(120.0));
    a.run(64);
    b.run(64);

    std::string err;
    ASSERT_TRUE(a.start_monitor(0, &err)) << err;
    int status = 0;
    std::string body;
    ASSERT_TRUE(telemetry::http_get(a.monitor_port(), "/metrics",
                                    &status, &body, &err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_TRUE(telemetry::validate_prometheus_text(body, &err)) << err;

    // The fleet view lists every tenant on the shared fabric, not just
    // the serving runtime.
    EXPECT_NE(body.find("cascade_tenant_resident{tenant=\"mon-a\"}"),
              std::string::npos)
        << body.substr(0, 2000);
    EXPECT_NE(body.find("cascade_tenant_resident{tenant=\"mon-b\"}"),
              std::string::npos);
    EXPECT_NE(body.find("cascade_tenant_ticks_per_s{tenant=\"mon-a\"}"),
              std::string::npos);
    // The serving runtime's own registry is tenant-tagged too.
    EXPECT_NE(body.find("tenant=\"mon-a\""), std::string::npos);

    // Shared-mode compiles acquire instrumented locks, so per-site
    // contention series must be present and site-labeled.
    ASSERT_FALSE(telemetry::SyncRegistry::global().snapshot().empty());
    EXPECT_NE(body.find("cascade_lock_acquisitions_total{site=\""),
              std::string::npos);
}

TEST(Monitor, EventsStreamMatchesOnDiskJournalBytes)
{
    const std::string path = temp_path("events.jsonl");
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    std::string err;
    ASSERT_TRUE(rt.start_recording(path, &err)) << err;
    ASSERT_TRUE(rt.eval(kCounter));
    rt.run(100);
    rt.stop_recording();

    const auto ring = rt.journal().ring();
    ASSERT_FALSE(ring.empty());
    ASSERT_LT(ring.size(), 256u); // nothing fell out of the ring

    ASSERT_TRUE(rt.start_monitor(0, &err)) << err;
    std::vector<std::string> streamed;
    ASSERT_TRUE(telemetry::http_stream_lines(rt.monitor_port(),
                                             "/events", ring.size(),
                                             10000, &streamed, &err))
        << err;
    ASSERT_EQ(streamed.size(), ring.size());

    // The on-disk mirror: one header line, then one line per event,
    // produced by the same Journal::event_json the stream uses. The ring
    // also holds construction-time events from before start_recording,
    // so compare the overlapping tail — every mirrored event must be
    // byte-identical to its streamed line.
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    ASSERT_TRUE(std::getline(in, line)); // schema header
    std::vector<std::string> file_events;
    while (std::getline(in, line)) {
        file_events.push_back(line);
    }
    ASSERT_FALSE(file_events.empty());
    ASSERT_LE(file_events.size(), streamed.size());
    const size_t skip = streamed.size() - file_events.size();
    for (size_t i = 0; i < file_events.size(); ++i) {
        EXPECT_EQ(streamed[skip + i], file_events[i]) << "line " << i;
    }
    std::filesystem::remove(path);
}

TEST(Monitor, TimeseriesSampledFromScheduler)
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    opts.timeseries_interval_s = 0.0005; // sample essentially every window
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval(kCounter));
    for (int i = 0; i < 50 && rt.timeseries().names().empty(); ++i) {
        rt.run(64);
    }
    const auto names = rt.timeseries().names();
    const std::set<std::string> set(names.begin(), names.end());
    EXPECT_TRUE(set.count("runtime.ticks_per_s")) << names.size();
    EXPECT_TRUE(set.count("service.queue_depth"));

    std::string err;
    ASSERT_TRUE(rt.start_monitor(0, &err)) << err;
    int status = 0;
    std::string body;
    ASSERT_TRUE(telemetry::http_get(rt.monitor_port(), "/timeseries",
                                    &status, &body, &err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"schema\":\"cascade.timeseries.v1\""),
              std::string::npos);
    EXPECT_NE(body.find("runtime.ticks_per_s"), std::string::npos);
}

TEST(Monitor, InducedSlowCompileBreachesSloAndJournals)
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.compile_seed = 7;
    // Any real compile is slower than a nanosecond: guaranteed breach.
    opts.slo_max_cold_compile_p99_s = 1e-9;
    opts.timeseries_interval_s = 0.0005;
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval(kCounter));
    ASSERT_TRUE(rt.wait_for_hardware(120.0));

    // The breach is journaled by the scheduler's SLO tick; run until the
    // event shows up in the ring.
    bool journaled = false;
    for (int i = 0; i < 200 && !journaled; ++i) {
        rt.run(64);
        for (const auto& ev : rt.journal().ring()) {
            if (ev.type == "slo.breach") {
                journaled = true;
                EXPECT_NE(ev.data.find("cold_compile_p99_s"),
                          std::string::npos)
                    << ev.data;
            }
        }
    }
    EXPECT_TRUE(journaled);
    EXPECT_TRUE(rt.slo_breached());

    std::string err;
    ASSERT_TRUE(rt.start_monitor(0, &err)) << err;
    int status = 0;
    std::string body;
    ASSERT_TRUE(telemetry::http_get(rt.monitor_port(), "/slo", &status,
                                    &body, &err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"breached\":true"), std::string::npos) << body;
    EXPECT_NE(body.find("cold_compile_p99_s"), std::string::npos);

    ASSERT_TRUE(telemetry::http_get(rt.monitor_port(), "/healthz",
                                    &status, &body, &err))
        << err;
    EXPECT_NE(body.find("\"status\":\"breached\""), std::string::npos);

    // And /metrics agrees.
    ASSERT_TRUE(telemetry::http_get(rt.monitor_port(), "/metrics",
                                    &status, &body, &err))
        << err;
    EXPECT_NE(body.find("cascade_slo_breached 1"), std::string::npos);
    EXPECT_TRUE(telemetry::validate_prometheus_text(body, &err)) << err;
}

TEST(Monitor, OffThenOnSamePortRebindsImmediately)
{
    // :monitor off followed by :monitor <same port> must rebind right
    // away -- the listener sets SO_REUSEADDR, so a lingering TIME_WAIT
    // socket from the previous incarnation cannot block the port.
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval(kCounter));
    rt.run(32);

    std::string err;
    ASSERT_TRUE(rt.start_monitor(0, &err)) << err;
    const uint16_t port = rt.monitor_port();
    ASSERT_NE(port, 0);

    // Serve at least one request so the socket has seen traffic.
    int status = 0;
    std::string body;
    ASSERT_TRUE(telemetry::http_get(port, "/healthz", &status, &body,
                                    &err))
        << err;
    EXPECT_EQ(status, 200);

    rt.stop_monitor();
    ASSERT_FALSE(rt.monitoring());

    // Rebind the exact same port, immediately.
    ASSERT_TRUE(rt.start_monitor(port, &err)) << err;
    EXPECT_EQ(rt.monitor_port(), port);
    ASSERT_TRUE(telemetry::http_get(port, "/healthz", &status, &body,
                                    &err))
        << err;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
    rt.stop_monitor();
}

TEST(Monitor, RequestsEndpointServesNdjsonSpans)
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    Runtime rt(opts);
    ASSERT_TRUE(rt.eval(kCounter));
    rt.run(32);

    std::string err;
    ASSERT_TRUE(rt.start_monitor(0, &err)) << err;
    int status = 0;
    std::string body;
    ASSERT_TRUE(telemetry::http_get(rt.monitor_port(), "/requests",
                                    &status, &body, &err))
        << err;
    EXPECT_EQ(status, 200);

    // One JSON object per line; the eval request is in there with its
    // identity and segment partition.
    ASSERT_FALSE(body.empty());
    std::istringstream lines(body);
    std::string line;
    size_t parsed = 0;
    bool saw_eval = false;
    while (std::getline(lines, line)) {
        ASSERT_EQ(line.front(), '{') << line;
        ASSERT_EQ(line.back(), '}') << line;
        EXPECT_NE(line.find("\"id\":"), std::string::npos) << line;
        EXPECT_NE(line.find("\"segments\":["), std::string::npos);
        if (line.find("\"kind\":\"eval\"") != std::string::npos) {
            saw_eval = true;
        }
        ++parsed;
    }
    EXPECT_GE(parsed, 1u);
    EXPECT_TRUE(saw_eval) << body;
    rt.stop_monitor();
}

} // namespace
} // namespace cascade
