/// \file
/// The "bitstream": a levelized, cycle-based evaluator for a synthesized
/// netlist. This plays the role of the programmed FPGA fabric in our
/// substrate — orders of magnitude faster than AST interpretation, with
/// per-cycle semantics identical to real registered hardware (including
/// derived/gated clock domains, which cascade within a device cycle).

#ifndef CASCADE_FPGA_BITSTREAM_H
#define CASCADE_FPGA_BITSTREAM_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "fpga/netlist.h"

namespace cascade::fpga {

class Bitstream {
  public:
    explicit Bitstream(std::shared_ptr<const Netlist> netlist);

    const Netlist& netlist() const { return *nl_; }

    /// @{ Port access by name (cached index lookups available below).
    void set_input(const std::string& name, const BitVector& value);
    const BitVector& output(const std::string& name) const;
    int input_index(const std::string& name) const;
    int output_index(const std::string& name) const;
    void set_input(int index, const BitVector& value);
    const BitVector& output(int index) const;
    /// @}

    /// Settles all combinational logic for the current inputs/state.
    void eval_comb();

    /// One device clock cycle: settle, latch every register whose clock
    /// rose (cascading derived clock domains), settle again.
    void step();

    /// @{ Direct state access (used by native mode and tests; the hardware
    /// engine goes through MMIO instead).
    const BitVector& reg_value(const std::string& name) const;
    void set_reg(const std::string& name, const BitVector& value);
    const BitVector& mem_value(const std::string& name, uint64_t idx) const;
    void set_mem(const std::string& name, uint64_t idx,
                 const BitVector& value);
    /// @}

    uint64_t cycles() const { return cycles_; }

  private:
    void eval_range(size_t first);

    std::shared_ptr<const Netlist> nl_;
    std::vector<BitVector> values_;       ///< per node
    std::vector<BitVector> reg_state_;    ///< per register
    std::vector<std::vector<BitVector>> mem_state_;
    std::vector<bool> prev_reg_clock_;
    std::vector<bool> prev_port_clock_;
    std::unordered_map<std::string, int> input_index_;
    std::unordered_map<std::string, int> output_index_;
    std::unordered_map<std::string, uint32_t> reg_index_;
    std::unordered_map<std::string, uint32_t> mem_index_;
    uint64_t cycles_ = 0;
};

} // namespace cascade::fpga

#endif // CASCADE_FPGA_BITSTREAM_H
