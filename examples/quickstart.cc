/// \file
/// Quickstart: the paper's running example (Fig. 1/Fig. 3) on the Cascade
/// JIT. A rotating LED animation with buttons, entered through the REPL,
/// runs immediately in software while the hardware compile proceeds in the
/// background — and simply gets faster when it lands.

#include <chrono>
#include <cstdio>
#include <string>

#include "runtime/repl.h"
#include "runtime/runtime.h"

using cascade::runtime::Location;
using cascade::runtime::Repl;
using cascade::runtime::Runtime;

namespace {

const char*
tier_label(Location loc)
{
    switch (loc) {
      case Location::Software: return "software (interpreted)";
      case Location::Hardware: return "hardware";
      case Location::HardwareForwarded:
        return "hardware (stdlib forwarded, open loop)";
      case Location::Native: return "native";
      case Location::Jit: return "jit (compiled kernel)";
    }
    return "?";
}

void
show_leds(Runtime& rt)
{
    const uint64_t led = rt.led_state().to_uint64();
    std::string bar;
    for (int i = 7; i >= 0; --i) {
        bar += (led >> i) & 1 ? "*" : ".";
    }
    std::printf("  LED [%s]  ticks=%llu  engine: %s\n", bar.c_str(),
                static_cast<unsigned long long>(rt.virtual_ticks()),
                tier_label(rt.user_location()));
}

} // namespace

int
main()
{
    Runtime::Options options;
    options.compile_effort = 0.2;
    Runtime rt(options);
    rt.on_output = [](const std::string& text) {
        std::printf("%s", text.c_str());
    };

    std::printf("CASCADE >>> (eval'ing the running example)\n");
    std::string errors;
    const bool ok = rt.eval(R"(
        Pad#(4) pad();
        Led#(8) led();
        reg [7:0] cnt = 1;
        always @(posedge clk.val)
          if (pad.val == 0)
            cnt <= (cnt == 8'h80) ? 8'd1 : (cnt << 1);
        assign led.val = cnt;
    )", &errors);
    if (!ok) {
        std::fprintf(stderr, "%s", errors.c_str());
        return 1;
    }

    std::printf("code is running immediately:\n");
    for (int i = 0; i < 4; ++i) {
        rt.run_for_ticks(1);
        show_leds(rt);
    }

    std::printf("\npressing a button pauses the animation:\n");
    rt.set_pad(1);
    rt.run_for_ticks(3);
    show_leds(rt);
    rt.set_pad(0);

    std::printf("\nwaiting for the background compile "
                "(the program keeps running)...\n");
    const auto start = std::chrono::steady_clock::now();
    while (!rt.hardware_ready() &&
           std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
                   .count() < 60.0) {
        rt.run_for_ticks(1);
    }
    show_leds(rt);
    if (rt.last_compile_report().has_value()) {
        const auto& report = *rt.last_compile_report();
        std::printf("  compiled: %zu netlist nodes, %llu LEs, "
                    "Fmax %.1f MHz, %.2f s\n",
                    report.netlist_nodes,
                    static_cast<unsigned long long>(report.area.les),
                    report.timing.fmax_mhz, report.total_seconds);
    }

    std::printf("\nfrom the user's perspective it just got faster:\n");
    for (int i = 0; i < 3; ++i) {
        rt.run(16);
        show_leds(rt);
    }

    std::printf("\nmodifying the running program (cnt keeps its value):\n");
    if (!rt.eval("always @(posedge clk.val) if (pad.val == 2) "
                 "$display(\"snapshot: cnt = %d\", cnt);", &errors)) {
        std::fprintf(stderr, "%s", errors.c_str());
        return 1;
    }
    show_leds(rt);
    rt.set_pad(2);
    rt.run_for_ticks(2);
    rt.set_pad(0);
    rt.run_for_ticks(1);
    return 0;
}
