/// \file
/// Diagnostic collection. User-facing errors (parse errors, type errors,
/// elaboration failures) are accumulated here rather than thrown; the REPL
/// reports them and discards the offending input, per Cascade's model of
/// rejecting ill-formed eval's without disturbing the running program.

#ifndef CASCADE_COMMON_DIAGNOSTICS_H
#define CASCADE_COMMON_DIAGNOSTICS_H

#include <string>
#include <vector>

#include "common/source_loc.h"

namespace cascade {

/// Severity of a diagnostic message.
enum class Severity {
    Warning,
    Error,
};

/// A single diagnostic message with optional source location.
struct Diagnostic {
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    /// Renders "error: 3:14: message" style text.
    std::string str() const;
};

/// An ordered collection of diagnostics produced by one front-end pass.
class Diagnostics {
  public:
    void error(SourceLoc loc, std::string msg);
    void warning(SourceLoc loc, std::string msg);

    bool has_errors() const { return num_errors_ > 0; }
    size_t error_count() const { return num_errors_; }
    const std::vector<Diagnostic>& all() const { return diags_; }

    /// All diagnostics rendered one per line.
    std::string str() const;

    void clear();

  private:
    std::vector<Diagnostic> diags_;
    size_t num_errors_ = 0;
};

} // namespace cascade

#endif // CASCADE_COMMON_DIAGNOSTICS_H
