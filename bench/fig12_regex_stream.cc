/// \file
/// Figure 12: streaming regular-expression IO throughput over time.
///
/// Paper result: Cascade reaches 32 KIO/s in simulation immediately; in
/// the time Quartus needs to compile (9.5 min), Cascade transitions to
/// open-loop hardware and sustains 492 KIO/s vs. Quartus's 560 KIO/s —
/// both limited by the memory-mapped host-to-FPGA transport, processed one
/// byte at a time. Our MMIO model (1 us per transaction) produces the same
/// bus-bound plateau; Cascade pays a small extra head/tail-pointer sync
/// cost per batch, matching the paper's slight deficit.
///
/// Output: CSV rows "series,time_s,kio_per_s". The cascade run also
/// writes a machine-readable telemetry sidecar
/// (fig12_regex_stream.stats.json), a Chrome trace_event dump
/// (fig12_regex_stream.trace.json), and a headline result file
/// (BENCH_fig12_regex_stream.json) next to wherever the bench is invoked
/// from, matching fig11's artifacts. CI's smoke-bench job uploads all
/// three.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fpga/compile.h"
#include "runtime/runtime.h"
#include "telemetry/trace.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

using cascade::runtime::Runtime;

namespace {

constexpr double kMmioLatency = 1e-6;

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<uint8_t>
log_bytes(size_t n)
{
    static const std::string chunk = "GET /status x GET /api ";
    std::vector<uint8_t> out;
    out.reserve(n);
    while (out.size() < n) {
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    out.resize(n);
    return out;
}

} // namespace

int
main()
{
    const double bench_t0 = now_s();
    std::printf("series,time_s,kio_per_s\n");
    double quartus_compile_s = 0;
    double quartus_kio_result = 0;

    // "Quartus": the native design consumes one byte per MMIO write after
    // compilation completes; throughput is transport-bound.
    {
        cascade::Diagnostics diags;
        auto unit = cascade::verilog::parse(
            cascade::workloads::regex_stream_module(), &diags);
        cascade::verilog::Elaborator elab(&diags);
        auto em = elab.elaborate(*unit.modules[0]);
        const double t0 = now_s();
        cascade::fpga::CompileOptions copts;
        copts.effort = 1.0;
        auto result = cascade::fpga::compile(*em, copts);
        const double compile_s = now_s() - t0;
        // One byte = one 32-bit MMIO write plus ~12% framing overhead
        // (address setup, occasional status reads).
        const double quartus_kio = 1.0 / (kMmioLatency * 1.12) / 1e3;
        std::printf("quartus,%.2f,%.1f\n", compile_s * 0.5, 0.0);
        std::printf("quartus,%.2f,%.1f\n", compile_s, quartus_kio);
        std::printf("quartus,%.2f,%.1f\n", compile_s + 2.0, quartus_kio);
        std::fprintf(stderr, "# quartus compile: %.2f s (%llu LEs)\n",
                     compile_s,
                     static_cast<unsigned long long>(
                         result.report.area.les));
        quartus_compile_s = compile_s;
        quartus_kio_result = quartus_kio;
    }

    // Cascade: software engine first, open-loop hardware after the JIT.
    {
        Runtime::Options opts;
        opts.compile_effort = 1.0;
        opts.mmio_latency_s = kMmioLatency;
        // IO-bound: the 256-deep FIFO refills between batches, so short
        // batches maximize IO/s (the adaptive profiler's tradeoff).
        opts.open_loop_iterations = 1024;
        opts.open_loop_target_wall_s = 0.05;
        Runtime rt(opts);
        rt.on_output = [](const std::string&) {};
        std::string errors;
        if (!rt.eval(cascade::workloads::regex_stream_source(false),
                     &errors)) {
            std::fprintf(stderr, "eval failed: %s\n", errors.c_str());
            return 1;
        }
        const double t0 = now_s();
        double last_sample = t0;
        uint64_t last_bytes = 0;
        int hw_samples = 0;
        double sw_kio = 0;
        double hw_kio = 0;
        while (now_s() - t0 < 150.0) {
            if (rt.fifo_backlog() < 4096) {
                rt.fifo_push(log_bytes(8192));
            }
            if (!rt.hardware_ready()) {
                rt.run(256);
                const double t = now_s();
                if (t - last_sample >= 0.25 && !rt.hardware_ready()) {
                    const uint64_t bytes = rt.fifo_bytes_consumed();
                    sw_kio = static_cast<double>(bytes - last_bytes) /
                             (t - last_sample) / 1e3;
                    std::printf("cascade,%.2f,%.1f\n", t - t0, sw_kio);
                    last_bytes = bytes;
                    last_sample = t;
                }
                continue;
            }
            // Hardware phase: throughput against the virtual timeline.
            const uint64_t bytes0 = rt.fifo_bytes_consumed();
            const double tl0 = rt.timeline_seconds();
            rt.run(8);
            const double dtl = rt.timeline_seconds() - tl0;
            const uint64_t dbytes = rt.fifo_bytes_consumed() - bytes0;
            if (dtl > 0 && dbytes > 0) {
                hw_kio = static_cast<double>(dbytes) / dtl / 1e3;
                std::printf("cascade,%.2f,%.1f\n", now_s() - t0, hw_kio);
                if (++hw_samples >= 5) {
                    break;
                }
            }
        }
        {
            char buf[512];
            std::ofstream out("BENCH_fig12_regex_stream.json");
            std::snprintf(
                buf, sizeof buf,
                "{\"schema\":\"cascade.bench.v1\","
                "\"bench\":\"fig12_regex_stream\",\"wall_seconds\":%.3f,"
                "\"quartus\":{\"compile_seconds\":%.3f,"
                "\"kio_per_s\":%.1f},"
                "\"cascade\":{\"adopted\":%s,\"sw_kio_per_s\":%.1f,"
                "\"hw_kio_per_s\":%.1f,\"bytes_consumed\":%llu},",
                now_s() - bench_t0, quartus_compile_s, quartus_kio_result,
                rt.hardware_ready() ? "true" : "false", sw_kio, hw_kio,
                static_cast<unsigned long long>(rt.fifo_bytes_consumed()));
            out << buf << "\"profile\":" << rt.profile_json() << "}\n";
            std::fprintf(stderr,
                         "# results -> BENCH_fig12_regex_stream.json\n");
        }
        {
            std::ofstream sidecar("fig12_regex_stream.stats.json");
            sidecar << rt.stats_json() << '\n';
            std::fprintf(
                stderr,
                "# cascade: stats sidecar -> fig12_regex_stream.stats.json\n");
        }
        cascade::telemetry::Tracer::global().write_chrome_json(
            "fig12_regex_stream.trace.json");
        std::fprintf(stderr, "# trace -> fig12_regex_stream.trace.json\n");
    }
    return 0;
}
