/// \file
/// Table 4 (paper §4, Fig. 9): ablation of Cascade's optimization stages.
/// Each row measures steady-state virtual clock on the proof-of-work
/// workload with one more optimization enabled:
///   stage 1: separate software engines per module (no inlining)
///   stage 2: user logic inlined into one software engine
///   stage 3: hardware engine, runtime-driven (per-tick MMIO)
///   stage 4: + standard components forwarded into the user engine
///   stage 5: + open-loop scheduling
/// The paper's claim: each stage removes data/control-plane communication;
/// only stage 5 approaches native speed.
///
/// Output: stage, virtual clock Hz (measured or modeled), notes.

#include <chrono>
#include <cstdio>
#include <string>

#include "runtime/runtime.h"
#include "workloads/workloads.h"

using cascade::runtime::Runtime;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Measures ticks per second (wall for software stages, virtual timeline
/// for hardware stages).
double
measure(Runtime::Options options, bool needs_hardware, const char* stage)
{
    Runtime rt(options);
    rt.on_output = [](const std::string&) {};
    std::string errors;
    if (!rt.eval(cascade::workloads::proof_of_work_source(20, false),
                 &errors)) {
        std::fprintf(stderr, "%s eval failed: %s\n", stage,
                     errors.c_str());
        return -1;
    }
    if (needs_hardware) {
        const double t0 = now_s();
        while (!rt.hardware_ready() && now_s() - t0 < 300.0) {
            rt.run(256);
        }
        if (!rt.hardware_ready()) {
            std::fprintf(stderr, "%s: hardware never adopted\n", stage);
            return -1;
        }
        const uint64_t ticks0 = rt.virtual_ticks();
        const double tl0 = rt.timeline_seconds();
        const double w0 = now_s();
        while (now_s() - w0 < 1.0) {
            rt.run(64);
        }
        return static_cast<double>(rt.virtual_ticks() - ticks0) /
               (rt.timeline_seconds() - tl0);
    }
    // Software: wall-clock rate.
    rt.run(512); // warm up
    const uint64_t ticks0 = rt.virtual_ticks();
    const double w0 = now_s();
    while (now_s() - w0 < 1.5) {
        rt.run(512);
    }
    return static_cast<double>(rt.virtual_ticks() - ticks0) /
           (now_s() - w0);
}

} // namespace

int
main()
{
    std::printf("Table 4: optimization ablation on proof-of-work "
                "(virtual clock)\n");
    std::printf("%-44s %14s\n", "configuration", "virtual_hz");

    {
        Runtime::Options o;
        o.enable_hardware = false;
        o.enable_inlining = false;
        std::printf("%-44s %14.0f\n",
                    "1. software engines, no inlining",
                    measure(o, false, "stage1"));
    }
    {
        Runtime::Options o;
        o.enable_hardware = false;
        std::printf("%-44s %14.0f\n", "2. + user logic inlined",
                    measure(o, false, "stage2"));
    }
    {
        Runtime::Options o;
        o.compile_effort = 0.25;
        o.enable_forwarding = false;
        o.enable_open_loop = false;
        std::printf("%-44s %14.0f\n",
                    "3. + hardware engine (runtime-driven)",
                    measure(o, true, "stage3"));
    }
    {
        Runtime::Options o;
        o.compile_effort = 0.25;
        o.enable_open_loop = false;
        std::printf("%-44s %14.0f\n", "4. + stdlib forwarding",
                    measure(o, true, "stage4"));
    }
    {
        Runtime::Options o;
        o.compile_effort = 0.25;
        std::printf("%-44s %14.0f\n", "5. + open-loop scheduling",
                    measure(o, true, "stage5"));
    }
    {
        Runtime::Options o;
        o.compile_effort = 0.25;
        o.native_mode = true;
        std::printf("%-44s %14.0f\n", "6. native mode (reference)",
                    measure(o, true, "native"));
    }
    std::printf("\npaper: stage 5 within ~2.9x of the native clock; each "
                "earlier stage is communication-bound\n");
    return 0;
}
