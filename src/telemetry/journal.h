/// \file
/// The flight-recorder half of the observability subsystem: a structured
/// event journal (schema `cascade.events.v1`) that records every
/// nondeterminism-bearing event in a session — eval'ed program text,
/// interrupt enqueue/flush, engine adoption decisions, compile begin/end
/// with the placement RNG seed, open-loop grant sizes, and output digests
/// — each stamped with a monotonic sequence number and virtual time (never
/// wall time, so two replays of the same journal are byte-identical).
///
/// Three consumers:
///  - the **black box**: every Journal keeps a bounded in-memory ring of
///    the most recent events; the process-wide BlackBox dumps the rings of
///    all live runtimes (plus stats/profile snapshots) to
///    `cascade-crash-<pid>.json` on a CASCADE_CHECK failure, fatal signal,
///    or std::terminate;
///  - the **recorder**: start_file() mirrors every subsequent event to a
///    JSONL file that runtime/replay.h can re-execute deterministically;
///  - the **divergence detector**: set_observer() sees each event as it is
///    recorded, which replay uses to compare the re-executed session
///    against the recorded one event by event.

#ifndef CASCADE_TELEMETRY_JOURNAL_H
#define CASCADE_TELEMETRY_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/sync.h"

namespace cascade::telemetry {

/// FNV-1a 64-bit digest — the journal's output-digest function ($display
/// text, VCD file contents, compile reports). Stable across platforms.
uint64_t fnv1a64(std::string_view data);
/// fnv1a64 rendered as 16 lowercase hex digits.
std::string digest_hex(std::string_view data);

/// Incremental builder for one JSON object with insertion-ordered keys.
/// Event payloads must be built with this (or be byte-stable some other
/// way): replay compares the raw payload text of recorded vs. re-executed
/// events, so the serialization itself is part of the schema.
class JsonWriter {
  public:
    JsonWriter& str(const char* key, std::string_view value);
    JsonWriter& num(const char* key, uint64_t value);
    JsonWriter& num_signed(const char* key, int64_t value);
    /// Doubles print with %.17g: enough digits that a parse -> re-print
    /// round trip is exact (options headers survive replay re-recording).
    JsonWriter& dbl(const char* key, double value);
    JsonWriter& boolean(const char* key, bool value);
    /// Pre-serialized JSON (objects/arrays) embedded verbatim.
    JsonWriter& raw(const char* key, std::string_view json);

    std::string build() const { return body_.empty() ? "{}" : '{' + body_ + '}'; }

  private:
    void key(const char* k);
    std::string body_;
};

/// A parsed JSON value (what load_journal and tests read journals back
/// with). Minimal by design: objects keep insertion order, integers that
/// fit uint64 are preserved exactly.
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool b = false;
    double num = 0;
    bool is_int = false;   ///< no '.', 'e', or '-' mantissa loss
    uint64_t u64 = 0;      ///< exact value when is_int
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    /// Object member lookup (nullptr when absent or not an object).
    const JsonValue* find(const std::string& k) const;
    /// Convenience accessors with defaults for absent/mistyped members.
    uint64_t get_u64(const std::string& k, uint64_t dflt = 0) const;
    double get_num(const std::string& k, double dflt = 0) const;
    bool get_bool(const std::string& k, bool dflt = false) const;
    std::string get_str(const std::string& k,
                        const std::string& dflt = "") const;
};

/// Parses one JSON document. Returns false (with *err) on malformed input.
bool parse_json(std::string_view text, JsonValue* out,
                std::string* err = nullptr);

/// The structured event journal. One per Runtime; always on (the ring),
/// optionally mirrored to a JSONL file (the recorder).
class Journal {
  public:
    /// Black-box depth: how many recent events a crash dump preserves.
    static constexpr size_t kDefaultRingCapacity = 256;

    struct Event {
        uint64_t seq = 0;  ///< monotonic per-journal sequence number
        uint64_t vt = 0;   ///< virtual time (clock ticks) at record time
        uint64_t tenant = 0; ///< owning tenant (0 = exclusive mode)
        std::string type;  ///< vocabulary entry, e.g. "interrupt.enqueue"
        std::string data;  ///< payload as one canonical JSON object
    };

    explicit Journal(size_t ring_capacity = kDefaultRingCapacity);
    ~Journal();

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /// Virtual-time source stamped onto each event (0 until set).
    void set_clock(std::function<uint64_t()> clock);

    /// Tenant id stamped onto each subsequent event. Shared-mode
    /// runtimes set this once at construction; exclusive sessions leave
    /// it 0 and the field never appears in the serialized stream
    /// (cascade.events.v1 stays backward-compatible).
    void set_tenant(uint64_t tenant);

    /// Records one event; returns its sequence number. \p data must be a
    /// JSON object (JsonWriter::build()).
    uint64_t record(const char* type, std::string data = "{}");

    /// @{ Recorder: mirror subsequent events to \p path as JSONL. The
    /// first line is `{"schema":"cascade.events.v1","header":<header>}`.
    bool start_file(const std::string& path, const std::string& header_json,
                    std::string* err = nullptr);
    void stop_file();
    bool writing() const;
    const std::string& path() const { return path_; }
    /// @}

    /// Dumps header + current ring contents to \p path (repro artifacts,
    /// e.g. the fuzz harness's failure capture).
    bool write_ring(const std::string& path, const std::string& header_json,
                    std::string* err = nullptr) const;

    /// Divergence-detector hook: called (outside the journal lock) for
    /// every recorded event. Pass nullptr to clear.
    void set_observer(std::function<void(const Event&)> observer);

    /// @{ Broadcast taps: like the observer but many may coexist, so
    /// passive listeners (the monitor server's /events stream) never
    /// fight replay's divergence detector for the single observer slot.
    /// Taps run outside the journal lock and must not record into the
    /// journal. Returns an id for remove_tap.
    int add_tap(std::function<void(const Event&)> tap);
    void remove_tap(int id);
    /// @}

    /// Oldest-first copy of the ring (the black-box view).
    std::vector<Event> ring() const;
    /// The ring as a JSON array (embedded in crash dumps).
    std::string ring_json() const;

    uint64_t events_recorded() const;

    /// One JSONL line for \p event (no trailing newline).
    static std::string event_json(const Event& event);

  private:
    mutable Mutex mutex_{"journal.ring"};
    std::function<uint64_t()> clock_;
    std::function<void(const Event&)> observer_;
    std::vector<std::pair<int, std::function<void(const Event&)>>> taps_;
    int next_tap_id_ = 1;
    std::vector<Event> ring_;
    size_t ring_capacity_;
    size_t next_ = 0;   ///< ring slot for the next event
    size_t count_ = 0;  ///< events currently in the ring
    uint64_t seq_ = 0;
    uint64_t tenant_ = 0;
    std::FILE* file_ = nullptr;
    std::string path_;
};

/// The crash black box: a process-wide registry of dump sources (one per
/// live Runtime: journal ring + stats + profile snapshots). On a fatal
/// signal, CASCADE_CHECK failure, or std::terminate it writes
/// `cascade-crash-<pid>.json` so a field failure carries the event
/// sequence that led to it.
class BlackBox {
  public:
    static BlackBox& instance();

    /// Installs the fatal-signal handlers, the std::terminate handler, and
    /// the CASCADE_CHECK failure hook. Idempotent; under ASan only the
    /// SIGABRT path is hooked (the sanitizer owns SIGSEGV reporting).
    void install_handlers();

    /// Registers a named JSON provider (must return one JSON value).
    /// Returns an id for remove_source. Providers run at dump time.
    int add_source(const std::string& name,
                   std::function<std::string()> provider);
    void remove_source(int id);

    /// Where crash files land: explicit directory, else $CASCADE_CRASH_DIR,
    /// else the current working directory.
    void set_directory(const std::string& dir);

    /// Writes the dump (schema `cascade.crash.v1`); returns the file path,
    /// or "" if a dump already happened or the file cannot be written.
    /// Safe to call directly (tests); the handlers call it on the way down.
    std::string dump(const std::string& reason);

    /// The dump as a string (no file IO) — unit-test support.
    std::string dump_json(const std::string& reason) const;

  private:
    BlackBox() = default;

    struct Source {
        int id;
        std::string name;
        std::function<std::string()> provider;
    };

    mutable std::mutex mutex_;
    std::vector<Source> sources_;
    int next_id_ = 1;
    std::string directory_;
};

} // namespace cascade::telemetry

#endif // CASCADE_TELEMETRY_JOURNAL_H
