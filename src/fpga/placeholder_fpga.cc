namespace cascade {
// placeholder translation unit; replaced as the fpga subsystem lands.
}
