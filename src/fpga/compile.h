/// \file
/// The blackbox toolchain driver (our stand-in for Quartus/Vivado):
/// synthesis -> technology mapping -> placement -> timing closure. Compile
/// latency is genuine work that scales with design size; Cascade hides it
/// behind software execution (paper §1, §3).

#ifndef CASCADE_FPGA_COMPILE_H
#define CASCADE_FPGA_COMPILE_H

#include <memory>
#include <string>
#include <vector>

#include "fpga/bitstream.h"
#include "fpga/place.h"
#include "fpga/synth.h"
#include "fpga/techmap.h"

namespace cascade::fpga {

struct CompileOptions {
    /// Annealing effort multiplier (1.0 default; benches scale it).
    double effort = 1.0;
    double target_clock_mhz = 50.0;
    uint64_t seed = 1;
};

struct CompileReport {
    AreaEstimate area;
    TimingReport timing;
    size_t netlist_nodes = 0;
    size_t cells = 0;
    /// The placement RNG seed this compile actually ran with. Reported so
    /// a compile is reproducible from its logs/journal alone: re-running
    /// with the same seed yields the identical placement, wirelength and
    /// Fmax (replay pins it; `:stats json` surfaces it).
    uint64_t seed = 0;
    /// True when this result was served from the compile service's
    /// content-addressed bitstream cache: no flow ran, so every per-phase
    /// timing (and total_seconds) is zero, while the deterministic fields
    /// (netlist, area, placement, Fmax, seed) are byte-identical to the
    /// cold compile that populated the entry.
    bool cache_hit = false;
    uint64_t anneal_moves = 0;
    double wirelength = 0;
    /// The critical path rendered as source-level signal names (netlist
    /// provenance, consecutive duplicates collapsed), source first.
    /// Parallel to critical_path_arrival_ns. Lets report consumers show
    /// "clk -> cnt -> out" without holding the netlist.
    std::vector<std::string> critical_path_names;
    std::vector<double> critical_path_arrival_ns;
    /// Per-phase flow timing. Invariant (checked in compile()):
    /// total_seconds == synth + techmap + place + timing, so downstream
    /// consumers (telemetry sidecars, Table 3) can attribute every second
    /// of the flow to a phase.
    double synth_seconds = 0;
    double techmap_seconds = 0;
    double place_seconds = 0;
    double timing_seconds = 0;
    double total_seconds = 0;

    double
    phase_sum_seconds() const
    {
        return synth_seconds + techmap_seconds + place_seconds +
               timing_seconds;
    }
};

struct CompileResult {
    bool ok = false;
    std::string error;
    std::shared_ptr<const Netlist> netlist;
    CompileReport report;
};

/// Runs the full flow. Blocking; Cascade's runtime invokes this on the
/// compile-server thread.
CompileResult compile(const verilog::ElaboratedModule& em,
                      const CompileOptions& options);

/// The reprogrammable device (Cyclone V-class by default): capacity limits
/// plus the fabric clock the runtime models hardware time against.
class FpgaDevice {
  public:
    FpgaDevice(uint64_t les = 110000, uint64_t bram_bits = 11000000,
               double clock_mhz = 50.0)
        : les_(les), bram_bits_(bram_bits), clock_mhz_(clock_mhz)
    {}

    uint64_t les() const { return les_; }
    uint64_t bram_bits() const { return bram_bits_; }
    double clock_mhz() const { return clock_mhz_; }

    /// Loads a bitstream if the design fits and made timing; returns null
    /// (with \p error set) otherwise. "Programming ... requires less than
    /// a millisecond" — it is just object construction here.
    ///
    /// With \p allow_derated_clock, a design that misses the target clock
    /// is still programmed, clocked from a PLL at 90% of its achieved
    /// Fmax; \p actual_clock_mhz (if non-null) receives the final rate.
    std::unique_ptr<Bitstream>
    program(const CompileResult& result, std::string* error,
            bool allow_derated_clock = false,
            double* actual_clock_mhz = nullptr) const;

  private:
    uint64_t les_;
    uint64_t bram_bits_;
    double clock_mhz_;
};

} // namespace cascade::fpga

#endif // CASCADE_FPGA_COMPILE_H
