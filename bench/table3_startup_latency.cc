/// \file
/// Table 3 (paper §1/§6 prose): time from initiating compilation to
/// running code. The paper's headline: "Cascade reduces the time between
/// initiating compilation and running code to less than a second", versus
/// ~10 minutes for Quartus on the proof-of-work design. Both the software
/// baseline and Cascade must start in under a second regardless of design
/// size; the direct toolchain grows with size.
///
/// Output: one row per (workload, toolchain): seconds to first execution.

#include <chrono>
#include <cstdio>
#include <string>

#include "fpga/compile.h"
#include "runtime/runtime.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

using cascade::runtime::Runtime;

namespace {

double
time_eval_to_running(Runtime::Options options, const std::string& src)
{
    Runtime rt(options);
    rt.on_output = [](const std::string&) {};
    const auto t0 = std::chrono::steady_clock::now();
    std::string errors;
    if (!rt.eval(src, &errors)) {
        std::fprintf(stderr, "eval failed: %s\n", errors.c_str());
        return -1;
    }
    rt.run_for_ticks(2); // code demonstrably executing
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double
time_direct_compile(const std::string& module_src)
{
    cascade::Diagnostics diags;
    auto unit = cascade::verilog::parse(module_src, &diags);
    cascade::verilog::Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    if (em == nullptr) {
        std::fprintf(stderr, "elab failed: %s\n", diags.str().c_str());
        return -1;
    }
    cascade::fpga::CompileOptions opts;
    opts.effort = 1.0;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = cascade::fpga::compile(*em, opts);
    (void)result;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    std::printf("Table 3: seconds from initiating compilation to running "
                "code\n");
    std::printf("%-16s %12s %12s %12s\n", "workload", "sw-sim",
                "cascade", "direct");

    struct Case {
        const char* name;
        std::string repl_src;
        std::string module_src;
    };
    const Case cases[] = {
        {"proof_of_work",
         cascade::workloads::proof_of_work_source(16, false),
         cascade::workloads::proof_of_work_module(16)},
        {"regex_stream", cascade::workloads::regex_stream_source(false),
         cascade::workloads::regex_stream_module()},
        {"nw_16", cascade::workloads::needleman_wunsch_source(16, 0),
         // NW has no standalone-module variant; reuse regex for the
         // direct column's third size point.
         cascade::workloads::regex_stream_module()},
    };
    for (const Case& c : cases) {
        Runtime::Options sw;
        sw.enable_hardware = false;
        const double t_sw = time_eval_to_running(sw, c.repl_src);
        Runtime::Options jit;
        jit.compile_effort = 1.0;
        const double t_cascade = time_eval_to_running(jit, c.repl_src);
        const double t_direct = time_direct_compile(c.module_src);
        std::printf("%-16s %11.3fs %11.3fs %11.2fs\n", c.name, t_sw,
                    t_cascade, t_direct);
    }
    std::printf("\npaper: Cascade <1 s on every design; Quartus ~600 s "
                "for proof-of-work\n");
    return 0;
}
