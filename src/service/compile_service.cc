#include "service/compile_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "telemetry/journal.h"
#include "telemetry/sync.h"
#include "telemetry/trace.h"
#include "verilog/printer.h"

namespace cascade::service {

CompileService::CompileService() : CompileService(Config()) {}

CompileService::CompileService(Config config)
    : config_(std::move(config))
{
    telemetry::Registry& reg = telemetry::Registry::global();
    hits_ = reg.counter("compile.cache.hits");
    misses_ = reg.counter("compile.cache.misses");
    cancelled_ = reg.counter("compile.cancelled");
    dropped_ = reg.counter("compile.queue.dropped");
    depth_ = reg.gauge("compile.queue.depth");
    workers_.reserve(config_.workers);
    for (size_t i = 0; i < config_.workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

CompileService::~CompileService()
{
    {
        std::lock_guard<telemetry::Mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    done_cv_.notify_all();
    for (std::thread& w : workers_) {
        w.join();
    }
}

uint64_t
CompileService::register_client()
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    const uint64_t id = ++next_client_;
    clients_.insert(id);
    return id;
}

void
CompileService::unregister_client(uint64_t client)
{
    {
        std::lock_guard<telemetry::Mutex> lock(mutex_);
        clients_.erase(client);
        queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                    [client](const Pending& p) {
                                        return p.client == client;
                                    }),
                     queue_.end());
        done_.erase(client);
        depth_->set(static_cast<int64_t>(queue_.size()));
    }
    done_cv_.notify_all();
}

std::string
CompileService::cache_key(const verilog::ElaboratedModule& em,
                          const fpga::CompileOptions& options)
{
    // The canonical printed declaration is cloned pre-parameter-binding,
    // so the bound parameter values are part of the address (two
    // elaborations of one module text with different parameters are
    // different designs).
    std::string s = verilog::print(*em.decl);
    s += '\x1f';
    std::map<std::string, std::string> params;
    for (const auto& [name, value] : em.params) {
        params[name] = value.to_hex_string();
    }
    for (const auto& [name, hex] : params) {
        s += name;
        s += '=';
        s += hex;
        s += ';';
    }
    char buf[96];
    std::snprintf(buf, sizeof buf, "|e=%.17g|clk=%.17g|seed=%llu",
                  options.effort, options.target_clock_mhz,
                  static_cast<unsigned long long>(options.seed));
    s += buf;
    return telemetry::digest_hex(s);
}

void
CompileService::cache_insert_locked(const std::string& key,
                                    const fpga::CompileResult& result)
{
    if (!config_.enable_cache || key.empty() || !result.ok) {
        return;
    }
    const auto it = cache_.find(key);
    if (it == cache_.end()) {
        cache_[key] = result;
        cache_lru_.push_front(key);
        if (cache_.size() > config_.cache_capacity &&
            !cache_lru_.empty()) {
            cache_.erase(cache_lru_.back());
            cache_lru_.pop_back();
        }
    }
}

void
CompileService::submit(uint64_t client, Job job)
{
    bool notify_done = false;
    {
        std::lock_guard<telemetry::Mutex> lock(mutex_);
        if (clients_.count(client) == 0) {
            return;
        }
        // A newer program version obsoletes this client's queued (not yet
        // running) jobs — the REPL's compile-cancellation path.
        const size_t before = queue_.size();
        queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                    [client](const Pending& p) {
                                        return p.client == client;
                                    }),
                     queue_.end());
        cancelled_->inc(before - queue_.size());

        Pending pending;
        pending.client = client;
        // The content-address digest + map probe IS the cache lookup the
        // request tracer bills to the "cache" segment; bracket it.
        telemetry::Tracer& tracer = telemetry::Tracer::global();
        const double lookup_start_us = tracer.now_us();
        pending.key = config_.enable_cache && job.module != nullptr
                          ? cache_key(*job.module, job.options)
                          : std::string();
        pending.tenant = telemetry::thread_tenant();
        pending.job = std::move(job);

        // Content-addressed lookup: a hit is answered synchronously, with
        // the per-phase flow timings zeroed (no flow ran) and the hit bit
        // set; everything deterministic (netlist, area, placement, seed,
        // Fmax) is byte-identical to the cold compile that populated the
        // entry.
        const auto hit = config_.enable_cache && !pending.key.empty()
                             ? cache_.find(pending.key)
                             : cache_.end();
        pending.enqueue_us = tracer.now_us();
        pending.cache_us = pending.enqueue_us - lookup_start_us;
        if (hit != cache_.end()) {
            hits_->inc();
            ++local_hits_;
            cache_lru_.remove(pending.key);
            cache_lru_.push_front(pending.key);
            Done done;
            done.version = pending.job.version;
            done.request = pending.job.request;
            done.cache_us = pending.cache_us;
            done.enqueue_us = pending.enqueue_us;
            done.dequeue_us = pending.enqueue_us;
            done.done_us = pending.enqueue_us;
            done.result = hit->second;
            done.result.report.cache_hit = true;
            done.result.report.synth_seconds = 0;
            done.result.report.techmap_seconds = 0;
            done.result.report.place_seconds = 0;
            done.result.report.timing_seconds = 0;
            done.result.report.total_seconds = 0;
            done_[client].push_back(std::move(done));
            notify_done = true;
        } else {
            if (!pending.key.empty()) {
                misses_->inc();
                ++local_misses_;
            }
            queue_.push_back(std::move(pending));
            if (queue_.size() > config_.queue_capacity) {
                queue_.pop_front();
                dropped_->inc();
            }
        }
        depth_->set(static_cast<int64_t>(queue_.size()));
    }
    if (notify_done) {
        done_cv_.notify_all();
    } else {
        work_cv_.notify_one();
    }
}

std::vector<CompileService::Done>
CompileService::poll(uint64_t client)
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    const auto it = done_.find(client);
    if (it == done_.end()) {
        return {};
    }
    std::vector<Done> out = std::move(it->second);
    it->second.clear();
    return out;
}

bool
CompileService::inflight_locked(uint64_t client) const
{
    const auto r = running_.find(client);
    if (r != running_.end() && r->second > 0) {
        return true;
    }
    for (const Pending& p : queue_) {
        if (p.client == client) {
            return true;
        }
    }
    return false;
}

bool
CompileService::busy(uint64_t client) const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    return inflight_locked(client);
}

bool
CompileService::wait_for_done(uint64_t client, double timeout_s)
{
    std::unique_lock<telemetry::Mutex> lock(mutex_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(0.0, timeout_s)));
    done_cv_.wait_until(lock, deadline, [&] {
        const auto it = done_.find(client);
        return stop_ || (it != done_.end() && !it->second.empty()) ||
               !inflight_locked(client);
    });
    const auto it = done_.find(client);
    return it != done_.end() && !it->second.empty();
}

void
CompileService::wait_idle()
{
    std::unique_lock<telemetry::Mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
        if (stop_) {
            return true;
        }
        if (!queue_.empty()) {
            return false;
        }
        for (const auto& [client, n] : running_) {
            if (n > 0) {
                return false;
            }
        }
        return true;
    });
}

size_t
CompileService::queued_jobs() const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    return queue_.size();
}

size_t
CompileService::cache_entries() const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    return cache_.size();
}

uint64_t
CompileService::cache_hits() const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    return local_hits_;
}

uint64_t
CompileService::cache_misses() const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    return local_misses_;
}

double
CompileService::cache_hit_rate() const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    const uint64_t total = local_hits_ + local_misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(local_hits_) /
                            static_cast<double>(total);
}

void
CompileService::worker_loop()
{
    while (true) {
        Pending pending;
        {
            std::unique_lock<telemetry::Mutex> lock(mutex_);
            work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_) {
                return;
            }
            pending = std::move(queue_.front());
            queue_.pop_front();
            ++running_[pending.client];
            depth_->set(static_cast<int64_t>(queue_.size()));
        }
        // Queue-residency span on the submitting tenant's lane: how
        // long the job sat behind other tenants' compiles.
        telemetry::Tracer& tracer = telemetry::Tracer::global();
        tracer.record_complete_tenant(
            "compile.queued", pending.enqueue_us,
            tracer.now_us() - pending.enqueue_us, pending.tenant);
        Done done;
        done.version = pending.job.version;
        done.request = pending.job.request;
        done.cache_us = pending.cache_us;
        done.enqueue_us = pending.enqueue_us;
        const double exec_start_us = tracer.now_us();
        done.dequeue_us = exec_start_us;
        done.result = fpga::compile(*pending.job.module,
                                    pending.job.options);
        tracer.record_complete_tenant("compile.exec", exec_start_us,
                                      tracer.now_us() - exec_start_us,
                                      pending.tenant);
        done.done_us = tracer.now_us();
        if (pending.job.request != 0) {
            // Flow step inside the compile.exec span just recorded: the
            // request's causal arrow hops from the submitting runtime
            // thread onto this worker (and this tenant's lane).
            tracer.flow_tenant("request", 't', pending.job.request,
                               pending.tenant, exec_start_us);
        }
        {
            std::lock_guard<telemetry::Mutex> lock(mutex_);
            cache_insert_locked(pending.key, done.result);
            --running_[pending.client];
            // A client that unregistered mid-compile gets its result
            // dropped (nobody will poll for it); the cache insert above
            // still happened, so the work is not wasted.
            if (clients_.count(pending.client) != 0) {
                done_[pending.client].push_back(std::move(done));
            }
        }
        done_cv_.notify_all();
    }
}

} // namespace cascade::service
