/// \file
/// The contention half of the observability subsystem: drop-in
/// instrumented replacements for std::mutex and std::condition_variable
/// that record, per named site, how long threads wait to acquire, how
/// long holders keep the lock, and *who* was holding it while a tenant
/// stalled (the blocked-on matrix behind the REPL's :contention view and
/// the cascade.contention.v1 report).
///
/// Design points:
///  - A site is a name ("fabric.slots"), not a mutex instance: several
///    mutexes may share one site and aggregate into one row. Site
///    pointers are stable for the process lifetime, like Registry
///    metrics.
///  - The uncontended path is a try_lock plus two relaxed counter
///    bumps; only the contended path touches clocks, the blocked-on
///    table, and the tracer ("blocked:<site>" spans on the waiter's
///    tenant lane).
///  - Tenant identity is a thread-local set by the Runtime at its
///    public entry points; untenanted threads (compile workers, tests)
///    report tenant 0 and are excluded from tenant-wait rankings so a
///    worker parked on its work CV does not masquerade as contention.
///  - Compile-time switch: building with -DCASCADE_SYNC_TELEMETRY=0
///    turns both wrappers into fully inline forwarders around the
///    std types — a codegen-neutral no-op.

#ifndef CASCADE_TELEMETRY_SYNC_H
#define CASCADE_TELEMETRY_SYNC_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

#ifndef CASCADE_SYNC_TELEMETRY
#define CASCADE_SYNC_TELEMETRY 1
#endif

namespace cascade::telemetry {

/// Binds the calling thread to a tenant id for contention attribution
/// and trace-lane assignment (0 = untenanted / exclusive mode).
void set_thread_tenant(uint64_t tenant);
uint64_t thread_tenant();

/// Monotonic nanoseconds (steady clock), the wrappers' time base.
uint64_t sync_now_ns();

/// Per-site contention statistics. Returned pointers are stable for the
/// process lifetime; reset() zeroes samples in place.
class SyncSite {
  public:
    SyncSite(std::string name, const char* kind);

    const std::string& name() const { return name_; }
    const char* kind() const { return kind_; } ///< "mutex" or "cv"

    Counter acquisitions; ///< lock() + successful try_lock(); CV: waits
    Counter contended;    ///< acquisitions that blocked
    Histogram wait_ns;    ///< time blocked before acquiring (0 if not)
    Histogram hold_ns;    ///< lock() .. unlock() (mutex sites only)
    /// Wait nanoseconds accrued by tenant-bound threads only — the
    /// quantity :contention ranks by and the bench attributes with.
    std::atomic<uint64_t> tenant_wait_ns{0};

    /// Static-storage span name for the tracer ("blocked:<site>").
    const char* blocked_span_name() const { return blocked_name_.c_str(); }

    void reset();

  private:
    const std::string name_;
    const char* kind_;
    const std::string blocked_name_;
};

/// One blocked-on observation, aggregated: waiter tenant W spent
/// wait_ns (over count events) blocked on \p site while holder tenant H
/// had it (holder 0 = untenanted thread or unknown).
struct BlockedEdge {
    std::string site;
    uint64_t waiter = 0;
    uint64_t holder = 0;
    uint64_t count = 0;
    uint64_t wait_ns = 0;
};

/// Process-wide table of sync sites plus the blocked-on matrix and
/// per-tenant wait totals. Site lookup takes a mutex (done once per
/// Mutex/CondVar construction); edge recording takes it too but only on
/// the already-blocked path.
class SyncRegistry {
  public:
    SyncRegistry() = default;
    SyncRegistry(const SyncRegistry&) = delete;
    SyncRegistry& operator=(const SyncRegistry&) = delete;

    static SyncRegistry& global();

    SyncSite* site(const std::string& name, const char* kind);

    void record_blocked(const SyncSite& site, uint64_t waiter,
                        uint64_t holder, uint64_t wait_ns);

    /// Point-in-time copy of one site's stats (quantiles precomputed).
    struct SiteSnapshot {
        std::string name;
        std::string kind;
        uint64_t acquisitions = 0;
        uint64_t contended = 0;
        uint64_t wait_sum_ns = 0;
        uint64_t wait_max_ns = 0;
        uint64_t wait_p50_ns = 0;
        uint64_t wait_p99_ns = 0;
        uint64_t hold_sum_ns = 0;
        uint64_t hold_max_ns = 0;
        uint64_t tenant_wait_ns = 0;
    };

    /// Every site, ranked by tenant_wait_ns then total wait descending.
    std::vector<SiteSnapshot> snapshot() const;
    /// The blocked-on matrix, aggregated per (site, waiter, holder).
    std::vector<BlockedEdge> blocked_edges() const;
    /// Total blocked nanoseconds per tenant id (tenant threads only).
    std::map<uint64_t, uint64_t> tenant_waits() const;

    /// The cascade.contention.v1 report:
    /// {"schema":"cascade.contention.v1","sites":[...ranked...],
    ///  "blocked_on":[{"site":..,"waiter":..,"holder":..,..}],
    ///  "tenant_wait_ns":{"1":..}}
    std::string contention_json() const;
    /// Fixed-width human table of the same data (the REPL's :contention).
    std::string contention_table() const;

    /// Zeroes every site's samples, the blocked-on matrix, and the
    /// per-tenant totals; site pointers stay valid (measurement-window
    /// bracketing, same contract as Registry::reset).
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<SyncSite>> sites_;
    /// (site name, waiter, holder) -> {count, wait_ns}
    std::map<std::string,
             std::map<std::pair<uint64_t, uint64_t>,
                      std::pair<uint64_t, uint64_t>>>
        edges_;
    std::map<uint64_t, uint64_t> tenant_wait_;
};

#if CASCADE_SYNC_TELEMETRY

/// Instrumented std::mutex: BasicLockable/Lockable, so it works with
/// std::lock_guard / std::unique_lock / std::scoped_lock unchanged.
class Mutex {
  public:
    explicit Mutex(const char* site_name);

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock();
    bool try_lock();
    void unlock();

    SyncSite* site() const { return site_; }
    /// Tenant currently holding the mutex (0 if none or untenanted).
    uint64_t owner_tenant() const;

  private:
    static constexpr uint64_t kNoOwner = UINT64_MAX;

    void lock_contended();

    std::mutex m_;
    SyncSite* const site_;
    std::atomic<uint64_t> owner_{kNoOwner};
    uint64_t locked_at_ns_ = 0; ///< guarded by m_
};

/// Instrumented condition variable over condition_variable_any (so it
/// waits on telemetry::Mutex). Wait durations — including the predicate
/// re-check loop — are recorded against the CV's site.
class CondVar {
  public:
    explicit CondVar(const char* site_name);

    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

    template <typename Lock>
    void
    wait(Lock& lock)
    {
        const uint64_t t0 = sync_now_ns();
        cv_.wait(lock);
        note_wait(sync_now_ns() - t0);
    }

    template <typename Lock, typename Pred>
    void
    wait(Lock& lock, Pred pred)
    {
        const uint64_t t0 = sync_now_ns();
        cv_.wait(lock, std::move(pred));
        note_wait(sync_now_ns() - t0);
    }

    template <typename Lock, typename Rep, typename Period, typename Pred>
    bool
    wait_for(Lock& lock, const std::chrono::duration<Rep, Period>& dur,
             Pred pred)
    {
        const uint64_t t0 = sync_now_ns();
        const bool satisfied = cv_.wait_for(lock, dur, std::move(pred));
        note_wait(sync_now_ns() - t0);
        return satisfied;
    }

    template <typename Lock, typename Clock, typename Duration,
              typename Pred>
    bool
    wait_until(Lock& lock,
               const std::chrono::time_point<Clock, Duration>& deadline,
               Pred pred)
    {
        const uint64_t t0 = sync_now_ns();
        const bool satisfied =
            cv_.wait_until(lock, deadline, std::move(pred));
        note_wait(sync_now_ns() - t0);
        return satisfied;
    }

    SyncSite* site() const { return site_; }

  private:
    void note_wait(uint64_t waited_ns);

    std::condition_variable_any cv_;
    SyncSite* const site_;
};

#else // !CASCADE_SYNC_TELEMETRY

/// No-op variants: inline forwarders the optimizer collapses to the
/// std types. The site-name argument is swallowed at compile time.
class Mutex {
  public:
    explicit Mutex(const char*) {}

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() { m_.lock(); }
    bool try_lock() { return m_.try_lock(); }
    void unlock() { m_.unlock(); }

    SyncSite* site() const { return nullptr; }
    uint64_t owner_tenant() const { return 0; }

  private:
    std::mutex m_;
};

class CondVar {
  public:
    explicit CondVar(const char*) {}

    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

    template <typename Lock>
    void
    wait(Lock& lock)
    {
        cv_.wait(lock);
    }

    template <typename Lock, typename Pred>
    void
    wait(Lock& lock, Pred pred)
    {
        cv_.wait(lock, std::move(pred));
    }

    template <typename Lock, typename Rep, typename Period, typename Pred>
    bool
    wait_for(Lock& lock, const std::chrono::duration<Rep, Period>& dur,
             Pred pred)
    {
        return cv_.wait_for(lock, dur, std::move(pred));
    }

    template <typename Lock, typename Clock, typename Duration,
              typename Pred>
    bool
    wait_until(Lock& lock,
               const std::chrono::time_point<Clock, Duration>& deadline,
               Pred pred)
    {
        return cv_.wait_until(lock, deadline, std::move(pred));
    }

    SyncSite* site() const { return nullptr; }

  private:
    std::condition_variable_any cv_;
};

#endif // CASCADE_SYNC_TELEMETRY

} // namespace cascade::telemetry

#endif // CASCADE_TELEMETRY_SYNC_H
