#include "fpga/compile.h"

#include <chrono>

namespace cascade::fpga {

namespace {

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

CompileResult
compile(const verilog::ElaboratedModule& em, const CompileOptions& options)
{
    CompileResult result;
    const auto t0 = std::chrono::steady_clock::now();

    Diagnostics diags;
    auto nl = synthesize(em, &diags);
    if (nl == nullptr) {
        result.error = "synthesis failed:\n" + diags.str();
        return result;
    }
    result.report.netlist_nodes = nl->size();
    result.report.synth_seconds = seconds_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    MappedDesign mapped = technology_map(*nl);
    result.report.area = mapped.area;
    result.report.cells = mapped.cells.size();

    PlaceOptions popts;
    popts.effort = options.effort;
    popts.seed = options.seed;
    PlacementResult placement = place(mapped, popts);
    result.report.anneal_moves = placement.moves_evaluated;
    result.report.wirelength = placement.final_wirelength;
    result.report.place_seconds = seconds_since(t1);

    result.report.timing =
        analyze_timing(*nl, mapped, placement, options.target_clock_mhz);
    result.report.total_seconds = seconds_since(t0);

    result.netlist = std::shared_ptr<const Netlist>(std::move(nl));
    result.ok = true;
    return result;
}

std::unique_ptr<Bitstream>
FpgaDevice::program(const CompileResult& result, std::string* error,
                    bool allow_derated_clock,
                    double* actual_clock_mhz) const
{
    if (!result.ok) {
        if (error != nullptr) {
            *error = result.error;
        }
        return nullptr;
    }
    if (!result.report.area.fits(les_, bram_bits_)) {
        if (error != nullptr) {
            *error = "design does not fit: needs " +
                     std::to_string(result.report.area.les) + " LEs / " +
                     std::to_string(result.report.area.bram_bits) +
                     " BRAM bits";
        }
        return nullptr;
    }
    double clock = clock_mhz_;
    if (!result.report.timing.met) {
        if (!allow_derated_clock) {
            if (error != nullptr) {
                *error = "timing closure failed: Fmax " +
                         std::to_string(result.report.timing.fmax_mhz) +
                         " MHz below target";
            }
            return nullptr;
        }
        clock = result.report.timing.fmax_mhz * 0.9;
    }
    if (actual_clock_mhz != nullptr) {
        *actual_clock_mhz = clock;
    }
    return std::make_unique<Bitstream>(result.netlist);
}

} // namespace cascade::fpga
