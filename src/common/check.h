/// \file
/// Internal invariant checking. CASCADE_CHECK is for conditions that can
/// never fail unless Cascade itself is broken (gem5's panic()); user-caused
/// failures are reported through Diagnostics instead.

#ifndef CASCADE_COMMON_CHECK_H
#define CASCADE_COMMON_CHECK_H

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cascade {

namespace common_detail {

/// Called with the formatted failure message just before abort(). The
/// crash black box (telemetry/journal.h) installs itself here so a CHECK
/// failure dumps the event ring; an inline variable keeps common free of
/// any dependency on telemetry.
using CheckFailHook = void (*)(const char* message);
inline std::atomic<CheckFailHook> check_fail_hook{nullptr};

} // namespace common_detail

[[noreturn]] inline void
check_fail(const char* cond, const char* file, int line)
{
    char message[512];
    std::snprintf(message, sizeof(message),
                  "CASCADE_CHECK failed: %s at %s:%d", cond, file, line);
    std::fprintf(stderr, "%s\n", message);
    const auto hook = common_detail::check_fail_hook.load();
    if (hook != nullptr) {
        hook(message);
    }
    std::abort();
}

} // namespace cascade

#define CASCADE_CHECK(cond)                                                  \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::cascade::check_fail(#cond, __FILE__, __LINE__);                \
        }                                                                    \
    } while (0)

#define CASCADE_UNREACHABLE()                                                \
    ::cascade::check_fail("unreachable", __FILE__, __LINE__)

#endif // CASCADE_COMMON_CHECK_H
