#include "runtime/replay.h"

#include <cstdio>
#include <memory>

namespace cascade::runtime {

namespace {

/// Event classes. Input events are re-executed (they are the API calls
/// the original driver made); compared events are outputs the re-executed
/// session must reproduce byte-for-byte; everything else (repl.input,
/// log, compile.stale) is informational and ignored.
bool
is_compared(const std::string& type)
{
    return type == "eval" || type == "rebuild" ||
           type == "interrupt.enqueue" || type == "interrupt.flush" ||
           type == "monitor.line" || type == "compile.launch" ||
           type == "compile.done" || type == "compile.rejected" ||
           type == "adopt" || type == "jit.launch" ||
           type == "jit.adopt" || type == "jit.unavailable" ||
           type == "openloop.grant" ||
           type == "vcd.digest" || type == "finish" ||
           type == "debug.fire" || type == "debug.peek" ||
           type == "debug.step" || type == "debug.resume";
}

std::vector<uint8_t>
decode_hex(const std::string& hex)
{
    std::vector<uint8_t> out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i + 1 < hex.size(); i += 2) {
        unsigned v = 0;
        std::sscanf(hex.c_str() + i, "%2x", &v);
        out.push_back(static_cast<uint8_t>(v));
    }
    return out;
}

/// The in-order divergence detector, attached as the runtime journal's
/// observer. Compares each compared-class event the replay produces
/// against the next compared-class event of the recording.
struct Comparator {
    const std::vector<ReplayLogEvent>* expected;
    std::vector<size_t> compared_idx; ///< indices of compared events
    size_t next = 0;
    ReplayReport* report;

    void
    on_event(const telemetry::Journal::Event& event)
    {
        if (report->diverged || !is_compared(event.type)) {
            return;
        }
        if (next >= compared_idx.size()) {
            report->diverged = true;
            report->divergence_type = event.type;
            report->expected = "<none: recording ended>";
            report->actual = event.data;
            return;
        }
        const ReplayLogEvent& want = (*expected)[compared_idx[next]];
        if (event.type != want.type || event.data != want.data_raw) {
            report->diverged = true;
            report->divergence_seq = want.seq;
            report->divergence_vt = want.vt;
            report->divergence_type = want.type;
            report->expected = want.type + " " + want.data_raw;
            report->actual = event.type + " " + event.data;
            return;
        }
        ++next;
        ++report->outputs_compared;
    }
};

} // namespace

bool
load_journal(const std::string& path, ReplayLog* out, std::string* err)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (err != nullptr) {
            *err = "cannot open '" + path + "'";
        }
        return false;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);

    size_t start = 0;
    size_t lineno = 0;
    bool have_header = false;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            end = text.size();
        }
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        ++lineno;
        if (line.empty()) {
            continue;
        }
        telemetry::JsonValue v;
        std::string perr;
        if (!telemetry::parse_json(line, &v, &perr)) {
            if (err != nullptr) {
                *err = path + ":" + std::to_string(lineno) + ": " + perr;
            }
            return false;
        }
        if (!have_header) {
            if (v.get_str("schema") != "cascade.events.v1") {
                if (err != nullptr) {
                    *err = path + ": not a cascade.events.v1 journal";
                }
                return false;
            }
            const telemetry::JsonValue* h = v.find("header");
            if (h != nullptr) {
                out->header = *h;
            }
            have_header = true;
            continue;
        }
        ReplayLogEvent ev;
        ev.seq = v.get_u64("seq");
        ev.vt = v.get_u64("vt");
        ev.type = v.get_str("type");
        const telemetry::JsonValue* d = v.find("data");
        if (d != nullptr) {
            ev.data = *d;
        }
        // The payload's exact bytes: event_json() writes "data" last, so
        // the raw text runs from after the key to the line's final '}'.
        const size_t pos = line.find("\"data\":");
        if (pos != std::string::npos && line.size() > pos + 8) {
            ev.data_raw = line.substr(pos + 7, line.size() - pos - 8);
        }
        out->events.push_back(std::move(ev));
    }
    if (!have_header) {
        if (err != nullptr) {
            *err = path + ": empty journal";
        }
        return false;
    }
    return true;
}

Runtime::Options
options_from_header(const telemetry::JsonValue& header)
{
    Runtime::Options o;
    o.enable_inlining =
        header.get_bool("enable_inlining", o.enable_inlining);
    o.enable_hardware =
        header.get_bool("enable_hardware", o.enable_hardware);
    o.enable_jit = header.get_bool("enable_jit", o.enable_jit);
    o.enable_forwarding =
        header.get_bool("enable_forwarding", o.enable_forwarding);
    o.enable_open_loop =
        header.get_bool("enable_open_loop", o.enable_open_loop);
    o.native_mode = header.get_bool("native_mode", o.native_mode);
    o.compile_effort = header.get_num("compile_effort", o.compile_effort);
    o.device_clock_mhz =
        header.get_num("device_clock_mhz", o.device_clock_mhz);
    o.mmio_latency_s = header.get_num("mmio_latency_s", o.mmio_latency_s);
    o.device_les = header.get_u64("device_les", o.device_les);
    o.device_bram_bits =
        header.get_u64("device_bram_bits", o.device_bram_bits);
    o.open_loop_iterations =
        header.get_u64("open_loop_iterations", o.open_loop_iterations);
    o.open_loop_target_wall_s = header.get_num("open_loop_target_wall_s",
                                               o.open_loop_target_wall_s);
    o.profiling = header.get_bool("profiling", o.profiling);
    o.compile_seed = header.get_u64("compile_seed", o.compile_seed);
    return o;
}

ReplayReport
replay_into(Runtime* rt, const ReplayLog& log, const ReplayOptions& opts)
{
    ReplayReport report;

    // Extract everything the runtime must pin: per-version placement
    // seeds, the scheduler iteration each compile decision landed at, and
    // the open-loop grant sequence.
    Runtime::ReplaySchedule schedule;
    for (const ReplayLogEvent& ev : log.events) {
        if (ev.type == "adopt" || ev.type == "compile.rejected") {
            Runtime::ReplaySchedule::CompilePoint point;
            point.iteration = ev.data.get_u64("iteration");
            point.version = ev.data.get_u64("version");
            schedule.compile_points.push_back(point);
            if (ev.type == "compile.rejected") {
                // A rejection is forced verbatim on replay: hypervisor
                // denials (quota, shared-fabric capacity) cannot be
                // re-derived against the exclusive replay device.
                schedule.rejections[point.version] =
                    ev.data.get_str("error");
            }
        } else if (ev.type == "jit.adopt" || ev.type == "jit.unavailable") {
            // JIT-tier decisions replay at their recorded iteration, and
            // a recorded "no usable compiler" is forced verbatim (the
            // replay host's toolchain may differ from the recording's).
            Runtime::ReplaySchedule::CompilePoint point;
            point.iteration = ev.data.get_u64("iteration");
            point.version = ev.data.get_u64("version");
            schedule.jit_points.push_back(point);
            if (ev.type == "jit.unavailable") {
                schedule.jit_unavailable.insert(point.version);
            }
        } else if (ev.type == "openloop.grant") {
            schedule.grants.push_back(ev.data.get_u64("batch"));
        } else if (ev.type == "compile.launch") {
            schedule.seeds[ev.data.get_u64("version")] =
                ev.data.get_u64("seed");
        } else if (ev.type == "hypervisor.evict") {
            // Shared-mode evictions re-fire at their recorded scheduler
            // iteration (the hw->sw relocation is deterministic given
            // the iteration, so the session replays tick-exact).
            schedule.evictions.push_back(ev.data.get_u64("iteration"));
        }
    }
    rt->begin_replay(std::move(schedule));
    report.loaded = true;

    if (!opts.record_path.empty()) {
        std::string rerr;
        if (!rt->start_recording(opts.record_path, &rerr)) {
            report.error = "cannot re-record: " + rerr;
            return report;
        }
    }

    Comparator cmp;
    cmp.expected = &log.events;
    cmp.report = &report;
    for (size_t i = 0; i < log.events.size(); ++i) {
        if (is_compared(log.events[i].type)) {
            cmp.compared_idx.push_back(i);
        }
    }
    rt->journal().set_observer(
        [&cmp](const telemetry::Journal::Event& ev) { cmp.on_event(ev); });

    // Re-execute the recorded inputs in order. Compared events emitted by
    // these calls flow through the observer above; feeding stops at the
    // first divergence (the session has left the recorded trajectory).
    for (const ReplayLogEvent& ev : log.events) {
        if (report.diverged) {
            break;
        }
        const std::string& t = ev.type;
        if (t == "eval") {
            rt->eval(ev.data.get_str("src"));
        } else if (t == "api.step") {
            const uint64_t steps = ev.data.get_u64("n");
            for (uint64_t i = 0; i < steps && !report.diverged; ++i) {
                rt->step();
            }
        } else if (t == "api.run") {
            rt->run(ev.data.get_u64("n"));
        } else if (t == "api.run_ticks") {
            rt->run_for_ticks(ev.data.get_u64("n"));
        } else if (t == "api.wait_hw") {
            // A recorded timeout is not re-waited (it proved nothing
            // adopted); a recorded success blocks until the pinned
            // adoption fires.
            if (ev.data.get_bool("ok")) {
                rt->wait_for_hardware(opts.hardware_wait_s);
            }
        } else if (t == "api.set_pad") {
            rt->set_pad(ev.data.get_u64("value"));
        } else if (t == "api.fifo_push") {
            rt->fifo_push(decode_hex(ev.data.get_str("hex")));
        } else if (t == "api.led") {
            const BitVector led = rt->led_state();
            if (led.to_uint64() != ev.data.get_u64("value")) {
                report.diverged = true;
                report.divergence_seq = ev.seq;
                report.divergence_vt = ev.vt;
                report.divergence_type = t;
                report.expected = t + " " + ev.data_raw;
                report.actual =
                    t + " {\"value\":" + std::to_string(led.to_uint64()) +
                    "}";
            }
        } else if (t == "api.vcd") {
            rt->vcd_open(ev.data.get_str("path"));
        } else if (t == "api.vcd_close") {
            rt->close_vcd();
        } else if (t == "api.probe") {
            rt->add_probe(ev.data.get_str("name"));
        } else if (t == "api.unprobe") {
            rt->remove_probe(ev.data.get_str("name"));
        } else if (t == "api.profiling") {
            rt->set_profiling(ev.data.get_bool("on"));
        } else if (t == "api.debug_break") {
            rt->debug_break(ev.data.get_str("signal"),
                            ev.data.get_str("op"),
                            ev.data.get_str("value"));
        } else if (t == "api.debug_watch") {
            rt->debug_watch(ev.data.get_str("signal"));
        } else if (t == "api.debug_delete") {
            rt->debug_delete(ev.data.get_u64("id"));
        } else if (t == "api.debug_step") {
            rt->debug_step(ev.data.get_u64("n"));
        } else if (t == "api.debug_continue") {
            rt->debug_continue();
        } else if (t == "api.debug_peek") {
            rt->debug_peek(ev.data.get_str("signal"));
        } else {
            continue; // compared or informational: not an input
        }
        ++report.inputs_fed;
    }

    // The recording may end with compared events the replay never
    // produced (e.g. it recorded an adoption the replay missed).
    if (!report.diverged && cmp.next < cmp.compared_idx.size()) {
        const ReplayLogEvent& want =
            log.events[cmp.compared_idx[cmp.next]];
        report.diverged = true;
        report.divergence_seq = want.seq;
        report.divergence_vt = want.vt;
        report.divergence_type = want.type;
        report.expected = want.type + " " + want.data_raw;
        report.actual = "<missing: replay produced no such event>";
    }

    rt->journal().set_observer(nullptr);
    if (!opts.record_path.empty()) {
        rt->stop_recording();
    }
    report.ok = !report.diverged && report.error.empty();
    return report;
}

ReplayReport
replay_journal(const std::string& path, const ReplayOptions& opts)
{
    ReplayLog log;
    ReplayReport report;
    if (!load_journal(path, &log, &report.error)) {
        return report;
    }
    Runtime rt(options_from_header(log.header));
    if (opts.echo) {
        rt.on_output = [](const std::string& text) {
            std::fputs(text.c_str(), stdout);
            std::fflush(stdout);
        };
    }
    return replay_into(&rt, log, opts);
}

std::string
ReplayReport::summary() const
{
    if (!error.empty()) {
        return "replay failed: " + error;
    }
    if (diverged) {
        return "replay DIVERGED at recorded seq " +
               std::to_string(divergence_seq) + " (vt " +
               std::to_string(divergence_vt) + ", " + divergence_type +
               ")\n  expected: " + expected + "\n  actual:   " + actual;
    }
    return "replay ok: " + std::to_string(inputs_fed) +
           " inputs re-fed, " + std::to_string(outputs_compared) +
           " output events matched";
}

} // namespace cascade::runtime
