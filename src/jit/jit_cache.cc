#include "jit/jit_cache.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "telemetry/journal.h"

namespace cascade::jit {

namespace {

/// Resident modules, keyed by digest; never unloaded (see header).
std::mutex g_mutex;
std::map<std::string, JitModule>& registry()
{
    static auto* r = new std::map<std::string, JitModule>();
    return *r;
}

bool
file_exists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

bool
runnable(const std::string& cmd)
{
    if (cmd.empty()) {
        return false;
    }
    const std::string probe =
        "command -v '" + cmd + "' >/dev/null 2>&1";
    return std::system(probe.c_str()) == 0;
}

/// Resolves every ABI symbol from \p handle; false (with *error) if the
/// object is not a cascade JIT kernel of the expected ABI revision.
bool
resolve(void* handle, const std::string& digest, JitModule* m,
        std::string* error)
{
    auto sym = [&](const char* name) { return ::dlsym(handle, name); };
    auto* abi = reinterpret_cast<unsigned (*)()>(
        sym("cascade_jit_abi_version"));
    auto* dig = reinterpret_cast<const char* (*)()>(
        sym("cascade_jit_digest"));
    m->handle = handle;
    m->create = reinterpret_cast<void* (*)()>(sym("cascade_jit_new"));
    m->destroy = reinterpret_cast<void (*)(void*)>(sym("cascade_jit_free"));
    m->eval = reinterpret_cast<void (*)(void*)>(sym("cascade_jit_eval"));
    m->step = reinterpret_cast<void (*)(void*)>(sym("cascade_jit_step"));
    m->cycles = reinterpret_cast<uint64_t (*)(void*)>(
        sym("cascade_jit_cycles"));
    m->set_input = reinterpret_cast<void (*)(void*, uint32_t,
                                             const uint64_t*)>(
        sym("cascade_jit_set_input"));
    m->get_output = reinterpret_cast<void (*)(void*, uint32_t, uint64_t*)>(
        sym("cascade_jit_get_output"));
    m->get_reg = reinterpret_cast<void (*)(void*, uint32_t, uint64_t*)>(
        sym("cascade_jit_get_reg"));
    m->set_reg = reinterpret_cast<void (*)(void*, uint32_t,
                                           const uint64_t*)>(
        sym("cascade_jit_set_reg"));
    m->get_mem = reinterpret_cast<void (*)(void*, uint32_t, uint64_t,
                                           uint64_t*)>(
        sym("cascade_jit_get_mem"));
    m->set_mem = reinterpret_cast<void (*)(void*, uint32_t, uint64_t,
                                           const uint64_t*)>(
        sym("cascade_jit_set_mem"));
    m->latch_count = reinterpret_cast<uint64_t (*)(void*, uint32_t)>(
        sym("cascade_jit_latch_count"));
    if (abi == nullptr || dig == nullptr || m->create == nullptr ||
        m->destroy == nullptr || m->eval == nullptr || m->step == nullptr ||
        m->cycles == nullptr || m->set_input == nullptr ||
        m->get_output == nullptr || m->get_reg == nullptr ||
        m->set_reg == nullptr || m->get_mem == nullptr ||
        m->set_mem == nullptr || m->latch_count == nullptr) {
        *error = "jit kernel is missing ABI symbols";
        return false;
    }
    if (abi() != kJitAbiVersion) {
        *error = "jit kernel ABI version mismatch";
        return false;
    }
    if (digest != dig()) {
        *error = "jit kernel digest mismatch";
        return false;
    }
    return true;
}

bool
write_file(const std::string& path, const std::string& text)
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        return false;
    }
    f << text;
    f.flush();
    return static_cast<bool>(f);
}

} // namespace

std::string
find_compiler()
{
    const char* env = std::getenv("CASCADE_JIT_CXX");
    if (env != nullptr && *env != '\0') {
        // Explicit override: honored verbatim, never falls back — a bogus
        // path is how tests force the tier unavailable.
        return runnable(env) ? std::string(env) : std::string();
    }
    for (const char* cand : {"c++", "g++", "clang++"}) {
        if (runnable(cand)) {
            return cand;
        }
    }
    return {};
}

bool
compiler_available()
{
    return !find_compiler().empty();
}

std::string
cache_dir()
{
    std::string dir;
    const char* env = std::getenv("CASCADE_JIT_CACHE_DIR");
    if (env != nullptr && *env != '\0') {
        dir = env;
    } else {
        const char* tmp = std::getenv("TMPDIR");
        dir = std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
              "/cascade-jit-" + std::to_string(::getuid());
    }
    ::mkdir(dir.c_str(), 0700); // EEXIST is fine
    return dir;
}

std::string
source_path_for(const std::string& digest)
{
    return cache_dir() + "/" + digest + ".cc";
}

const JitModule*
build_module(const std::string& source_body, std::string* digest_out,
             bool* cache_hit, std::string* error)
{
    const std::string digest = telemetry::digest_hex(source_body);
    if (digest_out != nullptr) {
        *digest_out = digest;
    }
    if (cache_hit != nullptr) {
        *cache_hit = false;
    }
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        const auto it = registry().find(digest);
        if (it != registry().end()) {
            if (cache_hit != nullptr) {
                *cache_hit = true;
            }
            return &it->second;
        }
    }

    const std::string dir = cache_dir();
    const std::string so_path = dir + "/" + digest + ".so";
    const std::string cc_path = source_path_for(digest);
    const std::string full =
        source_body + "\nextern \"C\" const char* cascade_jit_digest() { "
                      "return \"" + digest + "\"; }\n";

    // Keep the generated source beside the object: it is the CI artifact
    // and the debuggable form of the kernel.
    if (!file_exists(cc_path)) {
        write_file(cc_path, full);
    }

    // Warm path: a previous session (or tenant) already compiled this
    // exact source.
    if (file_exists(so_path)) {
        void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
        if (handle != nullptr) {
            JitModule m;
            std::string verify_err;
            if (resolve(handle, digest, &m, &verify_err)) {
                std::lock_guard<std::mutex> lock(g_mutex);
                auto [it, inserted] = registry().emplace(digest, m);
                if (!inserted) {
                    ::dlclose(handle); // raced another builder; theirs wins
                }
                if (cache_hit != nullptr) {
                    *cache_hit = true;
                }
                return &it->second;
            }
            ::dlclose(handle); // stale or foreign object: rebuild below
        }
    }

    const std::string cxx = find_compiler();
    if (cxx.empty()) {
        *error = "no usable C++ compiler (set CASCADE_JIT_CXX or install "
                 "c++/g++/clang++)";
        return nullptr;
    }
    const std::string tmp_so =
        so_path + ".tmp" + std::to_string(::getpid());
    const std::string log_path = dir + "/" + digest + ".log";
    const std::string cmd = "'" + cxx +
                            "' -std=c++17 -O2 -fPIC -shared -o '" + tmp_so +
                            "' '" + cc_path + "' 2> '" + log_path + "'";
    const int rc = std::system(cmd.c_str());
    if (rc != 0 || !file_exists(tmp_so)) {
        *error = "jit compile failed (exit " + std::to_string(rc) +
                 ", log: " + log_path + ")";
        ::unlink(tmp_so.c_str());
        return nullptr;
    }
    if (::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
        *error = "jit cache rename failed for " + so_path;
        ::unlink(tmp_so.c_str());
        return nullptr;
    }

    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        const char* why = ::dlerror();
        *error = std::string("dlopen failed: ") +
                 (why != nullptr ? why : "unknown");
        return nullptr;
    }
    JitModule m;
    if (!resolve(handle, digest, &m, error)) {
        ::dlclose(handle);
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(g_mutex);
    auto [it, inserted] = registry().emplace(digest, m);
    if (!inserted) {
        ::dlclose(handle);
    }
    return &it->second;
}

} // namespace cascade::jit
