/// \file
/// The evaluation workloads (paper §6), authored in the Cascade Verilog
/// subset and shared by the examples and the benchmark harness:
///  - a SHA-256 proof-of-work miner (§6.1),
///  - a streaming regular-expression matcher fed by the stdlib FIFO (§6.2),
///  - a Needleman-Wunsch sequence aligner (§6.4, the UT class assignment).

#ifndef CASCADE_WORKLOADS_WORKLOADS_H
#define CASCADE_WORKLOADS_WORKLOADS_H

#include <string>

namespace cascade::workloads {

/// SHA-256 proof-of-work miner: iterative compression (one round per
/// cycle over a 16-entry message schedule), nonce sweep, hit detection
/// against a difficulty target. REPL items for the implicit root module;
/// instantiates Led and displays each golden nonce.
std::string proof_of_work_source(uint32_t target_zero_bits,
                                 bool with_display = true);

/// Standalone-module variant (for direct "Quartus" compilation).
std::string proof_of_work_module(uint32_t target_zero_bits);

/// Streaming regex matcher: a hard-coded DFA for the pattern
/// "GET /[a-z]+ " over bytes popped from the stdlib FIFO; counts matches.
std::string regex_stream_source(bool with_display = false);

/// Standalone-module variant with the byte stream on a port.
std::string regex_stream_module();

/// Needleman-Wunsch aligner for two \p n-character (2-bit encoded)
/// sequences, one matrix cell per cycle, score via $display at the end.
/// \p style varies the "student solution": 0 = straightforward,
/// 1 = chatty (many displays), 2 = helper-function heavy.
std::string needleman_wunsch_source(uint32_t n, int style);

} // namespace cascade::workloads

#endif // CASCADE_WORKLOADS_WORKLOADS_H
