/// \file
/// Table 5 (multi-tenancy, beyond the paper's single-user deployment):
/// M concurrent runtimes sharing ONE FpgaDevice through the fabric
/// hypervisor and ONE pooled compile service. Two results:
///
///  1. Aggregate open-loop throughput (summed virtual clock ticks per
///     second across all tenants) as the tenant count grows 1 -> 2 -> 4.
///     Spatial partitioning means tenants run concurrently on disjoint LE
///     slices; the fair batch-grant capping keeps any one tenant from
///     monopolising control.
///
///  2. Compile latency cold vs warm: the same elaborated design compiled
///     twice through the CompileService. The second submit hits the
///     content-addressed bitstream cache and must come back >= 10x faster
///     than the cold flow (in practice, orders of magnitude).
///
/// Output: BENCH_table5_multi_tenant.json (headline matrix CI's
/// smoke-bench job uploads and diffs), plus the usual telemetry sidecars
/// table5_multi_tenant.stats.json (tenant-0 stats_json() snapshot per
/// fleet size) and table5_multi_tenant.trace.json (Chrome trace spans).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fpga/compile.h"
#include "hypervisor/fabric_manager.h"
#include "runtime/runtime.h"
#include "service/compile_service.h"
#include "telemetry/trace.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

using cascade::hypervisor::FabricManager;
using cascade::runtime::Runtime;
using cascade::service::CompileService;

namespace {

double
seconds_since(const std::chrono::steady_clock::time_point& t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

Runtime::Options
tenant_options(int i)
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.open_loop_target_wall_s = 0.02;
    // One fixed seed per tenant keeps re-compiles content-identical, so
    // the later fleet rounds exercise the cache-hit admission path.
    opts.compile_seed = 7;
    opts.tenant_name = "bench-t" + std::to_string(i);
    return opts;
}

/// Tenant i's program: same shape, different arithmetic, so each fleet
/// member compiles (and caches) a distinct design.
std::string
tenant_program(int i)
{
    std::string src;
    src += "reg [15:0] n = 0;\n";
    src += "always @(posedge clk.val) n <= n + " + std::to_string(i + 1) +
           ";\n";
    return src;
}

struct FleetResult {
    double aggregate_ticks_per_s = 0;
    uint64_t total_ticks = 0;
    std::string tenant0_stats;
};

FleetResult
run_fleet(int tenants, CompileService* service)
{
    FabricManager fabric; // fresh default device per fleet size
    FleetResult out;
    std::vector<double> rates(tenants, 0.0);
    std::vector<uint64_t> ticks(tenants, 0);
    std::vector<std::string> stats(tenants);
    std::vector<std::thread> threads;
    threads.reserve(tenants);
    for (int i = 0; i < tenants; ++i) {
        threads.emplace_back([&, i] {
            Runtime rt(tenant_options(i), *service, fabric);
            rt.on_output = [](const std::string&) {};
            std::string errors;
            if (!rt.eval(tenant_program(i), &errors)) {
                std::fprintf(stderr, "eval failed: %s\n", errors.c_str());
                return;
            }
            if (!rt.wait_for_hardware(120)) {
                std::fprintf(stderr, "tenant %d never reached hardware\n",
                             i);
                return;
            }
            const uint64_t t_before = rt.virtual_ticks();
            const auto t0 = std::chrono::steady_clock::now();
            rt.run_for_ticks(20000);
            const double wall = seconds_since(t0);
            ticks[i] = rt.virtual_ticks() - t_before;
            rates[i] = wall > 0 ? static_cast<double>(ticks[i]) / wall : 0;
            if (i == 0) {
                stats[0] = rt.stats_json();
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    for (int i = 0; i < tenants; ++i) {
        out.aggregate_ticks_per_s += rates[i];
        out.total_ticks += ticks[i];
    }
    out.tenant0_stats = stats[0];
    return out;
}

} // namespace

int
main()
{
    std::printf("Table 5: multi-tenant fabric sharing and compile cache\n");

    // -- Compile latency: cold flow vs content-addressed cache hit. -----
    cascade::Diagnostics diags;
    auto unit = cascade::verilog::parse(
        cascade::workloads::proof_of_work_module(16), &diags);
    cascade::verilog::Elaborator elab(&diags);
    std::shared_ptr<const cascade::verilog::ElaboratedModule> em =
        elab.elaborate(*unit.modules[0]);
    if (em == nullptr) {
        std::fprintf(stderr, "elab failed: %s\n", diags.str().c_str());
        return 1;
    }
    cascade::fpga::CompileOptions copts;
    copts.effort = 0.3;
    copts.seed = 7;

    CompileService::Config cold_cfg;
    cold_cfg.workers = 1;
    CompileService latency_svc(cold_cfg);
    const uint64_t client = latency_svc.register_client();

    auto timed_compile = [&](uint64_t version, bool* cache_hit) {
        const auto t0 = std::chrono::steady_clock::now();
        CompileService::Job job;
        job.version = version;
        job.module = em;
        job.options = copts;
        latency_svc.submit(client, std::move(job));
        latency_svc.wait_for_done(client, 600);
        const auto done = latency_svc.poll(client);
        const double elapsed = seconds_since(t0);
        if (done.size() != 1 || !done[0].result.ok) {
            std::fprintf(stderr, "compile %llu failed\n",
                         static_cast<unsigned long long>(version));
            std::exit(1);
        }
        *cache_hit = done[0].result.report.cache_hit;
        return elapsed;
    };
    bool cold_hit = false;
    bool warm_hit = false;
    const double cold_s = timed_compile(1, &cold_hit);
    const double warm_s = timed_compile(2, &warm_hit);
    latency_svc.unregister_client(client);
    const double speedup = cold_s / std::max(warm_s, 1e-9);
    std::printf("compile latency: cold %.4fs (hit=%d)  warm %.6fs "
                "(hit=%d)  speedup %.0fx\n",
                cold_s, cold_hit, warm_s, warm_hit, speedup);

    // -- Aggregate throughput vs tenant count. --------------------------
    // One shared service across fleet sizes: tenants 0..1 of the M=2 and
    // M=4 rounds re-compile designs already cached by earlier rounds, so
    // their path to hardware goes through cache-hit admission.
    CompileService::Config fleet_cfg;
    fleet_cfg.workers = 2;
    CompileService fleet_svc(fleet_cfg);

    std::printf("%-8s %18s %14s\n", "tenants", "aggregate ticks/s",
                "total ticks");
    std::string results_body;
    std::string sidecar_body;
    for (const int m : {1, 2, 4}) {
        const FleetResult r = run_fleet(m, &fleet_svc);
        std::printf("%-8d %18.0f %14llu\n", m, r.aggregate_ticks_per_s,
                    static_cast<unsigned long long>(r.total_ticks));
        char row[128];
        std::snprintf(row, sizeof row,
                      "{\"tenants\":%d,\"aggregate_ticks_per_s\":%.1f,"
                      "\"total_ticks\":%llu}",
                      m, r.aggregate_ticks_per_s,
                      static_cast<unsigned long long>(r.total_ticks));
        if (!results_body.empty()) {
            results_body += ',';
        }
        results_body += row;
        if (!r.tenant0_stats.empty()) {
            if (!sidecar_body.empty()) {
                sidecar_body += ',';
            }
            sidecar_body += "\"tenants_" + std::to_string(m) +
                            "\":" + r.tenant0_stats;
        }
    }

    {
        std::ofstream out("BENCH_table5_multi_tenant.json");
        char compile_row[256];
        std::snprintf(compile_row, sizeof compile_row,
                      "\"compile\":{\"cold_seconds\":%.6f,"
                      "\"warm_seconds\":%.6f,\"warm_cache_hit\":%s,"
                      "\"speedup\":%.1f}",
                      cold_s, warm_s, warm_hit ? "true" : "false",
                      speedup);
        out << "{\"schema\":\"cascade.bench.v1\","
            << "\"bench\":\"table5_multi_tenant\"," << compile_row
            << ",\"fleets\":[" << results_body << "]}\n";
        std::fprintf(stderr,
                     "# results -> BENCH_table5_multi_tenant.json\n");
    }
    {
        std::ofstream sidecar("table5_multi_tenant.stats.json");
        sidecar << '{' << sidecar_body << "}\n";
        std::fprintf(stderr,
                     "# stats sidecar -> table5_multi_tenant.stats.json\n");
    }
    cascade::telemetry::Tracer::global().write_chrome_json(
        "table5_multi_tenant.trace.json");
    std::fprintf(stderr, "# trace -> table5_multi_tenant.trace.json\n");

    if (!warm_hit || speedup < 10.0) {
        std::fprintf(stderr,
                     "FAIL: warm compile not a cache hit or < 10x faster "
                     "than cold\n");
        return 1;
    }
    return 0;
}
