/// \file
/// Tests for the fabric hypervisor: several runtimes spatially sharing one
/// FpgaDevice through a FabricManager, with admission control, per-tenant
/// quotas, LRU eviction under capacity pressure, and the observability
/// guarantees across a forced hw -> sw -> hw round trip ($monitor output,
/// VCD dumps and profile totals all byte-identical to an exclusive run).

#include "hypervisor/fabric_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fpga/compile.h"
#include "runtime/runtime.h"
#include "service/compile_service.h"
#include "telemetry/journal.h"
#include "telemetry/sync.h"
#include "verilog/parser.h"

namespace cascade {
namespace {

using hypervisor::FabricManager;
using runtime::Runtime;
using service::CompileService;

Runtime::Options
hw_fast()
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.open_loop_target_wall_s = 0.02;
    // A fixed placement seed keeps every compile of one program
    // content-identical, so re-compiles after an eviction hit the cache.
    opts.compile_seed = 7;
    return opts;
}

Runtime::Options
sw_only()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    return opts;
}

/// Tenant i's program: same shape, different arithmetic, so the printed
/// streams are distinct per tenant and any cross-tenant state bleed would
/// change the bytes.
std::string
tenant_program(int i)
{
    const int inc = i + 1;
    std::string src;
    src += "reg [15:0] n = 0;\n";
    src += "wire [15:0] h;\n";
    src += "assign h = (n * 16'h9E37) ^ (n >> " + std::to_string(i + 1) +
           ");\n";
    src += "always @(posedge clk.val) begin\n";
    src += "  n <= n + " + std::to_string(inc) + ";\n";
    src += "  if (n % 64 == 0) $display(\"t" + std::to_string(i) +
           " n=%d h=%d\", n, h);\n";
    src += "end\n";
    src += "initial $monitor(\"t" + std::to_string(i) +
           " mon h=%d\", h[7:0]);\n";
    return src;
}

bool
step_until_hardware(Runtime* rt, double timeout_s = 60.0)
{
    const auto start = std::chrono::steady_clock::now();
    while (!rt->hardware_ready()) {
        rt->step();
        if (std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count() > timeout_s) {
            return false;
        }
    }
    return true;
}

std::string
temp_path(const std::string& name)
{
    return std::string(::testing::TempDir()) + "hyp_" + name;
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
strip_date(const std::string& vcd)
{
    const size_t pos = vcd.find("$date");
    if (pos == std::string::npos) {
        return vcd;
    }
    const size_t end = vcd.find("$end\n", pos);
    if (end == std::string::npos) {
        return vcd;
    }
    return vcd.substr(0, pos) + vcd.substr(end + 5);
}

/// Flattens a profile into identity -> deterministic trigger totals
/// (eval_ns is wall time and excluded on purpose).
std::map<std::string, uint64_t>
trigger_totals(const std::vector<Runtime::ProfileEntry>& entries)
{
    std::map<std::string, uint64_t> out;
    for (const auto& e : entries) {
        std::string id = e.instance + '|' + e.kind + '|' + e.key + '|';
        for (const auto& t : e.triggers) {
            id += t + ',';
        }
        out[id] += e.total_triggers();
    }
    return out;
}

// ---------------------------------------------------------------------
// Multi-tenant sharing: the acceptance scenario
// ---------------------------------------------------------------------

/// Exclusive reference: tenant i's program on a private device, same API
/// call sequence as the shared run (two run_for_ticks halves).
std::string
exclusive_run(int i, uint64_t half_ticks)
{
    Runtime rt(hw_fast());
    std::string out;
    rt.on_output = [&out](const std::string& text) { out += text; };
    EXPECT_TRUE(rt.eval(tenant_program(i)));
    EXPECT_TRUE(rt.wait_for_hardware(60.0));
    rt.run_for_ticks(half_ticks);
    rt.run_for_ticks(half_ticks);
    return out;
}

TEST(Hypervisor, FourConcurrentTenantsByteIdenticalWithForcedEviction)
{
    constexpr int kTenants = 4;
    constexpr uint64_t kHalf = 400;

    // References first (no shared state involved).
    std::vector<std::string> expected(kTenants);
    for (int i = 0; i < kTenants; ++i) {
        expected[i] = exclusive_run(i, kHalf);
        ASSERT_FALSE(expected[i].empty());
    }

    // One device, one compile service, four concurrent runtimes.
    CompileService::Config cfg;
    cfg.workers = 2;
    CompileService svc(cfg);
    FabricManager fm; // Cyclone V-class default: all four fit
    std::vector<std::string> actual(kTenants);
    std::vector<uint64_t> evictions(kTenants, 0);
    std::vector<std::thread> threads;
    for (int i = 0; i < kTenants; ++i) {
        threads.emplace_back([&, i] {
            Runtime::Options opts = hw_fast();
            opts.tenant_name = "tenant" + std::to_string(i);
            Runtime rt(opts, svc, fm);
            rt.on_output = [&actual, i](const std::string& text) {
                actual[i] += text;
            };
            ASSERT_TRUE(rt.eval(tenant_program(i)));
            ASSERT_TRUE(rt.wait_for_hardware(120.0));
            rt.run_for_ticks(kHalf);
            // Forced eviction: the tenant falls back to software at its
            // next window, recompiles, and is re-admitted mid-run.
            fm.request_eviction(rt.tenant_id());
            ASSERT_TRUE(step_until_hardware(&rt, 120.0));
            rt.run_for_ticks(kHalf);
            // The count of completed evictions for this slot is visible
            // in the slot map.
            for (const auto& s : fm.slot_map()) {
                if (s.tenant == rt.tenant_id()) {
                    evictions[i] = s.evictions;
                }
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }

    for (int i = 0; i < kTenants; ++i) {
        // step_until_hardware advances the clock past the reference run's
        // tick count, so the shared stream is a strict superset: the
        // reference must be a prefix, byte for byte.
        ASSERT_GE(actual[i].size(), expected[i].size()) << "tenant " << i;
        EXPECT_EQ(actual[i].substr(0, expected[i].size()), expected[i])
            << "tenant " << i << " diverged from its exclusive run";
        EXPECT_GE(evictions[i], 1u) << "tenant " << i << " never evicted";
    }
    // All four unregistered on destruction.
    EXPECT_EQ(fm.tenant_count(), 0u);
    EXPECT_EQ(fm.resident_count(), 0u);
}

TEST(Hypervisor, MultiTenantContentionReportRoundTrip)
{
    // Concurrent tenants hammer the instrumented fabric and service
    // locks; afterwards the contention report must name those sites and
    // every shared-mode journal event must carry its tenant tag. Run
    // under TSan, this doubles as the wrappers' race check.
    telemetry::SyncRegistry::global().reset();
    constexpr int kTenants = 4;
    CompileService::Config cfg;
    cfg.workers = 2;
    CompileService svc(cfg);
    FabricManager fm;
    std::vector<std::thread> threads;
    std::vector<uint64_t> tenant_ids(kTenants, 0);
    std::vector<std::vector<telemetry::Journal::Event>> rings(kTenants);
    for (int i = 0; i < kTenants; ++i) {
        threads.emplace_back([&, i] {
            Runtime::Options opts = hw_fast();
            opts.tenant_name = "ct" + std::to_string(i);
            Runtime rt(opts, svc, fm);
            rt.on_output = [](const std::string&) {};
            ASSERT_TRUE(rt.eval(tenant_program(i)));
            ASSERT_TRUE(rt.wait_for_hardware(120.0));
            rt.run_for_ticks(200);
            tenant_ids[i] = rt.tenant_id();
            rings[i] = rt.journal().ring();
        });
    }
    for (auto& t : threads) {
        t.join();
    }

    const std::string json =
        telemetry::SyncRegistry::global().contention_json();
    EXPECT_NE(json.find("\"schema\":\"cascade.contention.v1\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"fabric.slots\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"service.queue\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"journal.ring\""), std::string::npos) << json;

    for (int i = 0; i < kTenants; ++i) {
        ASSERT_FALSE(rings[i].empty()) << "tenant " << i;
        ASSERT_NE(tenant_ids[i], 0u);
        for (const auto& event : rings[i]) {
            EXPECT_EQ(event.tenant, tenant_ids[i])
                << "tenant " << i << " event " << event.type;
            const std::string line =
                telemetry::Journal::event_json(event);
            EXPECT_NE(line.find("\"tenant\":" +
                                std::to_string(tenant_ids[i])),
                      std::string::npos)
                << line;
        }
    }
    telemetry::SyncRegistry::global().reset();
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(Hypervisor, QuotaDenialIsFinalAndReported)
{
    CompileService svc;
    FabricManager fm;
    Runtime::Options opts = hw_fast();
    opts.tenant_name = "pinned";
    opts.tenant_le_quota = 1; // nothing real fits in one LE
    Runtime rt(opts, svc, fm);
    std::string out;
    rt.on_output = [&out](const std::string& text) { out += text; };
    ASSERT_TRUE(rt.eval(tenant_program(0)));
    EXPECT_FALSE(rt.wait_for_hardware(30.0));
    rt.run_for_ticks(4); // flush the rejection interrupt
    // The quota denial keeps the tenant off the FABRIC for good; the
    // JIT tier consumes no LEs, so the program may still climb to the
    // in-process kernel (or stay in software on hosts without a
    // compiler). Either way it never becomes fabric-resident.
    EXPECT_TRUE(rt.user_location() == runtime::Location::Software ||
                rt.user_location() == runtime::Location::Jit)
        << static_cast<int>(rt.user_location());
    EXPECT_NE(out.find("hardware compilation rejected"), std::string::npos)
        << out;
    EXPECT_NE(out.find("tenant LE quota exceeded"), std::string::npos)
        << out;
    EXPECT_EQ(fm.resident_count(), 0u);
}

TEST(Hypervisor, CapacityPressureEvictsIdleTenantAndAdmitsWaiter)
{
    // Size the device so exactly one of the two programs fits. Measure
    // the real fabric footprint (wrapper included) by adopting each
    // program once on an uncontended fabric; the compiles also warm the
    // shared service's cache, so the contended phase below re-admits
    // through cache hits.
    CompileService svc;
    uint64_t area = 0;
    for (int i = 0; i < 2; ++i) {
        FabricManager probe_fm;
        Runtime::Options po = hw_fast();
        Runtime rt(po, svc, probe_fm);
        rt.on_output = [](const std::string&) {};
        ASSERT_TRUE(rt.eval(tenant_program(i)));
        ASSERT_TRUE(rt.wait_for_hardware(60.0));
        for (const auto& s : probe_fm.slot_map()) {
            area = std::max(area, s.le_count);
        }
    }
    ASSERT_GT(area, 0u);
    const uint64_t one_fits = area + area / 2;

    FabricManager fm{fpga::FpgaDevice(one_fits, 11000000, 50.0)};

    Runtime::Options oa = hw_fast();
    oa.tenant_name = "first";
    Runtime a(oa, svc, fm);
    a.on_output = [](const std::string&) {};
    ASSERT_TRUE(a.eval(tenant_program(0)));
    ASSERT_TRUE(a.wait_for_hardware(60.0));
    EXPECT_EQ(fm.resident_count(), 1u);

    Runtime::Options ob = hw_fast();
    ob.tenant_name = "second";
    Runtime b(ob, svc, fm);
    b.on_output = [](const std::string&) {};
    ASSERT_TRUE(b.eval(tenant_program(1)));

    // Interleave: b's finished compile is denied retryably (fabric is
    // full), which flags `a` for eviction; `a` self-evicts at its next
    // window; the capacity change re-admits the parked `b`.
    const auto start = std::chrono::steady_clock::now();
    while (!b.hardware_ready()) {
        a.step();
        b.step();
        ASSERT_LT(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count(),
                  120.0)
            << "second tenant was never admitted";
    }
    // Evicted off the FABRIC — but the JIT tier holds no LEs, so the
    // evictee may land on its in-process kernel instead of the bare
    // interpreter (the eviction-fallback rung of the tier ladder).
    EXPECT_TRUE(a.user_location() == runtime::Location::Software ||
                a.user_location() == runtime::Location::Jit)
        << static_cast<int>(a.user_location());
    EXPECT_EQ(fm.resident_count(), 1u);
    bool a_evicted = false;
    for (const auto& s : fm.slot_map()) {
        if (s.name == "first" && s.evictions >= 1) {
            a_evicted = true;
        }
    }
    EXPECT_TRUE(a_evicted);
}

// ---------------------------------------------------------------------
// Observability continuity across eviction
// ---------------------------------------------------------------------

TEST(Hypervisor, EvictionRoundTripPreservesMonitorVcdAndProfile)
{
    constexpr uint64_t kHalf = 12;
    // No continuous assign: interpreter-side continuous-eval counts are
    // not a placement-invariant observable (profile_test pins what is),
    // and this test isolates the eviction, not the placement.
    const char* const program =
        "reg [15:0] n = 0;\n"
        "always @(posedge clk.val) begin\n"
        "  n <= n + 3;\n"
        "  if (n % 8 == 0) $display(\"n=%d\", n);\n"
        "end\n"
        "initial $monitor(\"mon n=%d\", n[7:0]);\n";

    // The reference: the identical exclusive hardware run, uninterrupted.
    // The shared run below differs from it ONLY by the forced mid-run
    // hw -> sw -> hw round trip.
    std::string ref_out;
    std::string ref_vcd;
    std::map<std::string, uint64_t> ref_profile;
    uint64_t ref_ticks = 0;
    {
        Runtime::Options opts = hw_fast();
        opts.profiling = true;
        Runtime rt(opts);
        rt.on_output = [&ref_out](const std::string& t) { ref_out += t; };
        ASSERT_TRUE(rt.eval(program));
        std::string err;
        ASSERT_TRUE(rt.add_probe("n", &err)) << err;
        ASSERT_TRUE(rt.wait_for_hardware(60.0));
        ASSERT_TRUE(rt.vcd_open(temp_path("ref.vcd"), &err)) << err;
        rt.run_for_ticks(kHalf);
        rt.run_for_ticks(kHalf);
        rt.close_vcd();
        ref_vcd = strip_date(read_file(temp_path("ref.vcd")));
        ref_profile = trigger_totals(rt.profile());
        ref_ticks = rt.virtual_ticks();
    }
    ASSERT_FALSE(ref_out.empty());
    ASSERT_FALSE(ref_vcd.empty());

    // Shared-mode run with a forced eviction between the two halves. The
    // eviction relocates the program hw -> sw through the state-transfer
    // ABI; everything observable must carry across. (VCD capture holds
    // the runtime in step mode, so ticks advance identically to the
    // reference.)
    std::string out;
    std::string vcd;
    std::map<std::string, uint64_t> profile;
    {
        CompileService svc;
        FabricManager fm;
        Runtime::Options opts = hw_fast();
        opts.profiling = true;
        opts.tenant_name = "roundtrip";
        Runtime rt(opts, svc, fm);
        rt.on_output = [&out](const std::string& t) { out += t; };
        ASSERT_TRUE(rt.eval(program));
        std::string err;
        ASSERT_TRUE(rt.add_probe("n", &err)) << err;
        ASSERT_TRUE(rt.wait_for_hardware(60.0));
        ASSERT_TRUE(rt.vcd_open(temp_path("shared.vcd"), &err)) << err;
        rt.run_for_ticks(kHalf);
        // Force the eviction and step to the next window, where the
        // hw -> sw relocation executes. The recompile is a cache hit, so
        // re-admission can land in the very same window — observe the
        // round trip through the slot's eviction count, not a transient
        // location.
        fm.request_eviction(rt.tenant_id());
        auto evictions = [&] {
            for (const auto& s : fm.slot_map()) {
                if (s.tenant == rt.tenant_id()) {
                    return s.evictions;
                }
            }
            return uint64_t{0};
        };
        for (int i = 0; i < 16 && evictions() == 0; ++i) {
            rt.step();
        }
        EXPECT_GE(evictions(), 1u);
        // Re-adoption, then land on the reference's exact tick count.
        ASSERT_TRUE(step_until_hardware(&rt, 60.0));
        ASSERT_GE(ref_ticks, rt.virtual_ticks());
        rt.run_for_ticks(ref_ticks - rt.virtual_ticks());
        rt.close_vcd();
        vcd = strip_date(read_file(temp_path("shared.vcd")));
        profile = trigger_totals(rt.profile());
    }

    EXPECT_EQ(out, ref_out) << "$monitor/$display stream diverged";
    EXPECT_EQ(vcd, ref_vcd) << "VCD dump diverged";
    EXPECT_EQ(profile, ref_profile) << "profile totals diverged";
}

// ---------------------------------------------------------------------
// FabricManager unit behavior
// ---------------------------------------------------------------------

TEST(FabricManager, SlotMapTracksResidencyAndNames)
{
    FabricManager fm{fpga::FpgaDevice(1000, 10000, 50.0)};
    const uint64_t t1 = fm.add_tenant("alpha");
    const uint64_t t2 = fm.add_tenant("", 512, 0);
    EXPECT_EQ(fm.tenant_count(), 2u);

    const auto slots = fm.slot_map();
    ASSERT_EQ(slots.size(), 2u);
    EXPECT_EQ(slots[0].tenant, t1);
    EXPECT_EQ(slots[0].name, "alpha");
    EXPECT_FALSE(slots[0].resident);
    EXPECT_EQ(slots[1].name, "tenant-" + std::to_string(t2));
    EXPECT_EQ(slots[1].le_quota, 512u);

    const std::string table = fm.slot_map_table();
    EXPECT_NE(table.find("hypervisor slots"), std::string::npos);
    EXPECT_NE(table.find("alpha"), std::string::npos);
    EXPECT_NE(table.find("software"), std::string::npos);
    EXPECT_NE(table.find("512 LEs"), std::string::npos);

    fm.remove_tenant(t1);
    fm.remove_tenant(t2);
    EXPECT_EQ(fm.tenant_count(), 0u);
}

TEST(FabricManager, GrantsShrinkWithResidentCount)
{
    FabricManager fm;
    const uint64_t t1 = fm.add_tenant("a");
    // Sole (non-resident) tenant: the request passes through.
    EXPECT_EQ(fm.grant_open_loop(t1, 4096u), 4096u);
}

} // namespace
} // namespace cascade
