#include "common/diagnostics.h"

namespace cascade {

std::string
Diagnostic::str() const
{
    std::string out = severity == Severity::Error ? "error: " : "warning: ";
    if (loc.valid()) {
        out += loc.str() + ": ";
    }
    out += message;
    return out;
}

void
Diagnostics::error(SourceLoc loc, std::string msg)
{
    diags_.push_back({Severity::Error, loc, std::move(msg)});
    ++num_errors_;
}

void
Diagnostics::warning(SourceLoc loc, std::string msg)
{
    diags_.push_back({Severity::Warning, loc, std::move(msg)});
}

std::string
Diagnostics::str() const
{
    std::string out;
    for (const auto& d : diags_) {
        out += d.str();
        out += '\n';
    }
    return out;
}

void
Diagnostics::clear()
{
    diags_.clear();
    num_errors_ = 0;
}

} // namespace cascade
