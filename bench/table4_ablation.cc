/// \file
/// Table 4 (paper §4, Fig. 9): ablation of Cascade's optimization stages.
/// Each row measures steady-state virtual clock on the proof-of-work
/// workload with one more optimization enabled:
///   stage 1: separate software engines per module (no inlining)
///   stage 2: user logic inlined into one software engine
///   stage 3: + native-code JIT tier (compiled kernel, no fabric)
///   stage 4: hardware engine, runtime-driven (per-tick MMIO)
///   stage 5: + standard components forwarded into the user engine
///   stage 6: + open-loop scheduling
/// The paper's claim: each stage removes data/control-plane communication;
/// only open-loop scheduling approaches native speed. The JIT row is this
/// repo's addition: it bounds how much of the gap software evaluation
/// itself is responsible for (levelized dispatch vs compiled code), with
/// zero fabric involvement. Stages 4-6 run with the JIT tier disabled so
/// each row isolates exactly one mechanism.
///
/// Output: stage, virtual clock Hz (measured or modeled), notes; headline
/// JSON in BENCH_table4_ablation.json (schema cascade.bench.v1) for the
/// CI regression gate.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "jit/jit_cache.h"
#include "runtime/runtime.h"
#include "workloads/workloads.h"

using cascade::runtime::Location;
using cascade::runtime::Runtime;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Measures ticks per second (wall for software stages, virtual timeline
/// for hardware stages).
double
measure(Runtime::Options options, bool needs_hardware, const char* stage)
{
    Runtime rt(options);
    rt.on_output = [](const std::string&) {};
    std::string errors;
    if (!rt.eval(cascade::workloads::proof_of_work_source(20, false),
                 &errors)) {
        std::fprintf(stderr, "%s eval failed: %s\n", stage,
                     errors.c_str());
        return -1;
    }
    if (needs_hardware) {
        const double t0 = now_s();
        while (!rt.hardware_ready() && now_s() - t0 < 300.0) {
            rt.run(256);
        }
        if (!rt.hardware_ready()) {
            std::fprintf(stderr, "%s: hardware never adopted\n", stage);
            return -1;
        }
        const uint64_t ticks0 = rt.virtual_ticks();
        const double tl0 = rt.timeline_seconds();
        const double w0 = now_s();
        while (now_s() - w0 < 1.0) {
            rt.run(64);
        }
        return static_cast<double>(rt.virtual_ticks() - ticks0) /
               (rt.timeline_seconds() - tl0);
    }
    // Software: wall-clock rate.
    rt.run(512); // warm up
    const uint64_t ticks0 = rt.virtual_ticks();
    const double w0 = now_s();
    while (now_s() - w0 < 1.5) {
        rt.run(512);
    }
    return static_cast<double>(rt.virtual_ticks() - ticks0) /
           (now_s() - w0);
}

/// The JIT rung in isolation: fabric compiles are launched (the tier
/// shadows them) but a 10-LE device guarantees admission rejects the
/// result, so the program climbs interpreter -> compiled kernel and
/// stays there. (A huge compile_effort would also park the program on
/// the JIT tier, but the annealer is not cancellable — the service
/// destructor would block on it at exit.)
double
measure_jit(const char* stage)
{
    Runtime::Options options;
    options.enable_hardware = true;
    options.enable_jit = true;
    options.compile_effort = 0.05;
    options.device_les = 10; // nothing fits: fabric rejects, JIT keeps it
    // On the JIT rung each scheduler iteration free-runs one open-loop
    // grant sized to this wall target; the 1 s default would turn the
    // warm-up loop below into minutes of wall clock.
    options.open_loop_target_wall_s = 0.05;
    Runtime rt(options);
    rt.on_output = [](const std::string&) {};
    std::string errors;
    if (!rt.eval(cascade::workloads::proof_of_work_source(20, false),
                 &errors)) {
        std::fprintf(stderr, "%s eval failed: %s\n", stage,
                     errors.c_str());
        return -1;
    }
    const double t0 = now_s();
    while (rt.user_location() != Location::Jit && now_s() - t0 < 120.0) {
        if (rt.telemetry().counter("jit.unavailable")->value() > 0) {
            std::fprintf(stderr, "%s: jit tier unavailable\n", stage);
            return -1;
        }
        rt.run(256);
    }
    if (rt.user_location() != Location::Jit) {
        std::fprintf(stderr, "%s: jit never adopted\n", stage);
        return -1;
    }
    rt.run(16); // warm up on the kernel (each iteration is one grant)
    const uint64_t ticks0 = rt.virtual_ticks();
    const double w0 = now_s();
    while (now_s() - w0 < 1.5) {
        rt.run(16);
    }
    return static_cast<double>(rt.virtual_ticks() - ticks0) /
           (now_s() - w0);
}

} // namespace

int
main()
{
    std::printf("Table 4: optimization ablation on proof-of-work "
                "(virtual clock)\n");
    std::printf("%-44s %14s\n", "configuration", "virtual_hz");

    std::vector<std::pair<std::string, double>> rows;
    const auto row = [&rows](const char* key, const char* label,
                             double hz) {
        rows.emplace_back(key, hz);
        std::printf("%-44s %14.0f\n", label, hz);
    };

    {
        Runtime::Options o;
        o.enable_hardware = false;
        o.enable_inlining = false;
        row("sw_no_inline_hz", "1. software engines, no inlining",
            measure(o, false, "stage1"));
    }
    {
        Runtime::Options o;
        o.enable_hardware = false;
        row("sw_inlined_hz", "2. + user logic inlined",
            measure(o, false, "stage2"));
    }
    if (cascade::jit::compiler_available()) {
        row("jit_hz", "3. + native-code JIT tier (no fabric)",
            measure_jit("stage3"));
    } else {
        std::printf("%-44s %14s\n", "3. + native-code JIT tier (no fabric)",
                    "(skipped)");
    }
    {
        Runtime::Options o;
        o.compile_effort = 0.25;
        o.enable_jit = false;
        o.enable_forwarding = false;
        o.enable_open_loop = false;
        row("hw_runtime_driven_hz",
            "4. hardware engine (runtime-driven)",
            measure(o, true, "stage4"));
    }
    {
        Runtime::Options o;
        o.compile_effort = 0.25;
        o.enable_jit = false;
        o.enable_open_loop = false;
        row("hw_forwarding_hz", "5. + stdlib forwarding",
            measure(o, true, "stage5"));
    }
    {
        Runtime::Options o;
        o.compile_effort = 0.25;
        o.enable_jit = false;
        row("hw_open_loop_hz", "6. + open-loop scheduling",
            measure(o, true, "stage6"));
    }
    {
        Runtime::Options o;
        o.compile_effort = 0.25;
        o.native_mode = true;
        row("native_hz", "7. native mode (reference)",
            measure(o, true, "native"));
    }

    {
        std::ofstream out("BENCH_table4_ablation.json");
        out << "{\"schema\":\"cascade.bench.v1\","
            << "\"bench\":\"table4_ablation\",\"stages\":{";
        bool first = true;
        for (const auto& [key, hz] : rows) {
            if (hz < 0) {
                continue; // failed stage: omit rather than poison the gate
            }
            out << (first ? "" : ",") << "\"" << key << "\":" << hz;
            first = false;
        }
        out << "}}\n";
        std::fprintf(stderr,
                     "# results -> BENCH_table4_ablation.json\n");
    }

    std::printf("\npaper: open-loop within ~2.9x of the native clock; "
                "each earlier stage is communication-bound. The JIT row "
                "bounds pure software-evaluation overhead.\n");
    return 0;
}
