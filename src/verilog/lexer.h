/// \file
/// The Verilog lexer. Converts a source buffer into a token stream, decoding
/// numeric literals (sized/based/underscored) into BitVectors as it goes.

#ifndef CASCADE_VERILOG_LEXER_H
#define CASCADE_VERILOG_LEXER_H

#include <string>
#include <string_view>
#include <vector>

#include "common/diagnostics.h"
#include "verilog/token.h"

namespace cascade::verilog {

class Lexer {
  public:
    /// Lexes \p source to completion. Errors (unterminated strings, stray
    /// characters, x/z digits) are reported to \p diags; lexing continues so
    /// that as many problems as possible surface in one pass.
    Lexer(std::string_view source, Diagnostics* diags);

    /// Runs the lexer and returns the token stream, terminated by an
    /// EndOfFile token.
    std::vector<Token> lex_all();

  private:
    Token next_token();
    Token lex_identifier();
    Token lex_system_id();
    Token lex_number();
    Token lex_string();

    /// Decodes the value part of a based literal into \p tok.
    void decode_based(Token* tok, uint32_t width, bool sized, char base,
                      const std::string& digits);

    char peek(size_t ahead = 0) const;
    char advance();
    bool match(char c);
    void skip_whitespace_and_comments();
    SourceLoc here() const { return {line_, column_}; }
    bool at_end() const { return pos_ >= source_.size(); }

    std::string_view source_;
    Diagnostics* diags_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t column_ = 1;
};

} // namespace cascade::verilog

#endif // CASCADE_VERILOG_LEXER_H
