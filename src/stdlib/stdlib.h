/// \file
/// Cascade's standard library (paper §3.2): IO peripherals and utility
/// components represented as pre-defined module types. Clock, Pad, Led,
/// GPIO, and Reset are implicitly declared when Cascade starts; Memory and
/// FIFO may be instantiated at the user's discretion. Each component has a
/// synthesizable Verilog body whose peripheral-facing "pins" ports the
/// runtime binds to device models — which is what lets a program be tested
/// in the same environment it is released in, with no user-written proxies.

#ifndef CASCADE_STDLIB_STDLIB_H
#define CASCADE_STDLIB_STDLIB_H

#include <set>
#include <string>

namespace cascade::stdlib {

/// Verilog source declaring every standard-library module.
const char* stdlib_source();

/// Module names treated as standard components by the IR splitter.
const std::set<std::string>& stdlib_type_names();

/// Names of the peripheral-facing ports ("pins" by convention).
inline constexpr const char* kPinsPort = "pins";

} // namespace cascade::stdlib

#endif // CASCADE_STDLIB_STDLIB_H
