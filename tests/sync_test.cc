/// \file
/// Tests for the instrumented sync wrappers: uncontended bookkeeping,
/// forced two-thread contention (wait histograms, blocked-on edges with
/// correct waiter/holder tenants), CV wait recording, the
/// cascade.contention.v1 report, registry reset, and the per-tenant
/// trace swimlanes (pid = 1 + tenant) the wrappers feed.

#include "telemetry/sync.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "telemetry/trace.h"

namespace cascade::telemetry {
namespace {

/// RAII tenant binding so a failed assertion cannot leak a nonzero
/// tenant into later tests (the TLS is process-global per thread).
class ScopedTenant {
  public:
    explicit ScopedTenant(uint64_t t) { set_thread_tenant(t); }
    ~ScopedTenant() { set_thread_tenant(0); }
};

TEST(Sync, ThreadTenantDefaultsToZeroAndIsThreadLocal)
{
    EXPECT_EQ(thread_tenant(), 0u);
    {
        ScopedTenant bind(7);
        EXPECT_EQ(thread_tenant(), 7u);
        std::thread other(
            [] { EXPECT_EQ(thread_tenant(), 0u); });
        other.join();
    }
    EXPECT_EQ(thread_tenant(), 0u);
}

TEST(Sync, UncontendedLockRecordsAcquisitionAndHold)
{
    Mutex m("test.uncontended");
    m.lock();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    m.unlock();

    SyncSite* site = m.site();
    ASSERT_NE(site, nullptr);
    EXPECT_STREQ(site->kind(), "mutex");
    EXPECT_EQ(site->acquisitions.value(), 1u);
    EXPECT_EQ(site->contended.value(), 0u);
    // The fast path records a zero wait sample (so acquisition count and
    // wait-sample count agree) and a real hold time.
    EXPECT_EQ(site->wait_ns.count(), 1u);
    EXPECT_EQ(site->wait_ns.sum(), 0u);
    EXPECT_EQ(site->hold_ns.count(), 1u);
    EXPECT_GE(site->hold_ns.sum(), 1'000'000u); // slept 2ms
}

TEST(Sync, OwnerTenantTracksHolder)
{
    Mutex m("test.owner");
    EXPECT_EQ(m.owner_tenant(), 0u);
    {
        ScopedTenant bind(5);
        m.lock();
        EXPECT_EQ(m.owner_tenant(), 5u);
        m.unlock();
    }
    EXPECT_EQ(m.owner_tenant(), 0u);
}

TEST(Sync, ContendedLockRecordsWaitAndBlockedEdge)
{
    Mutex m("test.contended");

    // Holder: tenant 2 (this thread) takes the lock, then releases it
    // ~20ms after the waiter is known to be blocked.
    ScopedTenant holder_bind(2);
    m.lock();
    std::atomic<bool> waiter_entered{false};
    std::thread waiter([&] {
        set_thread_tenant(3);
        waiter_entered.store(true);
        m.lock(); // blocks on tenant 2
        m.unlock();
        set_thread_tenant(0);
    });
    while (!waiter_entered.load()) {
        std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    m.unlock();
    waiter.join();

    SyncSite* site = m.site();
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->acquisitions.value(), 2u);
    EXPECT_GE(site->contended.value(), 1u);
    // The waiter blocked for roughly the holder's 20ms nap.
    EXPECT_GE(site->wait_ns.max(), 5'000'000u);
    EXPECT_GE(site->tenant_wait_ns.load(), 5'000'000u);

    // Blocked-on attribution: tenant 3 waited on tenant 2 at this site.
    bool found = false;
    for (const BlockedEdge& e : SyncRegistry::global().blocked_edges()) {
        if (e.site == "test.contended") {
            EXPECT_EQ(e.waiter, 3u);
            EXPECT_EQ(e.holder, 2u);
            EXPECT_GE(e.count, 1u);
            EXPECT_GE(e.wait_ns, 5'000'000u);
            found = true;
        }
    }
    EXPECT_TRUE(found) << "no blocked edge recorded for test.contended";

    const auto waits = SyncRegistry::global().tenant_waits();
    const auto it = waits.find(3);
    ASSERT_NE(it, waits.end());
    EXPECT_GE(it->second, 5'000'000u);
}

TEST(Sync, UntenantedWaiterRecordsNoBlockedEdge)
{
    Mutex m("test.untenanted");
    m.lock();
    std::atomic<bool> entered{false};
    std::thread waiter([&] {
        entered.store(true);
        m.lock(); // tenant 0: waits recorded, but no edge / tenant wait
        m.unlock();
    });
    while (!entered.load()) {
        std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    m.unlock();
    waiter.join();

    EXPECT_EQ(m.site()->tenant_wait_ns.load(), 0u);
    for (const BlockedEdge& e : SyncRegistry::global().blocked_edges()) {
        EXPECT_NE(e.site, "test.untenanted");
    }
}

TEST(Sync, CondVarWaitRecordsAgainstItsSite)
{
    Mutex m("test.cv_mutex");
    CondVar cv("test.cv");
    std::unique_lock<Mutex> lock(m);
    // Timed wait with an always-false predicate: records one wait of
    // ~3ms against the CV site.
    const bool satisfied =
        cv.wait_for(lock, std::chrono::milliseconds(3), [] { return false; });
    EXPECT_FALSE(satisfied);

    SyncSite* site = cv.site();
    ASSERT_NE(site, nullptr);
    EXPECT_STREQ(site->kind(), "cv");
    EXPECT_EQ(site->acquisitions.value(), 1u);
    EXPECT_GE(site->contended.value(), 1u);
    EXPECT_GE(site->wait_ns.sum(), 1'000'000u);
}

TEST(Sync, SitesAggregateByNameAcrossInstances)
{
    Mutex a("test.shared_site");
    Mutex b("test.shared_site");
    EXPECT_EQ(a.site(), b.site());
    const uint64_t before = a.site()->acquisitions.value();
    a.lock();
    a.unlock();
    b.lock();
    b.unlock();
    EXPECT_EQ(a.site()->acquisitions.value(), before + 2);
}

TEST(Sync, ContentionJsonHasSchemaSitesAndBlockedOn)
{
    // Force one attributed edge so every section is populated.
    Mutex m("test.report");
    ScopedTenant holder_bind(1);
    m.lock();
    std::atomic<bool> entered{false};
    std::thread waiter([&] {
        set_thread_tenant(4);
        entered.store(true);
        m.lock();
        m.unlock();
        set_thread_tenant(0);
    });
    while (!entered.load()) {
        std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    m.unlock();
    waiter.join();

    const std::string json = SyncRegistry::global().contention_json();
    EXPECT_NE(json.find("\"schema\":\"cascade.contention.v1\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"sites\":["), std::string::npos);
    EXPECT_NE(json.find("\"blocked_on\":["), std::string::npos);
    EXPECT_NE(json.find("\"tenant_wait_ns\":{"), std::string::npos);
    EXPECT_NE(json.find("\"test.report\""), std::string::npos);
    EXPECT_NE(json.find("\"waiter\":4"), std::string::npos);
    EXPECT_NE(json.find("\"holder\":1"), std::string::npos);

    const std::string table = SyncRegistry::global().contention_table();
    EXPECT_NE(table.find("contention by site"), std::string::npos)
        << table;
    EXPECT_NE(table.find("blocked-on"), std::string::npos);
    EXPECT_NE(table.find("test.report"), std::string::npos);
    EXPECT_NE(table.find("tenant 4"), std::string::npos);
}

TEST(Sync, ResetZeroesSamplesButKeepsSitePointers)
{
    Mutex m("test.reset");
    m.lock();
    m.unlock();
    SyncSite* site = m.site();
    ASSERT_GE(site->acquisitions.value(), 1u);

    SyncRegistry::global().reset();
    EXPECT_EQ(site->acquisitions.value(), 0u);
    EXPECT_EQ(site->wait_ns.count(), 0u);
    EXPECT_EQ(site->tenant_wait_ns.load(), 0u);
    EXPECT_TRUE(SyncRegistry::global().blocked_edges().empty());
    EXPECT_TRUE(SyncRegistry::global().tenant_waits().empty());

    // Same handle keeps recording after the reset.
    m.lock();
    m.unlock();
    EXPECT_EQ(site->acquisitions.value(), 1u);
}

TEST(Sync, TraceEventsLandOnTenantSwimlanes)
{
    Tracer tracer;
    tracer.record_complete("exclusive", 1.0, 2.0, 0); // tenant 0 -> pid 1
    tracer.record_complete_tenant("t3.span", 5.0, 1.0, 3);
    tracer.instant_tenant("t3.mark", 3, 42);
    const std::string json = tracer.chrome_json();

    // Tenant 3's lane is pid 4, with a process_name metadata record.
    EXPECT_NE(json.find("\"pid\":4"), std::string::npos) << json;
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("tenant 3"), std::string::npos);
    // Tenant-0 events stay on the original pid 1 lane.
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(Sync, ExclusiveTraceHasNoTenantMetadata)
{
    Tracer tracer;
    tracer.record_complete("only", 1.0, 2.0, 0);
    const std::string json = tracer.chrome_json();
    EXPECT_EQ(json.find("\"process_name\""), std::string::npos) << json;
}

TEST(Sync, BlockedWaitEmitsTracerSpanOnWaiterLane)
{
    // A tenant-bound waiter blocked >= 10us gets a "blocked:<site>" span
    // in the global tracer, tagged with the holder tenant.
    const size_t before = Tracer::global().events().size();
    Mutex m("test.span");
    ScopedTenant holder_bind(8);
    m.lock();
    std::atomic<bool> entered{false};
    std::thread waiter([&] {
        set_thread_tenant(9);
        entered.store(true);
        m.lock();
        m.unlock();
        set_thread_tenant(0);
    });
    while (!entered.load()) {
        std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    m.unlock();
    waiter.join();

    bool found = false;
    const auto events = Tracer::global().events();
    for (size_t i = before; i < events.size(); ++i) {
        if (std::string(events[i].name) == "blocked:test.span") {
            EXPECT_EQ(events[i].tenant, 9u); // waiter's lane
            EXPECT_EQ(events[i].arg, 8u);    // ...tagged with the holder
            found = true;
        }
    }
    EXPECT_TRUE(found) << "no blocked:test.span event recorded";
}

} // namespace
} // namespace cascade::telemetry
