/// \file
/// Table 5 (multi-tenancy, beyond the paper's single-user deployment):
/// M concurrent runtimes sharing ONE FpgaDevice through the fabric
/// hypervisor and ONE pooled compile service. Two results:
///
///  1. Aggregate AND per-tenant open-loop throughput (virtual clock
///     ticks per second) as the tenant count grows 1 -> 2 -> 4 -> 8 -> 16.
///     Spatial partitioning means tenants run concurrently on disjoint LE
///     slices; the fair batch-grant capping keeps any one tenant from
///     monopolising control.
///
///  2. Compile latency cold vs warm: the same elaborated design compiled
///     twice through the CompileService. The second submit hits the
///     content-addressed bitstream cache and must come back >= 10x faster
///     than the cold flow (in practice, orders of magnitude).
///
/// Output: BENCH_table5_multi_tenant.json (headline matrix CI's
/// smoke-bench job uploads and diffs; per-tenant ticks/s per fleet row,
/// plus the 1->4 lost-throughput attribution), the telemetry sidecars
/// table5_multi_tenant.stats.json (tenant-0 stats_json() snapshot per
/// fleet size) and table5_multi_tenant.trace.json (per-tenant swimlane
/// Chrome trace), and table5_multi_tenant.contention.json — the
/// cascade.contention.v1 report for the 4-tenant fleet, extended with an
/// "attribution" object that decomposes the 1->4 aggregate-throughput gap
/// into named serialization sites. On this (typically single-core CI)
/// host the dominant site is "cpu.timeslice" — tenants runnable but not
/// running, measured directly as wall - cpu - lock_wait per tenant — with
/// the instrumented lock/CV sites ranked after it.

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fpga/compile.h"
#include "hypervisor/fabric_manager.h"
#include "runtime/runtime.h"
#include "service/compile_service.h"
#include "telemetry/sync.h"
#include "telemetry/trace.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

using cascade::hypervisor::FabricManager;
using cascade::runtime::Location;
using cascade::runtime::Runtime;
using cascade::runtime::location_name;
using cascade::service::CompileService;

namespace {

double
seconds_since(const std::chrono::steady_clock::time_point& t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

Runtime::Options
tenant_options(int i)
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.open_loop_target_wall_s = 0.02;
    // One fixed seed per tenant keeps re-compiles content-identical, so
    // the later fleet rounds exercise the cache-hit admission path.
    opts.compile_seed = 7;
    opts.tenant_name = "bench-t" + std::to_string(i);
    return opts;
}

/// Tenant i's program: same shape, different arithmetic, so each fleet
/// member compiles (and caches) a distinct design.
std::string
tenant_program(int i)
{
    std::string src;
    src += "reg [15:0] n = 0;\n";
    src += "always @(posedge clk.val) n <= n + " + std::to_string(i + 1) +
           ";\n";
    return src;
}

double
thread_cpu_seconds()
{
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct TenantSample {
    uint64_t ticks = 0;
    double rate = 0;        ///< ticks/s over this tenant's measured run
    double wall_s = 0;      ///< measured-run wall time
    double cpu_s = 0;       ///< thread CPU time inside the measured run
    double lock_wait_s = 0; ///< SyncRegistry wait total for this tenant
    std::string location;   ///< tier at the end of the measured run
};

bool
fabric_location(const std::string& loc)
{
    return loc == "Hardware" || loc == "HardwareForwarded" ||
           loc == "Native";
}

struct FleetResult {
    double aggregate_ticks_per_s = 0;
    uint64_t total_ticks = 0;
    std::vector<TenantSample> tenants;
    std::string tenant0_stats;
    std::string contention_json; ///< registry snapshot right after join
};

FleetResult
run_fleet(int tenants, CompileService* service)
{
    FabricManager fabric; // fresh default device per fleet size
    FleetResult out;
    out.tenants.resize(tenants);
    // All tenants reach hardware first; the barrier's completion step
    // then zeroes the contention registry, so the per-site waits and
    // blocked-on matrix cover exactly the measured window (compile-time
    // CV parking would otherwise swamp the run-phase numbers).
    std::barrier start_barrier(tenants, []() noexcept {
        cascade::telemetry::SyncRegistry::global().reset();
    });
    std::vector<std::thread> threads;
    threads.reserve(tenants);
    for (int i = 0; i < tenants; ++i) {
        threads.emplace_back([&, i] {
            Runtime rt(tenant_options(i), *service, fabric);
            rt.on_output = [](const std::string&) {};
            std::string errors;
            if (!rt.eval(tenant_program(i), &errors)) {
                std::fprintf(stderr, "eval failed: %s\n", errors.c_str());
                start_barrier.arrive_and_drop();
                return;
            }
            if (!rt.wait_for_hardware(120) &&
                rt.user_location() == Location::Software) {
                // No fabric slice AND no JIT rung to fall back to: this
                // tenant cannot contribute a steady-state sample. (A
                // tenant parked on the JIT tier stays in the fleet — that
                // residency mix is part of the result.)
                std::fprintf(stderr, "tenant %d never left software\n", i);
                start_barrier.arrive_and_drop();
                return;
            }
            start_barrier.arrive_and_wait();
            TenantSample& s = out.tenants[i];
            const uint64_t t_before = rt.virtual_ticks();
            const double cpu0 = thread_cpu_seconds();
            const auto t0 = std::chrono::steady_clock::now();
            rt.run_for_ticks(20000);
            s.wall_s = seconds_since(t0);
            s.cpu_s = thread_cpu_seconds() - cpu0;
            s.ticks = rt.virtual_ticks() - t_before;
            s.rate = s.wall_s > 0
                         ? static_cast<double>(s.ticks) / s.wall_s
                         : 0;
            s.location = location_name(rt.user_location());
            // Snapshot this tenant's blocked total before the Runtime
            // destructor adds its teardown lock traffic.
            const auto waits =
                cascade::telemetry::SyncRegistry::global().tenant_waits();
            const auto w = waits.find(rt.tenant_id());
            s.lock_wait_s = w != waits.end()
                                ? static_cast<double>(w->second) * 1e-9
                                : 0;
            if (i == 0) {
                out.tenant0_stats = rt.stats_json();
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    out.contention_json =
        cascade::telemetry::SyncRegistry::global().contention_json();
    for (const TenantSample& s : out.tenants) {
        out.aggregate_ticks_per_s += s.rate;
        out.total_ticks += s.ticks;
    }
    return out;
}

/// One ranked contributor to the 1->M throughput gap.
struct GapSite {
    std::string name;
    std::string kind;
    double seconds = 0;
};

/// Decomposes the 1->M gap: each tenant's measured-run excess over the
/// single-tenant baseline (wall - ticks/rate1) is serialization; the
/// measured components are per-site lock/CV waits (SyncRegistry) and
/// "cpu.timeslice" — runnable-but-not-running time, wall - cpu -
/// lock_wait, the share the OS scheduler spent running *other* tenants.
struct GapAttribution {
    double lost_s = 0;       ///< total excess wall across tenants
    double attributed_s = 0; ///< covered by the named sites below
    double pct = 0;          ///< 100 * attributed / lost (capped)
    std::vector<GapSite> sites; ///< ranked, largest first
};

GapAttribution
attribute_gap(const FleetResult& fleet, double baseline_rate)
{
    GapAttribution out;
    double timeslice_s = 0;
    double lock_wait_s = 0;
    for (const TenantSample& s : fleet.tenants) {
        if (baseline_rate > 0) {
            const double expected =
                static_cast<double>(s.ticks) / baseline_rate;
            out.lost_s += std::max(0.0, s.wall_s - expected);
        }
        timeslice_s +=
            std::max(0.0, s.wall_s - s.cpu_s - s.lock_wait_s);
        lock_wait_s += s.lock_wait_s;
    }
    out.sites.push_back({"cpu.timeslice", "cpu", timeslice_s});
    // Split the lock-wait total back into named sites by each site's
    // share of tenant waits.
    const auto snap =
        cascade::telemetry::SyncRegistry::global().snapshot();
    double site_total_s = 0;
    for (const auto& s : snap) {
        site_total_s += static_cast<double>(s.tenant_wait_ns) * 1e-9;
    }
    for (const auto& s : snap) {
        const double site_s = static_cast<double>(s.tenant_wait_ns) * 1e-9;
        if (site_s <= 0) {
            continue;
        }
        const double scaled =
            site_total_s > 0 ? lock_wait_s * site_s / site_total_s : 0;
        out.sites.push_back({s.name, s.kind, scaled});
    }
    std::sort(out.sites.begin(), out.sites.end(),
              [](const GapSite& a, const GapSite& b) {
                  return a.seconds > b.seconds;
              });
    for (const GapSite& s : out.sites) {
        out.attributed_s += s.seconds;
    }
    out.pct = out.lost_s > 0
                  ? std::min(100.0, 100.0 * out.attributed_s / out.lost_s)
                  : 100.0;
    return out;
}

} // namespace

int
main()
{
    std::printf("Table 5: multi-tenant fabric sharing and compile cache\n");

    // -- Compile latency: cold flow vs content-addressed cache hit. -----
    cascade::Diagnostics diags;
    auto unit = cascade::verilog::parse(
        cascade::workloads::proof_of_work_module(16), &diags);
    cascade::verilog::Elaborator elab(&diags);
    std::shared_ptr<const cascade::verilog::ElaboratedModule> em =
        elab.elaborate(*unit.modules[0]);
    if (em == nullptr) {
        std::fprintf(stderr, "elab failed: %s\n", diags.str().c_str());
        return 1;
    }
    cascade::fpga::CompileOptions copts;
    copts.effort = 0.3;
    copts.seed = 7;

    CompileService::Config cold_cfg;
    cold_cfg.workers = 1;
    CompileService latency_svc(cold_cfg);
    const uint64_t client = latency_svc.register_client();

    auto timed_compile = [&](uint64_t version, bool* cache_hit) {
        const auto t0 = std::chrono::steady_clock::now();
        CompileService::Job job;
        job.version = version;
        job.module = em;
        job.options = copts;
        latency_svc.submit(client, std::move(job));
        latency_svc.wait_for_done(client, 600);
        const auto done = latency_svc.poll(client);
        const double elapsed = seconds_since(t0);
        if (done.size() != 1 || !done[0].result.ok) {
            std::fprintf(stderr, "compile %llu failed\n",
                         static_cast<unsigned long long>(version));
            std::exit(1);
        }
        *cache_hit = done[0].result.report.cache_hit;
        return elapsed;
    };
    bool cold_hit = false;
    bool warm_hit = false;
    const double cold_s = timed_compile(1, &cold_hit);
    const double warm_s = timed_compile(2, &warm_hit);
    latency_svc.unregister_client(client);
    const double speedup = cold_s / std::max(warm_s, 1e-9);
    std::printf("compile latency: cold %.4fs (hit=%d)  warm %.6fs "
                "(hit=%d)  speedup %.0fx\n",
                cold_s, cold_hit, warm_s, warm_hit, speedup);

    // -- Aggregate throughput vs tenant count. --------------------------
    // One shared service across fleet sizes: tenants 0..1 of the M=2 and
    // M=4 rounds re-compile designs already cached by earlier rounds, so
    // their path to hardware goes through cache-hit admission.
    CompileService::Config fleet_cfg;
    fleet_cfg.workers = 2;
    CompileService fleet_svc(fleet_cfg);

    std::printf("%-8s %18s %14s %16s %18s\n", "tenants",
                "aggregate ticks/s", "total ticks", "min..max /tenant",
                "residency f/j/i");
    std::string results_body;
    std::string sidecar_body;
    double baseline_rate = 0; // single-tenant ticks/s, the 1-> M yardstick
    double aggregate_1 = 0;
    double aggregate_4 = 0;
    GapAttribution gap;
    std::string contention_4;
    for (const int m : {1, 2, 4, 8, 16}) {
        const FleetResult r = run_fleet(m, &fleet_svc);
        double rate_min = r.tenants.empty() ? 0 : r.tenants[0].rate;
        double rate_max = rate_min;
        std::string per_tenant;
        for (size_t i = 0; i < r.tenants.size(); ++i) {
            const TenantSample& s = r.tenants[i];
            rate_min = std::min(rate_min, s.rate);
            rate_max = std::max(rate_max, s.rate);
            char t[256];
            std::snprintf(t, sizeof t,
                          "{\"tenant\":%zu,\"ticks\":%llu,"
                          "\"ticks_per_s\":%.1f,\"wall_s\":%.4f,"
                          "\"cpu_s\":%.4f,\"lock_wait_s\":%.6f,"
                          "\"location\":\"%s\"}",
                          i, static_cast<unsigned long long>(s.ticks),
                          s.rate, s.wall_s, s.cpu_s, s.lock_wait_s,
                          s.location.c_str());
            if (!per_tenant.empty()) {
                per_tenant += ',';
            }
            per_tenant += t;
        }
        // Per-tier residency at the end of the measured window: fabric
        // (Hardware/HardwareForwarded/Native LE slices), the JIT rung
        // (no LEs), and tenants still on the interpreter.
        int res_fabric = 0;
        int res_jit = 0;
        int res_interp = 0;
        for (const TenantSample& s : r.tenants) {
            if (fabric_location(s.location)) {
                ++res_fabric;
            } else if (s.location == "Jit") {
                ++res_jit;
            } else {
                ++res_interp;
            }
        }
        std::printf("%-8d %18.0f %14llu %7.0f..%-7.0f %8d/%d/%d\n", m,
                    r.aggregate_ticks_per_s,
                    static_cast<unsigned long long>(r.total_ticks),
                    rate_min, rate_max, res_fabric, res_jit, res_interp);
        char row[256];
        std::snprintf(row, sizeof row,
                      "{\"tenants\":%d,\"aggregate_ticks_per_s\":%.1f,"
                      "\"total_ticks\":%llu,\"residency\":{\"fabric\":%d,"
                      "\"jit\":%d,\"interpreter\":%d},\"per_tenant\":[",
                      m, r.aggregate_ticks_per_s,
                      static_cast<unsigned long long>(r.total_ticks),
                      res_fabric, res_jit, res_interp);
        if (!results_body.empty()) {
            results_body += ',';
        }
        results_body += row;
        results_body += per_tenant;
        results_body += "]}";
        if (!r.tenant0_stats.empty()) {
            if (!sidecar_body.empty()) {
                sidecar_body += ',';
            }
            sidecar_body += "\"tenants_" + std::to_string(m) +
                            "\":" + r.tenant0_stats;
        }
        if (m == 1) {
            baseline_rate = r.aggregate_ticks_per_s;
            aggregate_1 = r.aggregate_ticks_per_s;
        } else if (m == 4) {
            // Attribute NOW: the registry still holds the 4-tenant
            // window's per-site waits (the next fleet's start barrier
            // zeroes it).
            aggregate_4 = r.aggregate_ticks_per_s;
            contention_4 = r.contention_json;
            gap = attribute_gap(r, baseline_rate);
        }
    }

    const double gap_pct =
        aggregate_1 > 0
            ? 100.0 * (aggregate_1 - aggregate_4) / aggregate_1
            : 0;
    std::printf("1->4 tenants: aggregate %.0f -> %.0f ticks/s "
                "(%.0f%% drop), %.3fs lost, %.0f%% attributed:\n",
                aggregate_1, aggregate_4, gap_pct, gap.lost_s, gap.pct);
    std::string sites_json;
    std::string dominant_json;
    double cum_s = 0;
    for (const GapSite& s : gap.sites) {
        if (s.seconds <= 0) {
            continue;
        }
        const double share =
            gap.lost_s > 0 ? 100.0 * s.seconds / gap.lost_s : 0;
        std::printf("  %-24s %-6s %8.3fs %5.1f%%\n", s.name.c_str(),
                    s.kind.c_str(), s.seconds, share);
        char site_row[160];
        std::snprintf(site_row, sizeof site_row,
                      "{\"site\":\"%s\",\"kind\":\"%s\","
                      "\"seconds\":%.6f,\"share_pct\":%.1f}",
                      s.name.c_str(), s.kind.c_str(), s.seconds, share);
        if (!sites_json.empty()) {
            sites_json += ',';
        }
        sites_json += site_row;
        // Dominant = the minimal ranked prefix covering 90% of what was
        // attributed.
        if (gap.attributed_s > 0 && cum_s < 0.9 * gap.attributed_s) {
            if (!dominant_json.empty()) {
                dominant_json += ',';
            }
            dominant_json += '"' + s.name + '"';
        }
        cum_s += s.seconds;
    }
    char attr_head[256];
    std::snprintf(attr_head, sizeof attr_head,
                  "\"attribution\":{\"from_tenants\":1,\"to_tenants\":4,"
                  "\"aggregate_ticks_per_s_1\":%.1f,"
                  "\"aggregate_ticks_per_s_4\":%.1f,\"gap_pct\":%.1f,"
                  "\"lost_seconds\":%.6f,"
                  "\"lost_throughput_attributed_pct\":%.1f,",
                  aggregate_1, aggregate_4, gap_pct, gap.lost_s, gap.pct);
    const std::string attribution = std::string(attr_head) +
                                    "\"dominant_sites\":[" + dominant_json +
                                    "],\"attributed_sites\":[" +
                                    sites_json + "]}";

    {
        std::ofstream out("BENCH_table5_multi_tenant.json");
        char compile_row[256];
        std::snprintf(compile_row, sizeof compile_row,
                      "\"compile\":{\"cold_seconds\":%.6f,"
                      "\"warm_seconds\":%.6f,\"warm_cache_hit\":%s,"
                      "\"speedup\":%.1f}",
                      cold_s, warm_s, warm_hit ? "true" : "false",
                      speedup);
        out << "{\"schema\":\"cascade.bench.v1\","
            << "\"bench\":\"table5_multi_tenant\"," << compile_row << ','
            << attribution << ",\"fleets\":[" << results_body << "]}\n";
        std::fprintf(stderr,
                     "# results -> BENCH_table5_multi_tenant.json\n");
    }
    {
        std::ofstream sidecar("table5_multi_tenant.stats.json");
        sidecar << '{' << sidecar_body << "}\n";
        std::fprintf(stderr,
                     "# stats sidecar -> table5_multi_tenant.stats.json\n");
    }
    {
        // The cascade.contention.v1 report captured right after the
        // 4-tenant fleet, with the gap attribution spliced in as a
        // sibling key (schema stays v1: additive).
        std::ofstream sidecar("table5_multi_tenant.contention.json");
        if (contention_4.size() > 1 && contention_4.front() == '{') {
            sidecar << '{' << attribution << ','
                    << contention_4.substr(1) << "\n";
        } else {
            sidecar << '{' << attribution << "}\n";
        }
        std::fprintf(
            stderr,
            "# contention sidecar -> table5_multi_tenant.contention.json\n");
    }
    cascade::telemetry::Tracer::global().write_chrome_json(
        "table5_multi_tenant.trace.json");
    std::fprintf(stderr, "# trace -> table5_multi_tenant.trace.json\n");

    if (!warm_hit || speedup < 10.0) {
        std::fprintf(stderr,
                     "FAIL: warm compile not a cache hit or < 10x faster "
                     "than cold\n");
        return 1;
    }
    return 0;
}
