/// \file
/// Tests for the telemetry subsystem: counter/gauge/histogram arithmetic,
/// registry identity, span nesting/depth bookkeeping, ring-buffer
/// wraparound, and the Chrome trace_event JSON export — including a
/// golden-file check (deterministic timestamps in, exact JSON out) and a
/// structural validation pass with a minimal JSON parser, which is what
/// "loads in Perfetto" reduces to for a generated file.

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

#include <cctype>
#include <fstream>
#include <iterator>
#include <thread>

#include <gtest/gtest.h>

namespace cascade::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (objects/arrays/strings/numbers/keywords).
// Accepts exactly the grammar of RFC 8259; no semantic interpretation.
// ---------------------------------------------------------------------------

class JsonChecker {
  public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool
    valid()
    {
        skip_ws();
        if (!value()) {
            return false;
        }
        skip_ws();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size()) {
            return false;
        }
        switch (s_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return keyword("true");
        case 'f': return keyword("false");
        case 'n': return keyword("null");
        default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (!string()) {
                return false;
            }
            skip_ws();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skip_ws();
            if (!value()) {
                return false;
            }
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (!value()) {
                return false;
            }
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= s_.size()) {
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    keyword(const char* kw)
    {
        const size_t len = std::string(kw).size();
        if (s_.compare(pos_, len, kw) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skip_ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& s_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Telemetry, CounterArithmetic)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Telemetry, GaugeTracksHighWater)
{
    Gauge g;
    g.set(5);
    g.set(2);
    EXPECT_EQ(g.value(), 2);
    EXPECT_EQ(g.high_water(), 5);
    g.add(10);
    EXPECT_EQ(g.value(), 12);
    EXPECT_EQ(g.high_water(), 12);
    g.add(-12);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.high_water(), 12);
}

TEST(Telemetry, HistogramArithmetic)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);

    for (uint64_t v = 1; v <= 1000; ++v) {
        h.record(v);
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.sum(), 500500u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);
    // Log-bucket estimate: the true median is 500; the estimate must land
    // in the same power-of-two bucket [256, 1024).
    EXPECT_GE(h.quantile(0.5), 256u);
    EXPECT_LT(h.quantile(0.5), 1024u);
    EXPECT_LE(h.quantile(0.99), 1000u);
    EXPECT_LE(h.quantile(0.0), h.quantile(1.0));

    // Bucket populations: bucket b holds values with bit width b.
    EXPECT_EQ(h.bucket(1), 1u); // value 1
    EXPECT_EQ(h.bucket(2), 2u); // values 2-3
    EXPECT_EQ(h.bucket(3), 4u); // values 4-7
    EXPECT_EQ(h.bucket(10), 1000u - 511u); // values 512-1000
}

TEST(Telemetry, HistogramZeroAndLargeValues)
{
    Histogram h;
    h.record(0);
    h.record(UINT64_MAX);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(64), 1u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(Telemetry, RegistryReturnsStableHandles)
{
    Registry reg;
    Counter* a = reg.counter("x");
    Counter* b = reg.counter("x");
    EXPECT_EQ(a, b);
    EXPECT_NE(reg.counter("y"), a);
    a->inc(7);
    EXPECT_EQ(reg.counter("x")->value(), 7u);

    reg.gauge("g")->set(-3);
    reg.histogram("h")->record(12);

    const std::string table = reg.table();
    EXPECT_NE(table.find("x"), std::string::npos);
    EXPECT_NE(table.find("7"), std::string::npos);

    const std::string json = reg.json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"x\":7"), std::string::npos);
    EXPECT_NE(json.find("\"value\":-3"), std::string::npos);
}

TEST(Telemetry, RegistryResetZeroesMetricsInPlace)
{
    Registry reg;
    Counter* c = reg.counter("c");
    Gauge* g = reg.gauge("g");
    Histogram* h = reg.histogram("h");
    c->inc(5);
    g->set(9);
    g->set(2);
    h->record(100);
    h->record(7);

    reg.reset();

    // Values zero, handles stay valid (hot paths cache the pointers).
    EXPECT_EQ(reg.counter("c"), c);
    EXPECT_EQ(c->value(), 0u);
    EXPECT_EQ(g->value(), 0);
    EXPECT_EQ(g->high_water(), 0);
    EXPECT_EQ(h->count(), 0u);
    EXPECT_EQ(h->sum(), 0u);
    EXPECT_EQ(h->min(), 0u);
    EXPECT_EQ(h->max(), 0u);
    EXPECT_EQ(h->bucket(7), 0u);

    // Recording resumes from scratch on the same handles.
    c->inc();
    h->record(3);
    EXPECT_EQ(c->value(), 1u);
    EXPECT_EQ(h->count(), 1u);
    EXPECT_EQ(h->min(), 3u);
    EXPECT_EQ(h->max(), 3u);
}

TEST(Telemetry, SnapshotsReportP50P90P99)
{
    Registry reg;
    Histogram* h = reg.histogram("lat");
    for (uint64_t v = 1; v <= 1000; ++v) {
        h->record(v);
    }
    const std::string json = reg.json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p90\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
    const std::string table = reg.table();
    EXPECT_NE(table.find("p50"), std::string::npos) << table;
    EXPECT_NE(table.find("p90"), std::string::npos) << table;
    EXPECT_NE(table.find("p99"), std::string::npos) << table;
    // Quantiles are monotone in the log-bucket estimate.
    EXPECT_LE(h->quantile(0.5), h->quantile(0.9));
    EXPECT_LE(h->quantile(0.9), h->quantile(0.99));
}

TEST(Telemetry, RegistryThreadedIncrements)
{
    Registry reg;
    Counter* c = reg.counter("races");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([c] {
            for (int i = 0; i < 10000; ++i) {
                c->inc();
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(c->value(), 40000u);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(Telemetry, SpanNestingRecordsDepthAndOrder)
{
    Tracer tracer;
    {
        SpanGuard outer(tracer, "outer");
        {
            SpanGuard inner(tracer, "inner");
        }
        {
            SpanGuard inner2(tracer, "inner2");
        }
    }
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 3u);
    // Spans close inner-first.
    EXPECT_STREQ(events[0].name, "inner");
    EXPECT_EQ(events[0].depth, 1u);
    EXPECT_STREQ(events[1].name, "inner2");
    EXPECT_EQ(events[1].depth, 1u);
    EXPECT_STREQ(events[2].name, "outer");
    EXPECT_EQ(events[2].depth, 0u);
    // The outer span contains both inner spans.
    EXPECT_LE(events[2].ts_us, events[0].ts_us);
    EXPECT_GE(events[2].ts_us + events[2].dur_us,
              events[1].ts_us + events[1].dur_us);
}

TEST(Telemetry, SpanMirrorsDurationIntoHistogram)
{
    Tracer tracer;
    Histogram h;
    {
        SpanGuard span(tracer, "timed", &h);
    }
    EXPECT_EQ(h.count(), 1u);
}

TEST(Telemetry, RingBufferWrapsKeepingNewest)
{
    Tracer tracer(4);
    for (int i = 0; i < 10; ++i) {
        tracer.instant("e", static_cast<uint64_t>(i));
    }
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    EXPECT_EQ(events.front().arg, 6u);
    EXPECT_EQ(events.back().arg, 9u);
}

TEST(Telemetry, ChromeTraceJsonGolden)
{
    Tracer tracer;
    tracer.record_complete("synth", 100.0, 50.5, 0);
    tracer.record_complete("place", 151.0, 8.25, 1);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);

    // Golden check: deterministic inputs produce exactly this JSON,
    // modulo the tid this thread was assigned.
    const std::string tid = std::to_string(Tracer::thread_id());
    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"synth\",\"cat\":\"cascade\",\"pid\":1,\"tid\":" +
        tid +
        ",\"ts\":100.000,\"ph\":\"X\",\"dur\":50.500},"
        "{\"name\":\"place\",\"cat\":\"cascade\",\"pid\":1,\"tid\":" +
        tid + ",\"ts\":151.000,\"ph\":\"X\",\"dur\":8.250}]}";
    EXPECT_EQ(tracer.chrome_json(), expected);
}

TEST(Telemetry, ChromeTraceJsonIsStructurallyValid)
{
    Tracer tracer;
    {
        SpanGuard outer(tracer, "outer \"quoted\" name");
        SpanGuard inner(tracer, "inner");
        tracer.instant("marker", 42);
    }
    const std::string json = tracer.chrome_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // The trace_event contract Perfetto relies on: a traceEvents array
    // whose entries carry name/ph/ts; complete events carry dur, instants
    // a scope.
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":42}"), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(Telemetry, GlobalTraceFileRoundTrip)
{
    Tracer tracer;
    {
        SpanGuard span(tracer, "phase");
    }
    const std::string path = ::testing::TempDir() + "telemetry_trace.json";
    ASSERT_TRUE(tracer.write_chrome_json(path));
    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::string contents((std::istreambuf_iterator<char>(file)),
                         std::istreambuf_iterator<char>());
    // Trailing newline is outside the JSON value.
    while (!contents.empty() &&
           (contents.back() == '\n' || contents.back() == '\r')) {
        contents.pop_back();
    }
    EXPECT_TRUE(JsonChecker(contents).valid()) << contents;
}

TEST(Telemetry, JsonEscape)
{
    EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
    EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

} // namespace
} // namespace cascade::telemetry
