/// \file
/// Differential tests for the native-code JIT tier. The contract under
/// test: a JitKernel is byte-identical to the Bitstream interpreter (and
/// hence to the reference simulator) for every observable — outputs,
/// register state, memory contents, latch counters — across random
/// designs, random stimulus, wide datapaths, and derived clock domains.
/// The runtime-level tests then pin the three-tier ladder: adoption from
/// software, eviction back out, $monitor/VCD continuity, and replay.
///
/// Every test degrades to GTEST_SKIP when no system compiler is usable
/// (the same condition under which the runtime journals jit.unavailable).

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "fpga/bitstream.h"
#include "fpga/synth.h"
#include "jit/jit_cache.h"
#include "jit/jit_kernel.h"
#include "runtime/replay.h"
#include "runtime/runtime.h"
#include "sim/interpreter.h"
#include "verilog/parser.h"

namespace cascade {
namespace {

using namespace verilog;

std::shared_ptr<const fpga::Netlist>
synth(const std::string& src)
{
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str() << "\n" << src;
    if (diags.has_errors() || unit.modules.empty()) {
        return nullptr;
    }
    Elaborator elab(&diags);
    std::shared_ptr<const ElaboratedModule> em(
        elab.elaborate(*unit.modules[0]));
    EXPECT_NE(em, nullptr) << diags.str();
    if (em == nullptr) {
        return nullptr;
    }
    auto nl = fpga::synthesize(*em, &diags);
    EXPECT_NE(nl, nullptr) << diags.str();
    return std::shared_ptr<const fpga::Netlist>(std::move(nl));
}

std::unique_ptr<jit::JitKernel>
make_kernel(std::shared_ptr<const fpga::Netlist> nl)
{
    std::string error;
    auto k = jit::JitKernel::create(std::move(nl), &error);
    EXPECT_NE(k, nullptr) << error;
    return k;
}

/// Drives \p hw and \p kern in lockstep for \p cycles device cycles with
/// seeded random stimulus on \p in_ports and asserts every output, every
/// register, and every latch counter match after each cycle.
void
lockstep(fpga::Bitstream* hw, jit::JitKernel* kern,
         const std::vector<std::pair<std::string, uint32_t>>& in_ports,
         uint64_t seed, int cycles)
{
    const fpga::Netlist& nl = hw->netlist();
    std::mt19937_64 rng(seed);
    hw->eval_comb();
    kern->eval_comb();
    for (int c = 0; c < cycles; ++c) {
        for (const auto& [name, width] : in_ports) {
            BitVector v(width, 0);
            for (uint32_t w = 0; w < v.num_words(); ++w) {
                v.set_word(w, rng());
            }
            hw->set_input(name, v);
            kern->set_input(name, v);
        }
        hw->eval_comb();
        kern->eval_comb();
        hw->set_input("clk", BitVector(1, 1));
        kern->set_input("clk", BitVector(1, 1));
        hw->step();
        kern->step();
        hw->set_input("clk", BitVector(1, 0));
        kern->set_input("clk", BitVector(1, 0));
        hw->step();
        kern->step();
        ASSERT_EQ(hw->cycles(), kern->cycles());
        for (const auto& out : nl.outputs) {
            ASSERT_EQ(hw->output(out.name), kern->output(out.name))
                << "cycle " << c << " output " << out.name;
        }
        for (const auto& reg : nl.regs) {
            ASSERT_EQ(hw->reg_value(reg.name), kern->reg_value(reg.name))
                << "cycle " << c << " reg " << reg.name;
            ASSERT_EQ(hw->latch_count(reg.name), kern->latch_count(reg.name))
                << "cycle " << c << " latches of " << reg.name;
        }
        for (const auto& mem : nl.mems) {
            for (uint64_t i = 0; i < mem.size; ++i) {
                ASSERT_EQ(hw->mem_value(mem.name, i),
                          kern->mem_value(mem.name, i))
                    << "cycle " << c << " " << mem.name << "[" << i << "]";
            }
        }
    }
}

#define REQUIRE_JIT()                                                       \
    do {                                                                    \
        if (!jit::compiler_available()) {                                   \
            GTEST_SKIP() << "no system compiler; JIT tier unavailable";     \
        }                                                                   \
    } while (0)

// ---------------------------------------------------------------------------
// Codegen-level differentials: JitKernel vs Bitstream on the same netlist.
// ---------------------------------------------------------------------------

TEST(JitKernel, CounterMatchesBitstream)
{
    REQUIRE_JIT();
    auto nl = synth("module C(input wire clk, input wire rst,\n"
                    "         output wire [31:0] q);\n"
                    "  reg [31:0] n = 0;\n"
                    "  always @(posedge clk)\n"
                    "    if (rst) n <= 0; else n <= n + 1;\n"
                    "  assign q = n;\n"
                    "endmodule\n");
    ASSERT_NE(nl, nullptr);
    fpga::Bitstream hw(nl);
    auto kern = make_kernel(nl);
    ASSERT_NE(kern, nullptr);
    lockstep(&hw, kern.get(), {{"rst", 1}}, 7, 50);
}

TEST(JitKernel, WideDatapathMatchesBitstream)
{
    REQUIRE_JIT();
    // >64-bit arithmetic exercises the wide-op helper library: add, sub,
    // mul, shifts with variable amounts, compares, reductions, concat,
    // slices, and sign handling all above word granularity.
    auto nl = synth(
        "module W(input wire clk, input wire [127:0] a,\n"
        "         input wire [127:0] b, input wire [6:0] s,\n"
        "         output wire [127:0] o0, output wire [127:0] o1,\n"
        "         output wire [127:0] o2, output wire [0:0] o3,\n"
        "         output wire [63:0] o4, output wire [127:0] o5);\n"
        "  reg [127:0] acc = 128'd3;\n"
        "  always @(posedge clk) acc <= acc + (a ^ b);\n"
        "  assign o0 = (a + b) - (a & b);\n"
        "  assign o1 = a * b;\n"
        "  assign o2 = (a << s) | (b >> s);\n"
        "  assign o3 = (a < b) ^ (&a) ^ (^b) ^ (|acc);\n"
        "  assign o4 = acc[95:32];\n"
        "  assign o5 = {a[31:0], b[127:64], acc[31:0]};\n"
        "endmodule\n");
    ASSERT_NE(nl, nullptr);
    fpga::Bitstream hw(nl);
    auto kern = make_kernel(nl);
    ASSERT_NE(kern, nullptr);
    lockstep(&hw, kern.get(), {{"a", 128}, {"b", 128}, {"s", 7}}, 11, 40);
}

TEST(JitKernel, SignedAndDivisionMatchBitstream)
{
    REQUIRE_JIT();
    auto nl = synth(
        "module S(input wire clk, input wire [15:0] a,\n"
        "         input wire [15:0] b,\n"
        "         output wire [15:0] q, output wire [15:0] r,\n"
        "         output wire [0:0] lt, output wire [15:0] sh);\n"
        "  assign q = a / (b | 16'd1);\n"
        "  assign r = a % (b | 16'd1);\n"
        "  assign lt = ($signed(a) < $signed(b));\n"
        "  assign sh = $signed(a) >>> b[3:0];\n"
        "endmodule\n");
    ASSERT_NE(nl, nullptr);
    fpga::Bitstream hw(nl);
    auto kern = make_kernel(nl);
    ASSERT_NE(kern, nullptr);
    lockstep(&hw, kern.get(), {{"a", 16}, {"b", 16}}, 13, 60);
}

TEST(JitKernel, MemoryMatchesBitstream)
{
    REQUIRE_JIT();
    auto nl = synth(
        "module M(input wire clk, input wire we, input wire [3:0] wa,\n"
        "         input wire [3:0] ra, input wire [7:0] wd,\n"
        "         output wire [7:0] rd);\n"
        "  reg [7:0] mem [0:15];\n"
        "  always @(posedge clk) if (we) mem[wa] <= wd;\n"
        "  assign rd = mem[ra];\n"
        "endmodule\n");
    ASSERT_NE(nl, nullptr);
    fpga::Bitstream hw(nl);
    auto kern = make_kernel(nl);
    ASSERT_NE(kern, nullptr);
    lockstep(&hw, kern.get(),
             {{"we", 1}, {"wa", 4}, {"ra", 4}, {"wd", 8}}, 17, 60);
}

TEST(JitKernel, DerivedClockDomainMatchesBitstream)
{
    REQUIRE_JIT();
    // A register clocked by another register exercises the cascading
    // latch iteration in step(): tick rises while the device clock is
    // being committed, so s latches on a later iteration of the same
    // step.
    auto nl = synth(
        "module D(input wire clk, input wire [7:0] a,\n"
        "         output wire [7:0] fast, output wire [7:0] slow);\n"
        "  reg tick = 0;\n"
        "  reg [7:0] s = 0;\n"
        "  always @(posedge clk) tick <= ~tick;\n"
        "  always @(posedge tick) s <= s + a;\n"
        "  assign fast = {7'd0, tick};\n"
        "  assign slow = s;\n"
        "endmodule\n");
    ASSERT_NE(nl, nullptr);
    fpga::Bitstream hw(nl);
    auto kern = make_kernel(nl);
    ASSERT_NE(kern, nullptr);
    lockstep(&hw, kern.get(), {{"a", 8}}, 19, 80);
}

TEST(JitKernel, StateInjectionRoundTrips)
{
    REQUIRE_JIT();
    // set_reg / set_mem are the adoption path: state captured from a
    // software engine must land bit-exactly, including width clamping.
    auto nl = synth(
        "module R(input wire clk, input wire [3:0] ra,\n"
        "         output wire [66:0] q, output wire [7:0] rd);\n"
        "  reg [66:0] r = 0;\n"
        "  reg [7:0] mem [0:15];\n"
        "  always @(posedge clk) r <= r + 67'd1;\n"
        "  assign q = r;\n"
        "  assign rd = mem[ra];\n"
        "endmodule\n");
    ASSERT_NE(nl, nullptr);
    fpga::Bitstream hw(nl);
    auto kern = make_kernel(nl);
    ASSERT_NE(kern, nullptr);

    BitVector wide(128, 0);
    wide.set_word(0, 0xDEADBEEFCAFEF00Dull);
    wide.set_word(1, 0xFFFFFFFFFFFFFFFFull); // clamped to 67 bits
    hw.set_reg("r", wide);
    kern->set_reg("r", wide);
    ASSERT_EQ(hw.reg_value("r"), kern->reg_value("r"));

    for (uint64_t i = 0; i < 16; ++i) {
        const BitVector v(8, 0x30 + i);
        hw.set_mem("mem", i, v);
        kern->set_mem("mem", i, v);
    }
    lockstep(&hw, kern.get(), {{"ra", 4}}, 23, 40);
}

// ---------------------------------------------------------------------------
// Randomized three-way differential: simulator vs Bitstream vs JitKernel.
// ---------------------------------------------------------------------------

std::string
fuzz_module(uint64_t seed)
{
    std::mt19937_64 rng(seed);
    auto pick = [&rng](uint32_t n) {
        return static_cast<uint32_t>(rng() % n);
    };
    std::vector<std::string> leaves = {"a", "b", "c"};
    std::function<std::string(int)> gen = [&](int depth) -> std::string {
        if (depth <= 0 || pick(4) == 0) {
            if (pick(3) == 0) {
                return "8'd" + std::to_string(pick(256));
            }
            return leaves[pick(static_cast<uint32_t>(leaves.size()))];
        }
        switch (pick(11)) {
          case 0: return "(" + gen(depth - 1) + " + " + gen(depth - 1) + ")";
          case 1: return "(" + gen(depth - 1) + " - " + gen(depth - 1) + ")";
          case 2: return "(" + gen(depth - 1) + " * " + gen(depth - 1) + ")";
          case 3: return "(" + gen(depth - 1) + " ^ " + gen(depth - 1) + ")";
          case 4: return "(" + gen(depth - 1) + " & " + gen(depth - 1) + ")";
          case 5: return "(" + gen(depth - 1) + " | " + gen(depth - 1) + ")";
          case 6: return "(~" + gen(depth - 1) + ")";
          case 7:
            return "(" + gen(depth - 1) + " >> " + std::to_string(pick(9)) +
                   ")";
          case 8:
            return "((" + gen(depth - 1) + " < " + gen(depth - 1) + ") ? " +
                   gen(depth - 1) + " : " + gen(depth - 1) + ")";
          case 9:
            return "(" + gen(depth - 1) + " == " + gen(depth - 1) + ")";
          default:
            return "{" + leaves[pick(3)] + "[3:0], " + leaves[pick(3)] +
                   "[7:4]}";
        }
    };
    std::ostringstream src;
    src << "module F(input wire clk, input wire [7:0] a, "
           "input wire [7:0] b, input wire [7:0] c,\n"
           "         output wire [7:0] o0, output wire [7:0] o1);\n";
    src << "  wire [7:0] w0;\n  assign w0 = " << gen(3) << ";\n";
    leaves.push_back("w0");
    src << "  reg [7:0] r0 = " << (rng() % 256) << ";\n";
    leaves.push_back("r0");
    src << "  always @(posedge clk) r0 <= " << gen(3) << ";\n";
    src << "  assign o0 = w0 ^ r0;\n";
    src << "  assign o1 = " << gen(2) << ";\n";
    src << "endmodule\n";
    return src.str();
}

class JitFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitFuzz, ThreeWayDifferential)
{
    REQUIRE_JIT();
    const std::string src = fuzz_module(GetParam());
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    ASSERT_FALSE(diags.has_errors()) << diags.str() << "\n" << src;
    Elaborator elab(&diags);
    std::shared_ptr<const ElaboratedModule> em(
        elab.elaborate(*unit.modules[0]));
    ASSERT_NE(em, nullptr) << diags.str();
    auto nl_up = fpga::synthesize(*em, &diags);
    ASSERT_NE(nl_up, nullptr) << diags.str();
    std::shared_ptr<const fpga::Netlist> nl(std::move(nl_up));

    fpga::Bitstream hw(nl);
    auto kern = make_kernel(nl);
    ASSERT_NE(kern, nullptr);

    sim::ModuleInterpreter sw(em, nullptr);
    sw.run_initials();
    auto settle = [&sw] {
        for (int i = 0; i < 64; ++i) {
            sw.evaluate();
            if (!sw.there_are_updates()) {
                return;
            }
            sw.update();
        }
    };
    settle();
    hw.eval_comb();
    kern->eval_comb();

    std::mt19937_64 stim(GetParam() * 131 + 7);
    for (int cycle = 0; cycle < 40; ++cycle) {
        for (const char* in : {"a", "b", "c"}) {
            const BitVector v(8, stim());
            sw.set_input(in, v);
            hw.set_input(in, v);
            kern->set_input(in, v);
        }
        settle();
        hw.eval_comb();
        kern->eval_comb();
        sw.set_input("clk", BitVector(1, 1));
        settle();
        hw.set_input("clk", BitVector(1, 1));
        kern->set_input("clk", BitVector(1, 1));
        hw.step();
        kern->step();
        sw.set_input("clk", BitVector(1, 0));
        settle();
        hw.set_input("clk", BitVector(1, 0));
        kern->set_input("clk", BitVector(1, 0));
        hw.step();
        kern->step();
        for (const char* out : {"o0", "o1"}) {
            ASSERT_EQ(sw.get(out), hw.output(out))
                << "seed " << GetParam() << " cycle " << cycle << " " << out
                << "\n" << src;
            ASSERT_EQ(hw.output(out), kern->output(out))
                << "seed " << GetParam() << " cycle " << cycle << " " << out
                << "\n" << src;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitFuzz,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Cache behavior and graceful degradation.
// ---------------------------------------------------------------------------

TEST(JitCache, SecondBuildIsWarm)
{
    REQUIRE_JIT();
    auto nl = synth("module C2(input wire clk, output wire [7:0] q);\n"
                    "  reg [7:0] n = 9;\n"
                    "  always @(posedge clk) n <= n + 3;\n"
                    "  assign q = n;\n"
                    "endmodule\n");
    ASSERT_NE(nl, nullptr);
    std::string err, d1, d2;
    bool hit1 = false, hit2 = false;
    auto k1 = jit::JitKernel::create(nl, &err, &d1, &hit1);
    ASSERT_NE(k1, nullptr) << err;
    auto k2 = jit::JitKernel::create(nl, &err, &d2, &hit2);
    ASSERT_NE(k2, nullptr) << err;
    EXPECT_EQ(d1, d2); // content-addressed: same netlist, same digest
    EXPECT_TRUE(hit2); // second build never re-invokes the compiler

    // The two kernels are independent instances of the same module.
    k1->set_input("clk", BitVector(1, 1));
    k1->step();
    EXPECT_EQ(k1->cycles(), 1u);
    EXPECT_EQ(k2->cycles(), 0u);

    // The generated source is persisted beside the object (CI artifact).
    EXPECT_TRUE(std::ifstream(jit::source_path_for(d1)).good());
}

TEST(JitCache, BogusCompilerDisablesTier)
{
    auto nl = synth("module C3(input wire clk, output wire [0:0] q);\n"
                    "  reg n = 0;\n"
                    "  always @(posedge clk) n <= ~n;\n"
                    "  assign q = n;\n"
                    "endmodule\n");
    ASSERT_NE(nl, nullptr);
    ::setenv("CASCADE_JIT_CXX", "/nonexistent/cascade-no-such-cxx", 1);
    EXPECT_FALSE(jit::compiler_available());
    std::string err;
    auto k = jit::JitKernel::create(nl, &err);
    EXPECT_EQ(k, nullptr);
    EXPECT_FALSE(err.empty());
    ::unsetenv("CASCADE_JIT_CXX");
}

// ---------------------------------------------------------------------------
// Runtime-level ladder tests: interpreter -> JIT -> fabric, with $monitor
// and VCD continuity, record/replay, and graceful degradation.
// ---------------------------------------------------------------------------

std::string
temp_path(const char* name)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("cascade_jit_test_") + name +
             std::to_string(::getpid())))
        .string();
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// A VCD file minus its `$date` header line (the only wall-clock-bearing
/// byte in the dump), so two runs of the same ticks compare byte-equal.
std::string
read_vcd_dateless(const std::string& path)
{
    std::string text = read_file(path);
    const size_t at = text.find("$date");
    if (at != std::string::npos) {
        const size_t eol = text.find('\n', at);
        text.erase(at, eol == std::string::npos ? std::string::npos
                                                : eol - at + 1);
    }
    return text;
}

/// Fabric slow, JIT fast: the kernel adopts first, so the middle rung of
/// the ladder is observable before the fabric upgrade races it away.
runtime::Runtime::Options
jit_first()
{
    runtime::Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 3.0; // fabric lands seconds later than the JIT
    opts.open_loop_target_wall_s = 0.02;
    return opts;
}

/// A counter with $display and $monitor: enough observable output that a
/// botched tier handoff changes the printed byte stream.
const char* const kLadderProgram =
    "reg [15:0] n = 0;\n"
    "wire [15:0] h;\n"
    "assign h = (n * 16'h9E37) ^ (n >> 3);\n"
    "always @(posedge clk.val) begin\n"
    "  n <= n + 1;\n"
    "  if (n % 32 == 0) $display(\"n=%d h=%d\", n, h);\n"
    "end\n"
    "initial $monitor(\"mon h=%d\", h[7:0]);\n";

/// Steps until the program reaches the JIT tier (bounded by wall time).
/// The tick count on arrival is not deterministic — a cold on-disk cache
/// lets the interpreter run for the length of a compiler invocation —
/// so callers measure ticks afterwards instead of assuming them.
bool
step_until_jit(runtime::Runtime* rt, double timeout_s = 120.0)
{
    const auto start = std::chrono::steady_clock::now();
    while (rt->user_location() != runtime::Location::Jit) {
        if (rt->telemetry().counter("jit.unavailable")->value() > 0 ||
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                    .count() > timeout_s) {
            return false;
        }
        rt->step();
    }
    return true;
}

TEST(JitRuntime, LadderClimbsSwToJitToFabricByteIdentically)
{
    REQUIRE_JIT();
    std::string out;
    uint64_t total_ticks = 0;
    uint64_t jit_arrival_ticks = 0;
    {
        runtime::Runtime rt(jit_first());
        rt.on_output = [&out](const std::string& s) { out += s; };
        std::string err;
        ASSERT_TRUE(rt.eval(kLadderProgram, &err)) << err;

        // Climb to the middle rung and run there for a while.
        ASSERT_TRUE(step_until_jit(&rt));
        EXPECT_EQ(rt.user_location(), runtime::Location::Jit);
        EXPECT_FALSE(rt.hardware_ready()); // the JIT tier is not the fabric
        jit_arrival_ticks = rt.virtual_ticks();
        rt.run_for_ticks(200);

        // The fabric upgrade discards the kernel; state carries across.
        // (wait_for_hardware polls without advancing virtual time.)
        ASSERT_TRUE(rt.wait_for_hardware(120.0));
        EXPECT_NE(rt.user_location(), runtime::Location::Jit);
        EXPECT_NE(rt.user_location(), runtime::Location::Software);
        EXPECT_GE(rt.telemetry().counter("jit.discarded")->value(), 1u);
        rt.run_for_ticks(200);

        total_ticks = rt.virtual_ticks();
        EXPECT_EQ(total_ticks, jit_arrival_ticks + 400);
        EXPECT_GE(rt.telemetry().counter("jit.adopted")->value(), 1u);
        EXPECT_GE(rt.transitions().size(), 2u); // sw->jit, jit->hw
    }

    // Reference: the same program for the same tick count, interpreter
    // only. The $display/$monitor stream must be byte-identical across
    // both tier transitions.
    std::string ref_out;
    {
        runtime::Runtime::Options opts;
        opts.enable_hardware = false;
        runtime::Runtime rt(opts);
        rt.on_output = [&ref_out](const std::string& s) { ref_out += s; };
        std::string err;
        ASSERT_TRUE(rt.eval(kLadderProgram, &err)) << err;
        rt.run_for_ticks(total_ticks);
    }
    EXPECT_EQ(out, ref_out)
        << "ladder run diverged from interpreter (jit adopted at tick "
        << jit_arrival_ticks << ", total " << total_ticks << ")";
}

TEST(JitRuntime, MonitorAndVcdContinuityAcrossJitAdoption)
{
    REQUIRE_JIT();
    const std::string ref_vcd = temp_path("ref.vcd");
    const std::string jit_vcd = temp_path("jit.vcd");

    std::string out;
    uint64_t total_ticks = 0;
    {
        runtime::Runtime rt(jit_first());
        rt.on_output = [&out](const std::string& s) { out += s; };
        std::string err;
        ASSERT_TRUE(rt.eval(kLadderProgram, &err)) << err;
        ASSERT_TRUE(rt.add_probe("n", &err)) << err;
        ASSERT_TRUE(rt.vcd_open(jit_vcd, &err)) << err;
        ASSERT_TRUE(step_until_jit(&rt));
        ASSERT_EQ(rt.user_location(), runtime::Location::Jit);
        rt.run_for_ticks(150);
        total_ticks = rt.virtual_ticks();
        rt.close_vcd();
    }

    std::string ref_out;
    {
        runtime::Runtime::Options opts;
        opts.enable_hardware = false;
        runtime::Runtime rt(opts);
        rt.on_output = [&ref_out](const std::string& s) { ref_out += s; };
        std::string err;
        ASSERT_TRUE(rt.eval(kLadderProgram, &err)) << err;
        ASSERT_TRUE(rt.add_probe("n", &err)) << err;
        ASSERT_TRUE(rt.vcd_open(ref_vcd, &err)) << err;
        rt.run_for_ticks(total_ticks);
        rt.close_vcd();
    }

    // The dump spans the sw -> jit handoff with continuous values: the
    // whole file (virtual timestamps included; only the wall-clock $date
    // header differs) matches the interpreter-only run.
    EXPECT_EQ(read_vcd_dateless(jit_vcd), read_vcd_dateless(ref_vcd));
    EXPECT_EQ(out, ref_out);

    std::filesystem::remove(ref_vcd);
    std::filesystem::remove(jit_vcd);
}

TEST(JitRuntime, ReplayRoundTripPinsJitAdoption)
{
    REQUIRE_JIT();
    const std::string path = temp_path("jit_replay.jsonl");

    std::string recorded;
    {
        runtime::Runtime rt(jit_first());
        rt.on_output = [&recorded](const std::string& s) { recorded += s; };
        std::string err;
        ASSERT_TRUE(rt.start_recording(path, &err)) << err;
        ASSERT_TRUE(rt.eval(kLadderProgram, &err)) << err;
        ASSERT_TRUE(step_until_jit(&rt));
        rt.run_for_ticks(400);
        rt.stop_recording();
        EXPECT_EQ(rt.user_location(), runtime::Location::Jit);
    }
    ASSERT_FALSE(recorded.empty());

    runtime::ReplayLog log;
    std::string err;
    ASSERT_TRUE(runtime::load_journal(path, &log, &err)) << err;
    bool saw_launch = false, saw_adopt = false;
    for (const auto& ev : log.events) {
        saw_launch |= ev.type == "jit.launch";
        saw_adopt |= ev.type == "jit.adopt";
        if (ev.type == "jit.adopt") {
            // The kernel digest is content-addressed and deterministic,
            // so it is part of the compared payload.
            EXPECT_FALSE(ev.data.get_str("digest", "").empty());
        }
    }
    ASSERT_TRUE(saw_launch);
    ASSERT_TRUE(saw_adopt);

    runtime::Runtime rt2(runtime::options_from_header(log.header));
    std::string replayed;
    rt2.on_output = [&replayed](const std::string& s) { replayed += s; };
    const runtime::ReplayReport report = runtime::replay_into(&rt2, log);
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_FALSE(report.diverged) << report.summary();
    EXPECT_EQ(replayed, recorded);
    EXPECT_EQ(rt2.user_location(), runtime::Location::Jit);
    EXPECT_GE(rt2.telemetry().counter("jit.adopted")->value(), 1u);

    std::filesystem::remove(path);
}

TEST(JitRuntime, NoCompilerDegradesGracefullyAndJournals)
{
    // No REQUIRE_JIT: this is the no-compiler path itself. The env knob
    // the runtime honors verbatim doubles as the test hook. A warm cache
    // serves kernels without invoking the compiler at all (by design), so
    // this test needs a cold, isolated cache dir AND a program no other
    // test compiled (the in-process registry has no eviction).
    ::setenv("CASCADE_JIT_CXX", "/nonexistent/cascade-no-such-cxx", 1);
    const std::string cache = temp_path("cold_cache");
    std::filesystem::remove_all(cache);
    ::setenv("CASCADE_JIT_CACHE_DIR", cache.c_str(), 1);
    const std::string path = temp_path("jit_unavailable.jsonl");

    runtime::Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    runtime::Runtime rt(opts);
    std::string out;
    rt.on_output = [&out](const std::string& s) { out += s; };
    std::string err;
    ASSERT_TRUE(rt.start_recording(path, &err)) << err;
    // Distinct from kLadderProgram: its kernel is already in the
    // in-process registry from the ladder tests above.
    ASSERT_TRUE(rt.eval("reg [23:0] q = 1;\n"
                        "always @(posedge clk.val)\n"
                        "  q <= {q[22:0], q[23] ^ q[17]};\n",
                        &err))
        << err;

    const auto start = std::chrono::steady_clock::now();
    while (rt.telemetry().counter("jit.unavailable")->value() == 0) {
        rt.step();
        ASSERT_LT(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count(),
                  60.0)
            << "jit.unavailable never surfaced";
    }
    // The program never left the interpreter for the JIT tier and keeps
    // making progress; the fabric rung still works.
    EXPECT_EQ(rt.telemetry().counter("jit.adopted")->value(), 0u);
    const uint64_t ticks = rt.virtual_ticks();
    rt.run_for_ticks(32);
    EXPECT_EQ(rt.virtual_ticks(), ticks + 32);
    ASSERT_TRUE(rt.wait_for_hardware(60.0));
    rt.stop_recording();

    runtime::ReplayLog log;
    ASSERT_TRUE(runtime::load_journal(path, &log, &err)) << err;
    bool saw_unavailable = false;
    for (const auto& ev : log.events) {
        if (ev.type == "jit.unavailable") {
            saw_unavailable = true;
            // Compared payload: no error text (it carries machine paths).
            EXPECT_EQ(ev.data.get_str("error", ""), "");
        }
    }
    EXPECT_TRUE(saw_unavailable);

    ::unsetenv("CASCADE_JIT_CXX");
    ::unsetenv("CASCADE_JIT_CACHE_DIR");
    std::filesystem::remove(path);
    std::filesystem::remove_all(cache);
}

} // namespace
} // namespace cascade
