/// \file
/// Placement and static timing analysis. Placement uses simulated
/// annealing over a 2-D logic-element grid minimizing half-perimeter
/// wirelength — this is the genuinely expensive, size-dependent step that
/// makes background compilation slow, exactly the property Cascade's JIT
/// hides (paper §1: "compilation for FPGAs is theoretically hard ...
/// constraint satisfaction").

#ifndef CASCADE_FPGA_PLACE_H
#define CASCADE_FPGA_PLACE_H

#include <cstdint>
#include <vector>

#include "fpga/techmap.h"

namespace cascade::fpga {

struct PlacementResult {
    /// Per-cell (x, y) grid coordinates.
    std::vector<std::pair<uint32_t, uint32_t>> locations;
    uint32_t grid = 1;            ///< grid side length
    double final_wirelength = 0;  ///< HPWL after annealing
    double initial_wirelength = 0;
    uint64_t moves_evaluated = 0; ///< annealing work performed
};

struct PlaceOptions {
    /// Scales the annealing schedule; 1.0 is the default effort. Higher
    /// effort: better wirelength/timing, longer compiles.
    double effort = 1.0;
    uint64_t seed = 1;
};

PlacementResult place(const MappedDesign& design,
                      const PlaceOptions& options);

struct TimingReport {
    double critical_path_ns = 1.0;
    double fmax_mhz = 1000.0;
    bool met = true; ///< meets the target clock
    /// The longest path as netlist node ids, source first. Rendered into
    /// user-signal names by the compile driver (Netlist::name_of), so
    /// timing reports read as a chain of source-level signals instead of
    /// anonymous cell ids.
    std::vector<uint32_t> critical_path;
    /// Per-hop arrival times (ns), parallel to critical_path.
    std::vector<double> critical_arrival_ns;
};

/// Static timing: longest register-to-register (or port-to-port)
/// combinational path through mapped delays plus placement-derived wire
/// delays.
TimingReport analyze_timing(const Netlist& nl, const MappedDesign& design,
                            const PlacementResult& placement,
                            double target_clock_mhz);

} // namespace cascade::fpga

#endif // CASCADE_FPGA_PLACE_H
