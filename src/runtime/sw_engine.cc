#include "runtime/sw_engine.h"

#include "common/check.h"

namespace cascade::runtime {

SwEngine::SwEngine(std::shared_ptr<const verilog::ElaboratedModule> em,
                   EngineCallbacks* callbacks,
                   const std::vector<bool>& initial_skip,
                   bool hardware_resident)
    : callbacks_(callbacks), interp_(em, this),
      hardware_resident_(hardware_resident)
{
    net_to_port_.assign(em->nets.size(), -1);
    for (const verilog::Port& p : em->decl->ports) {
        const uint32_t net = em->net_id(p.name);
        net_to_port_[net] = static_cast<int32_t>(port_nets_.size());
        port_nets_.push_back(net);
    }
    initial_count_ = interp_.initial_count();
    interp_.run_initials_masked(initial_skip);
}

sim::StateSnapshot
SwEngine::get_state()
{
    return interp_.get_state();
}

void
SwEngine::set_state(const sim::StateSnapshot& snapshot)
{
    interp_.set_state(snapshot);
}

void
SwEngine::read(const Event& event)
{
    CASCADE_CHECK(event.port < port_nets_.size());
    interp_.set_input(port_nets_[event.port], event.value);
}

std::vector<Event>
SwEngine::write()
{
    std::vector<Event> events;
    for (uint32_t net : interp_.take_changed_outputs()) {
        const int32_t port = net_to_port_[net];
        if (port >= 0) {
            events.push_back(
                {static_cast<uint32_t>(port), interp_.get(net)});
        }
    }
    return events;
}

bool
SwEngine::there_are_evals()
{
    return interp_.there_are_evals();
}

void
SwEngine::evaluate()
{
    interp_.evaluate();
}

bool
SwEngine::there_are_updates()
{
    return interp_.there_are_updates();
}

void
SwEngine::update()
{
    interp_.update();
}

bool
SwEngine::finished() const
{
    return interp_.finished();
}

void
SwEngine::end_step()
{
    // End of timestep: registered $monitor statements fire (at most once
    // each); the runtime's on-change suppression decides what prints.
    interp_.flush_monitors();
}

void
SwEngine::on_display(const std::string& text)
{
    if (callbacks_ != nullptr) {
        callbacks_->on_display(text);
    }
}

void
SwEngine::on_write(const std::string& text)
{
    if (callbacks_ != nullptr) {
        callbacks_->on_write(text);
    }
}

void
SwEngine::on_finish()
{
    if (callbacks_ != nullptr) {
        callbacks_->on_finish();
    }
}

uint64_t
SwEngine::current_time() const
{
    return callbacks_ != nullptr ? callbacks_->virtual_time() : 0;
}

void
SwEngine::on_monitor(const std::string& key, const std::string& text)
{
    if (callbacks_ != nullptr) {
        callbacks_->on_monitor(key, text);
    }
}

void
SwEngine::on_dumpfile(const std::string& path)
{
    if (callbacks_ != nullptr) {
        callbacks_->on_dumpfile(path);
    }
}

void
SwEngine::on_dumpvars()
{
    if (callbacks_ != nullptr) {
        callbacks_->on_dumpvars();
    }
}

void
SwEngine::on_dumpoff()
{
    if (callbacks_ != nullptr) {
        callbacks_->on_dumpoff();
    }
}

void
SwEngine::on_dumpon()
{
    if (callbacks_ != nullptr) {
        callbacks_->on_dumpon();
    }
}

} // namespace cascade::runtime
