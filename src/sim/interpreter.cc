#include "sim/interpreter.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "verilog/printer.h"

namespace cascade::sim {

using namespace verilog;

namespace {

/// Resizes \p v to \p width, sign-extending when \p is_signed.
BitVector
extend(const BitVector& v, uint32_t width, bool is_signed)
{
    if (v.width() == width) {
        return v;
    }
    return v.resized(width, is_signed);
}

/// Iteration guard for while/repeat/for loops inside processes; a blown
/// guard indicates a runaway loop in user code.
constexpr uint64_t kLoopGuard = 1u << 22;

/// Iteration guard for the combinational fixed point; a blown guard
/// indicates a combinational cycle (oscillation).
constexpr uint64_t kFixedPointGuard = 1u << 16;

} // namespace

// ---------------------------------------------------------------------------
// Evaluator: expression evaluation with IEEE context-width semantics.
// ---------------------------------------------------------------------------

/// Evaluates expressions and performs lvalue writes against a
/// ModuleInterpreter's value store. Function calls push local frames,
/// which the width/signedness analysis consults through LocalScope.
class Evaluator : public LocalScope {
  public:
    explicit Evaluator(ModuleInterpreter* in)
        : in_(in), typer_(*in->em_, this)
    {}

    uint32_t
    local_width(const std::string& name) const override
    {
        const BitVector* local = find_local(name);
        return local != nullptr ? local->width() : 0;
    }

    bool
    local_signed(const std::string& name) const override
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            const auto found = it->is_signed.find(name);
            if (found != it->is_signed.end()) {
                return found->second;
            }
        }
        return false;
    }

    /// Self-determined evaluation.
    BitVector
    eval(const Expr& e)
    {
        return eval_ctx(e, typer_.self_width(e));
    }

    /// Context-width evaluation: the result always has width \p W.
    BitVector eval_ctx(const Expr& e, uint32_t W);

    /// Executes "lhs op= rhs" with standard context sizing, writing through
    /// commit so dependents wake. Used for blocking assigns.
    void
    assign(const Expr& lhs, const Expr& rhs)
    {
        const uint32_t lw = lvalue_width(lhs);
        const uint32_t W = std::max(lw, typer_.self_width(rhs));
        BitVector v = eval_ctx(rhs, W).slice(0, lw);
        std::vector<uint64_t> indices;
        capture_indices(lhs, &indices);
        size_t pos = 0;
        apply(lhs, v, indices, &pos);
    }

    /// Evaluates the RHS and captures dynamic lvalue indices for a deferred
    /// (nonblocking) commit.
    BitVector
    eval_rhs_for(const Expr& lhs, const Expr& rhs,
                 std::vector<uint64_t>* indices)
    {
        const uint32_t lw = lvalue_width(lhs);
        const uint32_t W = std::max(lw, typer_.self_width(rhs));
        BitVector v = eval_ctx(rhs, W).slice(0, lw);
        capture_indices(lhs, indices);
        return v;
    }

    /// Replays a captured assignment (nonblocking commit path).
    void
    apply_captured(const Expr& lhs, const BitVector& value,
                   const std::vector<uint64_t>& indices)
    {
        size_t pos = 0;
        apply(lhs, value, indices, &pos);
    }

    uint32_t
    lvalue_width(const Expr& lhs) const
    {
        if (lhs.kind == ExprKind::Concat) {
            const auto& c = static_cast<const ConcatExpr&>(lhs);
            uint32_t sum = 0;
            for (const auto& e : c.elements) {
                sum += lvalue_width(*e);
            }
            return sum;
        }
        if (!frames_.empty() && lhs.kind == ExprKind::Identifier) {
            const auto& id = static_cast<const IdentifierExpr&>(lhs);
            if (id.simple()) {
                const BitVector* local = find_local(id.path[0]);
                if (local != nullptr) {
                    return local->width();
                }
            }
        }
        return typer_.self_width(lhs);
    }

    bool
    is_signed(const Expr& e) const
    {
        return typer_.is_signed(e);
    }

    /// Calls a user function with already-evaluated arguments.
    BitVector call_function(const FunctionDecl& fn,
                            const std::vector<const Expr*>& args);

  private:
    struct Frame {
        const FunctionDecl* fn;
        std::unordered_map<std::string, BitVector> locals;
        std::unordered_map<std::string, bool> is_signed;
    };

    const BitVector*
    find_local(const std::string& name) const
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            const auto found = it->locals.find(name);
            if (found != it->locals.end()) {
                return &found->second;
            }
        }
        return nullptr;
    }

    BitVector*
    find_local(const std::string& name)
    {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            const auto found = it->locals.find(name);
            if (found != it->locals.end()) {
                return &found->second;
            }
        }
        return nullptr;
    }

    /// Reads the current value of the expression base for read-modify-write
    /// slice assignment.
    BitVector read_base(const Expr& base);

    /// Declared [msb:lsb] low bound for a named base; zero otherwise.
    uint32_t base_lsb_offset(const Expr& base) const;

    void capture_indices(const Expr& lhs, std::vector<uint64_t>* out);
    void apply(const Expr& lhs, const BitVector& value,
               const std::vector<uint64_t>& indices, size_t* pos);
    void write_named(const IdentifierExpr& id, const BitVector& value);

    void execute_fn_stmt(const Stmt& stmt, uint64_t* guard);

    ModuleInterpreter* in_;
    ExprTyper typer_;
    std::vector<Frame> frames_;

    friend class ModuleInterpreter;
};

BitVector
Evaluator::eval_ctx(const Expr& e, uint32_t W)
{
    switch (e.kind) {
      case ExprKind::Number: {
        const auto& n = static_cast<const NumberExpr&>(e);
        return extend(n.value, W, n.is_signed);
      }
      case ExprKind::String:
        // Strings only appear as $display arguments; evaluating one is a
        // front-end bug caught by elaboration.
        return BitVector(W, 0);
      case ExprKind::Identifier: {
        const auto& id = static_cast<const IdentifierExpr&>(e);
        CASCADE_CHECK(id.simple());
        if (const BitVector* local = find_local(id.path[0])) {
            return extend(*local, W, local_signed(id.path[0]));
        }
        const auto pit = in_->em_->params.find(id.path[0]);
        if (pit != in_->em_->params.end()) {
            const auto sit = in_->em_->param_signed.find(id.path[0]);
            return extend(pit->second, W,
                          sit != in_->em_->param_signed.end() && sit->second);
        }
        const NetInfo* net = in_->em_->find_net(id.path[0]);
        CASCADE_CHECK(net != nullptr);
        return extend(in_->get(in_->em_->net_id(id.path[0])), W,
                      net->is_signed);
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        switch (u.op) {
          case UnaryOp::Plus:
            return eval_ctx(*u.operand, W);
          case UnaryOp::Minus:
            return eval_ctx(*u.operand, W).negated();
          case UnaryOp::BitwiseNot:
            return eval_ctx(*u.operand, W).bit_not();
          case UnaryOp::LogicalNot:
            return extend(BitVector::from_bool(eval(*u.operand).is_zero()),
                          W, false);
          case UnaryOp::ReduceAnd:
            return extend(
                BitVector::from_bool(eval(*u.operand).reduce_and()), W,
                false);
          case UnaryOp::ReduceOr:
            return extend(
                BitVector::from_bool(eval(*u.operand).reduce_or()), W,
                false);
          case UnaryOp::ReduceXor:
            return extend(
                BitVector::from_bool(eval(*u.operand).reduce_xor()), W,
                false);
          case UnaryOp::ReduceNand:
            return extend(
                BitVector::from_bool(!eval(*u.operand).reduce_and()), W,
                false);
          case UnaryOp::ReduceNor:
            return extend(
                BitVector::from_bool(!eval(*u.operand).reduce_or()), W,
                false);
          case UnaryOp::ReduceXnor:
            return extend(
                BitVector::from_bool(!eval(*u.operand).reduce_xor()), W,
                false);
        }
        CASCADE_UNREACHABLE();
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        const bool result_signed =
            typer_.is_signed(*b.lhs) && typer_.is_signed(*b.rhs);
        switch (b.op) {
          case BinaryOp::Add:
            return BitVector::add(eval_ctx(*b.lhs, W), eval_ctx(*b.rhs, W));
          case BinaryOp::Sub:
            return BitVector::sub(eval_ctx(*b.lhs, W), eval_ctx(*b.rhs, W));
          case BinaryOp::Mul:
            return BitVector::mul(eval_ctx(*b.lhs, W), eval_ctx(*b.rhs, W));
          case BinaryOp::Div:
            return result_signed
                       ? BitVector::divs(eval_ctx(*b.lhs, W),
                                         eval_ctx(*b.rhs, W))
                       : BitVector::divu(eval_ctx(*b.lhs, W),
                                         eval_ctx(*b.rhs, W));
          case BinaryOp::Mod:
            return result_signed
                       ? BitVector::rems(eval_ctx(*b.lhs, W),
                                         eval_ctx(*b.rhs, W))
                       : BitVector::remu(eval_ctx(*b.lhs, W),
                                         eval_ctx(*b.rhs, W));
          case BinaryOp::Pow:
            return BitVector::pow(eval_ctx(*b.lhs, W), eval(*b.rhs));
          case BinaryOp::BitAnd:
            return BitVector::bit_and(eval_ctx(*b.lhs, W),
                                      eval_ctx(*b.rhs, W));
          case BinaryOp::BitOr:
            return BitVector::bit_or(eval_ctx(*b.lhs, W),
                                     eval_ctx(*b.rhs, W));
          case BinaryOp::BitXor:
            return BitVector::bit_xor(eval_ctx(*b.lhs, W),
                                      eval_ctx(*b.rhs, W));
          case BinaryOp::BitXnor:
            return BitVector::bit_xor(eval_ctx(*b.lhs, W),
                                      eval_ctx(*b.rhs, W))
                .bit_not();
          case BinaryOp::Eq:
          case BinaryOp::CaseEq:
          case BinaryOp::Neq:
          case BinaryOp::CaseNeq:
          case BinaryOp::Lt:
          case BinaryOp::Leq:
          case BinaryOp::Gt:
          case BinaryOp::Geq: {
            const uint32_t Wc = std::max(typer_.self_width(*b.lhs),
                                         typer_.self_width(*b.rhs));
            const BitVector l = eval_ctx(*b.lhs, Wc);
            const BitVector r = eval_ctx(*b.rhs, Wc);
            bool res = false;
            switch (b.op) {
              case BinaryOp::Eq:
              case BinaryOp::CaseEq:
                res = BitVector::eq(l, r);
                break;
              case BinaryOp::Neq:
              case BinaryOp::CaseNeq:
                res = !BitVector::eq(l, r);
                break;
              case BinaryOp::Lt:
                res = result_signed ? BitVector::slt(l, r)
                                    : BitVector::ult(l, r);
                break;
              case BinaryOp::Leq:
                res = result_signed ? BitVector::sle(l, r)
                                    : BitVector::ule(l, r);
                break;
              case BinaryOp::Gt:
                res = result_signed ? BitVector::slt(r, l)
                                    : BitVector::ult(r, l);
                break;
              case BinaryOp::Geq:
                res = result_signed ? BitVector::sle(r, l)
                                    : BitVector::ule(r, l);
                break;
              default:
                CASCADE_UNREACHABLE();
            }
            return extend(BitVector::from_bool(res), W, false);
          }
          case BinaryOp::LogicalAnd: {
            const bool res =
                eval(*b.lhs).to_bool() && eval(*b.rhs).to_bool();
            return extend(BitVector::from_bool(res), W, false);
          }
          case BinaryOp::LogicalOr: {
            const bool res =
                eval(*b.lhs).to_bool() || eval(*b.rhs).to_bool();
            return extend(BitVector::from_bool(res), W, false);
          }
          case BinaryOp::Shl:
            return eval_ctx(*b.lhs, W).shl(eval(*b.rhs).to_uint64());
          case BinaryOp::Shr:
            return eval_ctx(*b.lhs, W).lshr(eval(*b.rhs).to_uint64());
          case BinaryOp::AShr: {
            if (typer_.is_signed(*b.lhs)) {
                // Arithmetic shift happens at the operand's width, then
                // extends (avoids manufacturing sign bits above W).
                const BitVector l = eval_ctx(*b.lhs, W);
                return l.ashr(eval(*b.rhs).to_uint64());
            }
            return eval_ctx(*b.lhs, W).lshr(eval(*b.rhs).to_uint64());
          }
        }
        CASCADE_UNREACHABLE();
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(e);
        return eval(*t.cond).to_bool() ? eval_ctx(*t.then_expr, W)
                                       : eval_ctx(*t.else_expr, W);
      }
      case ExprKind::Concat: {
        const auto& c = static_cast<const ConcatExpr&>(e);
        BitVector acc(1, 0);
        bool first = true;
        for (const auto& el : c.elements) {
            BitVector v = eval(*el);
            acc = first ? std::move(v) : BitVector::concat(acc, v);
            first = false;
        }
        return extend(acc, W, false);
      }
      case ExprKind::Replicate: {
        const auto& r = static_cast<const ReplicateExpr&>(e);
        Diagnostics scratch;
        auto n = eval_const_expr(*r.count, in_->em_->params, &scratch);
        const uint64_t count = n.has_value() ? n->to_uint64() : 1;
        const BitVector body = eval(*r.body);
        BitVector acc = body;
        for (uint64_t i = 1; i < count; ++i) {
            acc = BitVector::concat(acc, body);
        }
        return extend(acc, W, false);
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        const uint64_t idx = eval(*ix.index).to_uint64();
        // Memory element select?
        if (ix.base->kind == ExprKind::Identifier) {
            const auto& id = static_cast<const IdentifierExpr&>(*ix.base);
            if (id.simple()) {
                const NetInfo* net = in_->em_->find_net(id.path[0]);
                if (net != nullptr && net->array_size > 0) {
                    const uint32_t nid = in_->em_->net_id(id.path[0]);
                    const int64_t rel =
                        static_cast<int64_t>(idx) - net->array_base;
                    if (rel < 0 || rel >= net->array_size) {
                        return BitVector(W, 0);
                    }
                    return extend(
                        in_->memories_[nid][static_cast<size_t>(rel)], W,
                        net->is_signed);
                }
            }
        }
        // Bit select.
        const BitVector base = read_base(*ix.base);
        const bool bit = idx < base.width() &&
                         base.bit(static_cast<uint32_t>(idx));
        return extend(BitVector::from_bool(bit), W, false);
      }
      case ExprKind::RangeSelect: {
        const auto& r = static_cast<const RangeSelectExpr&>(e);
        Diagnostics scratch;
        auto msb = eval_const_expr(*r.msb, in_->em_->params, &scratch);
        auto lsb = eval_const_expr(*r.lsb, in_->em_->params, &scratch);
        if (!msb.has_value() || !lsb.has_value()) {
            return BitVector(W, 0);
        }
        const BitVector base = read_base(*r.base);
        const uint32_t declared_lsb = base_lsb_offset(*r.base);
        const uint64_t lo = lsb->to_uint64() - declared_lsb;
        const uint32_t width =
            static_cast<uint32_t>(msb->to_uint64() - lsb->to_uint64() + 1);
        return extend(base.slice(static_cast<uint32_t>(lo), width), W,
                      false);
      }
      case ExprKind::IndexedSelect: {
        const auto& s = static_cast<const IndexedSelectExpr&>(e);
        Diagnostics scratch;
        auto wv = eval_const_expr(*s.width, in_->em_->params, &scratch);
        const uint32_t width =
            wv.has_value()
                ? std::max<uint32_t>(
                      1, static_cast<uint32_t>(wv->to_uint64()))
                : 1;
        const uint64_t offset = eval(*s.offset).to_uint64();
        const BitVector base = read_base(*s.base);
        const uint32_t declared_lsb = base_lsb_offset(*s.base);
        // a[off +: w] covers [off + w - 1 : off]; -: covers [off : off-w+1].
        const uint64_t lo =
            (s.up ? offset : offset - width + 1) - declared_lsb;
        return extend(base.slice(static_cast<uint32_t>(lo), width), W,
                      false);
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(e);
        const auto it = in_->em_->functions.find(c.callee);
        CASCADE_CHECK(it != in_->em_->functions.end());
        std::vector<const Expr*> args;
        args.reserve(c.args.size());
        for (const auto& a : c.args) {
            args.push_back(a.get());
        }
        const BitVector r = call_function(*it->second, args);
        return extend(r, W, it->second->ret_signed);
      }
      case ExprKind::SystemCall: {
        const auto& s = static_cast<const SystemCallExpr&>(e);
        if (s.callee == "$time") {
            const uint64_t t = in_->handler_ != nullptr
                                   ? in_->handler_->current_time()
                                   : 0;
            return extend(BitVector(64, t), W, false);
        }
        if (s.callee == "$signed") {
            return extend(eval(*s.args[0]), W, true);
        }
        if (s.callee == "$unsigned") {
            return extend(eval(*s.args[0]), W, false);
        }
        return BitVector(W, 0);
      }
    }
    CASCADE_UNREACHABLE();
}

BitVector
Evaluator::read_base(const Expr& base)
{
    if (base.kind == ExprKind::Identifier) {
        const auto& id = static_cast<const IdentifierExpr&>(base);
        if (id.simple()) {
            if (const BitVector* local = find_local(id.path[0])) {
                return *local;
            }
            const auto pit = in_->em_->params.find(id.path[0]);
            if (pit != in_->em_->params.end()) {
                return pit->second;
            }
            return in_->get(in_->em_->net_id(id.path[0]));
        }
    }
    return eval(base);
}

void
Evaluator::capture_indices(const Expr& lhs, std::vector<uint64_t>* out)
{
    switch (lhs.kind) {
      case ExprKind::Identifier:
        return;
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(lhs);
        capture_indices(*ix.base, out);
        out->push_back(eval(*ix.index).to_uint64());
        return;
      }
      case ExprKind::IndexedSelect: {
        const auto& s = static_cast<const IndexedSelectExpr&>(lhs);
        capture_indices(*s.base, out);
        out->push_back(eval(*s.offset).to_uint64());
        return;
      }
      case ExprKind::RangeSelect: {
        const auto& r = static_cast<const RangeSelectExpr&>(lhs);
        capture_indices(*r.base, out);
        return;
      }
      case ExprKind::Concat: {
        const auto& c = static_cast<const ConcatExpr&>(lhs);
        for (const auto& e : c.elements) {
            capture_indices(*e, out);
        }
        return;
      }
      default:
        return;
    }
}

void
Evaluator::write_named(const IdentifierExpr& id, const BitVector& value)
{
    CASCADE_CHECK(id.simple());
    if (BitVector* local = find_local(id.path[0])) {
        *local = value.resized(local->width());
        return;
    }
    const uint32_t nid = in_->em_->net_id(id.path[0]);
    in_->commit_net(nid, value.resized(in_->em_->nets[nid].width));
}

void
Evaluator::apply(const Expr& lhs, const BitVector& value,
                 const std::vector<uint64_t>& indices, size_t* pos)
{
    switch (lhs.kind) {
      case ExprKind::Identifier: {
        write_named(static_cast<const IdentifierExpr&>(lhs), value);
        return;
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(lhs);
        // Memory element write?
        if (ix.base->kind == ExprKind::Identifier) {
            const auto& id = static_cast<const IdentifierExpr&>(*ix.base);
            if (id.simple()) {
                const NetInfo* net = in_->em_->find_net(id.path[0]);
                if (net != nullptr && net->array_size > 0) {
                    const uint64_t idx = indices[(*pos)++];
                    const int64_t rel =
                        static_cast<int64_t>(idx) - net->array_base;
                    if (rel >= 0 && rel < net->array_size) {
                        in_->commit_element(in_->em_->net_id(id.path[0]),
                                            static_cast<uint64_t>(rel),
                                            value.resized(net->width));
                    }
                    return;
                }
                // Bit write to a named net.
                const uint64_t idx = indices[(*pos)++];
                const uint32_t nid = in_->em_->net_id(id.path[0]);
                const uint32_t lsb = in_->em_->nets[nid].lsb;
                BitVector cur = in_->get(nid);
                const uint64_t bit_pos = idx - lsb;
                if (bit_pos < cur.width()) {
                    cur.set_bit(static_cast<uint32_t>(bit_pos),
                                value.bit(0));
                    in_->commit_net(nid, std::move(cur));
                }
                return;
            }
        }
        // Bit write into a function local or a memory element
        // (mem[a][bit]): read-modify-write through the base.
        const uint64_t idx = indices[(*pos)++];
        BitVector cur = read_base(*ix.base);
        if (idx < cur.width()) {
            cur.set_bit(static_cast<uint32_t>(idx), value.bit(0));
            apply(*ix.base, cur, indices, pos);
        }
        return;
      }
      case ExprKind::RangeSelect: {
        const auto& r = static_cast<const RangeSelectExpr&>(lhs);
        Diagnostics scratch;
        auto msb = eval_const_expr(*r.msb, in_->em_->params, &scratch);
        auto lsb = eval_const_expr(*r.lsb, in_->em_->params, &scratch);
        if (!msb.has_value() || !lsb.has_value()) {
            return;
        }
        BitVector cur = read_base(*r.base);
        const uint32_t declared_lsb = base_lsb_offset(*r.base);
        const uint32_t lo =
            static_cast<uint32_t>(lsb->to_uint64()) - declared_lsb;
        const uint32_t width =
            static_cast<uint32_t>(msb->to_uint64() - lsb->to_uint64() + 1);
        cur.set_slice(lo, value.resized(width));
        apply(*r.base, cur, indices, pos);
        return;
      }
      case ExprKind::IndexedSelect: {
        const auto& s = static_cast<const IndexedSelectExpr&>(lhs);
        Diagnostics scratch;
        auto wv = eval_const_expr(*s.width, in_->em_->params, &scratch);
        const uint32_t width =
            wv.has_value()
                ? std::max<uint32_t>(
                      1, static_cast<uint32_t>(wv->to_uint64()))
                : 1;
        const uint64_t offset = indices[(*pos)++];
        BitVector cur = read_base(*s.base);
        const uint32_t declared_lsb = base_lsb_offset(*s.base);
        const uint64_t lo =
            (s.up ? offset : offset - width + 1) - declared_lsb;
        cur.set_slice(static_cast<uint32_t>(lo), value.resized(width));
        apply(*s.base, cur, indices, pos);
        return;
      }
      case ExprKind::Concat: {
        // MSB-first: element 0 receives the top bits.
        const auto& c = static_cast<const ConcatExpr&>(lhs);
        uint32_t remaining = value.width();
        for (const auto& e : c.elements) {
            const uint32_t w = lvalue_width(*e);
            const uint32_t lo = remaining >= w ? remaining - w : 0;
            apply(*e, value.slice(lo, w), indices, pos);
            remaining = lo;
        }
        return;
      }
      default:
        return;
    }
}

uint32_t
Evaluator::base_lsb_offset(const Expr& base) const
{
    if (base.kind == ExprKind::Identifier) {
        const auto& id = static_cast<const IdentifierExpr&>(base);
        if (id.simple() && find_local(id.path[0]) == nullptr) {
            if (const NetInfo* net = in_->em_->find_net(id.path[0])) {
                return net->lsb;
            }
        }
    }
    return 0;
}

BitVector
Evaluator::call_function(const FunctionDecl& fn,
                         const std::vector<const Expr*>& args)
{
    Frame frame;
    frame.fn = &fn;

    // Bind inputs in declaration order, then zero locals and the return
    // variable.
    ExprTyper typer(*in_->em_);
    size_t arg_i = 0;
    for (size_t i = 0; i < fn.decls.size(); ++i) {
        const auto& nd = static_cast<const NetDecl&>(*fn.decls[i]);
        Diagnostics scratch;
        uint32_t width = 1;
        if (nd.range.valid()) {
            auto msb = eval_const_expr(*nd.range.msb, in_->em_->params,
                                       &scratch);
            auto lsb = eval_const_expr(*nd.range.lsb, in_->em_->params,
                                       &scratch);
            if (msb.has_value() && lsb.has_value()) {
                width = static_cast<uint32_t>(msb->to_uint64() -
                                              lsb->to_uint64() + 1);
            }
        }
        for (const auto& d : nd.decls) {
            if (fn.decl_is_input[i] && arg_i < args.size()) {
                frame.locals[d.name] =
                    eval_ctx(*args[arg_i++], width);
            } else {
                frame.locals[d.name] = BitVector(width, 0);
            }
            frame.is_signed[d.name] = nd.is_signed;
        }
    }
    uint32_t ret_width = 1;
    {
        Diagnostics scratch;
        if (fn.ret_range.valid()) {
            auto msb = eval_const_expr(*fn.ret_range.msb, in_->em_->params,
                                       &scratch);
            auto lsb = eval_const_expr(*fn.ret_range.lsb, in_->em_->params,
                                       &scratch);
            if (msb.has_value() && lsb.has_value()) {
                ret_width = static_cast<uint32_t>(msb->to_uint64() -
                                                  lsb->to_uint64() + 1);
            }
        }
    }
    frame.locals[fn.name] = BitVector(ret_width, 0);
    frame.is_signed[fn.name] = fn.ret_signed;

    frames_.push_back(std::move(frame));
    uint64_t guard = 0;
    if (fn.body != nullptr) {
        execute_fn_stmt(*fn.body, &guard);
    }
    BitVector result = frames_.back().locals.at(fn.name);
    frames_.pop_back();
    return result;
}

void
Evaluator::execute_fn_stmt(const Stmt& stmt, uint64_t* guard)
{
    if (++(*guard) > kLoopGuard) {
        return;
    }
    switch (stmt.kind) {
      case StmtKind::Block: {
        const auto& b = static_cast<const BlockStmt&>(stmt);
        for (const auto& s : b.stmts) {
            execute_fn_stmt(*s, guard);
        }
        return;
      }
      case StmtKind::BlockingAssign: {
        const auto& a = static_cast<const BlockingAssignStmt&>(stmt);
        assign(*a.lhs, *a.rhs);
        return;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        if (eval(*s.cond).to_bool()) {
            execute_fn_stmt(*s.then_stmt, guard);
        } else if (s.else_stmt != nullptr) {
            execute_fn_stmt(*s.else_stmt, guard);
        }
        return;
      }
      case StmtKind::Case: {
        const auto& s = static_cast<const CaseStmt&>(stmt);
        const BitVector subject = eval(*s.subject);
        const Stmt* dflt = nullptr;
        for (const auto& item : s.items) {
            if (item.labels.empty()) {
                dflt = item.stmt.get();
                continue;
            }
            for (const auto& label : item.labels) {
                const uint32_t Wc =
                    std::max(subject.width(), typer_.self_width(*label));
                if (BitVector::eq(extend(subject, Wc, false),
                                  eval_ctx(*label, Wc))) {
                    execute_fn_stmt(*item.stmt, guard);
                    return;
                }
            }
        }
        if (dflt != nullptr) {
            execute_fn_stmt(*dflt, guard);
        }
        return;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        execute_fn_stmt(*s.init, guard);
        while (eval(*s.cond).to_bool()) {
            execute_fn_stmt(*s.body, guard);
            execute_fn_stmt(*s.step, guard);
            if (*guard > kLoopGuard) {
                return;
            }
        }
        return;
      }
      case StmtKind::While: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        while (eval(*s.cond).to_bool()) {
            execute_fn_stmt(*s.body, guard);
            if (*guard > kLoopGuard) {
                return;
            }
        }
        return;
      }
      case StmtKind::Repeat: {
        const auto& s = static_cast<const RepeatStmt&>(stmt);
        const uint64_t n = eval(*s.count).to_uint64();
        for (uint64_t i = 0; i < n; ++i) {
            execute_fn_stmt(*s.body, guard);
            if (*guard > kLoopGuard) {
                return;
            }
        }
        return;
      }
      default:
        return; // system tasks etc. rejected by elaboration
    }
}

// ---------------------------------------------------------------------------
// ModuleInterpreter
// ---------------------------------------------------------------------------

ModuleInterpreter::ModuleInterpreter(
    std::shared_ptr<const ElaboratedModule> em, SystemTaskHandler* handler)
    : em_(std::move(em)), handler_(handler)
{
    CASCADE_CHECK(em_ != nullptr);
    const size_t n = em_->nets.size();
    values_.resize(n);
    memories_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const NetInfo& net = em_->nets[i];
        values_[i] = BitVector(net.width, 0);
        if (net.array_size > 0) {
            memories_[i].assign(net.array_size, BitVector(net.width, 0));
        }
    }
    build_processes();

    // Apply declaration initializers (reg [7:0] cnt = 1).
    Evaluator ev(this);
    for (size_t i = 0; i < n; ++i) {
        if (em_->nets[i].init != nullptr) {
            const uint32_t W = std::max(
                em_->nets[i].width,
                ExprTyper(*em_).self_width(*em_->nets[i].init));
            values_[i] = ev.eval_ctx(*em_->nets[i].init, W)
                             .slice(0, em_->nets[i].width);
        }
    }

    // Everything combinational is stale at t=0.
    for (size_t p = 0; p < processes_.size(); ++p) {
        const auto kind = processes_[p].kind;
        if (kind == Process::Kind::Comb ||
            kind == Process::Kind::Continuous) {
            comb_pending_[p] = true;
            comb_queue_.push_back(static_cast<uint32_t>(p));
        }
    }
}

void
ModuleInterpreter::build_processes()
{
    for (const auto& item : em_->decl->items) {
        switch (item->kind) {
          case ItemKind::ContinuousAssign: {
            Process p;
            p.kind = Process::Kind::Continuous;
            p.item = item.get();
            p.assign = static_cast<const ContinuousAssign*>(item.get());
            collect_reads(*p.assign->rhs, &p.reads);
            collect_lvalue_index_reads(*p.assign->lhs, &p.reads);
            processes_.push_back(std::move(p));
            break;
          }
          case ItemKind::Always: {
            const auto& ab = static_cast<const AlwaysBlock&>(*item);
            Process p;
            p.item = item.get();
            p.body = ab.body.get();
            bool has_edge = false;
            for (const auto& s : ab.sensitivity) {
                if (s.edge != EdgeKind::Level) {
                    has_edge = true;
                }
            }
            if (has_edge) {
                p.kind = Process::Kind::Seq;
                for (const auto& s : ab.sensitivity) {
                    const auto& id =
                        static_cast<const IdentifierExpr&>(*s.signal);
                    Trigger t;
                    t.net = em_->net_id(id.path[0]);
                    t.edge = s.edge;
                    p.triggers.push_back(t);
                }
            } else {
                p.kind = Process::Kind::Comb;
                if (ab.star) {
                    collect_reads(*ab.body, &p.reads);
                    // @(*) excludes variables the block itself assigns
                    // (loop counters, temporaries): re-triggering on our
                    // own writes would livelock the fixed point.
                    std::vector<uint32_t> defs;
                    collect_defs(*ab.body, &defs);
                    std::sort(defs.begin(), defs.end());
                    p.reads.erase(
                        std::remove_if(p.reads.begin(), p.reads.end(),
                                       [&defs](uint32_t r) {
                                           return std::binary_search(
                                               defs.begin(), defs.end(),
                                               r);
                                       }),
                        p.reads.end());
                } else {
                    for (const auto& s : ab.sensitivity) {
                        collect_reads(*s.signal, &p.reads);
                    }
                }
            }
            processes_.push_back(std::move(p));
            break;
          }
          case ItemKind::Initial: {
            Process p;
            p.kind = Process::Kind::Initial;
            p.item = item.get();
            p.body = static_cast<const InitialBlock&>(*item).body.get();
            processes_.push_back(std::move(p));
            break;
          }
          default:
            break;
        }
    }

    comb_deps_.resize(em_->nets.size());
    seq_deps_.resize(em_->nets.size());
    comb_pending_.assign(processes_.size(), false);
    seq_pending_.assign(processes_.size(), false);
    proc_stats_.assign(processes_.size(), ProcStat{});
    for (size_t p = 0; p < processes_.size(); ++p) {
        std::sort(processes_[p].reads.begin(), processes_[p].reads.end());
        processes_[p].reads.erase(std::unique(processes_[p].reads.begin(),
                                              processes_[p].reads.end()),
                                  processes_[p].reads.end());
        for (uint32_t net : processes_[p].reads) {
            comb_deps_[net].push_back(static_cast<uint32_t>(p));
        }
        for (const Trigger& t : processes_[p].triggers) {
            seq_deps_[t.net].emplace_back(static_cast<uint32_t>(p), t.edge);
        }
    }
}

void
ModuleInterpreter::collect_reads(const Expr& expr,
                                 std::vector<uint32_t>* out) const
{
    switch (expr.kind) {
      case ExprKind::Identifier: {
        const auto& id = static_cast<const IdentifierExpr&>(expr);
        if (id.simple()) {
            const auto it = em_->net_index.find(id.path[0]);
            if (it != em_->net_index.end()) {
                out->push_back(it->second);
            }
        }
        return;
      }
      case ExprKind::Unary:
        collect_reads(*static_cast<const UnaryExpr&>(expr).operand, out);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        collect_reads(*b.lhs, out);
        collect_reads(*b.rhs, out);
        return;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(expr);
        collect_reads(*t.cond, out);
        collect_reads(*t.then_expr, out);
        collect_reads(*t.else_expr, out);
        return;
      }
      case ExprKind::Concat:
        for (const auto& e :
             static_cast<const ConcatExpr&>(expr).elements) {
            collect_reads(*e, out);
        }
        return;
      case ExprKind::Replicate:
        collect_reads(*static_cast<const ReplicateExpr&>(expr).body, out);
        return;
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(expr);
        collect_reads(*i.base, out);
        collect_reads(*i.index, out);
        return;
      }
      case ExprKind::RangeSelect:
        collect_reads(*static_cast<const RangeSelectExpr&>(expr).base, out);
        return;
      case ExprKind::IndexedSelect: {
        const auto& s = static_cast<const IndexedSelectExpr&>(expr);
        collect_reads(*s.base, out);
        collect_reads(*s.offset, out);
        return;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(expr);
        for (const auto& a : c.args) {
            collect_reads(*a, out);
        }
        // Function bodies may read module nets directly.
        const auto it = em_->functions.find(c.callee);
        if (it != em_->functions.end() && it->second->body != nullptr) {
            collect_reads(*it->second->body, out);
        }
        return;
      }
      case ExprKind::SystemCall:
        for (const auto& a :
             static_cast<const SystemCallExpr&>(expr).args) {
            collect_reads(*a, out);
        }
        return;
      default:
        return;
    }
}

void
ModuleInterpreter::collect_reads(const Stmt& stmt,
                                 std::vector<uint32_t>* out) const
{
    switch (stmt.kind) {
      case StmtKind::Block:
        for (const auto& s : static_cast<const BlockStmt&>(stmt).stmts) {
            collect_reads(*s, out);
        }
        return;
      case StmtKind::BlockingAssign: {
        const auto& a = static_cast<const BlockingAssignStmt&>(stmt);
        collect_reads(*a.rhs, out);
        collect_lvalue_index_reads(*a.lhs, out);
        return;
      }
      case StmtKind::NonblockingAssign: {
        const auto& a = static_cast<const NonblockingAssignStmt&>(stmt);
        collect_reads(*a.rhs, out);
        collect_lvalue_index_reads(*a.lhs, out);
        return;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        collect_reads(*s.cond, out);
        collect_reads(*s.then_stmt, out);
        if (s.else_stmt != nullptr) {
            collect_reads(*s.else_stmt, out);
        }
        return;
      }
      case StmtKind::Case: {
        const auto& s = static_cast<const CaseStmt&>(stmt);
        collect_reads(*s.subject, out);
        for (const auto& item : s.items) {
            for (const auto& label : item.labels) {
                collect_reads(*label, out);
            }
            collect_reads(*item.stmt, out);
        }
        return;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        collect_reads(*s.init, out);
        collect_reads(*s.cond, out);
        collect_reads(*s.step, out);
        collect_reads(*s.body, out);
        return;
      }
      case StmtKind::While: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        collect_reads(*s.cond, out);
        collect_reads(*s.body, out);
        return;
      }
      case StmtKind::Repeat: {
        const auto& s = static_cast<const RepeatStmt&>(stmt);
        collect_reads(*s.count, out);
        collect_reads(*s.body, out);
        return;
      }
      case StmtKind::SystemTask:
        for (const auto& a :
             static_cast<const SystemTaskStmt&>(stmt).args) {
            if (a->kind != ExprKind::String) {
                collect_reads(*a, out);
            }
        }
        return;
      default:
        return;
    }
}

void
ModuleInterpreter::collect_defs(const Stmt& stmt,
                                std::vector<uint32_t>* out) const
{
    auto record_lhs = [this, out](const Expr* e) {
        while (e != nullptr) {
            switch (e->kind) {
              case ExprKind::Identifier: {
                const auto& id = static_cast<const IdentifierExpr&>(*e);
                if (id.simple()) {
                    const auto it = em_->net_index.find(id.path[0]);
                    if (it != em_->net_index.end()) {
                        out->push_back(it->second);
                    }
                }
                return;
              }
              case ExprKind::Index:
                e = static_cast<const IndexExpr&>(*e).base.get();
                break;
              case ExprKind::RangeSelect:
                e = static_cast<const RangeSelectExpr&>(*e).base.get();
                break;
              case ExprKind::IndexedSelect:
                e = static_cast<const IndexedSelectExpr&>(*e).base.get();
                break;
              default:
                return;
            }
        }
    };
    switch (stmt.kind) {
      case StmtKind::Block:
        for (const auto& s : static_cast<const BlockStmt&>(stmt).stmts) {
            collect_defs(*s, out);
        }
        return;
      case StmtKind::BlockingAssign: {
        const auto& a = static_cast<const BlockingAssignStmt&>(stmt);
        if (a.lhs->kind == ExprKind::Concat) {
            for (const auto& e :
                 static_cast<const ConcatExpr&>(*a.lhs).elements) {
                record_lhs(e.get());
            }
        } else {
            record_lhs(a.lhs.get());
        }
        return;
      }
      case StmtKind::NonblockingAssign: {
        const auto& a = static_cast<const NonblockingAssignStmt&>(stmt);
        if (a.lhs->kind == ExprKind::Concat) {
            for (const auto& e :
                 static_cast<const ConcatExpr&>(*a.lhs).elements) {
                record_lhs(e.get());
            }
        } else {
            record_lhs(a.lhs.get());
        }
        return;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        collect_defs(*s.then_stmt, out);
        if (s.else_stmt != nullptr) {
            collect_defs(*s.else_stmt, out);
        }
        return;
      }
      case StmtKind::Case:
        for (const auto& item : static_cast<const CaseStmt&>(stmt).items) {
            collect_defs(*item.stmt, out);
        }
        return;
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        collect_defs(*s.init, out);
        collect_defs(*s.step, out);
        collect_defs(*s.body, out);
        return;
      }
      case StmtKind::While:
        collect_defs(*static_cast<const WhileStmt&>(stmt).body, out);
        return;
      case StmtKind::Repeat:
        collect_defs(*static_cast<const RepeatStmt&>(stmt).body, out);
        return;
      default:
        return;
    }
}

void
ModuleInterpreter::collect_lvalue_index_reads(const Expr& lhs,
                                              std::vector<uint32_t>* out)
    const
{
    switch (lhs.kind) {
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(lhs);
        collect_reads(*i.index, out);
        collect_lvalue_index_reads(*i.base, out);
        return;
      }
      case ExprKind::IndexedSelect: {
        const auto& s = static_cast<const IndexedSelectExpr&>(lhs);
        collect_reads(*s.offset, out);
        collect_lvalue_index_reads(*s.base, out);
        return;
      }
      case ExprKind::RangeSelect:
        collect_lvalue_index_reads(
            *static_cast<const RangeSelectExpr&>(lhs).base, out);
        return;
      case ExprKind::Concat:
        for (const auto& e : static_cast<const ConcatExpr&>(lhs).elements) {
            collect_lvalue_index_reads(*e, out);
        }
        return;
      default:
        return;
    }
}

void
ModuleInterpreter::run_initials(size_t skip_first)
{
    size_t seen = 0;
    for (size_t p = 0; p < processes_.size(); ++p) {
        if (processes_[p].kind == Process::Kind::Initial) {
            if (seen++ >= skip_first) {
                run_process(p);
            }
        }
    }
}

void
ModuleInterpreter::run_initials_masked(const std::vector<bool>& skip)
{
    size_t seen = 0;
    for (size_t p = 0; p < processes_.size(); ++p) {
        if (processes_[p].kind == Process::Kind::Initial) {
            const size_t index = seen++;
            if (index >= skip.size() || !skip[index]) {
                run_process(p);
            }
        }
    }
}

size_t
ModuleInterpreter::initial_count() const
{
    size_t count = 0;
    for (const Process& p : processes_) {
        if (p.kind == Process::Kind::Initial) {
            ++count;
        }
    }
    return count;
}

const BitVector&
ModuleInterpreter::get(const std::string& name) const
{
    return values_[em_->net_id(name)];
}

const BitVector&
ModuleInterpreter::get(uint32_t net_id) const
{
    return values_[net_id];
}

const BitVector*
ModuleInterpreter::find(const std::string& name) const
{
    const auto it = em_->net_index.find(name);
    return it == em_->net_index.end() ? nullptr : &values_[it->second];
}

void
ModuleInterpreter::set_input(const std::string& name, const BitVector& value)
{
    set_input(em_->net_id(name), value);
}

void
ModuleInterpreter::set_input(uint32_t net_id, const BitVector& value)
{
    commit_net(net_id, value.resized(em_->nets[net_id].width));
}

const BitVector&
ModuleInterpreter::get_element(const std::string& name, uint64_t idx) const
{
    const uint32_t nid = em_->net_id(name);
    CASCADE_CHECK(idx < memories_[nid].size());
    return memories_[nid][idx];
}

void
ModuleInterpreter::set_element(const std::string& name, uint64_t idx,
                               const BitVector& value)
{
    const uint32_t nid = em_->net_id(name);
    CASCADE_CHECK(idx < memories_[nid].size());
    commit_element(nid, idx, value.resized(em_->nets[nid].width));
}

bool
ModuleInterpreter::there_are_evals() const
{
    return !comb_queue_.empty() || !seq_queue_.empty();
}

void
ModuleInterpreter::commit_net(uint32_t id, BitVector value)
{
    if (values_[id] == value) {
        return;
    }
    const bool was = values_[id].width() > 0 && values_[id].bit(0);
    const bool now = value.bit(0);
    values_[id] = std::move(value);

    if (em_->nets[id].is_port && em_->nets[id].dir == PortDir::Output) {
        changed_outputs_.insert(id);
    }
    for (uint32_t p : comb_deps_[id]) {
        if (!comb_pending_[p]) {
            comb_pending_[p] = true;
            comb_queue_.push_back(p);
        }
    }
    if (was != now) {
        for (const auto& [p, edge] : seq_deps_[id]) {
            const bool fire = edge == EdgeKind::Pos ? (!was && now)
                                                    : (was && !now);
            if (fire && !seq_pending_[p]) {
                seq_pending_[p] = true;
                seq_queue_.push_back(p);
            }
        }
    }
}

void
ModuleInterpreter::commit_element(uint32_t id, uint64_t index,
                                  BitVector value)
{
    if (memories_[id][index] == value) {
        return;
    }
    memories_[id][index] = std::move(value);
    // Memory reads are tracked at the whole-array granularity.
    for (uint32_t p : comb_deps_[id]) {
        if (!comb_pending_[p]) {
            comb_pending_[p] = true;
            comb_queue_.push_back(p);
        }
    }
}

void
ModuleInterpreter::evaluate()
{
    ++evaluate_calls_;
    uint64_t guard = 0;
    while (!finished_ && (!comb_queue_.empty() || !seq_queue_.empty())) {
        if (++guard > kFixedPointGuard) {
            runtime_diags_.error({}, "combinational loop detected in '" +
                                         em_->name + "'");
            break;
        }
        if (!comb_queue_.empty()) {
            const uint32_t p = comb_queue_.back();
            comb_queue_.pop_back();
            comb_pending_[p] = false;
            run_process(p);
        } else {
            const uint32_t p = seq_queue_.back();
            seq_queue_.pop_back();
            seq_pending_[p] = false;
            run_process(p);
        }
    }
}

void
ModuleInterpreter::update()
{
    ++update_calls_;
    std::vector<NbUpdate> queue = std::move(nb_queue_);
    nb_queue_.clear();
    Evaluator ev(this);
    for (const NbUpdate& u : queue) {
        ev.apply_captured(*u.lhs, u.value, u.indices);
    }
}

void
ModuleInterpreter::run_process(size_t index)
{
    ++process_executions_;
    ProcStat& stat = proc_stats_[index];
    ++stat.executions;
    const Process& p = processes_[index];
    if (!profiling_) {
        // Fast path: no clock reads (see set_profiling).
        dispatch_process(p);
        return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    dispatch_process(p);
    const auto t1 = std::chrono::steady_clock::now();
    stat.eval_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

void
ModuleInterpreter::dispatch_process(const Process& p)
{
    if (p.kind == Process::Kind::Continuous) {
        Evaluator ev(this);
        ev.assign(*p.assign->lhs, *p.assign->rhs);
        return;
    }
    const bool nonblocking_allowed = p.kind != Process::Kind::Continuous;
    execute_stmt(*p.body, nonblocking_allowed);
}

void
ModuleInterpreter::execute_stmt(const Stmt& stmt, bool nonblocking_allowed)
{
    struct Walker {
        ModuleInterpreter* in;
        Evaluator ev;
        bool nb_allowed;
        uint64_t guard = 0;

        void
        walk(const Stmt& stmt)
        {
            if (in->finished_ || ++guard > kLoopGuard) {
                return;
            }
            switch (stmt.kind) {
              case StmtKind::Block: {
                for (const auto& s :
                     static_cast<const BlockStmt&>(stmt).stmts) {
                    walk(*s);
                }
                return;
              }
              case StmtKind::BlockingAssign: {
                const auto& a =
                    static_cast<const BlockingAssignStmt&>(stmt);
                ev.assign(*a.lhs, *a.rhs);
                return;
              }
              case StmtKind::NonblockingAssign: {
                const auto& a =
                    static_cast<const NonblockingAssignStmt&>(stmt);
                NbUpdate u;
                u.lhs = a.lhs.get();
                u.value = ev.eval_rhs_for(*a.lhs, *a.rhs, &u.indices);
                in->nb_queue_.push_back(std::move(u));
                return;
              }
              case StmtKind::If: {
                const auto& s = static_cast<const IfStmt&>(stmt);
                if (ev.eval(*s.cond).to_bool()) {
                    walk(*s.then_stmt);
                } else if (s.else_stmt != nullptr) {
                    walk(*s.else_stmt);
                }
                return;
              }
              case StmtKind::Case: {
                const auto& s = static_cast<const CaseStmt&>(stmt);
                const BitVector subject = ev.eval(*s.subject);
                const Stmt* dflt = nullptr;
                for (const auto& item : s.items) {
                    if (item.labels.empty()) {
                        dflt = item.stmt.get();
                        continue;
                    }
                    for (const auto& label : item.labels) {
                        const uint32_t W = std::max(subject.width(),
                                                    ev.eval(*label).width());
                        if (BitVector::eq(extend(subject, W, false),
                                          ev.eval_ctx(*label, W))) {
                            walk(*item.stmt);
                            return;
                        }
                    }
                }
                if (dflt != nullptr) {
                    walk(*dflt);
                }
                return;
              }
              case StmtKind::For: {
                const auto& s = static_cast<const ForStmt&>(stmt);
                walk(*s.init);
                while (ev.eval(*s.cond).to_bool() && guard <= kLoopGuard &&
                       !in->finished_) {
                    walk(*s.body);
                    walk(*s.step);
                }
                return;
              }
              case StmtKind::While: {
                const auto& s = static_cast<const WhileStmt&>(stmt);
                while (ev.eval(*s.cond).to_bool() && guard <= kLoopGuard &&
                       !in->finished_) {
                    walk(*s.body);
                }
                return;
              }
              case StmtKind::Repeat: {
                const auto& s = static_cast<const RepeatStmt&>(stmt);
                const uint64_t n = ev.eval(*s.count).to_uint64();
                for (uint64_t i = 0;
                     i < n && guard <= kLoopGuard && !in->finished_; ++i) {
                    walk(*s.body);
                }
                return;
              }
              case StmtKind::SystemTask: {
                const auto& s = static_cast<const SystemTaskStmt&>(stmt);
                if (s.name == "$finish") {
                    in->finished_ = true;
                    if (in->handler_ != nullptr) {
                        in->handler_->on_finish();
                    }
                    return;
                }
                if (in->handler_ == nullptr) {
                    return;
                }
                if (s.name == "$monitor") {
                    // IEEE-1364: executing $monitor registers it; output
                    // happens at end of timestep via flush_monitors(), and
                    // only when an argument changed.
                    in->register_monitor(s);
                    return;
                }
                if (s.name == "$dumpfile") {
                    if (!s.args.empty() &&
                        s.args[0]->kind == ExprKind::String) {
                        in->handler_->on_dumpfile(
                            static_cast<const StringExpr&>(*s.args[0]).text);
                    }
                    return;
                }
                if (s.name == "$dumpvars") {
                    in->handler_->on_dumpvars();
                    return;
                }
                if (s.name == "$dumpoff") {
                    in->handler_->on_dumpoff();
                    return;
                }
                if (s.name == "$dumpon") {
                    in->handler_->on_dumpon();
                    return;
                }
                if (s.name == "$display" || s.name == "$write") {
                    const std::string text = in->format_task_text(s);
                    if (s.name == "$write") {
                        in->handler_->on_write(text);
                    } else {
                        in->handler_->on_display(text);
                    }
                }
                return;
              }
              case StmtKind::Null:
              case StmtKind::Forever:
                return;
            }
        }
    };

    Walker w{this, Evaluator(this), nonblocking_allowed};
    w.walk(stmt);
}

void
ModuleInterpreter::register_monitor(const verilog::SystemTaskStmt& stmt)
{
    if (monitor_registered_.insert(&stmt).second) {
        MonitorReg reg;
        reg.stmt = &stmt;
        reg.key = verilog::print(stmt);
        // Strip trailing statement formatting so the key matches the one
        // the hardware wrapper records for the same site.
        while (!reg.key.empty() &&
               (reg.key.back() == '\n' || reg.key.back() == ' ')) {
            reg.key.pop_back();
        }
        monitors_.push_back(std::move(reg));
    }
    // Sample the arguments at the trigger site, exactly where the hardware
    // wrapper's argument-save registers sample them; flush_monitors emits
    // this candidate at end of timestep.
    for (MonitorReg& reg : monitors_) {
        if (reg.stmt == &stmt) {
            reg.pending = format_task_text(stmt);
            reg.has_pending = true;
            break;
        }
    }
}

std::string
ModuleInterpreter::format_task_text(const verilog::SystemTaskStmt& stmt)
{
    Evaluator ev(this);
    if (!stmt.args.empty() && stmt.args[0]->kind == ExprKind::String) {
        std::vector<DisplayValue> values;
        for (size_t i = 1; i < stmt.args.size(); ++i) {
            DisplayValue dv;
            dv.value = ev.eval(*stmt.args[i]);
            dv.is_signed = ev.is_signed(*stmt.args[i]);
            values.push_back(std::move(dv));
        }
        return format_display(
            static_cast<const StringExpr&>(*stmt.args[0]).text, values);
    }
    std::vector<DisplayValue> values;
    for (const auto& a : stmt.args) {
        DisplayValue dv;
        dv.value = ev.eval(*a);
        dv.is_signed = ev.is_signed(*a);
        values.push_back(std::move(dv));
    }
    return format_values(values);
}

void
ModuleInterpreter::flush_monitors()
{
    if (handler_ == nullptr) {
        return;
    }
    for (const auto& m : monitors_) {
        if (m.has_pending) {
            handler_->on_monitor(m.key, m.pending);
        }
    }
}

std::vector<uint32_t>
ModuleInterpreter::take_changed_outputs()
{
    std::vector<uint32_t> out(changed_outputs_.begin(),
                              changed_outputs_.end());
    std::sort(out.begin(), out.end());
    changed_outputs_.clear();
    return out;
}

StateSnapshot
ModuleInterpreter::get_state() const
{
    StateSnapshot snap;
    for (size_t i = 0; i < em_->nets.size(); ++i) {
        const NetInfo& net = em_->nets[i];
        if (!net.is_reg) {
            continue;
        }
        if (net.array_size > 0) {
            snap.memories[net.name] = memories_[i];
        } else {
            snap.regs[net.name] = values_[i];
        }
    }
    return snap;
}

void
ModuleInterpreter::set_state(const StateSnapshot& snapshot)
{
    for (const auto& [name, value] : snapshot.regs) {
        const auto it = em_->net_index.find(name);
        if (it != em_->net_index.end()) {
            commit_net(it->second, value.resized(em_->nets[it->second].width));
        }
    }
    for (const auto& [name, mem] : snapshot.memories) {
        const auto it = em_->net_index.find(name);
        if (it == em_->net_index.end()) {
            continue;
        }
        for (size_t i = 0; i < mem.size() && i < memories_[it->second].size();
             ++i) {
            commit_element(it->second, i,
                           mem[i].resized(em_->nets[it->second].width));
        }
    }
}

namespace {

/// Collapses a multi-line source print into a single display line,
/// truncated so profile tables and flamegraph frames stay readable.
std::string
compress_label(const std::string& key)
{
    std::string out;
    bool in_space = false;
    for (char c : key) {
        if (c == ' ' || c == '\t' || c == '\n') {
            in_space = !out.empty();
            continue;
        }
        if (in_space) {
            out += ' ';
            in_space = false;
        }
        out += c;
    }
    while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
        out.pop_back();
    }
    constexpr size_t kMaxLabel = 56;
    if (out.size() > kMaxLabel) {
        out.resize(kMaxLabel - 1);
        out += "…";
    }
    return out;
}

const char*
kind_name(char discriminator)
{
    switch (discriminator) {
      case 0: return "continuous";
      case 1: return "comb";
      case 2: return "seq";
      default: return "initial";
    }
}

} // namespace

std::vector<ProcessProfile>
ModuleInterpreter::profile() const
{
    std::vector<ProcessProfile> out;
    out.reserve(processes_.size());
    for (size_t i = 0; i < processes_.size(); ++i) {
        const Process& p = processes_[i];
        ProcessProfile prof;
        prof.key = p.item != nullptr ? print(*p.item, 0) : std::string();
        prof.label = compress_label(prof.key);
        switch (p.kind) {
          case Process::Kind::Continuous:
            prof.kind = kind_name(0);
            break;
          case Process::Kind::Comb:
            prof.kind = kind_name(1);
            break;
          case Process::Kind::Seq:
            prof.kind = kind_name(2);
            break;
          case Process::Kind::Initial:
            prof.kind = kind_name(3);
            break;
        }
        for (const Trigger& t : p.triggers) {
            const std::string& net = em_->nets[t.net].name;
            prof.triggers.push_back(
                (t.edge == EdgeKind::Neg ? "negedge " : "posedge ") + net);
        }
        prof.executions = proc_stats_[i].executions;
        prof.eval_ns = proc_stats_[i].eval_ns;
        out.push_back(std::move(prof));
    }
    return out;
}

} // namespace cascade::sim
