/// \file
/// Figure 11: proof-of-work performance over time for three toolchains.
///
/// Paper result: iVerilog starts in <1 s but plateaus at ~650 Hz; Quartus
/// produces nothing until compilation finishes (~600 s) and then runs at
/// the native 50 MHz; Cascade starts in <1 s, simulates ~2.4x faster than
/// iVerilog, and after background compilation reaches a virtual clock
/// within ~2.9x of native. Our timeline is ~60x shorter than the paper's
/// (the simulated toolchain compiles this miner in seconds, not minutes);
/// the shape — who wins, where the crossover lands — is the claim.
///
/// Output: CSV rows "series,time_s,virtual_hz". The cascade run also
/// writes a machine-readable telemetry sidecar
/// (fig11_proof_of_work.stats.json: per-phase compile timings, scheduler
/// and engine counters, the sw->hw transition log), a Chrome
/// trace_event dump (fig11_proof_of_work.trace.json), and a headline
/// result file (BENCH_fig11_proof_of_work.json: final rates per series,
/// adoption status, the source-level profile) next to wherever the bench
/// is invoked from. CI's smoke-bench job uploads all three.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "fpga/compile.h"
#include "runtime/runtime.h"
#include "telemetry/trace.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

using cascade::runtime::Runtime;

namespace {

constexpr uint32_t kDifficulty = 16;
constexpr double kComplexityBoost = 1.0; // effort for the real compile

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Headline numbers one series ends with (for the BENCH result file).
struct SeriesResult {
    double wall_seconds = 0;
    double final_hz = 0;
    uint64_t virtual_ticks = 0;
    bool adopted = false;
    std::string profile_json;
};

/// Samples virtual-clock rate over wall time for a runtime configuration.
/// When \p stats_sidecar is non-null, the runtime's final stats_json()
/// snapshot is written there.
void
run_series(const char* name, Runtime::Options options, double duration_s,
           bool stop_after_hw, const char* stats_sidecar = nullptr,
           SeriesResult* result = nullptr)
{
    Runtime rt(options);
    rt.on_output = [](const std::string&) {};
    std::string errors;
    if (!rt.eval(cascade::workloads::proof_of_work_source(kDifficulty),
                 &errors)) {
        std::fprintf(stderr, "%s: eval failed: %s\n", name,
                     errors.c_str());
        return;
    }
    const double t0 = now_s();
    double last_sample = t0;
    uint64_t last_ticks = 0;
    int hw_samples = 0;
    double last_hz = 0;
    while (now_s() - t0 < duration_s) {
        if (rt.hardware_ready()) {
            // Hardware phase: the rate is the modeled virtual timeline.
            const uint64_t ticks0 = rt.virtual_ticks();
            const double tl0 = rt.timeline_seconds();
            rt.run(8);
            const uint64_t dticks = rt.virtual_ticks() - ticks0;
            const double dtl = rt.timeline_seconds() - tl0;
            if (dtl > 0 && dticks > 0) {
                last_hz = static_cast<double>(dticks) / dtl;
                std::printf("%s,%.2f,%.1f\n", name, now_s() - t0,
                            last_hz);
                ++hw_samples;
            }
            if (stop_after_hw && hw_samples >= 5) {
                break;
            }
            continue;
        }
        rt.run(256);
        const double t = now_s();
        if (t - last_sample >= 0.25 && !rt.hardware_ready()) {
            const uint64_t ticks = rt.virtual_ticks();
            last_hz = static_cast<double>(ticks - last_ticks) /
                      (t - last_sample);
            std::printf("%s,%.2f,%.1f\n", name, t - t0, last_hz);
            last_ticks = ticks;
            last_sample = t;
        }
    }
    if (result != nullptr) {
        result->wall_seconds = now_s() - t0;
        result->final_hz = last_hz;
        result->virtual_ticks = rt.virtual_ticks();
        result->adopted = rt.hardware_ready();
        result->profile_json = rt.profile_json();
    }
    if (stats_sidecar != nullptr) {
        std::ofstream sidecar(stats_sidecar);
        sidecar << rt.stats_json() << '\n';
        std::fprintf(stderr, "# %s: stats sidecar -> %s\n", name,
                     stats_sidecar);
    }
}

} // namespace

int
main()
{
    const double bench_t0 = now_s();
    std::printf("series,time_s,virtual_hz\n");
    double quartus_compile_s = 0;
    double quartus_native_hz = 0;
    uint64_t quartus_les = 0;

    // "Quartus": direct compilation of the design as written; nothing runs
    // until the toolchain finishes, then the native clock rate applies.
    {
        cascade::Diagnostics diags;
        auto unit = cascade::verilog::parse(
            cascade::workloads::proof_of_work_module(kDifficulty), &diags);
        cascade::verilog::Elaborator elab(&diags);
        auto em = elab.elaborate(*unit.modules[0]);
        const double t0 = now_s();
        cascade::fpga::CompileOptions copts;
        copts.effort = kComplexityBoost;
        auto result = cascade::fpga::compile(*em, copts);
        const double compile_s = now_s() - t0;
        std::printf("quartus,%.2f,%.1f\n", compile_s * 0.5, 0.0);
        const double native_hz =
            std::min(50.0, result.report.timing.fmax_mhz) * 1e6;
        std::printf("quartus,%.2f,%.1f\n", compile_s, native_hz);
        std::printf("quartus,%.2f,%.1f\n", compile_s + 2.0, native_hz);
        std::fprintf(stderr,
                     "# quartus compile: %.2f s, %llu LEs, Fmax %.1f MHz\n",
                     compile_s,
                     static_cast<unsigned long long>(
                         result.report.area.les),
                     result.report.timing.fmax_mhz);
        quartus_compile_s = compile_s;
        quartus_native_hz = native_hz;
        quartus_les = result.report.area.les;
    }

    // "iVerilog": software simulation only, forever.
    SeriesResult iverilog;
    {
        Runtime::Options opts;
        opts.enable_hardware = false;
        run_series("iverilog", opts, 4.0, false, nullptr, &iverilog);
    }

    // Cascade: the full JIT. Smaller open-loop batches keep the wall cost
    // of simulating the fabric manageable on small hosts; the modeled
    // virtual rate is batch-size independent once batches amortize the
    // re-arm MMIO.
    SeriesResult casc;
    {
        Runtime::Options opts;
        opts.compile_effort = kComplexityBoost;
        run_series("cascade", opts, 150.0, true,
                   "fig11_proof_of_work.stats.json", &casc);
        cascade::telemetry::Tracer::global().write_chrome_json(
            "fig11_proof_of_work.trace.json");
        std::fprintf(stderr,
                     "# trace -> fig11_proof_of_work.trace.json\n");
    }

    // Headline result file (BENCH_*.json: what CI and regression diffing
    // consume; the CSV stream above stays the plotting source).
    {
        char buf[512];
        std::ofstream out("BENCH_fig11_proof_of_work.json");
        std::snprintf(
            buf, sizeof buf,
            "{\"schema\":\"cascade.bench.v1\","
            "\"bench\":\"fig11_proof_of_work\",\"wall_seconds\":%.3f,"
            "\"quartus\":{\"compile_seconds\":%.3f,\"native_hz\":%.1f,"
            "\"les\":%llu},"
            "\"iverilog\":{\"final_virtual_hz\":%.1f,"
            "\"virtual_ticks\":%llu},"
            "\"cascade\":{\"adopted\":%s,\"final_virtual_hz\":%.1f,"
            "\"virtual_ticks\":%llu,\"speedup_vs_iverilog\":%.2f},",
            now_s() - bench_t0, quartus_compile_s, quartus_native_hz,
            static_cast<unsigned long long>(quartus_les),
            iverilog.final_hz,
            static_cast<unsigned long long>(iverilog.virtual_ticks),
            casc.adopted ? "true" : "false", casc.final_hz,
            static_cast<unsigned long long>(casc.virtual_ticks),
            iverilog.final_hz > 0 ? casc.final_hz / iverilog.final_hz
                                  : 0.0);
        out << buf << "\"profile\":"
            << (casc.profile_json.empty() ? "null" : casc.profile_json)
            << "}\n";
        std::fprintf(stderr,
                     "# results -> BENCH_fig11_proof_of_work.json\n");
    }
    return 0;
}
