/// \file
/// Table 1: aggregate statistics over student Needleman-Wunsch solutions.
///
/// The paper analyzed 31 submissions from the UT Austin concurrency class
/// (23 with build logs) and reports mean/min/max for lines of Verilog,
/// always blocks, blocking/nonblocking assignments, display statements,
/// and build counts. We generate a 31-solution corpus from the workload
/// generator (varying problem size, style, and debug chattiness), run each
/// through Cascade counting real build cycles (an instrumented
/// edit-eval-run loop), and print the same table rows.

#include <cstdio>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "ir/rewrite.h"
#include "runtime/runtime.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

namespace {

struct Stats {
    int loc = 0;
    int always_blocks = 0;
    int blocking = 0;
    int nonblocking = 0;
    int displays = 0;
    int builds = 0;
};

void
count_stmt(const cascade::verilog::Stmt& stmt, Stats* s)
{
    using namespace cascade::verilog;
    switch (stmt.kind) {
      case StmtKind::Block:
        for (const auto& sub : static_cast<const BlockStmt&>(stmt).stmts) {
            count_stmt(*sub, s);
        }
        return;
      case StmtKind::BlockingAssign:
        ++s->blocking;
        return;
      case StmtKind::NonblockingAssign:
        ++s->nonblocking;
        return;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(stmt);
        count_stmt(*i.then_stmt, s);
        if (i.else_stmt != nullptr) {
            count_stmt(*i.else_stmt, s);
        }
        return;
      }
      case StmtKind::Case:
        for (const auto& item : static_cast<const CaseStmt&>(stmt).items) {
            count_stmt(*item.stmt, s);
        }
        return;
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(stmt);
        count_stmt(*f.init, s);
        count_stmt(*f.step, s);
        count_stmt(*f.body, s);
        return;
      }
      case StmtKind::While:
        count_stmt(*static_cast<const WhileStmt&>(stmt).body, s);
        return;
      case StmtKind::Repeat:
        count_stmt(*static_cast<const RepeatStmt&>(stmt).body, s);
        return;
      case StmtKind::SystemTask: {
        const auto& t = static_cast<const SystemTaskStmt&>(stmt);
        if (t.name == "$display" || t.name == "$write") {
            ++s->displays;
        }
        return;
      }
      default:
        return;
    }
}

Stats
analyze(const std::string& source)
{
    using namespace cascade::verilog;
    Stats s;
    std::istringstream lines(source);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find_first_not_of(" \t") != std::string::npos) {
            ++s.loc;
        }
    }
    cascade::Diagnostics diags;
    SourceUnit unit = parse(source, &diags);
    auto count_items = [&s](const std::vector<ItemPtr>& items) {
        for (const auto& item : items) {
            if (item->kind == ItemKind::Always) {
                ++s.always_blocks;
                count_stmt(*static_cast<const AlwaysBlock&>(*item).body,
                           &s);
            } else if (item->kind == ItemKind::Initial) {
                count_stmt(*static_cast<const InitialBlock&>(*item).body,
                           &s);
            } else if (item->kind == ItemKind::FunctionDecl) {
                const auto& f = static_cast<const FunctionDecl&>(*item);
                if (f.body != nullptr) {
                    count_stmt(*f.body, &s);
                }
            }
        }
    };
    count_items(unit.root_items);
    for (const auto& m : unit.modules) {
        count_items(m->items);
    }
    return s;
}

/// Simulates one student's build history: debug rounds with the real
/// runtime (each eval = one build), chattiness varying by style.
int
measure_builds(const std::string& solution, std::mt19937_64& rng)
{
    using cascade::runtime::Runtime;
    std::poisson_distribution<int> extra_rounds(10);
    const int rounds = 1 + extra_rounds(rng);
    int builds = 0;
    for (int r = 0; r < rounds; ++r) {
        Runtime::Options opts;
        opts.enable_hardware = false;
        Runtime rt(opts);
        rt.on_output = [](const std::string&) {};
        std::string errors;
        if (rt.eval(solution, &errors)) {
            ++builds;
            rt.run(256); // a quick probe run, then back to editing
        }
        // Students also rebuild after trivial edits (probe displays):
        // count an extra eval on some rounds.
        if (rng() % 3 == 0) {
            Runtime rt2(opts);
            if (rt2.eval(solution, &errors)) {
                ++builds;
            }
        }
    }
    return builds;
}

void
row(const char* name, std::vector<int> values)
{
    double sum = 0;
    int mn = values[0], mx = values[0];
    for (int v : values) {
        sum += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    std::printf("%-28s %8.0f %6d %6d\n", name,
                sum / static_cast<double>(values.size()), mn, mx);
}

} // namespace

int
main()
{
    std::mt19937_64 rng(378);
    std::vector<Stats> corpus;
    // 31 submissions: sizes and styles vary per student.
    for (int s = 0; s < 31; ++s) {
        const uint32_t n = 6 + static_cast<uint32_t>(rng() % 20);
        const int style = static_cast<int>(rng() % 3);
        const std::string solution =
            cascade::workloads::needleman_wunsch_source(n, style);
        Stats stats = analyze(solution);
        // Build logs were collected for 23 of 31 submissions; the rest
        // default to a single observed build, like the paper's minimum.
        stats.builds =
            s < 23 ? measure_builds(solution, rng) : 1;
        corpus.push_back(stats);
    }

    std::printf("Table 1: statistics over %zu Needleman-Wunsch "
                "solutions (paper: n=31)\n", corpus.size());
    std::printf("%-28s %8s %6s %6s   (paper mean/min/max)\n", "", "mean",
                "min", "max");
    auto col = [&corpus](auto getter) {
        std::vector<int> out;
        for (const Stats& s : corpus) {
            out.push_back(getter(s));
        }
        return out;
    };
    row("Lines of Verilog code",
        col([](const Stats& s) { return s.loc; }));
    std::printf("%-28s %28s\n", "", "(paper: 287 / 113 / 709)");
    row("Always blocks",
        col([](const Stats& s) { return s.always_blocks; }));
    std::printf("%-28s %28s\n", "", "(paper: 5 / 2 / 12)");
    row("Blocking assignments",
        col([](const Stats& s) { return s.blocking; }));
    std::printf("%-28s %28s\n", "", "(paper: 57 / 28 / 132)");
    row("Nonblocking assignments",
        col([](const Stats& s) { return s.nonblocking; }));
    std::printf("%-28s %28s\n", "", "(paper: 7 / 2 / 33)");
    row("Display statements",
        col([](const Stats& s) { return s.displays; }));
    std::printf("%-28s %28s\n", "", "(paper: 11 / 1 / 32)");
    row("Number of builds",
        col([](const Stats& s) { return s.builds; }));
    std::printf("%-28s %28s\n", "", "(paper: 27 / 1 / 123)");
    return 0;
}
