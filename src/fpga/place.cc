#include "fpga/place.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/check.h"

namespace cascade::fpga {

namespace {

/// Wire delay per unit of Manhattan distance (ns).
constexpr double kWireDelayPerUnit = 0.035;
/// Register clock-to-Q plus setup margin (ns).
constexpr double kRegOverheadNs = 0.6;

uint32_t
grid_side(size_t cells)
{
    // 50% fill leaves room to move during annealing.
    const double side = std::sqrt(static_cast<double>(cells) * 2.0) + 1.0;
    return std::max<uint32_t>(2, static_cast<uint32_t>(std::ceil(side)));
}

} // namespace

PlacementResult
place(const MappedDesign& design, const PlaceOptions& options)
{
    PlacementResult out;
    const size_t n = design.cells.size();
    out.grid = grid_side(n);
    out.locations.resize(n);
    if (n == 0) {
        return out;
    }

    std::mt19937_64 rng(options.seed);
    const uint32_t g = out.grid;

    // Initial placement: row-major scatter.
    std::vector<int32_t> slot_of_cell(n);
    std::vector<int32_t> cell_at_slot(static_cast<size_t>(g) * g, -1);
    for (size_t i = 0; i < n; ++i) {
        slot_of_cell[i] = static_cast<int32_t>(i);
        cell_at_slot[i] = static_cast<int32_t>(i);
    }

    auto xy = [g](int32_t slot) {
        return std::pair<int32_t, int32_t>(slot % g, slot / g);
    };
    auto edge_len = [&](const CellEdge& e) {
        const auto [ax, ay] = xy(slot_of_cell[e.a]);
        const auto [bx, by] = xy(slot_of_cell[e.b]);
        return std::abs(ax - bx) + std::abs(ay - by);
    };

    // Per-cell incident edge lists for incremental cost evaluation.
    std::vector<std::vector<uint32_t>> incident(n);
    for (size_t e = 0; e < design.edges.size(); ++e) {
        incident[design.edges[e].a].push_back(static_cast<uint32_t>(e));
        incident[design.edges[e].b].push_back(static_cast<uint32_t>(e));
    }

    double cost = 0;
    for (const CellEdge& e : design.edges) {
        cost += edge_len(e);
    }
    out.initial_wirelength = cost;

    // Annealing schedule: O(n^1.5) moves per temperature step, geometric
    // cooling. This is the deliberate compile-time sink: at effort 1.0 a
    // mid-sized design (a few hundred cells) takes seconds, and time grows
    // superlinearly with size — the property the JIT hides.
    const double effort = std::max(0.01, options.effort);
    const uint64_t moves_per_temp = static_cast<uint64_t>(
        effort * 400.0 * static_cast<double>(n) *
        std::sqrt(static_cast<double>(std::max<size_t>(16, n))));
    double temp = std::max(4.0, cost / std::max<size_t>(1, n));
    const double cooling = 0.92;
    const int temp_steps =
        static_cast<int>(20 + 10 * std::log2(1.0 + effort));

    std::uniform_int_distribution<uint32_t> pick_cell(
        0, static_cast<uint32_t>(n - 1));
    std::uniform_int_distribution<uint32_t> pick_slot(
        0, static_cast<uint32_t>(g) * g - 1);
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    for (int step = 0; step < temp_steps; ++step) {
        for (uint64_t m = 0; m < moves_per_temp; ++m) {
            ++out.moves_evaluated;
            const uint32_t c = pick_cell(rng);
            const int32_t from = slot_of_cell[c];
            const int32_t to = static_cast<int32_t>(pick_slot(rng));
            if (from == to) {
                continue;
            }
            const int32_t other = cell_at_slot[static_cast<size_t>(to)];

            double before = 0;
            for (uint32_t e : incident[c]) {
                before += edge_len(design.edges[e]);
            }
            if (other >= 0) {
                for (uint32_t e : incident[static_cast<size_t>(other)]) {
                    before += edge_len(design.edges[e]);
                }
            }
            // Apply tentatively.
            slot_of_cell[c] = to;
            if (other >= 0) {
                slot_of_cell[static_cast<size_t>(other)] = from;
            }
            double after = 0;
            for (uint32_t e : incident[c]) {
                after += edge_len(design.edges[e]);
            }
            if (other >= 0) {
                for (uint32_t e : incident[static_cast<size_t>(other)]) {
                    after += edge_len(design.edges[e]);
                }
            }
            const double delta = after - before;
            if (delta <= 0 || unit(rng) < std::exp(-delta / temp)) {
                // Accept.
                cell_at_slot[static_cast<size_t>(from)] = other;
                cell_at_slot[static_cast<size_t>(to)] =
                    static_cast<int32_t>(c);
                cost += delta;
            } else {
                // Revert.
                slot_of_cell[c] = from;
                if (other >= 0) {
                    slot_of_cell[static_cast<size_t>(other)] = to;
                }
            }
        }
        temp *= cooling;
    }

    out.final_wirelength = cost;
    for (size_t i = 0; i < n; ++i) {
        const auto [x, y] = xy(slot_of_cell[i]);
        out.locations[i] = {static_cast<uint32_t>(x),
                            static_cast<uint32_t>(y)};
    }
    return out;
}

TimingReport
analyze_timing(const Netlist& nl, const MappedDesign& design,
               const PlacementResult& placement, double target_clock_mhz)
{
    // Longest-path DP over the (already topologically ordered) DAG.
    // Sources (inputs, registers, constants) start at zero; each node adds
    // its intrinsic delay plus the wire delay from its farthest argument.
    std::vector<double> arrival(nl.nodes.size(), 0.0);
    auto loc_of_node = [&](uint32_t node) -> std::pair<double, double> {
        const int32_t cell = design.cell_of_node[node];
        if (cell < 0) {
            return {-1.0, -1.0};
        }
        const auto [x, y] = placement.locations[static_cast<size_t>(cell)];
        return {static_cast<double>(x), static_cast<double>(y)};
    };

    // pred[i]: the argument whose (wire-delayed) arrival dominates node
    // i, so the critical path can be walked back from its endpoint and
    // reported as a chain of named signals.
    std::vector<int32_t> pred(nl.nodes.size(), -1);
    double critical = kRegOverheadNs;
    int32_t endpoint = -1;
    for (size_t i = 0; i < nl.nodes.size(); ++i) {
        const Node& node = nl.nodes[i];
        double in_arrival = 0.0;
        const auto [sx, sy] = loc_of_node(static_cast<uint32_t>(i));
        for (uint32_t a : node.args) {
            double t = arrival[a];
            const auto [ax, ay] = loc_of_node(a);
            if (sx >= 0 && ax >= 0) {
                t += kWireDelayPerUnit *
                     (std::abs(sx - ax) + std::abs(sy - ay));
            }
            if (t > in_arrival || pred[i] < 0) {
                in_arrival = std::max(in_arrival, t);
                pred[i] = static_cast<int32_t>(a);
            }
        }
        const bool source = node.op == Op::RegQ || node.op == Op::Input ||
                            node.op == Op::Const;
        arrival[i] =
            source ? 0.0 : in_arrival + design.node_delay_ns[i];
        if (source) {
            pred[i] = -1;
        }
        if (arrival[i] + kRegOverheadNs > critical) {
            critical = arrival[i] + kRegOverheadNs;
            endpoint = static_cast<int32_t>(i);
        }
    }

    TimingReport report;
    report.critical_path_ns = critical;
    report.fmax_mhz = 1000.0 / critical;
    report.met = report.fmax_mhz >= target_clock_mhz;
    for (int32_t n = endpoint; n >= 0; n = pred[n]) {
        report.critical_path.push_back(static_cast<uint32_t>(n));
        report.critical_arrival_ns.push_back(arrival[n]);
    }
    std::reverse(report.critical_path.begin(),
                 report.critical_path.end());
    std::reverse(report.critical_arrival_ns.begin(),
                 report.critical_arrival_ns.end());
    return report;
}

} // namespace cascade::fpga
