/// \file
/// Arbitrary-width bit vectors with Verilog value semantics.
///
/// Every signal, register, and intermediate expression value in Cascade is a
/// BitVector. The representation is two-state (no x/z; see DESIGN.md §5):
/// registers initialize to zero unless the program says otherwise, and
/// division by zero yields zero. Values of 64 bits or fewer are stored
/// inline (no heap allocation), which keeps the software-engine interpreter
/// and the levelized bitstream evaluator allocation-free on hot paths.
///
/// Invariant: bits above \c width() in the top storage word are always zero.

#ifndef CASCADE_COMMON_BITVECTOR_H
#define CASCADE_COMMON_BITVECTOR_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace cascade {

class BitVector {
  public:
    /// A 1-bit zero.
    BitVector() { inline_word_ = 0; }

    /// A \p width bit vector holding \p value (truncated to fit).
    explicit BitVector(uint32_t width, uint64_t value = 0);

    BitVector(const BitVector& other);
    BitVector(BitVector&& other) noexcept;
    BitVector& operator=(const BitVector& other);
    BitVector& operator=(BitVector&& other) noexcept;
    ~BitVector();

    /// A 1-bit vector holding \p b.
    static BitVector from_bool(bool b) { return BitVector(1, b ? 1 : 0); }

    /// A \p width bit vector with every bit set.
    static BitVector all_ones(uint32_t width);

    /// Parses an unsigned decimal string of arbitrary length.
    /// Returns std::nullopt on malformed input.
    static std::optional<BitVector> from_decimal(uint32_t width,
                                                 const std::string& digits);

    uint32_t width() const { return width_; }
    uint32_t num_words() const { return (width_ + 63) / 64; }

    /// Word \p i of the little-endian storage (word 0 holds bits [63:0]).
    uint64_t word(uint32_t i) const { return words()[i]; }
    void set_word(uint32_t i, uint64_t w);

    bool bit(uint32_t i) const;
    void set_bit(uint32_t i, bool b);

    /// The low 64 bits (truncating).
    uint64_t to_uint64() const { return words()[0]; }

    /// Reduction-OR: true iff any bit is set.
    bool to_bool() const;
    bool is_zero() const { return !to_bool(); }

    /// True iff the MSB is set (the sign bit under signed interpretation).
    bool sign_bit() const { return bit(width_ - 1); }

    /// Returns this value resized to \p new_width, zero- or sign-extending
    /// when growing and truncating when shrinking.
    BitVector resized(uint32_t new_width, bool sign_extend = false) const;

    /// Bits [lsb + width - 1 : lsb]. Bits beyond this->width() read as zero.
    BitVector slice(uint32_t lsb, uint32_t width) const;

    /// Overwrites bits [lsb + v.width() - 1 : lsb] with \p v; writes beyond
    /// this->width() are dropped.
    void set_slice(uint32_t lsb, const BitVector& v);

    /// @{ Arithmetic. Operands must have equal width; the result has the
    /// same width, with wrap-around (two's complement) semantics.
    static BitVector add(const BitVector& a, const BitVector& b);
    static BitVector sub(const BitVector& a, const BitVector& b);
    static BitVector mul(const BitVector& a, const BitVector& b);
    static BitVector divu(const BitVector& a, const BitVector& b);
    static BitVector remu(const BitVector& a, const BitVector& b);
    static BitVector divs(const BitVector& a, const BitVector& b);
    static BitVector rems(const BitVector& a, const BitVector& b);
    /// a ** b with wrap-around semantics (unsigned exponent).
    static BitVector pow(const BitVector& a, const BitVector& b);
    BitVector negated() const;
    /// @}

    /// @{ Bitwise logic. Operands must have equal width.
    static BitVector bit_and(const BitVector& a, const BitVector& b);
    static BitVector bit_or(const BitVector& a, const BitVector& b);
    static BitVector bit_xor(const BitVector& a, const BitVector& b);
    BitVector bit_not() const;
    /// @}

    /// @{ Shifts by a dynamic amount. Shifts >= width yield zero
    /// (or all-signs for ashr of a negative value).
    BitVector shl(uint64_t amount) const;
    BitVector lshr(uint64_t amount) const;
    BitVector ashr(uint64_t amount) const;
    /// @}

    /// @{ Comparisons. Operands must have equal width.
    static bool eq(const BitVector& a, const BitVector& b);
    static bool ult(const BitVector& a, const BitVector& b);
    static bool ule(const BitVector& a, const BitVector& b);
    static bool slt(const BitVector& a, const BitVector& b);
    static bool sle(const BitVector& a, const BitVector& b);
    /// @}

    /// @{ Reductions over all bits.
    bool reduce_and() const;
    bool reduce_or() const { return to_bool(); }
    bool reduce_xor() const;
    /// @}

    /// Concatenation: \p msbs becomes the high bits of the result.
    static BitVector concat(const BitVector& msbs, const BitVector& lsbs);

    /// @{ String rendering (used by $display format specifiers).
    std::string to_bin_string() const;
    std::string to_hex_string() const;
    std::string to_dec_string() const;           ///< unsigned
    std::string to_signed_dec_string() const;    ///< two's complement
    /// @}

    bool operator==(const BitVector& other) const;
    bool operator!=(const BitVector& other) const { return !(*this == other); }

    size_t hash() const;

  private:
    static constexpr uint32_t kInlineWords = 1;

    bool is_inline() const { return num_words() <= kInlineWords; }
    const uint64_t* words() const { return is_inline() ? &inline_word_ : heap_; }
    uint64_t* words() { return is_inline() ? &inline_word_ : heap_; }

    /// Zeroes the unused high bits of the top word.
    void mask_top();

    /// Divides in place by a small divisor, returning the remainder.
    uint32_t divmod_small(uint32_t divisor);

    /// Multiplies in place by a small factor and adds a small addend.
    void muladd_small(uint32_t factor, uint32_t addend);

    static void udivrem(const BitVector& a, const BitVector& b,
                        BitVector* quot, BitVector* rem);

    uint32_t width_ = 1;
    union {
        uint64_t inline_word_;
        uint64_t* heap_;
    };
};

} // namespace cascade

template <>
struct std::hash<cascade::BitVector> {
    size_t operator()(const cascade::BitVector& v) const { return v.hash(); }
};

#endif // CASCADE_COMMON_BITVECTOR_H
