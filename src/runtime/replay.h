/// \file
/// Deterministic session replay (the consumer half of the flight
/// recorder, see telemetry/journal.h). A journal recorded with
/// `Runtime::start_recording()` captures every nondeterminism-bearing
/// event of a session; replay_journal() reconstructs an identically
/// configured Runtime from the journal header, re-feeds the recorded
/// inputs in order, pins the sources of nondeterminism (placement seeds,
/// adoption iterations, open-loop grants), and compares every output
/// event the re-executed session produces against the recording — byte
/// for byte — reporting the first diverging event if any.

#ifndef CASCADE_RUNTIME_REPLAY_H
#define CASCADE_RUNTIME_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "telemetry/journal.h"

namespace cascade::runtime {

/// One journal line, parsed and raw. \p data_raw is the payload's exact
/// byte sequence from the file: divergence detection compares raw text
/// (JsonWriter regenerates the identical serialization on replay), so no
/// information is lost to a parse/re-print round trip.
struct ReplayLogEvent {
    uint64_t seq = 0;
    uint64_t vt = 0;
    std::string type;
    telemetry::JsonValue data;
    std::string data_raw;
};

/// A loaded journal: the options header plus the event sequence.
struct ReplayLog {
    telemetry::JsonValue header;
    std::vector<ReplayLogEvent> events;
};

/// Reads a `cascade.events.v1` JSONL file. Returns false (with \p err)
/// on IO failure, a bad schema tag, or a malformed line.
bool load_journal(const std::string& path, ReplayLog* out,
                  std::string* err = nullptr);

/// Reconstructs Runtime options from a journal header (fields absent in
/// the header keep their defaults, so old journals stay loadable).
Runtime::Options options_from_header(const telemetry::JsonValue& header);

struct ReplayOptions {
    /// When nonempty, the replayed session records itself to this path —
    /// replaying a recording twice must produce byte-identical journals
    /// (the CI determinism check diffs them).
    std::string record_path;
    /// Mirror replayed $display/$write output to stdout.
    bool echo = false;
    /// How long a replayed api.wait_hw{ok:true} may block on the compile
    /// server before giving up.
    double hardware_wait_s = 600.0;
};

struct ReplayReport {
    bool loaded = false;   ///< journal parsed and schedule extracted
    bool ok = false;       ///< replay ran to the end with no divergence
    bool diverged = false;

    /// First diverging event, identified by its *recorded* stamps.
    uint64_t divergence_seq = 0;
    uint64_t divergence_vt = 0;
    std::string divergence_type;
    std::string expected; ///< recorded payload ("<none>" for extra events)
    std::string actual;   ///< re-executed payload ("<missing>" if absent)

    uint64_t inputs_fed = 0;
    uint64_t outputs_compared = 0;
    std::string error; ///< loader/driver failure (distinct from divergence)

    /// One human-readable paragraph for the CLI.
    std::string summary() const;
};

/// Replays \p log into \p rt, which must be freshly constructed (no user
/// evals yet) with options matching the journal header. Prefer
/// replay_journal() unless the test needs its hands on the runtime.
ReplayReport replay_into(Runtime* rt, const ReplayLog& log,
                         const ReplayOptions& opts = {});

/// Load + construct + replay in one call.
ReplayReport replay_journal(const std::string& path,
                            const ReplayOptions& opts = {});

} // namespace cascade::runtime

#endif // CASCADE_RUNTIME_REPLAY_H
