/// \file
/// Flight-recorder unit tests: the JSON writer/parser pair, digest
/// stability, the bounded event ring, the `cascade.events.v1` file schema
/// produced by a recorded session, the leveled logger, and the crash
/// black box (including an end-to-end injected CASCADE_CHECK failure).

#include "telemetry/journal.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/diagnostics.h"
#include "hypervisor/fabric_manager.h"
#include "runtime/runtime.h"
#include "service/compile_service.h"

namespace cascade::telemetry {
namespace {

TEST(Digest, KnownVectorsAndStability)
{
    // FNV-1a 64-bit reference vectors: the digest is part of the journal
    // schema, so it must never drift across platforms or releases.
    EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(digest_hex("a"), "af63dc4c8601ec8c");
    EXPECT_EQ(digest_hex(""), "cbf29ce484222325");
}

TEST(JsonWriter, TypesOrderingAndEscaping)
{
    const std::string s = JsonWriter()
                              .str("s", "a\"b\\c\n\tx")
                              .num("u", 18446744073709551615ull)
                              .num_signed("i", -42)
                              .boolean("t", true)
                              .boolean("f", false)
                              .raw("o", "{\"k\":1}")
                              .build();
    EXPECT_EQ(s, "{\"s\":\"a\\\"b\\\\c\\n\\tx\","
                 "\"u\":18446744073709551615,"
                 "\"i\":-42,\"t\":true,\"f\":false,"
                 "\"o\":{\"k\":1}}");
    EXPECT_EQ(JsonWriter().build(), "{}");
}

TEST(JsonWriter, DoublesRoundTripExactly)
{
    // %.17g: a parse -> re-print cycle must reproduce the exact bits
    // (replay re-records the options header it parsed).
    const double values[] = {0.3, 1e-6, 1.0 / 3.0, 50.0, 0.05};
    for (const double v : values) {
        const std::string printed = JsonWriter().dbl("v", v).build();
        JsonValue parsed;
        ASSERT_TRUE(parse_json(printed, &parsed)) << printed;
        EXPECT_EQ(parsed.get_num("v"), v) << printed;
    }
}

TEST(ParseJson, RoundTripAndAccessors)
{
    const char* text = "{\"a\":1,\"b\":-2.5,\"s\":\"x\\u0041\\n\","
                       "\"t\":true,\"n\":null,"
                       "\"arr\":[1,2,{\"k\":\"v\"}],"
                       "\"big\":18446744073709551615}";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parse_json(text, &v, &err)) << err;
    EXPECT_EQ(v.get_u64("a"), 1u);
    EXPECT_EQ(v.get_num("b"), -2.5);
    EXPECT_EQ(v.get_str("s"), "xA\n");
    EXPECT_TRUE(v.get_bool("t"));
    ASSERT_NE(v.find("n"), nullptr);
    EXPECT_EQ(v.find("n")->kind, JsonValue::Kind::Null);
    const JsonValue* arr = v.find("arr");
    ASSERT_NE(arr, nullptr);
    ASSERT_EQ(arr->arr.size(), 3u);
    EXPECT_EQ(arr->arr[2].get_str("k"), "v");
    EXPECT_EQ(v.get_u64("big"), 18446744073709551615ull);

    EXPECT_FALSE(parse_json("{\"a\":}", &v, &err));
    EXPECT_FALSE(parse_json("{} trailing", &v, &err));
    EXPECT_FALSE(parse_json("", &v, &err));
}

TEST(Journal, EventFormatAndClock)
{
    Journal j;
    uint64_t now = 42;
    j.set_clock([&now] { return now; });
    j.record("t", JsonWriter().str("k", "v").build());
    now = 99;
    j.record("u");
    const auto ring = j.ring();
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(Journal::event_json(ring[0]),
              "{\"seq\":1,\"vt\":42,\"type\":\"t\",\"data\":{\"k\":\"v\"}}");
    EXPECT_EQ(Journal::event_json(ring[1]),
              "{\"seq\":2,\"vt\":99,\"type\":\"u\",\"data\":{}}");
}

TEST(Journal, TenantTagAppearsOnlyInSharedMode)
{
    // Exclusive sessions (tenant 0, the default) serialize exactly as
    // before — cascade.events.v1 stays byte-compatible — while a
    // shared-mode journal tags every subsequent event.
    Journal j;
    j.record("before");
    j.set_tenant(3);
    j.record("after", JsonWriter().num("k", 1).build());
    const auto ring = j.ring();
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0].tenant, 0u);
    EXPECT_EQ(ring[1].tenant, 3u);
    EXPECT_EQ(Journal::event_json(ring[0]),
              "{\"seq\":1,\"vt\":0,\"type\":\"before\",\"data\":{}}");
    EXPECT_EQ(Journal::event_json(ring[1]),
              "{\"seq\":2,\"vt\":0,\"type\":\"after\",\"tenant\":3,"
              "\"data\":{\"k\":1}}");

    // The tagged line is still a valid JSON document with the payload
    // intact under "data".
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parse_json(Journal::event_json(ring[1]), &v, &err)) << err;
    EXPECT_EQ(v.get_u64("tenant"), 3u);
    EXPECT_EQ(v.get_u64("seq"), 2u);
    const JsonValue* data = v.find("data");
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->get_u64("k"), 1u);
}

TEST(Journal, RingIsBoundedAndOldestFirst)
{
    Journal j(256);
    for (int i = 0; i < 600; ++i) {
        j.record("e", JsonWriter().num("i", i).build());
    }
    EXPECT_EQ(j.events_recorded(), 600u);
    const auto ring = j.ring();
    ASSERT_EQ(ring.size(), 256u);
    // The ring keeps the most recent 256 events, oldest first, with the
    // global sequence numbering intact (seq 345..600).
    EXPECT_EQ(ring.front().seq, 345u);
    EXPECT_EQ(ring.back().seq, 600u);
    for (size_t i = 1; i < ring.size(); ++i) {
        EXPECT_EQ(ring[i].seq, ring[i - 1].seq + 1);
    }
}

TEST(Journal, ObserverSeesEveryEvent)
{
    Journal j;
    std::vector<std::string> seen;
    j.set_observer([&seen](const Journal::Event& e) {
        seen.push_back(e.type + ":" + e.data);
    });
    j.record("a", "{\"x\":1}");
    j.record("b");
    j.set_observer(nullptr);
    j.record("c");
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "a:{\"x\":1}");
    EXPECT_EQ(seen[1], "b:{}");
}

std::string
temp_path(const char* name)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("cascade_journal_test_") + name +
             std::to_string(::getpid())))
        .string();
}

TEST(Journal, WriteRingProducesLoadableJournal)
{
    Journal j;
    j.record("x", JsonWriter().num("n", 7).build());
    const std::string path = temp_path("ring.jsonl");
    std::string err;
    ASSERT_TRUE(
        j.write_ring(path, JsonWriter().str("kind", "test").build(), &err))
        << err;
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    JsonValue head;
    ASSERT_TRUE(parse_json(line, &head, &err)) << err;
    EXPECT_EQ(head.get_str("schema"), "cascade.events.v1");
    ASSERT_NE(head.find("header"), nullptr);
    EXPECT_EQ(head.find("header")->get_str("kind"), "test");
    ASSERT_TRUE(std::getline(in, line));
    JsonValue ev;
    ASSERT_TRUE(parse_json(line, &ev, &err)) << err;
    EXPECT_EQ(ev.get_str("type"), "x");
    std::filesystem::remove(path);
}

/// Golden schema test: a real recorded session must produce a journal
/// whose every line parses, whose sequence numbers strictly increase, and
/// whose event vocabulary covers the nondeterminism-bearing events.
TEST(Journal, RecordedSessionMatchesSchema)
{
    const std::string path = temp_path("session.jsonl");
    {
        runtime::Runtime::Options opts;
        opts.enable_hardware = false;
        runtime::Runtime rt(opts);
        std::string err;
        ASSERT_TRUE(rt.start_recording(path, &err)) << err;
        EXPECT_TRUE(rt.recording());
        ASSERT_TRUE(rt.eval("reg [7:0] n = 0;\n"
                            "always @(posedge clk.val) begin\n"
                            "  n <= n + 1;\n"
                            "  $display(\"n=%d\", n);\n"
                            "  if (n == 5) $finish;\n"
                            "end\n"));
        std::string ignored;
        EXPECT_FALSE(rt.eval("bad verilog !!!", &ignored));
        rt.run(1000);
        rt.stop_recording();
        EXPECT_FALSE(rt.recording());
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    JsonValue head;
    std::string err;
    ASSERT_TRUE(parse_json(line, &head, &err)) << err;
    EXPECT_EQ(head.get_str("schema"), "cascade.events.v1");
    const JsonValue* header = head.find("header");
    ASSERT_NE(header, nullptr);
    EXPECT_FALSE(header->get_bool("enable_hardware", true));

    uint64_t last_seq = 0;
    std::set<std::string> types;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        JsonValue ev;
        ASSERT_TRUE(parse_json(line, &ev, &err)) << err << "\n" << line;
        EXPECT_GT(ev.get_u64("seq"), last_seq) << line;
        last_seq = ev.get_u64("seq");
        ASSERT_NE(ev.find("type"), nullptr) << line;
        ASSERT_NE(ev.find("data"), nullptr) << line;
        types.insert(ev.get_str("type"));
    }
    for (const char* required :
         {"eval", "rebuild", "interrupt.enqueue", "interrupt.flush",
          "api.run", "finish"}) {
        EXPECT_TRUE(types.count(required) != 0)
            << "missing event type " << required;
    }
    std::filesystem::remove(path);
}

TEST(Logger, PlainAndJsonFormats)
{
    Logger& log = Logger::instance();
    const LogLevel old_level = log.level();
    const bool old_json = log.json();

    std::FILE* capture = std::tmpfile();
    ASSERT_NE(capture, nullptr);
    log.set_stream(capture);
    log.set_level(LogLevel::Info);
    log.set_json(false);

    EXPECT_TRUE(log.enabled(LogLevel::Error));
    EXPECT_TRUE(log.enabled(LogLevel::Info));
    EXPECT_FALSE(log.enabled(LogLevel::Debug));

    log.write(LogLevel::Warn, "test", "plain message");
    log.set_json(true);
    log.write(LogLevel::Info, "test", "json \"message\"");

    std::rewind(capture);
    std::string text;
    char buf[256];
    while (std::fgets(buf, sizeof buf, capture) != nullptr) {
        text += buf;
    }
    EXPECT_NE(text.find("cascade[warn] test: plain message"),
              std::string::npos)
        << text;
    const size_t json_at = text.find('{');
    ASSERT_NE(json_at, std::string::npos) << text;
    JsonValue v;
    std::string err;
    std::string json_line = text.substr(json_at);
    if (!json_line.empty() && json_line.back() == '\n') {
        json_line.pop_back();
    }
    ASSERT_TRUE(parse_json(json_line, &v, &err)) << err << "\n" << text;
    EXPECT_EQ(v.get_str("level"), "info");
    EXPECT_EQ(v.get_str("component"), "test");
    EXPECT_EQ(v.get_str("msg"), "json \"message\"");

    log.set_stream(nullptr);
    log.set_level(old_level);
    log.set_json(old_json);
    std::fclose(capture);
}

TEST(BlackBox, DumpJsonAggregatesSources)
{
    BlackBox& bb = BlackBox::instance();
    const int id = bb.add_source("unit_test", [] {
        return std::string("{\"hello\":1}");
    });
    const std::string dump = bb.dump_json("test reason");
    bb.remove_source(id);

    JsonValue v;
    std::string err;
    ASSERT_TRUE(parse_json(dump, &v, &err)) << err << "\n" << dump;
    EXPECT_EQ(v.get_str("schema"), "cascade.crash.v1");
    EXPECT_EQ(v.get_str("reason"), "test reason");
    const JsonValue* sources = v.find("sources");
    ASSERT_NE(sources, nullptr);
    bool found = false;
    for (const JsonValue& s : sources->arr) {
        if (s.get_str("name") == "unit_test") {
            found = true;
            ASSERT_NE(s.find("data"), nullptr);
            EXPECT_EQ(s.find("data")->get_u64("hello"), 1u);
        }
    }
    EXPECT_TRUE(found) << dump;
}

/// End-to-end black box: a session dies on an injected CASCADE_CHECK
/// failure and the crash file must carry the journal ring plus the
/// stats/profile snapshots of the live runtime.
TEST(BlackBoxDeathTest, CheckFailureWritesCrashFile)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // No pid suffix: the threadsafe death-test child re-executes this
    // test body with its own pid, and parent and child must agree on the
    // crash directory.
    const std::string dir = (std::filesystem::temp_directory_path() /
                             "cascade_journal_test_crashdir")
                                .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    ::setenv("CASCADE_CRASH_DIR", dir.c_str(), 1);

    EXPECT_DEATH(
        {
            runtime::Runtime::Options opts;
            opts.enable_hardware = false;
            runtime::Runtime rt(opts);
            rt.eval("reg [7:0] n = 0;\n"
                    "always @(posedge clk.val) begin\n"
                    "  n <= n + 1; $display(\"n=%d\", n);\n"
                    "end\n");
            rt.run(64);
            CASCADE_CHECK(1 == 2);
        },
        "CASCADE_CHECK failed: 1 == 2");
    ::unsetenv("CASCADE_CRASH_DIR");

    std::string crash_path;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("cascade-crash-", 0) == 0) {
            crash_path = entry.path().string();
        }
    }
    ASSERT_FALSE(crash_path.empty())
        << "no cascade-crash-*.json in " << dir;

    std::ifstream in(crash_path);
    std::stringstream ss;
    ss << in.rdbuf();
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parse_json(ss.str(), &v, &err)) << err;
    EXPECT_EQ(v.get_str("schema"), "cascade.crash.v1");
    EXPECT_NE(v.get_str("reason").find("CASCADE_CHECK failed: 1 == 2"),
              std::string::npos)
        << v.get_str("reason");
    const JsonValue* sources = v.find("sources");
    ASSERT_NE(sources, nullptr);
    bool found_runtime = false;
    for (const JsonValue& s : sources->arr) {
        if (s.get_str("name") != "runtime") {
            continue;
        }
        found_runtime = true;
        const JsonValue* data = s.find("data");
        ASSERT_NE(data, nullptr);
        const JsonValue* events = data->find("events");
        ASSERT_NE(events, nullptr);
        EXPECT_FALSE(events->arr.empty())
            << "crash dump carries no journal events";
        // The ring must include the session's actual activity.
        bool saw_display = false;
        for (const JsonValue& e : events->arr) {
            if (e.get_str("type") == "interrupt.enqueue") {
                saw_display = true;
            }
        }
        EXPECT_TRUE(saw_display);
        EXPECT_NE(data->find("stats"), nullptr);
        EXPECT_NE(data->find("profile"), nullptr);
    }
    EXPECT_TRUE(found_runtime);
    std::filesystem::remove_all(dir);
}

/// Shared-mode black box: when a multi-tenant session dies, the crash
/// file's journal events must carry their tenant tags and the dump must
/// include the time-series section recorded before the crash — the
/// post-mortem shows the minutes before death, not just the final ring.
TEST(BlackBoxDeathTest, SharedModeCrashCarriesTenantTagsAndTimeseries)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string dir = (std::filesystem::temp_directory_path() /
                             "cascade_journal_test_crashdir_shared")
                                .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    ::setenv("CASCADE_CRASH_DIR", dir.c_str(), 1);

    EXPECT_DEATH(
        {
            service::CompileService::Config cfg;
            cfg.workers = 1;
            service::CompileService svc(cfg);
            hypervisor::FabricManager fm;
            runtime::Runtime::Options opts;
            opts.enable_hardware = false;
            opts.tenant_name = "doomed";
            opts.timeseries_interval_s = 0.0005;
            runtime::Runtime rt(opts, svc, fm);
            rt.eval("reg [7:0] n = 0;\n"
                    "always @(posedge clk.val) begin\n"
                    "  n <= n + 1; $display(\"n=%d\", n);\n"
                    "end\n");
            // Long enough that the scheduler takes time-series samples.
            for (int i = 0; i < 50 && rt.timeseries().names().empty();
                 ++i) {
                rt.run(64);
            }
            CASCADE_CHECK(3 == 4);
        },
        "CASCADE_CHECK failed: 3 == 4");
    ::unsetenv("CASCADE_CRASH_DIR");

    std::string crash_path;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("cascade-crash-", 0) == 0) {
            crash_path = entry.path().string();
        }
    }
    ASSERT_FALSE(crash_path.empty())
        << "no cascade-crash-*.json in " << dir;

    std::ifstream in(crash_path);
    std::stringstream ss;
    ss << in.rdbuf();
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parse_json(ss.str(), &v, &err)) << err;
    EXPECT_EQ(v.get_str("schema"), "cascade.crash.v1");
    const JsonValue* sources = v.find("sources");
    ASSERT_NE(sources, nullptr);
    bool found_runtime = false;
    for (const JsonValue& s : sources->arr) {
        if (s.get_str("name") != "runtime") {
            continue;
        }
        found_runtime = true;
        const JsonValue* data = s.find("data");
        ASSERT_NE(data, nullptr);

        // Every journal event of a shared-mode session is tenant-tagged.
        const JsonValue* events = data->find("events");
        ASSERT_NE(events, nullptr);
        ASSERT_FALSE(events->arr.empty());
        for (const JsonValue& e : events->arr) {
            EXPECT_GT(e.get_u64("tenant"), 0u)
                << "untagged event " << e.get_str("type");
        }

        // The time-series rings ride along in the dump.
        const JsonValue* ts = data->find("timeseries");
        ASSERT_NE(ts, nullptr);
        EXPECT_EQ(ts->get_str("schema"), "cascade.timeseries.v1");
        const JsonValue* series = ts->find("series");
        ASSERT_NE(series, nullptr);
        EXPECT_NE(series->find("runtime.ticks_per_s"), nullptr);
    }
    EXPECT_TRUE(found_runtime);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace cascade::telemetry
