#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against committed baselines.

Every bench writes a BENCH_<name>.json headline file (schema
cascade.bench.v1). This script walks each committed baseline in
bench/baselines/, finds the matching fresh result, and compares every
numeric leaf. A leaf whose relative deviation exceeds the tolerance in
the *bad* direction is a regression:

  - keys that look like latencies/durations (``*_s``, ``*seconds*``,
    ``*latency*``, ``*_ns``, ``*_ms``) regress when they grow;
  - keys that look like rates (``*hz*``, ``*rate*``, ``*speedup*``,
    ``*ticks_per*``, ``*throughput*``) regress when they shrink;
  - anything else is reported (both directions) as a drift warning but
    never counts as a regression — counters like LE usage move for
    legitimate reasons.

Shared CI runners are noisy, so this is a soft gate by default: findings
are printed as GitHub ``::warning::`` annotations and the exit code stays
0. Pass --strict (local perf work) to exit 1 on any regression.

Usage:
  check_bench_regression.py [--baseline-dir DIR] [--results-dir DIR]
                            [--tolerance 0.5] [--strict]
"""

import argparse
import json
import math
import os
import sys

LOWER_IS_BETTER = ("seconds", "latency", "_s", "_ns", "_ms", "wait")
HIGHER_IS_BETTER = ("hz", "rate", "speedup", "ticks_per", "throughput")

# Leaves that are environment facts, not performance: never compared.
IGNORED = ("wall_seconds", "les", "virtual_ticks", "adopted", "schema",
           "bench")


def classify(key):
    k = key.lower()
    if any(k.endswith(s) or s in k for s in LOWER_IS_BETTER):
        return "lower"
    if any(s in k for s in HIGHER_IS_BETTER):
        return "higher"
    return "unknown"


def leaves(node, prefix=""):
    """Yields (dotted-path, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from leaves(value, prefix + "." + key if prefix else key)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield prefix, float(node)


def compare(name, baseline, fresh, tolerance):
    """Returns (regressions, drifts) as lists of message strings."""
    fresh_map = dict(leaves(fresh))
    regressions = []
    drifts = []
    for path, base in leaves(baseline):
        leaf = path.rsplit(".", 1)[-1]
        if leaf in IGNORED or path not in fresh_map:
            continue
        new = fresh_map[path]
        if not (math.isfinite(base) and math.isfinite(new)):
            continue
        if base == 0:
            continue  # no meaningful relative deviation
        rel = (new - base) / abs(base)
        direction = classify(leaf)
        msg = (f"{name}: {path} {base:.6g} -> {new:.6g} "
               f"({rel:+.1%}, tolerance {tolerance:.0%})")
        if direction == "lower" and rel > tolerance:
            regressions.append(msg)
        elif direction == "higher" and rel < -tolerance:
            regressions.append(msg)
        elif direction == "unknown" and abs(rel) > tolerance:
            drifts.append(msg)
    return regressions, drifts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir",
                        default=os.path.join(os.path.dirname(__file__),
                                             "baselines"))
    parser.add_argument("--results-dir", default=".")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="relative deviation allowed (0.5 = 50%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of warning")
    args = parser.parse_args()

    if not os.path.isdir(args.baseline_dir):
        print(f"no baseline directory at {args.baseline_dir}; "
              "nothing to compare", file=sys.stderr)
        return 0

    regressions = []
    drifts = []
    compared = 0
    for entry in sorted(os.listdir(args.baseline_dir)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        fresh_path = os.path.join(args.results_dir, entry)
        if not os.path.exists(fresh_path):
            print(f"::warning title=bench baseline::no fresh result for "
                  f"{entry} in {args.results_dir}")
            continue
        with open(os.path.join(args.baseline_dir, entry)) as f:
            baseline = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        name = entry[len("BENCH_"):-len(".json")]
        regs, drft = compare(name, baseline, fresh, args.tolerance)
        regressions.extend(regs)
        drifts.extend(drft)
        compared += 1

    # Fresh results with no committed baseline are a soft warning too:
    # a new bench landed without seeding its gate. Print the exact copy
    # command so seeding it is a paste away.
    unseeded = 0
    if os.path.isdir(args.results_dir):
        baselines = set(os.listdir(args.baseline_dir))
        for entry in sorted(os.listdir(args.results_dir)):
            if not (entry.startswith("BENCH_") and
                    entry.endswith(".json")):
                continue
            if entry in baselines:
                continue
            unseeded += 1
            fresh_path = os.path.join(args.results_dir, entry)
            print(f"::warning title=bench baseline::{entry} has no "
                  f"committed baseline; future regressions in it are "
                  f"invisible")
            print(f"  seed it with: cp {fresh_path} "
                  f"{os.path.join(args.baseline_dir, entry)}")

    for msg in drifts:
        print(f"::notice title=bench drift::{msg}")
    for msg in regressions:
        print(f"::warning title=bench regression::{msg}")
    print(f"compared {compared} baseline file(s): "
          f"{len(regressions)} regression(s), {len(drifts)} drift(s), "
          f"{unseeded} unseeded fresh result(s)")
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
