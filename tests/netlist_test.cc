/// \file
/// Tests for the netlist builder: constant folding, hash-consing,
/// constant-shift canonicalization (shifts by constants are wiring), and
/// eval_node semantics.

#include "fpga/netlist.h"

#include <random>

#include <gtest/gtest.h>

namespace cascade::fpga {
namespace {

struct Fixture {
    Netlist nl;
    NetlistBuilder b{&nl};
};

TEST(NetlistBuilder, ConstantsAreConsed)
{
    Fixture f;
    const uint32_t a = f.b.constant(8, 42);
    const uint32_t b = f.b.constant(8, 42);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, f.b.constant(8, 43));
    EXPECT_NE(a, f.b.constant(9, 42)); // width matters
}

TEST(NetlistBuilder, OpsAreConsed)
{
    Fixture f;
    const uint32_t x = f.b.input("x", 8);
    const uint32_t y = f.b.input("y", 8);
    const uint32_t s1 = f.b.make(Op::Add, 8, {x, y});
    const uint32_t s2 = f.b.make(Op::Add, 8, {x, y});
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, f.b.make(Op::Add, 8, {y, x}));
}

TEST(NetlistBuilder, ConstantFolding)
{
    Fixture f;
    const uint32_t a = f.b.constant(8, 20);
    const uint32_t b = f.b.constant(8, 30);
    const uint32_t s = f.b.make(Op::Add, 8, {a, b});
    ASSERT_TRUE(f.b.is_const(s));
    EXPECT_EQ(f.b.const_val(s).to_uint64(), 50u);
    const uint32_t m = f.b.make(Op::Mul, 8, {a, b});
    EXPECT_EQ(f.b.const_val(m).to_uint64(), (20 * 30) & 0xFFu);
}

TEST(NetlistBuilder, MuxWithConstantSelectorFolds)
{
    Fixture f;
    const uint32_t x = f.b.input("x", 8);
    const uint32_t y = f.b.input("y", 8);
    EXPECT_EQ(f.b.mux(f.b.constant(1, 1), x, y), x);
    EXPECT_EQ(f.b.mux(f.b.constant(1, 0), x, y), y);
    EXPECT_EQ(f.b.mux(f.b.input("s", 1), x, x), x);
}

TEST(NetlistBuilder, ConstShiftsBecomeWiring)
{
    Fixture f;
    const uint32_t x = f.b.input("x", 32);
    const uint32_t sh = f.b.make(Op::Lshr, 32, {x, f.b.constant(32, 4)});
    // No Lshr node should exist: only Slice/ZExt wiring.
    EXPECT_NE(f.nl.nodes[sh].op, Op::Lshr);
    const uint32_t shl = f.b.make(Op::Shl, 32, {x, f.b.constant(32, 8)});
    EXPECT_NE(f.nl.nodes[shl].op, Op::Shl);
    // Oversized shift folds to zero.
    const uint32_t big = f.b.make(Op::Lshr, 32, {x, f.b.constant(32, 99)});
    ASSERT_TRUE(f.b.is_const(big));
    EXPECT_TRUE(f.b.const_val(big).is_zero());
}

/// The canonicalized forms must be semantically identical to the raw ops.
TEST(NetlistBuilder, CanonicalizedShiftsMatchEval)
{
    std::mt19937_64 rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const uint32_t w = 1 + static_cast<uint32_t>(rng() % 64);
        const uint64_t xv = rng();
        const uint32_t amt = static_cast<uint32_t>(rng() % (w + 4));
        for (Op op : {Op::Shl, Op::Lshr, Op::Ashr, Op::DynSlice}) {
            Fixture f;
            const uint32_t x = f.b.input("x", w);
            const uint32_t out_w =
                op == Op::DynSlice
                    ? 1 + static_cast<uint32_t>(rng() % w)
                    : w;
            const uint32_t n =
                f.b.make(op, out_w, {x, f.b.constant(32, amt)});
            // Evaluate the canonicalized graph by hand.
            std::vector<BitVector> values(f.nl.nodes.size());
            BitVector input(w, xv);
            for (size_t i = 0; i < f.nl.nodes.size(); ++i) {
                const Node& node = f.nl.nodes[i];
                if (node.op == Op::Input) {
                    values[i] = input;
                } else if (node.op == Op::Const) {
                    values[i] = node.cval;
                } else {
                    std::vector<BitVector> argv;
                    for (uint32_t a : node.args) {
                        argv.push_back(values[a]);
                    }
                    values[i] = eval_node(node, argv);
                }
            }
            // Reference: the uncanonicalized operation.
            Node raw;
            raw.op = op;
            raw.width = out_w;
            const BitVector expected =
                eval_node(raw, {input, BitVector(32, amt)});
            EXPECT_EQ(values[n], expected)
                << "op=" << static_cast<int>(op) << " w=" << w
                << " amt=" << amt;
        }
    }
}

TEST(NetlistBuilder, SetSliceConstRoundTrip)
{
    Fixture f;
    const uint32_t base = f.b.constant(BitVector(16, 0xFFFF));
    const uint32_t v = f.b.constant(4, 0);
    const uint32_t out = f.b.set_slice_const(base, 4, v);
    ASSERT_TRUE(f.b.is_const(out));
    EXPECT_EQ(f.b.const_val(out).to_uint64(), 0xFF0Fu);
    // Writes past the top are dropped.
    const uint32_t clipped =
        f.b.set_slice_const(base, 14, f.b.constant(4, 0));
    EXPECT_EQ(f.b.const_val(clipped).to_uint64(), 0x3FFFu);
}

TEST(NetlistBuilder, ZextSextResize)
{
    Fixture f;
    const uint32_t x = f.b.constant(BitVector(4, 0xA));
    EXPECT_EQ(f.b.const_val(f.b.zext(x, 8)).to_uint64(), 0x0Au);
    EXPECT_EQ(f.b.const_val(f.b.sext(x, 8)).to_uint64(), 0xFAu);
    EXPECT_EQ(f.b.const_val(f.b.resize(x, 2, false)).to_uint64(), 0x2u);
}

TEST(NetlistBuilder, MemReadsAreNotConsed)
{
    Fixture f;
    const uint32_t mem = f.b.memory("m", 8, 16);
    const uint32_t addr = f.b.input("a", 4);
    const uint32_t r1 = f.b.mem_read(mem, addr, 8);
    const uint32_t r2 = f.b.mem_read(mem, addr, 8);
    EXPECT_NE(r1, r2); // contents are time-varying
}

TEST(EvalNode, CoreOps)
{
    auto run = [](Op op, uint32_t w, std::vector<BitVector> argv) {
        Node n;
        n.op = op;
        n.width = w;
        return eval_node(n, argv);
    };
    EXPECT_EQ(run(Op::Add, 8, {BitVector(8, 200), BitVector(8, 100)})
                  .to_uint64(),
              44u);
    EXPECT_EQ(run(Op::Eq, 1, {BitVector(8, 5), BitVector(8, 5)})
                  .to_uint64(),
              1u);
    EXPECT_EQ(run(Op::Slt, 1, {BitVector(8, 0xFF), BitVector(8, 1)})
                  .to_uint64(),
              1u);
    EXPECT_EQ(run(Op::Mux, 8,
                  {BitVector(1, 1), BitVector(8, 3), BitVector(8, 9)})
                  .to_uint64(),
              3u);
    EXPECT_EQ(run(Op::Concat, 8, {BitVector(4, 0xA), BitVector(4, 0xB)})
                  .to_uint64(),
              0xABu);
    EXPECT_EQ(run(Op::ReduceXor, 1, {BitVector(8, 0b0111)}).to_uint64(),
              1u);
}

} // namespace
} // namespace cascade::fpga
