#include "hypervisor/fabric_manager.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "telemetry/trace.h"

namespace cascade::hypervisor {

FabricManager::FabricManager(fpga::FpgaDevice device)
    : device_(std::move(device))
{
    telemetry::Registry& reg = telemetry::Registry::global();
    tenants_gauge_ = reg.gauge("hypervisor.tenants");
    resident_gauge_ = reg.gauge("hypervisor.resident");
    evictions_ = reg.counter("hypervisor.evictions");
    admissions_ = reg.counter("hypervisor.admissions");
    denials_ = reg.counter("hypervisor.denials");
}

uint64_t
FabricManager::add_tenant(const std::string& name, uint64_t le_quota,
                          uint64_t bram_quota)
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    const uint64_t id = ++next_tenant_;
    Tenant t;
    t.name = name.empty() ? "tenant-" + std::to_string(id) : name;
    t.le_quota = le_quota;
    t.bram_quota = bram_quota;
    t.registered_at = std::chrono::steady_clock::now();
    tenants_[id] = std::move(t);
    tenants_gauge_->set(static_cast<int64_t>(tenants_.size()));
    return id;
}

void
FabricManager::remove_tenant(uint64_t tenant)
{
    {
        std::lock_guard<telemetry::Mutex> lock(mutex_);
        const auto it = tenants_.find(tenant);
        if (it == tenants_.end()) {
            return;
        }
        tenants_.erase(it);
        waiters_.erase(tenant);
        tenants_gauge_->set(static_cast<int64_t>(tenants_.size()));
        resident_gauge_->set(
            static_cast<int64_t>(resident_count_locked()));
        bump_capacity_epoch_locked();
    }
    change_cv_.notify_all();
}

size_t
FabricManager::resident_count_locked() const
{
    size_t n = 0;
    for (const auto& [id, t] : tenants_) {
        if (t.resident) {
            ++n;
        }
    }
    return n;
}

bool
FabricManager::find_slot_locked(uint64_t les, uint64_t* start) const
{
    // First fit over the gaps between resident slots (a handful of
    // tenants; a scan beats a free-list here).
    std::vector<std::pair<uint64_t, uint64_t>> used;
    for (const auto& [id, t] : tenants_) {
        if (t.resident) {
            used.emplace_back(t.le_start, t.le_count);
        }
    }
    std::sort(used.begin(), used.end());
    uint64_t cursor = 0;
    for (const auto& [s, n] : used) {
        if (s > cursor && s - cursor >= les) {
            *start = cursor;
            return true;
        }
        cursor = std::max(cursor, s + n);
    }
    if (device_.les() > cursor && device_.les() - cursor >= les) {
        *start = cursor;
        return true;
    }
    return false;
}

uint64_t
FabricManager::free_bram_locked() const
{
    uint64_t used = 0;
    for (const auto& [id, t] : tenants_) {
        if (t.resident) {
            used += t.bram_bits;
        }
    }
    return used >= device_.bram_bits() ? 0 : device_.bram_bits() - used;
}

void
FabricManager::bump_capacity_epoch_locked()
{
    capacity_epoch_.fetch_add(1, std::memory_order_release);
}

Admission
FabricManager::request_residency(uint64_t tenant,
                                 const fpga::CompileResult& result)
{
    Admission out;
    bool notify = false;
    {
        std::lock_guard<telemetry::Mutex> lock(mutex_);
        const auto it = tenants_.find(tenant);
        if (it == tenants_.end()) {
            out.error = "unknown tenant";
            denials_->inc();
            return out;
        }
        Tenant& t = it->second;
        if (!result.ok) {
            out.error = result.error;
            denials_->inc();
            telemetry::Tracer::global().instant_tenant("hypervisor.deny",
                                                       tenant, 0);
            return out;
        }
        const uint64_t les = result.report.area.les;
        const uint64_t bram = result.report.area.bram_bits;
        if (t.le_quota != 0 && les > t.le_quota) {
            out.error = "tenant LE quota exceeded: needs " +
                        std::to_string(les) + " LEs, quota " +
                        std::to_string(t.le_quota);
            denials_->inc();
            telemetry::Tracer::global().instant_tenant("hypervisor.deny",
                                                       tenant, les);
            return out;
        }
        if (t.bram_quota != 0 && bram > t.bram_quota) {
            out.error = "tenant BRAM quota exceeded: needs " +
                        std::to_string(bram) + " bits, quota " +
                        std::to_string(t.bram_quota);
            denials_->inc();
            telemetry::Tracer::global().instant_tenant("hypervisor.deny",
                                                       tenant, bram);
            return out;
        }
        if (les > device_.les() || bram > device_.bram_bits()) {
            out.error = "design does not fit: needs " +
                        std::to_string(les) + " LEs / " +
                        std::to_string(bram) + " BRAM bits";
            denials_->inc();
            telemetry::Tracer::global().instant_tenant("hypervisor.deny",
                                                       tenant, les);
            return out;
        }
        // Mirror FpgaDevice::program's clocking: a design that misses the
        // target still runs, PLL-clocked at 90% of its achieved Fmax.
        double clock = device_.clock_mhz();
        if (!result.report.timing.met) {
            clock = result.report.timing.fmax_mhz * 0.9;
        }

        // Waiter priority: while someone is parked on capacity, a
        // non-waiter yields even if the fabric has room (fairness; see
        // the waiters_ comment in the header).
        if (waiters_.count(tenant) == 0 && !waiters_.empty()) {
            waiters_.insert(tenant);
            out.error = "awaiting fabric capacity (yielding to waiting "
                        "tenant)";
            out.retryable = true;
            denials_->inc();
            // Tracer instants under mutex_ are fine: the tracer's own
            // lock is a leaf (it never acquires anything else).
            telemetry::Tracer::global().instant_tenant("hypervisor.defer",
                                                       tenant, 0);
            return out;
        }

        uint64_t start = 0;
        if (bram > free_bram_locked() ||
            !find_slot_locked(les, &start)) {
            // Capacity pressure: flag the least-recently-active resident
            // tenant (never the requester, never one already flagged) and
            // deny retryable. The victim self-evicts at its next window;
            // its release bumps the capacity epoch and wakes waiters.
            const Tenant* victim = nullptr;
            uint64_t victim_id = 0;
            for (const auto& [id, cand] : tenants_) {
                if (id == tenant || !cand.resident ||
                    cand.evict_requested) {
                    continue;
                }
                if (victim == nullptr ||
                    cand.last_active < victim->last_active) {
                    victim = &cand;
                    victim_id = id;
                }
            }
            if (victim != nullptr) {
                tenants_[victim_id].evict_requested = true;
                out.error = "awaiting fabric capacity (eviction of '" +
                            victim->name + "' requested)";
            } else {
                out.error = "awaiting fabric capacity";
            }
            waiters_.insert(tenant);
            out.retryable = true;
            denials_->inc();
            telemetry::Tracer::global().instant_tenant("hypervisor.defer",
                                                       tenant, victim_id);
            return out;
        }

        waiters_.erase(tenant);
        t.resident = true;
        t.le_start = start;
        t.le_count = les;
        t.bram_bits = bram;
        t.last_active = ++activity_clock_;
        admissions_->inc();
        resident_gauge_->set(
            static_cast<int64_t>(resident_count_locked()));
        bump_capacity_epoch_locked();
        out.bitstream = std::make_unique<fpga::Bitstream>(result.netlist);
        out.clock_mhz = clock;
        out.le_start = start;
        out.le_count = les;
        telemetry::Tracer::global().instant_tenant("hypervisor.admit",
                                                   tenant, les);
        notify = true;
    }
    if (notify) {
        change_cv_.notify_all();
    }
    return out;
}

void
FabricManager::release_residency(uint64_t tenant)
{
    {
        std::lock_guard<telemetry::Mutex> lock(mutex_);
        const auto it = tenants_.find(tenant);
        if (it == tenants_.end() || !it->second.resident) {
            return;
        }
        Tenant& t = it->second;
        t.resident = false;
        t.le_start = 0;
        t.le_count = 0;
        t.bram_bits = 0;
        if (t.evict_requested) {
            t.evict_requested = false;
            ++t.evictions;
            evictions_->inc();
        }
        resident_gauge_->set(
            static_cast<int64_t>(resident_count_locked()));
        bump_capacity_epoch_locked();
    }
    change_cv_.notify_all();
}

void
FabricManager::request_eviction(uint64_t tenant)
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end() && it->second.resident) {
        it->second.evict_requested = true;
    }
}

bool
FabricManager::eviction_pending(uint64_t tenant) const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    const auto it = tenants_.find(tenant);
    return it != tenants_.end() && it->second.evict_requested;
}

uint64_t
FabricManager::grant_open_loop(uint64_t tenant, uint64_t requested)
{
    uint64_t grant = requested;
    {
        std::lock_guard<telemetry::Mutex> lock(mutex_);
        const auto it = tenants_.find(tenant);
        if (it == tenants_.end()) {
            return requested;
        }
        Tenant& t = it->second;
        t.last_active = ++activity_clock_;
        const size_t residents = resident_count_locked();
        if (residents > 1) {
            grant = std::max<uint64_t>(
                64, requested / static_cast<uint64_t>(residents));
        }
        t.ticks_granted += grant;
    }
    telemetry::Tracer::global().instant_tenant("hypervisor.grant", tenant,
                                               grant);
    return grant;
}

void
FabricManager::note_ticks(uint64_t tenant, uint64_t ticks)
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end()) {
        it->second.ticks_done += ticks;
    }
}

void
FabricManager::wait_for_change(double timeout_s)
{
    std::unique_lock<telemetry::Mutex> lock(mutex_);
    const uint64_t epoch = capacity_epoch();
    change_cv_.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(0.0, timeout_s))),
        [&] { return capacity_epoch() != epoch; });
}

std::vector<SlotInfo>
FabricManager::slot_map() const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    std::vector<SlotInfo> out;
    out.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) {
        SlotInfo s;
        s.tenant = id;
        s.name = t.name;
        s.resident = t.resident;
        s.evict_requested = t.evict_requested;
        s.le_start = t.le_start;
        s.le_count = t.le_count;
        s.bram_bits = t.bram_bits;
        s.le_quota = t.le_quota;
        s.bram_quota = t.bram_quota;
        s.evictions = t.evictions;
        s.ticks_granted = t.ticks_granted;
        s.ticks_done = t.ticks_done;
        s.active_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() -
                         t.registered_at)
                         .count();
        out.push_back(std::move(s));
    }
    return out;
}

std::string
FabricManager::slot_map_table() const
{
    const std::vector<SlotInfo> slots = slot_map();
    char line[256];
    std::string out;
    std::snprintf(line, sizeof line,
                  "hypervisor slots (device %llu LEs, %llu BRAM bits)\n",
                  static_cast<unsigned long long>(device_.les()),
                  static_cast<unsigned long long>(device_.bram_bits()));
    out += line;
    if (slots.empty()) {
        out += "  (no tenants)\n";
        return out;
    }
    for (const SlotInfo& s : slots) {
        const char* state = s.resident
                                ? (s.evict_requested ? "evicting"
                                                     : "resident")
                                : "software";
        char slice[48] = "-";
        if (s.resident) {
            std::snprintf(slice, sizeof slice, "[%llu, %llu)",
                          static_cast<unsigned long long>(s.le_start),
                          static_cast<unsigned long long>(s.le_start +
                                                          s.le_count));
        }
        char quota[32] = "unlimited";
        if (s.le_quota != 0) {
            std::snprintf(quota, sizeof quota, "%llu LEs",
                          static_cast<unsigned long long>(s.le_quota));
        }
        std::snprintf(line, sizeof line,
                      "  t%-3llu %-12s %-9s LE %-18s quota %-12s "
                      "evictions %llu\n",
                      static_cast<unsigned long long>(s.tenant),
                      s.name.c_str(), state, slice, quota,
                      static_cast<unsigned long long>(s.evictions));
        out += line;
    }
    return out;
}

std::string
FabricManager::fleet_table() const
{
    const std::vector<SlotInfo> slots = slot_map();
    const std::map<uint64_t, uint64_t> waits =
        telemetry::SyncRegistry::global().tenant_waits();
    uint64_t total_wait = 0;
    for (const auto& [tenant, ns] : waits) {
        total_wait += ns;
    }
    char line[256];
    std::string out;
    std::snprintf(line, sizeof line, "fleet (%zu tenants, %zu resident)\n",
                  slots.size(),
                  static_cast<size_t>(std::count_if(
                      slots.begin(), slots.end(),
                      [](const SlotInfo& s) { return s.resident; })));
    out += line;
    if (slots.empty()) {
        out += "  (no tenants)\n";
        return out;
    }
    std::snprintf(line, sizeof line, "  %-4s %-12s %-9s %12s %12s %6s %6s\n",
                  "id", "name", "state", "ticks", "ticks/s", "wait%",
                  "evict");
    out += line;
    for (const SlotInfo& s : slots) {
        const char* state = s.resident
                                ? (s.evict_requested ? "evicting"
                                                     : "resident")
                                : "software";
        const double rate =
            s.active_s > 0 ? static_cast<double>(s.ticks_done) / s.active_s
                           : 0.0;
        const auto w = waits.find(s.tenant);
        const double wait_pct =
            total_wait > 0 && w != waits.end()
                ? 100.0 * static_cast<double>(w->second) /
                      static_cast<double>(total_wait)
                : 0.0;
        std::snprintf(line, sizeof line,
                      "  t%-3" PRIu64 " %-12s %-9s %12" PRIu64
                      " %12.1f %5.1f%% %6" PRIu64 "\n",
                      s.tenant, s.name.c_str(), state, s.ticks_done, rate,
                      wait_pct, s.evictions);
        out += line;
    }
    return out;
}

size_t
FabricManager::tenant_count() const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    return tenants_.size();
}

size_t
FabricManager::resident_count() const
{
    std::lock_guard<telemetry::Mutex> lock(mutex_);
    return resident_count_locked();
}

} // namespace cascade::hypervisor
