/// \file
/// The wire half of the observability subsystem: a dependency-free
/// embedded HTTP/1.1 server (POSIX sockets + poll, one background thread)
/// that exposes a Runtime's telemetry to operators and scrapers. Opt-in:
/// nothing listens unless Options::monitor_port / `--monitor` / the REPL's
/// `:monitor` turn it on.
///
/// Endpoints are registered as body providers keyed by request path
/// (`/metrics`, `/slo`, `/healthz`, `/timeseries`); providers run on the
/// server thread, so they must only read state that is safe to read off
/// the runtime thread (registry atomics, mutex-protected snapshots).
/// `GET /events` is special-cased: it replays the journal ring and then
/// streams every subsequent event as newline-delimited JSON — the same
/// `Journal::event_json` bytes the on-disk recorder writes — through a
/// bounded per-client queue (drop-oldest; a `{"dropped":N}` line marks
/// any gap). The stream attaches through Journal::add_tap, never the
/// single observer slot, so replay's divergence detector is untouched.
///
/// This is deliberately the repo's first wire protocol: ROADMAP item 5's
/// networked session service can reuse the listener/framing scaffolding.

#ifndef CASCADE_TELEMETRY_MONITOR_SERVER_H
#define CASCADE_TELEMETRY_MONITOR_SERVER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/journal.h"

namespace cascade::telemetry {

/// One embedded monitoring server. start()/stop() from the owning thread;
/// everything else is internally synchronized.
class MonitorServer {
  public:
    /// Streaming backpressure bound: queued-but-unsent /events lines per
    /// client beyond which the oldest are dropped (and counted).
    static constexpr size_t kMaxQueuedLines = 1024;

    MonitorServer() = default;
    ~MonitorServer();

    MonitorServer(const MonitorServer&) = delete;
    MonitorServer& operator=(const MonitorServer&) = delete;

    /// Registers the body provider for GET \p path (e.g. "/metrics").
    /// \p content_type goes out verbatim in the response header. Must be
    /// called before start(); providers run on the server thread.
    void handle(const std::string& path, const std::string& content_type,
                std::function<std::string()> provider);

    /// Connects `GET /events` to \p journal (ring replay + live tail).
    /// Must be called before start(); the tap is removed by stop().
    void attach_journal(Journal* journal);

    /// Binds 127.0.0.1:\p port (0 = ephemeral) and starts the server
    /// thread. Returns false with *err on bind/listen failure.
    bool start(uint16_t port, std::string* err = nullptr);

    /// Stops the server thread, closes every connection, and detaches
    /// the journal tap. Idempotent.
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }
    /// The bound port (resolves ephemeral requests); 0 when not running.
    uint16_t port() const { return port_.load(std::memory_order_acquire); }

    /// Total /events lines dropped to backpressure across all clients.
    uint64_t events_dropped() const
    {
        return events_dropped_.load(std::memory_order_relaxed);
    }

  private:
    struct Client {
        int fd = -1;
        std::string in;        ///< request bytes until the blank line
        std::string out;       ///< response bytes not yet written
        bool streaming = false;
        bool close_when_drained = false;
        uint64_t last_seq = 0; ///< /events dedup vs. the ring replay
        uint64_t dropped = 0;  ///< lines dropped since the last notice
        std::deque<std::string> queue; ///< /events lines awaiting send
    };

    void run();
    void accept_clients();
    void service_client(Client& client, bool readable, bool writable);
    void respond(Client& client, const std::string& path);
    void begin_event_stream(Client& client);
    void on_event(const Journal::Event& event);
    void flush_stream(Client& client);
    void wake();
    void close_all();

    struct Endpoint {
        std::string content_type;
        std::function<std::string()> provider;
    };

    std::map<std::string, Endpoint> endpoints_;
    Journal* journal_ = nullptr;
    int tap_id_ = -1;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<uint16_t> port_{0};
    std::atomic<uint64_t> events_dropped_{0};
    int listen_fd_ = -1;
    int wake_fds_[2] = {-1, -1};
    std::thread thread_;

    std::mutex mutex_; ///< guards clients_ (server thread + journal tap)
    std::vector<std::unique_ptr<Client>> clients_;
};

/// @{ Minimal HTTP client helpers (tests and the CI smoke scraper —
/// no curl dependency). Blocking, loopback-oriented.

/// Fetches http://127.0.0.1:port\p path. Returns false with *err on
/// connect/IO/parse failure; otherwise fills *status and *body.
bool http_get(uint16_t port, const std::string& path, int* status,
              std::string* body, std::string* err = nullptr);

/// Connects to a streaming endpoint and collects whole lines from the
/// response body until \p n_lines arrive or \p timeout_ms passes.
/// Returns false with *err on connect/HTTP failure or timeout.
bool http_stream_lines(uint16_t port, const std::string& path,
                       size_t n_lines, int timeout_ms,
                       std::vector<std::string>* lines,
                       std::string* err = nullptr);
/// @}

} // namespace cascade::telemetry

#endif // CASCADE_TELEMETRY_MONITOR_SERVER_H
