/// \file
/// IEEE-1364 VCD (value change dump) waveform writer, the artifact side of
/// signal-level observability. The runtime drives it engine-agnostically:
/// probe signals are declared once, then sampled at end-of-timestep with
/// whatever values the owning engine reports (interpreter nets or fabric
/// MMIO readbacks), so the same .vcd comes out of the software and hardware
/// engines — including across a mid-run engine adoption, which splices into
/// the open dump rather than restarting it.
///
/// The writer buffers change records in memory and flushes to disk in
/// large chunks (a "vcd.flush" phase span covers each flush). Output is
/// deterministic for a given sample sequence: the $date header is the only
/// non-reproducible line, so golden tests strip it.

#ifndef CASCADE_SIM_VCD_H
#define CASCADE_SIM_VCD_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/bitvector.h"

namespace cascade::sim {

/// Streams an IEEE-1364 §18.2 four-state VCD file. Usage: open(), declare()
/// every probe, then sample() once per timestep with an index-aligned value
/// list (null pointer = unknown, dumped as x). The header and the initial
/// $dumpvars section are emitted lazily on the first sample, at which point
/// the signal set freezes. Only signals whose rendered value changed since
/// the previous sample produce records; a sample with no changes produces
/// no output at all (not even a timestamp).
class VcdWriter {
  public:
    VcdWriter() = default;
    ~VcdWriter();

    VcdWriter(const VcdWriter&) = delete;
    VcdWriter& operator=(const VcdWriter&) = delete;

    /// Opens (truncates) \p path. Returns false on IO failure, with a
    /// message in *err.
    bool open(const std::string& path, std::string* err = nullptr);
    bool is_open() const { return out_.is_open(); }
    const std::string& path() const { return path_; }

    /// Declares a signal before the first sample; returns its index, or -1
    /// if the header has already been written (the signal set is frozen).
    /// Duplicate names return the existing index.
    int declare(const std::string& name, uint32_t width);
    size_t signal_count() const { return signals_.size(); }

    /// Records one end-of-timestep sample. \p values must be index-aligned
    /// with the declared signals; a null entry dumps as x. Ignored while
    /// dumping is suspended ($dumpoff) or before open().
    void sample(uint64_t time, const std::vector<const BitVector*>& values);

    /// $dumpoff: emits an x-valued checkpoint section and suspends
    /// sampling until dump_on.
    void dump_off(uint64_t time);
    /// $dumpon: resumes sampling with a full-value checkpoint section.
    void dump_on(uint64_t time, const std::vector<const BitVector*>& values);
    bool dumping() const { return dumping_; }

    /// Flushes the in-memory buffer to disk (a "vcd.flush" span).
    void flush();
    /// Flushes and closes the stream; further samples are ignored.
    void close();

    /// @{ Telemetry: samples recorded and bytes flushed to disk so far.
    uint64_t samples() const { return samples_; }
    uint64_t bytes_written() const { return bytes_written_; }
    /// @}

  private:
    struct Signal {
        std::string name;
        uint32_t width = 1;
        std::string id; ///< printable VCD identifier code
    };

    /// Base-94 printable identifier code for signal index \p index.
    static std::string id_code(size_t index);
    /// The change record for \p sig holding \p value (null = x),
    /// newline-terminated.
    static std::string record(const Signal& sig, const BitVector* value);

    void write_header(uint64_t time,
                      const std::vector<const BitVector*>& values);
    void append(const std::string& text);

    std::ofstream out_;
    std::string path_;
    std::string buf_;
    std::vector<Signal> signals_;
    /// Last emitted record per signal, for change suppression.
    std::vector<std::string> last_records_;
    bool header_written_ = false;
    bool dumping_ = true;
    uint64_t samples_ = 0;
    uint64_t bytes_written_ = 0;
};

} // namespace cascade::sim

#endif // CASCADE_SIM_VCD_H
