/// \file
/// The cascade command-line tool: a Verilog REPL (paper §3.1). With a file
/// argument it runs in batch mode; without one it reads eval's from stdin,
/// stepping the program between inputs so IO side effects appear live.
///
/// Flight recorder:
///   cascade_repl --record session.jsonl [program.v]   record the session
///   cascade_repl --replay session.jsonl               re-execute it and
///                                                     diff every output
///   cascade_repl --replay a.jsonl --record b.jsonl    re-record while
///                                                     replaying (the CI
///                                                     determinism check
///                                                     diffs two of these)
/// Replay exit codes: 0 match, 1 load/usage error, 2 divergence.
///
/// Monitoring:
///   cascade_repl --monitor <port> [program.v]   serve /metrics /healthz
///                                               /slo /timeseries
///                                               /requests /events
///                                               on 127.0.0.1:<port>
///                                               (0 = pick an ephemeral
///                                               port and print it)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "runtime/repl.h"
#include "runtime/replay.h"
#include "runtime/runtime.h"

using cascade::runtime::Repl;
using cascade::runtime::ReplayOptions;
using cascade::runtime::ReplayReport;
using cascade::runtime::Runtime;

int
main(int argc, char** argv)
{
    std::string record_path;
    std::string replay_path;
    std::string input_path;
    int monitor_port = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--record" && i + 1 < argc) {
            record_path = argv[++i];
        } else if (arg == "--replay" && i + 1 < argc) {
            replay_path = argv[++i];
        } else if (arg == "--monitor" && i + 1 < argc) {
            char* end = nullptr;
            const long port = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || port < 0 ||
                port > 65535) {
                std::cerr << "--monitor needs a port in [0, 65535]\n";
                return 1;
            }
            monitor_port = static_cast<int>(port);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: cascade_repl [--record <journal>] "
                         "[--replay <journal>] [--monitor <port>] "
                         "[program.v]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown flag " << arg << " (try --help)\n";
            return 1;
        } else {
            input_path = arg;
        }
    }

    if (!replay_path.empty()) {
        ReplayOptions ropts;
        ropts.record_path = record_path;
        ropts.echo = true;
        const ReplayReport report =
            cascade::runtime::replay_journal(replay_path, ropts);
        std::cerr << report.summary() << "\n";
        if (!report.error.empty()) {
            return 1;
        }
        return report.diverged ? 2 : 0;
    }

    Runtime::Options options;
    options.compile_effort = 0.3;
    Runtime rt(options);
    if (monitor_port >= 0) {
        std::string err;
        if (!rt.start_monitor(static_cast<uint16_t>(monitor_port),
                              &err)) {
            std::cerr << "cannot start monitor: " << err << "\n";
            return 1;
        }
        std::cerr << "monitoring on 127.0.0.1:" << rt.monitor_port()
                  << " (/metrics /healthz /slo /timeseries /requests "
                     "/events)\n";
    }
    if (!record_path.empty()) {
        std::string err;
        if (!rt.start_recording(record_path, &err)) {
            std::cerr << "cannot record: " << err << "\n";
            return 1;
        }
    }
    Repl repl(&rt, &std::cout);

    if (!input_path.empty()) {
        std::ifstream file(input_path);
        if (!file) {
            std::cerr << "cannot open " << input_path << "\n";
            return 1;
        }
        const bool ok = repl.run_batch(file, 1u << 22);
        if (rt.recording()) {
            rt.stop_recording();
        }
        return ok ? 0 : 1;
    }

    std::cout << "Cascade: a JIT compiler for Verilog (type Verilog, "
                 ":help for meta-commands, ctrl-d to exit)\n";
    std::string line;
    bool announced_finish = false;
    while (true) {
        std::cout << repl.prompt() << std::flush;
        if (!std::getline(std::cin, line)) {
            break;
        }
        repl.feed(line + "\n");
        // Let the program run between inputs; side effects surface now.
        rt.run(512);
        if (rt.finished() && !announced_finish) {
            // Stay alive so :stats / :trace can inspect the finished run.
            std::cout << "($finish executed; :stats and :trace remain "
                         "available, ctrl-d to exit)\n";
            announced_finish = true;
        }
    }
    if (rt.recording()) {
        rt.stop_recording();
    }
    return 0;
}
