/// \file
/// Integration tests for the Cascade runtime: REPL eval, scheduling, IO
/// peripherals, unsynthesizable Verilog, software-to-hardware transitions
/// with state preservation, open-loop scheduling, and native mode.

#include "runtime/runtime.h"

#include <chrono>

#include <gtest/gtest.h>

namespace cascade::runtime {
namespace {

Runtime::Options
sw_only()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    return opts;
}

Runtime::Options
hw_fast()
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;          // keep tests fast
    opts.open_loop_target_wall_s = 0.02; // small adaptive batches too
    return opts;
}

/// Steps until the JIT adopts a hardware engine (bounded by wall time).
bool
wait_for_hardware(Runtime& rt, double timeout_s = 30.0)
{
    const auto start = std::chrono::steady_clock::now();
    while (!rt.hardware_ready()) {
        rt.step();
        if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count() > timeout_s) {
            return false;
        }
    }
    return true;
}

const char* kRunningExample = R"(
    Pad#(4) pad();
    Led#(8) led();
    reg [7:0] cnt = 1;
    wire [7:0] next;
    assign next = (cnt == 8'h80) ? 1 : (cnt << 1);
    always @(posedge clk.val)
      if (pad.val == 0)
        cnt <= next;
    assign led.val = cnt;
)";

TEST(Runtime, RunningExampleInSoftware)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(kRunningExample, &errors)) << errors;
    EXPECT_EQ(rt.led_state().to_uint64(), 1u);
    rt.run_for_ticks(1);
    EXPECT_EQ(rt.led_state().to_uint64(), 2u);
    rt.run_for_ticks(2);
    EXPECT_EQ(rt.led_state().to_uint64(), 8u);
    // Wraps after reaching 0x80.
    rt.run_for_ticks(5);
    EXPECT_EQ(rt.led_state().to_uint64(), 1u);
}

TEST(Runtime, ButtonPausesAnimation)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(kRunningExample, &errors)) << errors;
    rt.run_for_ticks(1);
    EXPECT_EQ(rt.led_state().to_uint64(), 2u);
    rt.set_pad(1);
    rt.run_for_ticks(3);
    EXPECT_EQ(rt.led_state().to_uint64(), 2u); // paused
    rt.set_pad(0);
    rt.run_for_ticks(1);
    EXPECT_EQ(rt.led_state().to_uint64(), 4u);
}

TEST(Runtime, DisplayAndFinish)
{
    Runtime rt(sw_only());
    std::vector<std::string> output;
    rt.on_output = [&output](const std::string& s) {
        output.push_back(s);
    };
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        reg [7:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $display("cnt = %0d", cnt);
          if (cnt == 2)
            $finish;
        end
    )", &errors)) << errors;
    rt.run(10000);
    EXPECT_TRUE(rt.finished());
    ASSERT_GE(output.size(), 3u);
    EXPECT_EQ(output[0], "cnt = 0\n");
    EXPECT_EQ(output[2], "cnt = 2\n");
}

TEST(Runtime, BadEvalIsRejectedAndProgramSurvives)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval("Led#(8) led(); reg [7:0] cnt = 5; "
                        "assign led.val = cnt;", &errors)) << errors;
    // Syntax error.
    EXPECT_FALSE(rt.eval("assign q = ;", &errors));
    EXPECT_FALSE(errors.empty());
    // Semantic error (undeclared name).
    EXPECT_FALSE(rt.eval("assign led.val = nothere;", &errors));
    // The original program is untouched.
    EXPECT_EQ(rt.led_state().to_uint64(), 5u);
    // Duplicate module declaration.
    ASSERT_TRUE(rt.eval("module M(); endmodule", &errors)) << errors;
    EXPECT_FALSE(rt.eval("module M(); endmodule", &errors));
    EXPECT_NE(errors.find("append-only"), std::string::npos);
}

TEST(Runtime, ModifyRunningProgram)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval("Led#(8) led(); reg [7:0] cnt = 1;", &errors))
        << errors;
    ASSERT_TRUE(rt.eval("always @(posedge clk.val) cnt <= cnt + 1;",
                        &errors)) << errors;
    rt.run_for_ticks(3);
    // Connect the LED while the counter is running: state is preserved.
    ASSERT_TRUE(rt.eval("assign led.val = cnt;", &errors)) << errors;
    const uint64_t at_connect = rt.led_state().to_uint64();
    EXPECT_GE(at_connect, 4u);
    rt.run_for_ticks(2);
    EXPECT_EQ(rt.led_state().to_uint64(), at_connect + 2);
}

TEST(Runtime, InitialBlocksRunExactlyOnce)
{
    Runtime rt(sw_only());
    std::vector<std::string> output;
    rt.on_output = [&output](const std::string& s) {
        output.push_back(s);
    };
    std::string errors;
    ASSERT_TRUE(rt.eval("initial $display(\"hello\");", &errors)) << errors;
    rt.run(16);
    // A later eval rebuilds engines; the old initial must not re-fire.
    ASSERT_TRUE(rt.eval("reg [3:0] x = 0; initial $display(\"world\");",
                        &errors)) << errors;
    rt.run(16);
    ASSERT_EQ(output.size(), 2u);
    EXPECT_EQ(output[0], "hello\n");
    EXPECT_EQ(output[1], "world\n");
}

TEST(Runtime, HierarchicalUserModules)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        module Rol(input wire [7:0] x, output wire [7:0] y);
          assign y = (x == 8'h80) ? 1 : (x << 1);
        endmodule
        Led#(8) led();
        reg [7:0] cnt = 1;
        Rol r(.x(cnt));
        always @(posedge clk.val) cnt <= r.y;
        assign led.val = cnt;
    )", &errors)) << errors;
    rt.run_for_ticks(3);
    EXPECT_EQ(rt.led_state().to_uint64(), 8u);
}

TEST(Runtime, InliningOffStillWorks)
{
    Runtime::Options opts = sw_only();
    opts.enable_inlining = false;
    Runtime rt(opts);
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        module Inv(input wire [3:0] i, output wire [3:0] o);
          assign o = ~i;
        endmodule
        Led#(4) led();
        reg [3:0] cnt = 0;
        Inv inv(.i(cnt));
        always @(posedge clk.val) cnt <= cnt + 1;
        assign led.val = inv.o;
    )", &errors)) << errors;
    rt.run_for_ticks(2);
    EXPECT_EQ(rt.led_state().to_uint64(), 0xDu); // ~2
}

TEST(Runtime, FifoStreamsBytes)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Led#(8) led();
        FIFO#(4, 8) f(.clk(clk.val), .rreq(ren), .rdata(data),
                      .empty(isempty));
        wire [7:0] data;
        wire isempty;
        reg ren = 0;
        reg [7:0] sum = 0;
        always @(posedge clk.val)
          if (!isempty) begin
            ren <= 1;
            if (ren)
              sum <= sum + data;
          end else
            ren <= 0;
        assign led.val = sum;
    )", &errors)) << errors;
    rt.fifo_push({1, 2, 3, 4});
    rt.run_for_ticks(64);
    EXPECT_EQ(rt.fifo_bytes_consumed(), 4u);
    EXPECT_EQ(rt.led_state().to_uint64(), 10u);
}

TEST(Runtime, TransitionsToHardwarePreservingState)
{
    Runtime::Options opts = hw_fast();
    // Exact tick accounting for this test; open loop is covered below.
    opts.enable_open_loop = false;
    Runtime rt(opts);
    std::string errors;
    ASSERT_TRUE(rt.eval(kRunningExample, &errors)) << errors;
    // Run a few ticks, then hold the button so the animation freezes
    // while the background compile finishes.
    rt.run_for_ticks(2);
    EXPECT_EQ(rt.led_state().to_uint64(), 4u);
    rt.set_pad(1);
    rt.run_for_ticks(2);
    ASSERT_TRUE(wait_for_hardware(rt));
    EXPECT_NE(rt.user_location(), Location::Software);
    // State survived the handoff (get_state/set_state, paper §3.5): the
    // frozen LED pattern is exactly where software left it.
    rt.run_for_ticks(2);
    EXPECT_EQ(rt.led_state().to_uint64(), 4u);
    // Releasing the button resumes the rotation -- from hardware.
    rt.set_pad(0);
    rt.run_for_ticks(1);
    const uint64_t resumed = rt.led_state().to_uint64();
    EXPECT_NE(resumed, 4u);
    // Still a one-hot rotation state.
    EXPECT_EQ(resumed & (resumed - 1), 0u);
    // Buttons still pause from hardware.
    rt.set_pad(1);
    rt.run_for_ticks(2);
    const uint64_t paused = rt.led_state().to_uint64();
    rt.run_for_ticks(4);
    EXPECT_EQ(rt.led_state().to_uint64(), paused);
}

TEST(Runtime, DisplayStillWorksFromHardware)
{
    Runtime::Options opts = hw_fast();
    opts.enable_open_loop = false; // deterministic tick counting
    Runtime rt(opts);
    std::vector<std::string> output;
    rt.on_output = [&output](const std::string& s) {
        output.push_back(s);
    };
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Pad#(4) pad();
        reg [7:0] cnt = 0;
        always @(posedge clk.val)
          if (pad.val == 0)
            cnt <= cnt + 1;
          else
            $display("paused at %0d", cnt);
    )", &errors)) << errors;
    ASSERT_TRUE(wait_for_hardware(rt));
    output.clear();
    rt.set_pad(1);
    rt.run_for_ticks(2);
    ASSERT_FALSE(output.empty());
    EXPECT_NE(output[0].find("paused at"), std::string::npos);
}

TEST(Runtime, OpenLoopAcceleratesTicks)
{
    Runtime::Options opts = hw_fast();
    opts.open_loop_iterations = 4096;
    Runtime rt(opts);
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Led#(8) led();
        reg [7:0] cnt = 0;
        always @(posedge clk.val) cnt <= cnt + 1;
        assign led.val = cnt;
    )", &errors)) << errors;
    ASSERT_TRUE(wait_for_hardware(rt));
    EXPECT_EQ(rt.user_location(), Location::HardwareForwarded);
    const uint64_t t0 = rt.virtual_ticks();
    rt.run(64); // a few scheduler iterations
    const uint64_t dt = rt.virtual_ticks() - t0;
    // Open loop executes hundreds-to-thousands of ticks per scheduler
    // iteration (vs. one tick per ~3 iterations without it); the exact
    // count depends on the adaptive batch size.
    EXPECT_GT(dt, 2000u);
    // And the LED still reflects the (mod 256) count. The counter counts
    // rising edges = ceil(toggles/2); ticks = floor(toggles/2).
    const uint64_t led = rt.led_state().to_uint64();
    const uint64_t ticks_mod = rt.virtual_ticks() & 0xFF;
    EXPECT_TRUE(led == ticks_mod || led == ((ticks_mod + 1) & 0xFF))
        << "led=" << led << " ticks=" << ticks_mod;
}

TEST(Runtime, EvalWhileInHardwareFallsBackToSoftware)
{
    Runtime::Options fallback_opts = hw_fast();
    fallback_opts.enable_open_loop = false;
    Runtime rt(fallback_opts);
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Led#(8) led();
        reg [7:0] cnt = 0;
        always @(posedge clk.val) cnt <= cnt + 1;
        assign led.val = cnt;
    )", &errors)) << errors;
    ASSERT_TRUE(wait_for_hardware(rt));
    rt.run_for_ticks(5);
    const uint64_t count_in_hw = rt.led_state().to_uint64();
    // Modifying the program moves it back to software with state intact.
    ASSERT_TRUE(rt.eval("reg [7:0] other = 0;", &errors)) << errors;
    EXPECT_EQ(rt.user_location(), Location::Software);
    const uint64_t after = rt.led_state().to_uint64();
    EXPECT_GE(after + 2, count_in_hw); // tolerate in-flight ticks
    rt.run_for_ticks(2);
    EXPECT_EQ(rt.led_state().to_uint64(),
              (after + 2) & 0xFF);
}

TEST(Runtime, NativeModeRunsAtFullSpeed)
{
    Runtime::Options opts = hw_fast();
    opts.native_mode = true;
    Runtime rt(opts);
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Led#(8) led();
        reg [7:0] cnt = 0;
        always @(posedge clk.val) cnt <= cnt + 1;
        assign led.val = cnt;
    )", &errors)) << errors;
    ASSERT_TRUE(wait_for_hardware(rt));
    EXPECT_EQ(rt.user_location(), Location::Native);
    const uint64_t t0 = rt.virtual_ticks();
    const double s0 = rt.timeline_seconds();
    rt.run(32);
    const uint64_t dt = rt.virtual_ticks() - t0;
    const double ds = rt.timeline_seconds() - s0;
    EXPECT_GT(dt, 1000u);
    // Native throughput approaches the device clock (50 MHz / 2 toggles).
    const double hz = static_cast<double>(dt) / ds;
    EXPECT_GT(hz, 1e6);
}

TEST(Runtime, TimeSystemTaskTracksVirtualClock)
{
    Runtime rt(sw_only());
    std::vector<std::string> output;
    rt.on_output = [&output](const std::string& s) {
        output.push_back(s);
    };
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        reg [7:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          if (cnt == 4)
            $display("t=%0d", $time);
        end
    )", &errors)) << errors;
    rt.run_for_ticks(8);
    ASSERT_FALSE(output.empty());
    // $time read when cnt==4, i.e. around the fifth tick.
    EXPECT_EQ(output[0].substr(0, 2), "t=");
}

} // namespace
} // namespace cascade::runtime
