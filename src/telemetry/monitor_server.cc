#include "telemetry/monitor_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace cascade::telemetry {

namespace {

void
set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) {
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
}

std::string
response_head(int status, const std::string& reason,
              const std::string& content_type, size_t content_length,
              bool has_length)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + ' ' + reason +
                       "\r\nContent-Type: " + content_type +
                       "\r\nConnection: close\r\n";
    if (has_length) {
        head += "Content-Length: " + std::to_string(content_length) +
                "\r\n";
    }
    head += "\r\n";
    return head;
}

} // namespace

MonitorServer::~MonitorServer()
{
    stop();
}

void
MonitorServer::handle(const std::string& path,
                      const std::string& content_type,
                      std::function<std::string()> provider)
{
    endpoints_[path] = Endpoint{content_type, std::move(provider)};
}

void
MonitorServer::attach_journal(Journal* journal)
{
    journal_ = journal;
}

bool
MonitorServer::start(uint16_t port, std::string* err)
{
    if (running()) {
        if (err != nullptr) {
            *err = "monitor already running on port " +
                   std::to_string(this->port());
        }
        return false;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err != nullptr) {
            *err = std::string("socket: ") + std::strerror(errno);
        }
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, 16) < 0) {
        if (err != nullptr) {
            *err = "bind 127.0.0.1:" + std::to_string(port) + ": " +
                   std::strerror(errno);
        }
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    if (::pipe(wake_fds_) < 0) {
        if (err != nullptr) {
            *err = std::string("pipe: ") + std::strerror(errno);
        }
        ::close(fd);
        return false;
    }
    set_nonblocking(fd);
    set_nonblocking(wake_fds_[0]);
    set_nonblocking(wake_fds_[1]);
    listen_fd_ = fd;
    port_.store(ntohs(addr.sin_port), std::memory_order_release);
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    if (journal_ != nullptr) {
        tap_id_ = journal_->add_tap(
            [this](const Journal::Event& event) { on_event(event); });
    }
    thread_ = std::thread([this] { run(); });
    return true;
}

void
MonitorServer::stop()
{
    if (!running()) {
        return;
    }
    // Detach the tap first: once stop begins no new events may touch
    // client state.
    if (journal_ != nullptr && tap_id_ >= 0) {
        journal_->remove_tap(tap_id_);
        tap_id_ = -1;
    }
    stopping_.store(true, std::memory_order_release);
    wake();
    if (thread_.joinable()) {
        thread_.join();
    }
    close_all();
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    port_.store(0, std::memory_order_release);
    running_.store(false, std::memory_order_release);
}

void
MonitorServer::wake()
{
    if (wake_fds_[1] >= 0) {
        const char b = 'w';
        [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
    }
}

void
MonitorServer::close_all()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& client : clients_) {
        ::close(client->fd);
    }
    clients_.clear();
}

void
MonitorServer::run()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        std::vector<pollfd> fds;
        std::vector<Client*> polled;
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
        fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto& client : clients_) {
                short events = 0;
                if (!client->streaming && !client->close_when_drained) {
                    events |= POLLIN;
                }
                if (!client->out.empty() || !client->queue.empty() ||
                    client->dropped != 0) {
                    events |= POLLOUT;
                }
                if (client->streaming) {
                    // Detect a scraper hanging up mid-stream.
                    events |= POLLIN;
                }
                fds.push_back(pollfd{client->fd, events, 0});
                polled.push_back(client.get());
            }
        }
        const int n = ::poll(fds.data(), fds.size(), 500);
        if (n < 0 && errno != EINTR) {
            break;
        }
        if (stopping_.load(std::memory_order_acquire)) {
            break;
        }
        if ((fds[1].revents & POLLIN) != 0) {
            char buf[64];
            while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
            }
        }
        if ((fds[0].revents & POLLIN) != 0) {
            accept_clients();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < polled.size(); ++i) {
            const short re = fds[2 + i].revents;
            Client* client = polled[i];
            // The client set only shrinks on this thread, so the pointer
            // is valid iff it is still registered.
            bool live = false;
            for (const auto& c : clients_) {
                if (c.get() == client) {
                    live = true;
                    break;
                }
            }
            if (!live) {
                continue;
            }
            service_client(*client, (re & (POLLIN | POLLHUP | POLLERR)) != 0,
                           (re & POLLOUT) != 0);
        }
        // Drop closed clients.
        std::vector<std::unique_ptr<Client>> keep;
        for (auto& client : clients_) {
            if (client->fd >= 0) {
                keep.push_back(std::move(client));
            }
        }
        clients_ = std::move(keep);
    }
}

void
MonitorServer::accept_clients()
{
    while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            return;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto client = std::make_unique<Client>();
        client->fd = fd;
        std::lock_guard<std::mutex> lock(mutex_);
        clients_.push_back(std::move(client));
    }
}

void
MonitorServer::service_client(Client& client, bool readable, bool writable)
{
    if (readable && !client.streaming && !client.close_when_drained) {
        char buf[4096];
        while (true) {
            const ssize_t n = ::read(client.fd, buf, sizeof buf);
            if (n > 0) {
                client.in.append(buf, static_cast<size_t>(n));
                if (client.in.size() > 16 * 1024) {
                    ::close(client.fd);
                    client.fd = -1;
                    return;
                }
                continue;
            }
            if (n == 0) {
                ::close(client.fd);
                client.fd = -1;
                return;
            }
            break; // EAGAIN
        }
        const size_t end = client.in.find("\r\n\r\n");
        if (end != std::string::npos) {
            const size_t eol = client.in.find("\r\n");
            const std::string request = client.in.substr(0, eol);
            std::string path;
            if (request.rfind("GET ", 0) == 0) {
                const size_t sp = request.find(' ', 4);
                path = request.substr(4, sp == std::string::npos
                                             ? std::string::npos
                                             : sp - 4);
                const size_t q = path.find('?');
                if (q != std::string::npos) {
                    path.resize(q);
                }
            }
            respond(client, path);
        }
    } else if (readable && client.streaming) {
        // Any read activity on a streaming socket means EOF or error —
        // the scraper hung up.
        char buf[256];
        const ssize_t n = ::read(client.fd, buf, sizeof buf);
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
            ::close(client.fd);
            client.fd = -1;
            return;
        }
    }
    if (client.fd < 0) {
        return;
    }
    if (writable || !client.out.empty() || client.streaming) {
        if (client.streaming) {
            flush_stream(client);
        }
        while (!client.out.empty()) {
            const ssize_t n =
                ::write(client.fd, client.out.data(), client.out.size());
            if (n > 0) {
                client.out.erase(0, static_cast<size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                return;
            }
            ::close(client.fd);
            client.fd = -1;
            return;
        }
        if (client.close_when_drained && client.out.empty()) {
            ::close(client.fd);
            client.fd = -1;
        }
    }
}

void
MonitorServer::respond(Client& client, const std::string& path)
{
    if (path == "/events") {
        begin_event_stream(client);
        return;
    }
    const auto it = endpoints_.find(path);
    if (it == endpoints_.end()) {
        const std::string body = "not found\n";
        client.out = response_head(404, "Not Found", "text/plain",
                                   body.size(), true) +
                     body;
    } else {
        const std::string body = it->second.provider
                                     ? it->second.provider()
                                     : std::string();
        client.out = response_head(200, "OK", it->second.content_type,
                                   body.size(), true) +
                     body;
    }
    client.close_when_drained = true;
}

void
MonitorServer::begin_event_stream(Client& client)
{
    client.out = response_head(200, "OK", "application/x-ndjson", 0, false);
    client.streaming = true;
    if (journal_ != nullptr) {
        // Replay the ring first. The tap dedups against last_seq, so an
        // event that lands between this snapshot and the tap firing is
        // sent exactly once. (We hold mutex_ here; the tap blocks on it.)
        for (const Journal::Event& event : journal_->ring()) {
            client.queue.push_back(Journal::event_json(event));
            client.last_seq = event.seq;
        }
    }
}

void
MonitorServer::on_event(const Journal::Event& event)
{
    bool any = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& client : clients_) {
            if (!client->streaming || client->fd < 0 ||
                event.seq <= client->last_seq) {
                continue;
            }
            if (client->queue.size() >= kMaxQueuedLines) {
                client->queue.pop_front();
                ++client->dropped;
                events_dropped_.fetch_add(1, std::memory_order_relaxed);
            }
            client->queue.push_back(Journal::event_json(event));
            client->last_seq = event.seq;
            any = true;
        }
    }
    if (any) {
        wake();
    }
}

void
MonitorServer::flush_stream(Client& client)
{
    // Move queued lines into the write buffer, prefixing a gap notice
    // where backpressure dropped lines (the drop point is the queue
    // front, since on_event drops oldest-first).
    while (!client.queue.empty() && client.out.size() < 64 * 1024) {
        if (client.dropped != 0) {
            client.out +=
                "{\"dropped\":" + std::to_string(client.dropped) + "}\n";
            client.dropped = 0;
        }
        client.out += client.queue.front();
        client.out += '\n';
        client.queue.pop_front();
    }
}

bool
http_get(uint16_t port, const std::string& path, int* status,
         std::string* body, std::string* err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err != nullptr) {
            *err = std::string("socket: ") + std::strerror(errno);
        }
        return false;
    }
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
        if (err != nullptr) {
            *err = "connect 127.0.0.1:" + std::to_string(port) + ": " +
                   std::strerror(errno);
        }
        ::close(fd);
        return false;
    }
    const std::string request = "GET " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::write(fd, request.data() + sent,
                                  request.size() - sent);
        if (n <= 0) {
            if (err != nullptr) {
                *err = std::string("write: ") + std::strerror(errno);
            }
            ::close(fd);
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    std::string response;
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n > 0) {
            response.append(buf, static_cast<size_t>(n));
            continue;
        }
        if (n == 0) {
            break;
        }
        if (errno == EINTR) {
            continue;
        }
        if (err != nullptr) {
            *err = std::string("read: ") + std::strerror(errno);
        }
        ::close(fd);
        return false;
    }
    ::close(fd);
    const size_t head_end = response.find("\r\n\r\n");
    if (head_end == std::string::npos ||
        response.rfind("HTTP/1.1 ", 0) != 0) {
        if (err != nullptr) {
            *err = "malformed HTTP response";
        }
        return false;
    }
    if (status != nullptr) {
        *status = std::atoi(response.c_str() + 9);
    }
    if (body != nullptr) {
        *body = response.substr(head_end + 4);
    }
    return true;
}

bool
http_stream_lines(uint16_t port, const std::string& path, size_t n_lines,
                  int timeout_ms, std::vector<std::string>* lines,
                  std::string* err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err != nullptr) {
            *err = std::string("socket: ") + std::strerror(errno);
        }
        return false;
    }
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
        if (err != nullptr) {
            *err = "connect 127.0.0.1:" + std::to_string(port) + ": " +
                   std::strerror(errno);
        }
        ::close(fd);
        return false;
    }
    const std::string request = "GET " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
    if (::write(fd, request.data(), request.size()) !=
        static_cast<ssize_t>(request.size())) {
        if (err != nullptr) {
            *err = std::string("write: ") + std::strerror(errno);
        }
        ::close(fd);
        return false;
    }
    set_nonblocking(fd);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::string pending;
    bool in_body = false;
    while (lines->size() < n_lines) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            ::close(fd);
            if (err != nullptr) {
                *err = "timeout after " + std::to_string(lines->size()) +
                       " lines";
            }
            return false;
        }
        pollfd pfd = {fd, POLLIN, 0};
        const int remaining = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count());
        const int pr = ::poll(&pfd, 1, std::max(1, remaining));
        if (pr <= 0) {
            continue;
        }
        char buf[4096];
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n == 0) {
            ::close(fd);
            if (err != nullptr) {
                *err = "stream closed after " +
                       std::to_string(lines->size()) + " lines";
            }
            return false;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR) {
                continue;
            }
            ::close(fd);
            if (err != nullptr) {
                *err = std::string("read: ") + std::strerror(errno);
            }
            return false;
        }
        pending.append(buf, static_cast<size_t>(n));
        if (!in_body) {
            const size_t head_end = pending.find("\r\n\r\n");
            if (head_end == std::string::npos) {
                continue;
            }
            if (pending.rfind("HTTP/1.1 200", 0) != 0) {
                ::close(fd);
                if (err != nullptr) {
                    *err = "HTTP error: " +
                           pending.substr(0, pending.find("\r\n"));
                }
                return false;
            }
            pending.erase(0, head_end + 4);
            in_body = true;
        }
        size_t eol;
        while (lines->size() < n_lines &&
               (eol = pending.find('\n')) != std::string::npos) {
            lines->push_back(pending.substr(0, eol));
            pending.erase(0, eol + 1);
        }
    }
    ::close(fd);
    return true;
}

} // namespace cascade::telemetry
