/// \file
/// Tests for the telemetry export layer: Prometheus name sanitization and
/// label escaping, PromWriter family/sample rendering, the strict text
/// exposition validator (accept and reject cases), TimeSeries downsampling
/// arithmetic (pairwise averaging, stride doubling, bounded memory), and
/// SloTracker rolling windows (p99 upper bounds, per-tenant median lower
/// bounds, breach transitions and counters, window expiry, reset).

#include "telemetry/export.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cascade::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Name sanitization and label escaping
// ---------------------------------------------------------------------------

TEST(PromNames, SanitizePrefixesAndReplaces)
{
    EXPECT_EQ(prom_sanitize_name("compile.cache.hits"),
              "cascade_compile_cache_hits");
    EXPECT_EQ(prom_sanitize_name("scheduler.step_ns"),
              "cascade_scheduler_step_ns");
    EXPECT_EQ(prom_sanitize_name("9lives"), "cascade_9lives");
    EXPECT_EQ(prom_sanitize_name("a-b c"), "cascade_a_b_c");
}

TEST(PromNames, EscapeLabelValues)
{
    EXPECT_EQ(prom_escape_label("plain"), "plain");
    EXPECT_EQ(prom_escape_label("a\"b"), "a\\\"b");
    EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
    EXPECT_EQ(prom_escape_label("a\nb"), "a\\nb");
}

// ---------------------------------------------------------------------------
// PromWriter rendering
// ---------------------------------------------------------------------------

TEST(PromWriter, RendersFamiliesInDeclarationOrder)
{
    PromWriter w;
    w.family("cascade_b", "gauge", "Second family.");
    w.family("cascade_a", "counter", "First family.");
    w.sample("cascade_a", {}, uint64_t{7});
    w.sample("cascade_b", {{"tenant", "alpha"}}, 1.5);
    const std::string text = w.render();

    const size_t b_at = text.find("# TYPE cascade_b gauge");
    const size_t a_at = text.find("# TYPE cascade_a counter");
    ASSERT_NE(b_at, std::string::npos);
    ASSERT_NE(a_at, std::string::npos);
    EXPECT_LT(b_at, a_at); // declaration order, not sample order
    EXPECT_NE(text.find("cascade_a 7\n"), std::string::npos);
    EXPECT_NE(text.find("cascade_b{tenant=\"alpha\"} 1.5\n"),
              std::string::npos);
    EXPECT_EQ(text.back(), '\n');

    std::string err;
    EXPECT_TRUE(validate_prometheus_text(text, &err)) << err;
}

TEST(PromWriter, SummarySuffixesAndEscapedLabels)
{
    PromWriter w;
    w.family("cascade_lat", "summary", "Latency summary.");
    w.sample("cascade_lat", {{"quantile", "0.99"}}, 0.25);
    w.sample("cascade_lat", {}, uint64_t{42}, "_sum");
    w.sample("cascade_lat", {}, uint64_t{10}, "_count");
    w.family("cascade_info", "gauge", "Labels with quotes.");
    w.sample("cascade_info", {{"site", "a\"b\\c"}}, uint64_t{1});
    const std::string text = w.render();

    EXPECT_NE(text.find("cascade_lat{quantile=\"0.99\"} 0.25\n"),
              std::string::npos);
    EXPECT_NE(text.find("cascade_lat_sum 42\n"), std::string::npos);
    EXPECT_NE(text.find("cascade_lat_count 10\n"), std::string::npos);
    EXPECT_NE(text.find("cascade_info{site=\"a\\\"b\\\\c\"} 1\n"),
              std::string::npos);

    std::string err;
    EXPECT_TRUE(validate_prometheus_text(text, &err)) << err;
}

TEST(PromWriter, NonFiniteValuesRenderAsPrometheusKeywords)
{
    PromWriter w;
    w.family("cascade_odd", "gauge", "Non-finite values.");
    w.sample("cascade_odd", {{"k", "nan"}}, std::nan(""));
    w.sample("cascade_odd", {{"k", "inf"}}, HUGE_VAL);
    w.sample("cascade_odd", {{"k", "ninf"}}, -HUGE_VAL);
    const std::string text = w.render();
    EXPECT_NE(text.find("} NaN\n"), std::string::npos);
    EXPECT_NE(text.find("} +Inf\n"), std::string::npos);
    EXPECT_NE(text.find("} -Inf\n"), std::string::npos);
    std::string err;
    EXPECT_TRUE(validate_prometheus_text(text, &err)) << err;
}

// ---------------------------------------------------------------------------
// Validator: reject cases
// ---------------------------------------------------------------------------

TEST(PromValidator, AcceptsCommentsBlanksAndTimestamps)
{
    const std::string ok =
        "# HELP cascade_x A metric.\n"
        "# TYPE cascade_x counter\n"
        "\n"
        "cascade_x{a=\"1\",b=\"two\"} 3 1700000000000\n"
        "cascade_x 4.5e-3\n";
    std::string err;
    EXPECT_TRUE(validate_prometheus_text(ok, &err)) << err;
}

TEST(PromValidator, RejectsMalformedInput)
{
    std::string err;
    // Missing trailing newline.
    EXPECT_FALSE(validate_prometheus_text("cascade_x 1", &err));
    // Bad metric name.
    EXPECT_FALSE(validate_prometheus_text("9bad 1\n", &err));
    // Bad label name.
    EXPECT_FALSE(
        validate_prometheus_text("cascade_x{9y=\"v\"} 1\n", &err));
    // Unterminated label value.
    EXPECT_FALSE(
        validate_prometheus_text("cascade_x{y=\"v} 1\n", &err));
    // Illegal escape in a label value.
    EXPECT_FALSE(
        validate_prometheus_text("cascade_x{y=\"a\\tb\"} 1\n", &err));
    // Value is not a float.
    EXPECT_FALSE(validate_prometheus_text("cascade_x pizza\n", &err));
    // No value at all.
    EXPECT_FALSE(validate_prometheus_text("cascade_x\n", &err));
    // Duplicate TYPE for one family.
    EXPECT_FALSE(validate_prometheus_text("# TYPE cascade_x gauge\n"
                                          "# TYPE cascade_x gauge\n"
                                          "cascade_x 1\n",
                                          &err));
    // TYPE after a sample of the family.
    EXPECT_FALSE(validate_prometheus_text("cascade_x 1\n"
                                          "# TYPE cascade_x gauge\n",
                                          &err));
    // Unknown type keyword.
    EXPECT_FALSE(validate_prometheus_text("# TYPE cascade_x banana\n"
                                          "cascade_x 1\n",
                                          &err));
}

TEST(PromValidator, SummarySuffixLinesAttributeToBaseFamily)
{
    const std::string ok = "# TYPE cascade_lat summary\n"
                           "cascade_lat{quantile=\"0.5\"} 1\n"
                           "cascade_lat_sum 2\n"
                           "cascade_lat_count 3\n";
    std::string err;
    EXPECT_TRUE(validate_prometheus_text(ok, &err)) << err;
}

// ---------------------------------------------------------------------------
// TimeSeries downsampling
// ---------------------------------------------------------------------------

TEST(TimeSeries, RecordsAndListsSeries)
{
    TimeSeries ts(8);
    ts.sample("a", 0.0, 1.0);
    ts.sample("b", 0.5, 2.0);
    ts.sample("a", 1.0, 3.0);
    EXPECT_EQ(ts.names(), (std::vector<std::string>{"a", "b"}));
    const auto a = ts.series("a");
    ASSERT_EQ(a.size(), 2u);
    EXPECT_DOUBLE_EQ(a[0].t, 0.0);
    EXPECT_DOUBLE_EQ(a[0].v, 1.0);
    EXPECT_DOUBLE_EQ(a[1].v, 3.0);
    EXPECT_EQ(ts.stride("a"), 1u);
    EXPECT_TRUE(ts.series("nope").empty());
}

TEST(TimeSeries, CompactsByPairwiseAveragingAndDoublesStride)
{
    TimeSeries ts(4);
    // The 4th sample fills a capacity-4 series and compacts
    // [0,10],[1,20],[2,30],[3,40] into [0.5,15],[2.5,35] (stride 2);
    // the 5th then shows through as a provisional trailing point.
    for (int i = 0; i < 5; ++i) {
        ts.sample("s", i, (i + 1) * 10.0);
    }
    const auto pts = ts.series("s");
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_DOUBLE_EQ(pts[0].t, 0.5);
    EXPECT_DOUBLE_EQ(pts[0].v, 15.0);
    EXPECT_DOUBLE_EQ(pts[1].t, 2.5);
    EXPECT_DOUBLE_EQ(pts[1].v, 35.0);
    EXPECT_DOUBLE_EQ(pts[2].t, 4.0);
    EXPECT_DOUBLE_EQ(pts[2].v, 50.0);
    EXPECT_EQ(ts.stride("s"), 2u);
}

TEST(TimeSeries, MemoryStaysBoundedOverManySamples)
{
    TimeSeries ts(16);
    for (int i = 0; i < 10000; ++i) {
        ts.sample("s", i * 0.1, i);
    }
    EXPECT_LE(ts.series("s").size(), 16u);
    EXPECT_GE(ts.stride("s"), 512u); // 10000 raw samples / 16 slots
    // Oldest-first ordering survives repeated compaction.
    const auto pts = ts.series("s");
    for (size_t i = 1; i < pts.size(); ++i) {
        EXPECT_LT(pts[i - 1].t, pts[i].t);
    }
}

TEST(TimeSeries, JsonShapeAndReset)
{
    TimeSeries ts(8);
    ts.sample("x", 0.25, 4.0);
    const std::string json = ts.json();
    EXPECT_NE(json.find("\"schema\":\"cascade.timeseries.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"x\""), std::string::npos);
    EXPECT_NE(json.find("\"stride\":1"), std::string::npos);
    ts.reset();
    EXPECT_TRUE(ts.names().empty());
    EXPECT_NE(ts.json().find("\"series\":{}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

TEST(SloTracker, NoThresholdsMeansNoObjectives)
{
    SloTracker slo(SloTracker::Config{});
    slo.record_cold_compile(1.0, 99.0);
    const auto status = slo.evaluate(1.0);
    EXPECT_FALSE(status.breached);
    EXPECT_TRUE(status.objectives.empty());
    EXPECT_NE(slo.table(1.0).find("no SLO thresholds"),
              std::string::npos);
}

TEST(SloTracker, ColdCompileP99UpperBoundBreaches)
{
    SloTracker::Config cfg;
    cfg.window_s = 60;
    cfg.max_cold_compile_p99_s = 1.0;
    SloTracker slo(cfg);

    slo.record_cold_compile(1.0, 0.2);
    auto status = slo.evaluate(1.0);
    ASSERT_EQ(status.objectives.size(), 1u);
    EXPECT_FALSE(status.breached);
    EXPECT_EQ(status.objectives[0].name, "cold_compile_p99_s");

    slo.record_cold_compile(2.0, 5.0); // p99 of {0.2, 5.0} is 5.0
    int breach_calls = 0;
    slo.tick(2.0, [&](const SloTracker::Objective& o) {
        ++breach_calls;
        EXPECT_EQ(o.name, "cold_compile_p99_s");
        EXPECT_GT(o.observed, o.threshold);
        EXPECT_TRUE(o.breached);
    });
    EXPECT_EQ(breach_calls, 1);
    EXPECT_TRUE(slo.evaluate(2.0).breached);
    EXPECT_EQ(slo.total_breaches(), 1u);

    // Still breached: no second OK->breach transition.
    slo.tick(2.5, [&](const SloTracker::Objective&) { ++breach_calls; });
    EXPECT_EQ(breach_calls, 1);
}

TEST(SloTracker, WindowExpiryClearsBreach)
{
    SloTracker::Config cfg;
    cfg.window_s = 10;
    cfg.max_warm_compile_p99_s = 0.5;
    SloTracker slo(cfg);
    slo.record_warm_compile(0.0, 2.0);
    slo.tick(0.0, [](const SloTracker::Objective&) {});
    EXPECT_TRUE(slo.evaluate(0.0).breached);
    // 20s later the bad sample has rolled out of the window.
    slo.tick(20.0, [](const SloTracker::Objective&) {});
    EXPECT_FALSE(slo.evaluate(20.0).breached);
    EXPECT_EQ(slo.total_breaches(), 1u); // counter survives recovery
}

TEST(SloTracker, MinTicksPerTenantUsesMedianLowerBound)
{
    SloTracker::Config cfg;
    cfg.window_s = 60;
    cfg.min_ticks_per_s = 100.0;
    SloTracker slo(cfg);

    // One slow outlier among fast samples: the median keeps it OK.
    slo.record_ticks_per_s(1.0, "alpha", 500.0);
    slo.record_ticks_per_s(2.0, "alpha", 10.0);
    slo.record_ticks_per_s(3.0, "alpha", 600.0);
    slo.record_ticks_per_s(3.0, "beta", 5.0);
    slo.tick(3.0, [](const SloTracker::Objective&) {});

    const auto status = slo.evaluate(3.0);
    ASSERT_EQ(status.objectives.size(), 2u);
    bool saw_alpha = false;
    bool saw_beta = false;
    for (const auto& o : status.objectives) {
        EXPECT_EQ(o.name, "min_ticks_per_s");
        EXPECT_FALSE(o.upper_bound);
        if (o.tenant == "alpha") {
            saw_alpha = true;
            EXPECT_FALSE(o.breached);
        } else if (o.tenant == "beta") {
            saw_beta = true;
            EXPECT_TRUE(o.breached);
        }
    }
    EXPECT_TRUE(saw_alpha);
    EXPECT_TRUE(saw_beta);
    EXPECT_TRUE(status.breached);
}

TEST(SloTracker, JsonShapeAndReset)
{
    SloTracker::Config cfg;
    cfg.max_interrupt_p99_s = 0.001;
    SloTracker slo(cfg);
    slo.record_interrupt(1.0, 0.5);
    slo.tick(1.0, [](const SloTracker::Objective&) {});
    const std::string json = slo.json(1.0);
    EXPECT_NE(json.find("\"schema\":\"cascade.slo.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"breached\":true"), std::string::npos);
    EXPECT_NE(json.find("interrupt_p99_s"), std::string::npos);

    slo.reset();
    EXPECT_FALSE(slo.evaluate(1.0).breached);
    EXPECT_EQ(slo.total_breaches(), 0u);
}

TEST(SloTracker, FeedsStayBoundedUnderFlood)
{
    SloTracker::Config cfg;
    cfg.max_cold_compile_p99_s = 10.0;
    SloTracker slo(cfg);
    for (int i = 0; i < 100000; ++i) {
        slo.record_cold_compile(i * 1e-3, 0.1);
    }
    // kMaxWindowPoints caps the window; evaluate stays cheap and sane.
    const auto status = slo.evaluate(100.0);
    ASSERT_EQ(status.objectives.size(), 1u);
    EXPECT_LE(status.objectives[0].samples, 4096u);
    EXPECT_FALSE(status.breached);
}

} // namespace
} // namespace cascade::telemetry
