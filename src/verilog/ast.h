/// \file
/// Abstract syntax tree for the Cascade Verilog subset.
///
/// The AST covers the synthesizable core (modules, nets, continuous assigns,
/// always/initial blocks, instantiations, functions) plus the unsynthesizable
/// system tasks ($display and friends) that Cascade keeps alive in hardware.
/// All nodes are deep-clonable: Cascade's IR transforms (port promotion,
/// inlining, the Fig. 10 hardware wrapper) are source-to-source rewrites.

#ifndef CASCADE_VERILOG_AST_H
#define CASCADE_VERILOG_AST_H

#include <memory>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/source_loc.h"

namespace cascade::verilog {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
    Number,
    String,
    Identifier,
    Unary,
    Binary,
    Ternary,
    Concat,
    Replicate,
    Index,        ///< a[i] — bit select or memory element select
    RangeSelect,  ///< a[msb:lsb] with constant bounds
    IndexedSelect,///< a[base +: w] / a[base -: w]
    Call,         ///< f(args) — user function call
    SystemCall,   ///< $time, $signed(x), $unsigned(x)
};

enum class UnaryOp {
    Plus, Minus, LogicalNot, BitwiseNot,
    ReduceAnd, ReduceOr, ReduceXor,
    ReduceNand, ReduceNor, ReduceXnor,
};

enum class BinaryOp {
    Add, Sub, Mul, Div, Mod, Pow,
    Eq, Neq, CaseEq, CaseNeq,
    LogicalAnd, LogicalOr,
    Lt, Leq, Gt, Geq,
    Shl, Shr, AShr,   // <<< is identical to << for two-state values
    BitAnd, BitOr, BitXor, BitXnor,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    explicit Expr(ExprKind kind, SourceLoc loc = {}) : kind(kind), loc(loc) {}
    virtual ~Expr() = default;

    /// Deep copy.
    virtual ExprPtr clone() const = 0;

    ExprKind kind;
    SourceLoc loc;
};

/// A numeric literal (42, 8'h80, 4'sb1010).
struct NumberExpr final : Expr {
    NumberExpr(BitVector value, bool sized, bool is_signed,
               SourceLoc loc = {})
        : Expr(ExprKind::Number, loc), value(std::move(value)), sized(sized),
          is_signed(is_signed)
    {}

    ExprPtr clone() const override;

    BitVector value;
    bool sized;
    bool is_signed;
};

/// A string literal, only valid as a $display/$write format argument.
struct StringExpr final : Expr {
    explicit StringExpr(std::string text, SourceLoc loc = {})
        : Expr(ExprKind::String, loc), text(std::move(text))
    {}

    ExprPtr clone() const override;

    std::string text;
};

/// A (possibly hierarchical) name: cnt, r.y, pad.val.
struct IdentifierExpr final : Expr {
    explicit IdentifierExpr(std::vector<std::string> path, SourceLoc loc = {})
        : Expr(ExprKind::Identifier, loc), path(std::move(path))
    {}

    ExprPtr clone() const override;

    /// True for a non-hierarchical (single-component) name.
    bool simple() const { return path.size() == 1; }

    /// Renders the name with '.' separators.
    std::string full_name() const;

    std::vector<std::string> path;
};

struct UnaryExpr final : Expr {
    UnaryExpr(UnaryOp op, ExprPtr operand, SourceLoc loc = {})
        : Expr(ExprKind::Unary, loc), op(op), operand(std::move(operand))
    {}

    ExprPtr clone() const override;

    UnaryOp op;
    ExprPtr operand;
};

struct BinaryExpr final : Expr {
    BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc = {})
        : Expr(ExprKind::Binary, loc), op(op), lhs(std::move(lhs)),
          rhs(std::move(rhs))
    {}

    ExprPtr clone() const override;

    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct TernaryExpr final : Expr {
    TernaryExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr,
                SourceLoc loc = {})
        : Expr(ExprKind::Ternary, loc), cond(std::move(cond)),
          then_expr(std::move(then_expr)), else_expr(std::move(else_expr))
    {}

    ExprPtr clone() const override;

    ExprPtr cond;
    ExprPtr then_expr;
    ExprPtr else_expr;
};

/// {a, b, c} — element 0 holds the most significant bits.
struct ConcatExpr final : Expr {
    explicit ConcatExpr(std::vector<ExprPtr> elements, SourceLoc loc = {})
        : Expr(ExprKind::Concat, loc), elements(std::move(elements))
    {}

    ExprPtr clone() const override;

    std::vector<ExprPtr> elements;
};

/// {n{body}} with constant n.
struct ReplicateExpr final : Expr {
    ReplicateExpr(ExprPtr count, ExprPtr body, SourceLoc loc = {})
        : Expr(ExprKind::Replicate, loc), count(std::move(count)),
          body(std::move(body))
    {}

    ExprPtr clone() const override;

    ExprPtr count;
    ExprPtr body;
};

/// base[index] — a dynamic bit select, or an element select when base names
/// a memory.
struct IndexExpr final : Expr {
    IndexExpr(ExprPtr base, ExprPtr index, SourceLoc loc = {})
        : Expr(ExprKind::Index, loc), base(std::move(base)),
          index(std::move(index))
    {}

    ExprPtr clone() const override;

    ExprPtr base;
    ExprPtr index;
};

/// base[msb:lsb] with constant bounds.
struct RangeSelectExpr final : Expr {
    RangeSelectExpr(ExprPtr base, ExprPtr msb, ExprPtr lsb,
                    SourceLoc loc = {})
        : Expr(ExprKind::RangeSelect, loc), base(std::move(base)),
          msb(std::move(msb)), lsb(std::move(lsb))
    {}

    ExprPtr clone() const override;

    ExprPtr base;
    ExprPtr msb;
    ExprPtr lsb;
};

/// base[offset +: width] (up == true) or base[offset -: width].
struct IndexedSelectExpr final : Expr {
    IndexedSelectExpr(ExprPtr base, ExprPtr offset, ExprPtr width, bool up,
                      SourceLoc loc = {})
        : Expr(ExprKind::IndexedSelect, loc), base(std::move(base)),
          offset(std::move(offset)), width(std::move(width)), up(up)
    {}

    ExprPtr clone() const override;

    ExprPtr base;
    ExprPtr offset;
    ExprPtr width;
    bool up;
};

/// f(args) — call of a combinational user function.
struct CallExpr final : Expr {
    CallExpr(std::string callee, std::vector<ExprPtr> args,
             SourceLoc loc = {})
        : Expr(ExprKind::Call, loc), callee(std::move(callee)),
          args(std::move(args))
    {}

    ExprPtr clone() const override;

    std::string callee;
    std::vector<ExprPtr> args;
};

/// $time, $signed(x), $unsigned(x) in expression position.
struct SystemCallExpr final : Expr {
    SystemCallExpr(std::string callee, std::vector<ExprPtr> args,
                   SourceLoc loc = {})
        : Expr(ExprKind::SystemCall, loc), callee(std::move(callee)),
          args(std::move(args))
    {}

    ExprPtr clone() const override;

    std::string callee;
    std::vector<ExprPtr> args;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
    Block,
    BlockingAssign,
    NonblockingAssign,
    If,
    Case,
    For,
    While,
    Repeat,
    Forever,
    SystemTask,
    Null,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
    explicit Stmt(StmtKind kind, SourceLoc loc = {}) : kind(kind), loc(loc) {}
    virtual ~Stmt() = default;

    virtual StmtPtr clone() const = 0;

    StmtKind kind;
    SourceLoc loc;
};

/// begin ... end
struct BlockStmt final : Stmt {
    explicit BlockStmt(std::vector<StmtPtr> stmts, SourceLoc loc = {})
        : Stmt(StmtKind::Block, loc), stmts(std::move(stmts))
    {}

    StmtPtr clone() const override;

    std::vector<StmtPtr> stmts;
};

/// lhs = rhs
struct BlockingAssignStmt final : Stmt {
    BlockingAssignStmt(ExprPtr lhs, ExprPtr rhs, SourceLoc loc = {})
        : Stmt(StmtKind::BlockingAssign, loc), lhs(std::move(lhs)),
          rhs(std::move(rhs))
    {}

    StmtPtr clone() const override;

    ExprPtr lhs;
    ExprPtr rhs;
};

/// lhs <= rhs
struct NonblockingAssignStmt final : Stmt {
    NonblockingAssignStmt(ExprPtr lhs, ExprPtr rhs, SourceLoc loc = {})
        : Stmt(StmtKind::NonblockingAssign, loc), lhs(std::move(lhs)),
          rhs(std::move(rhs))
    {}

    StmtPtr clone() const override;

    ExprPtr lhs;
    ExprPtr rhs;
};

struct IfStmt final : Stmt {
    IfStmt(ExprPtr cond, StmtPtr then_stmt, StmtPtr else_stmt,
           SourceLoc loc = {})
        : Stmt(StmtKind::If, loc), cond(std::move(cond)),
          then_stmt(std::move(then_stmt)), else_stmt(std::move(else_stmt))
    {}

    StmtPtr clone() const override;

    ExprPtr cond;
    StmtPtr then_stmt;
    StmtPtr else_stmt; ///< may be null
};

enum class CaseKind { Case, Casez, Casex };

struct CaseItem {
    std::vector<ExprPtr> labels; ///< empty == default
    StmtPtr stmt;
};

struct CaseStmt final : Stmt {
    CaseStmt(CaseKind case_kind, ExprPtr subject,
             std::vector<CaseItem> items, SourceLoc loc = {})
        : Stmt(StmtKind::Case, loc), case_kind(case_kind),
          subject(std::move(subject)), items(std::move(items))
    {}

    StmtPtr clone() const override;

    CaseKind case_kind;
    ExprPtr subject;
    std::vector<CaseItem> items;
};

struct ForStmt final : Stmt {
    ForStmt(StmtPtr init, ExprPtr cond, StmtPtr step, StmtPtr body,
            SourceLoc loc = {})
        : Stmt(StmtKind::For, loc), init(std::move(init)),
          cond(std::move(cond)), step(std::move(step)), body(std::move(body))
    {}

    StmtPtr clone() const override;

    StmtPtr init; ///< a BlockingAssignStmt
    ExprPtr cond;
    StmtPtr step; ///< a BlockingAssignStmt
    StmtPtr body;
};

struct WhileStmt final : Stmt {
    WhileStmt(ExprPtr cond, StmtPtr body, SourceLoc loc = {})
        : Stmt(StmtKind::While, loc), cond(std::move(cond)),
          body(std::move(body))
    {}

    StmtPtr clone() const override;

    ExprPtr cond;
    StmtPtr body;
};

struct RepeatStmt final : Stmt {
    RepeatStmt(ExprPtr count, StmtPtr body, SourceLoc loc = {})
        : Stmt(StmtKind::Repeat, loc), count(std::move(count)),
          body(std::move(body))
    {}

    StmtPtr clone() const override;

    ExprPtr count;
    StmtPtr body;
};

struct ForeverStmt final : Stmt {
    explicit ForeverStmt(StmtPtr body, SourceLoc loc = {})
        : Stmt(StmtKind::Forever, loc), body(std::move(body))
    {}

    StmtPtr clone() const override;

    StmtPtr body;
};

/// $display(...), $write(...), $finish, $monitor(...).
struct SystemTaskStmt final : Stmt {
    SystemTaskStmt(std::string name, std::vector<ExprPtr> args,
                   SourceLoc loc = {})
        : Stmt(StmtKind::SystemTask, loc), name(std::move(name)),
          args(std::move(args))
    {}

    StmtPtr clone() const override;

    std::string name;
    std::vector<ExprPtr> args;
};

struct NullStmt final : Stmt {
    explicit NullStmt(SourceLoc loc = {}) : Stmt(StmtKind::Null, loc) {}

    StmtPtr clone() const override;
};

// ---------------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------------

enum class ItemKind {
    NetDecl,
    ParamDecl,
    ContinuousAssign,
    Always,
    Initial,
    Instantiation,
    FunctionDecl,
};

struct ModuleItem;
using ItemPtr = std::unique_ptr<ModuleItem>;

struct ModuleItem {
    explicit ModuleItem(ItemKind kind, SourceLoc loc = {})
        : kind(kind), loc(loc)
    {}
    virtual ~ModuleItem() = default;

    virtual ItemPtr clone() const = 0;

    ItemKind kind;
    SourceLoc loc;
};

/// An optional [msb:lsb] range; both bounds are constant expressions.
struct Range {
    ExprPtr msb;
    ExprPtr lsb;

    bool valid() const { return msb != nullptr; }
    Range clone() const;
};

/// One declarator in a net declaration: name, optional memory dimension,
/// optional initializer.
struct NetDeclarator {
    std::string name;
    Range array_dim;  ///< reg [7:0] mem [0:255] — the [0:255] part
    ExprPtr init;     ///< reg [7:0] cnt = 1 — the = 1 part

    NetDeclarator clone() const;
};

/// wire/reg/integer declaration (also used for port-direction declarations
/// inside ANSI headers; see PortDecl below).
struct NetDecl final : ModuleItem {
    NetDecl() : ModuleItem(ItemKind::NetDecl) {}

    ItemPtr clone() const override;

    bool is_reg = false;      ///< reg or integer (vs. wire)
    bool is_signed = false;
    Range range;              ///< bit range
    std::vector<NetDeclarator> decls;
};

/// parameter / localparam declaration.
struct ParamDecl final : ModuleItem {
    ParamDecl() : ModuleItem(ItemKind::ParamDecl) {}

    ItemPtr clone() const override;

    bool local = false;
    bool is_signed = false;
    Range range; ///< optional
    std::string name;
    ExprPtr value;
};

struct ContinuousAssign final : ModuleItem {
    ContinuousAssign(ExprPtr lhs, ExprPtr rhs, SourceLoc loc = {})
        : ModuleItem(ItemKind::ContinuousAssign, loc), lhs(std::move(lhs)),
          rhs(std::move(rhs))
    {}

    ItemPtr clone() const override;

    ExprPtr lhs;
    ExprPtr rhs;
};

enum class EdgeKind { Pos, Neg, Level };

/// One entry in a sensitivity list.
struct SensitivityItem {
    EdgeKind edge = EdgeKind::Level;
    ExprPtr signal;

    SensitivityItem clone() const;
};

/// always @(...) body, or always @* body.
struct AlwaysBlock final : ModuleItem {
    AlwaysBlock() : ModuleItem(ItemKind::Always) {}

    ItemPtr clone() const override;

    /// True for @* / @(*): sensitive to everything the body reads.
    bool star = false;
    std::vector<SensitivityItem> sensitivity;
    StmtPtr body;
};

struct InitialBlock final : ModuleItem {
    explicit InitialBlock(StmtPtr body, SourceLoc loc = {})
        : ModuleItem(ItemKind::Initial, loc), body(std::move(body))
    {}

    ItemPtr clone() const override;

    StmtPtr body;
};

/// A named or positional connection: .x(expr) or just expr.
struct Connection {
    std::string name; ///< empty for positional
    ExprPtr expr;     ///< may be null for .x()

    Connection clone() const;
};

/// Rol r(.x(cnt)); — also carries parameter overrides: Pad#(4) pad();
struct Instantiation final : ModuleItem {
    Instantiation() : ModuleItem(ItemKind::Instantiation) {}

    ItemPtr clone() const override;

    std::string module_name;
    std::string instance_name;
    std::vector<Connection> parameters;
    std::vector<Connection> ports;
};

/// A combinational function declaration.
struct FunctionDecl final : ModuleItem {
    FunctionDecl() : ModuleItem(ItemKind::FunctionDecl) {}

    ItemPtr clone() const override;

    std::string name;
    bool ret_signed = false;
    Range ret_range; ///< optional; default 1-bit
    /// Input declarations followed by local reg declarations.
    std::vector<ItemPtr> decls;
    /// Directions of decls entries: true if the corresponding NetDecl came
    /// from an 'input' declaration.
    std::vector<bool> decl_is_input;
    StmtPtr body;
};

// ---------------------------------------------------------------------------
// Modules and source units
// ---------------------------------------------------------------------------

enum class PortDir { Input, Output, Inout };

/// An ANSI-style port: input wire [7:0] x.
struct Port {
    PortDir dir = PortDir::Input;
    bool is_reg = false;
    bool is_signed = false;
    Range range;
    std::string name;
    SourceLoc loc;

    Port clone() const;
};

struct ModuleDecl {
    std::string name;
    /// Parameter declarations from the #(...) header (non-local).
    std::vector<ItemPtr> header_params;
    std::vector<Port> ports;
    std::vector<ItemPtr> items;
    SourceLoc loc;

    std::unique_ptr<ModuleDecl> clone() const;
};

/// The result of parsing one source unit (a file, or one REPL eval):
/// module declarations plus loose items destined for the root module.
struct SourceUnit {
    std::vector<std::unique_ptr<ModuleDecl>> modules;
    std::vector<ItemPtr> root_items;
};

} // namespace cascade::verilog

#endif // CASCADE_VERILOG_AST_H
