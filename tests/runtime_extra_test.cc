/// \file
/// Additional runtime coverage: GPIO, native-mode rejection of
/// unsynthesizable code, timeline accounting, $write ordering, multiple
/// evals building a program incrementally, and location reporting.

#include "runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include <gtest/gtest.h>

namespace cascade::runtime {
namespace {

Runtime::Options
sw_only()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    return opts;
}

TEST(RuntimeExtra, GpioRoundTrip)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        GPIO#(8) gpio();
        reg [7:0] echo = 0;
        always @(posedge clk.val)
          echo <= gpio.in_val + 1;
        assign gpio.val = echo;
    )", &errors)) << errors;
    rt.set_pad(41); // drives every host-facing pin net, including GPIO in
    rt.run_for_ticks(2);
    // The GPIO out_pins reflect echo == in + 1.
    EXPECT_EQ(rt.led_state().to_uint64(), 42u);
}

TEST(RuntimeExtra, WriteThenDisplayOrdering)
{
    Runtime rt(sw_only());
    std::string output;
    rt.on_output = [&output](const std::string& s) { output += s; };
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        reg fired = 0;
        always @(posedge clk.val)
          if (!fired) begin
            fired <= 1;
            $write("a");
            $write("b");
            $display("c");
          end
    )", &errors)) << errors;
    rt.run_for_ticks(2);
    EXPECT_EQ(output, "abc\n");
}

TEST(RuntimeExtra, IncrementalProgramConstruction)
{
    Runtime rt(sw_only());
    std::string errors;
    // Build the running example in five separate evals (Fig. 3's flow).
    ASSERT_TRUE(rt.eval("module Rol(input wire [7:0] x, "
                        "output wire [7:0] y); "
                        "assign y = (x == 8'h80) ? 8'd1 : (x << 1); "
                        "endmodule", &errors)) << errors;
    ASSERT_TRUE(rt.eval("Pad#(4) pad();", &errors)) << errors;
    ASSERT_TRUE(rt.eval("Led#(8) led();", &errors)) << errors;
    ASSERT_TRUE(rt.eval("reg [7:0] cnt = 1; Rol r(.x(cnt));", &errors))
        << errors;
    ASSERT_TRUE(rt.eval("always @(posedge clk.val) if (pad.val == 0) "
                        "cnt <= r.y; assign led.val = cnt;", &errors))
        << errors;
    rt.run_for_ticks(3);
    EXPECT_EQ(rt.led_state().to_uint64(), 8u);
}

TEST(RuntimeExtra, NativeModeRejectsUnsynthesizable)
{
    Runtime::Options opts;
    opts.native_mode = true;
    opts.compile_effort = 0.05;
    Runtime rt(opts);
    std::string output;
    rt.on_output = [&output](const std::string& s) { output += s; };
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        reg [7:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $display("%0d", cnt);
        end
    )", &errors)) << errors;
    // The program still runs (in software, with printfs), but native
    // compilation cannot adopt it.
    rt.run_for_ticks(3);
    EXPECT_EQ(rt.user_location(), Location::Software);
    EXPECT_NE(output.find("0\n"), std::string::npos);
}

TEST(RuntimeExtra, TimelineAdvancesMonotonically)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval("reg [7:0] c = 0; "
                        "always @(posedge clk.val) c <= c + 1;", &errors))
        << errors;
    double last = rt.timeline_seconds();
    for (int i = 0; i < 10; ++i) {
        rt.run_for_ticks(1);
        EXPECT_GE(rt.timeline_seconds(), last);
        last = rt.timeline_seconds();
    }
    EXPECT_GT(last, 0.0);
}

TEST(RuntimeExtra, SchedulerIterationsTrackTicks)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval("reg [7:0] c = 0; "
                        "always @(posedge clk.val) c <= c + 1;", &errors))
        << errors;
    const uint64_t it0 = rt.scheduler_iterations();
    rt.run_for_ticks(10);
    const uint64_t dit = rt.scheduler_iterations() - it0;
    // A handful of iterations per tick (paper §4.1: "every two iterations
    // ... correspond to a single virtual tick" in the idealized model;
    // our batching adds the window iteration).
    EXPECT_GE(dit, 20u);
    EXPECT_LE(dit, 80u);
}

TEST(RuntimeExtra, FinishFromSecondEval)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval("reg [7:0] c = 0; "
                        "always @(posedge clk.val) c <= c + 1;", &errors))
        << errors;
    rt.run_for_ticks(5);
    ASSERT_TRUE(rt.eval("always @(posedge clk.val) if (c >= 8) $finish;",
                        &errors)) << errors;
    rt.run(100000);
    EXPECT_TRUE(rt.finished());
    // No further progress after finish.
    const uint64_t ticks = rt.virtual_ticks();
    rt.run(100);
    EXPECT_EQ(rt.virtual_ticks(), ticks);
}

TEST(RuntimeExtra, MemoryComponentSurvivesEval)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Memory#(4, 8) m(.clk(clk.val), .wen(we), .waddr(wa), .wdata(wd),
                        .raddr1(ra), .rdata1(rd), .raddr2(4'd0));
        reg we = 1;
        reg [3:0] wa = 0;
        reg [7:0] wd = 100;
        wire [3:0] ra;
        wire [7:0] rd;
        assign ra = 2;
        always @(posedge clk.val) begin
          wa <= wa + 1;
          wd <= wd + 1;
        end
    )", &errors)) << errors;
    rt.run_for_ticks(6); // writes 100..105 to cells 0..5
    // Attach an LED afterwards; memory contents must be preserved.
    ASSERT_TRUE(rt.eval("Led#(8) led(); assign led.val = rd;", &errors))
        << errors;
    rt.run(8);
    EXPECT_EQ(rt.led_state().to_uint64(), 102u);
}

TEST(RuntimeExtra, DeviceOptionsGateHardwareAdoption)
{
    // Options::device_les must actually reach FpgaDevice::program's
    // capacity check: on a 10-LE device nothing fits, so the JIT reports
    // the rejection and the program stays in software.
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.device_les = 10;
    // This test is about the FABRIC capacity gate; the JIT tier needs no
    // LEs and would otherwise adopt (and open-loop free-run) while the
    // doomed compile is in flight.
    opts.enable_jit = false;
    Runtime rt(opts);
    std::string output;
    rt.on_output = [&output](const std::string& s) { output += s; };
    std::string errors;
    ASSERT_TRUE(rt.eval("Led#(8) led(); reg [7:0] cnt = 0; "
                        "always @(posedge clk.val) cnt <= cnt + 1; "
                        "assign led.val = cnt;", &errors)) << errors;
    const auto start = std::chrono::steady_clock::now();
    while (rt.telemetry().counter("compile.rejected")->value() == 0) {
        rt.run(256);
        ASSERT_LT(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count(),
                  60.0)
            << "compile never rejected; output so far: " << output;
    }
    rt.run(64); // drain the rejection interrupt
    EXPECT_EQ(rt.user_location(), Location::Software);
    EXPECT_FALSE(rt.hardware_ready());
    EXPECT_NE(output.find("does not fit"), std::string::npos) << output;
    EXPECT_TRUE(rt.transitions().empty());
}

TEST(RuntimeExtra, DisplayOrderingAcrossTransitionAndOpenLoop)
{
    // $display side effects must surface in program order even as the
    // scheduler hands the program from the software engine to hardware
    // and batches cycles through the open-loop fast path: the sequence
    // numbers printed every cycle stay gapless and duplicate-free.
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.open_loop_target_wall_s = 0.02;
    Runtime rt(opts);
    std::string output;
    rt.on_output = [&output](const std::string& s) { output += s; };
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Pad#(1) pad();
        reg [15:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $display("%0d", cnt);
          if (pad.val)
            $finish;
        end
    )", &errors)) << errors;

    const auto start = std::chrono::steady_clock::now();
    while (!rt.hardware_ready()) {
        rt.run(256);
        ASSERT_LT(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count(),
                  60.0)
            << "hardware never adopted";
    }
    ASSERT_FALSE(rt.transitions().empty());
    const uint64_t displays_at_transition =
        std::count(output.begin(), output.end(), '\n');
    // Let the open-loop path run some batches in hardware before finishing.
    rt.run_for_ticks(64);
    rt.set_pad(1);
    while (!rt.finished()) {
        rt.run(1u << 14);
        ASSERT_LT(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count(),
                  120.0)
            << "program never finished";
    }

    // Every line is the next integer in sequence: no drops, duplicates,
    // or reordering across the engine swap.
    std::istringstream lines(output);
    std::string line;
    uint64_t expect = 0;
    while (std::getline(lines, line)) {
        ASSERT_EQ(line, std::to_string(expect))
            << "at line " << expect << "; transition happened after "
            << displays_at_transition << " displays";
        ++expect;
    }
    EXPECT_GT(expect, displays_at_transition + 64)
        << "expected hardware-phase displays after the transition";
    EXPECT_GT(rt.telemetry().counter("openloop.iterations")->value(), 0u);
}

} // namespace
} // namespace cascade::runtime
