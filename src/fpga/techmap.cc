#include "fpga/techmap.h"

#include <cmath>

namespace cascade::fpga {

namespace {

uint32_t
log2_ceil(uint32_t v)
{
    uint32_t r = 0;
    while ((1u << r) < v) {
        ++r;
    }
    return r;
}

} // namespace

uint32_t
le_cost(const Node& node)
{
    const uint32_t w = node.width;
    switch (node.op) {
      case Op::Const:
      case Op::Input:
      case Op::Concat:
      case Op::Slice:
      case Op::ZExt:
      case Op::SExt:
        return 0; // wiring
      case Op::Not:
        return 0; // absorbed into downstream LUT inputs
      case Op::RegQ:
        return w; // one FF per bit
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Mux:
        return w;
      case Op::Add:
      case Op::Sub:
        return w; // carry-chain adders: one LE per bit
      case Op::Mul:
        return w * w / 2 + 1;
      case Op::Divu:
      case Op::Remu:
      case Op::Divs:
      case Op::Rems:
      case Op::Pow:
        return w * w + 4; // array divider / exponentiation network
      case Op::Eq:
      case Op::Ult:
      case Op::Slt:
        return (w + 1) / 2 + 1;
      case Op::Shl:
      case Op::Lshr:
      case Op::Ashr:
      case Op::DynSlice:
        return w * std::max(1u, log2_ceil(std::max(2u, w)));
      case Op::ReduceAnd:
      case Op::ReduceOr:
      case Op::ReduceXor:
        return (w + 2) / 3;
      case Op::MemRead:
        return log2_ceil(std::max(2u, w)) + 2; // address decode margin
    }
    return w;
}

double
node_delay_ns(const Node& node)
{
    const uint32_t w = node.width;
    // Roughly one LUT level = 0.5 ns on a mid-grade fabric; carry chains
    // and barrel shifters take multiple levels.
    switch (node.op) {
      case Op::Const:
      case Op::Input:
      case Op::RegQ:
      case Op::Concat:
      case Op::Slice:
      case Op::ZExt:
      case Op::SExt:
      case Op::Not:
        return 0.0;
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Mux:
        return 0.5;
      case Op::Add:
      case Op::Sub:
        return 0.5 + 0.015 * w; // carry propagation
      case Op::Mul:
        return 0.8 + 0.05 * w;
      case Op::Divu:
      case Op::Remu:
      case Op::Divs:
      case Op::Rems:
      case Op::Pow:
        return 2.0 + 0.25 * w;
      case Op::Eq:
      case Op::Ult:
      case Op::Slt:
        return 0.5 + 0.02 * w;
      case Op::Shl:
      case Op::Lshr:
      case Op::Ashr:
      case Op::DynSlice:
        return 0.5 * std::max(1u, log2_ceil(std::max(2u, w)));
      case Op::ReduceAnd:
      case Op::ReduceOr:
      case Op::ReduceXor:
        return 0.5 * std::max(1u, log2_ceil(std::max(3u, w)) - 1);
      case Op::MemRead:
        return 1.5; // BRAM access
    }
    return 0.5;
}

MappedDesign
technology_map(const Netlist& nl)
{
    MappedDesign out;
    out.node_delay_ns.resize(nl.nodes.size());
    out.cell_of_node.assign(nl.nodes.size(), -1);

    // A chained node continues a cascade of the same operation (a case
    // statement's mux chain, a mask OR reduction). Technology mappers
    // rebalance such cascades into trees; charge the amortized
    // tree depth instead of the full chain.
    auto continues_chain = [&nl](const Node& n) {
        if (n.op != Op::Mux && n.op != Op::And && n.op != Op::Or &&
            n.op != Op::Xor) {
            return false;
        }
        for (uint32_t a : n.args) {
            if (nl.nodes[a].op == n.op) {
                return true;
            }
        }
        return false;
    };

    for (size_t i = 0; i < nl.nodes.size(); ++i) {
        const Node& n = nl.nodes[i];
        const uint32_t les = le_cost(n);
        out.node_delay_ns[i] =
            continues_chain(n) ? 0.08 : node_delay_ns(n);
        out.area.les += les;
        if (n.op == Op::RegQ) {
            out.area.ffs += n.width;
        }
        if (les > 0) {
            out.cell_of_node[i] = static_cast<int32_t>(out.cells.size());
            const uint32_t src =
                i < nl.node_src.size() ? nl.node_src[i] : 0;
            out.cells.push_back(
                {static_cast<uint32_t>(i), std::max(1u, les), src});
        }
    }
    for (const MemDef& m : nl.mems) {
        out.area.bram_bits +=
            static_cast<uint64_t>(m.width) * m.size;
    }

    // Edges: connect each cell to the nearest mapped ancestor of each of
    // its arguments (walking through zero-area wiring nodes).
    std::vector<int32_t> rep(nl.nodes.size(), -1);
    for (size_t i = 0; i < nl.nodes.size(); ++i) {
        if (out.cell_of_node[i] >= 0) {
            rep[i] = out.cell_of_node[i];
        } else if (!nl.nodes[i].args.empty()) {
            rep[i] = rep[nl.nodes[i].args[0]];
        }
    }
    for (size_t i = 0; i < nl.nodes.size(); ++i) {
        const int32_t self = out.cell_of_node[i];
        if (self < 0) {
            continue;
        }
        for (uint32_t a : nl.nodes[i].args) {
            const int32_t other = rep[a];
            if (other >= 0 && other != self) {
                out.edges.push_back({static_cast<uint32_t>(other),
                                     static_cast<uint32_t>(self)});
            }
        }
    }
    // Register feedback edges (next -> q).
    for (const RegDef& r : nl.regs) {
        const int32_t q = out.cell_of_node[r.q];
        const int32_t d = rep[r.next];
        if (q >= 0 && d >= 0 && q != d) {
            out.edges.push_back({static_cast<uint32_t>(d),
                                 static_cast<uint32_t>(q)});
        }
    }
    return out;
}

} // namespace cascade::fpga
