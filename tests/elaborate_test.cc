/// \file
/// Unit tests for elaboration, constant evaluation, and expression typing.

#include "verilog/elaborate.h"

#include <gtest/gtest.h>

#include "verilog/parser.h"

namespace cascade::verilog {
namespace {

std::unique_ptr<ModuleDecl>
parse_module(std::string_view src)
{
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    EXPECT_EQ(unit.modules.size(), 1u);
    return std::move(unit.modules.front());
}

std::unique_ptr<ElaboratedModule>
elaborate_ok(std::string_view src,
             const std::vector<Connection>& overrides = {})
{
    auto decl = parse_module(src);
    Diagnostics diags;
    Elaborator elab(&diags);
    auto em = elab.elaborate(*decl, overrides);
    EXPECT_NE(em, nullptr) << diags.str();
    return em;
}

void
expect_elab_error(std::string_view src, const std::string& needle)
{
    auto decl = parse_module(src);
    Diagnostics diags;
    Elaborator elab(&diags);
    auto em = elab.elaborate(*decl);
    EXPECT_EQ(em, nullptr) << "expected error containing: " << needle;
    EXPECT_NE(diags.str().find(needle), std::string::npos)
        << "diagnostics were:\n" << diags.str();
}

TEST(ConstEval, Arithmetic)
{
    Diagnostics diags;
    SourceUnit unit =
        parse("module M(); wire [2*8-1:0] w; endmodule", &diags);
    const auto& nd = static_cast<const NetDecl&>(*unit.modules[0]->items[0]);
    auto v = eval_const_expr(*nd.range.msb, {}, &diags);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->to_uint64(), 15u);
}

TEST(ConstEval, UsesEnvironment)
{
    Diagnostics diags;
    SourceUnit unit = parse("module M(); wire [N-1:0] w; endmodule", &diags);
    const auto& nd = static_cast<const NetDecl&>(*unit.modules[0]->items[0]);
    std::unordered_map<std::string, BitVector> env;
    env.emplace("N", BitVector(32, 8));
    auto v = eval_const_expr(*nd.range.msb, env, &diags);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->to_uint64(), 7u);
}

TEST(ConstEval, RejectsNonConstant)
{
    Diagnostics diags;
    SourceUnit unit = parse("module M(); wire [x:0] w; endmodule", &diags);
    const auto& nd = static_cast<const NetDecl&>(*unit.modules[0]->items[0]);
    EXPECT_FALSE(eval_const_expr(*nd.range.msb, {}, &diags).has_value());
    EXPECT_TRUE(diags.has_errors());
}

TEST(Elaborate, PortsAndNets)
{
    auto em = elaborate_ok(R"(
        module M(input wire clk, input wire [3:0] pad,
                 output wire [7:0] led);
          reg [7:0] cnt = 1;
          wire signed [15:0] s;
        endmodule
    )");
    EXPECT_EQ(em->nets.size(), 5u);
    const NetInfo* clk = em->find_net("clk");
    ASSERT_NE(clk, nullptr);
    EXPECT_EQ(clk->width, 1u);
    EXPECT_TRUE(clk->is_port);
    EXPECT_EQ(clk->dir, PortDir::Input);
    const NetInfo* pad = em->find_net("pad");
    EXPECT_EQ(pad->width, 4u);
    const NetInfo* cnt = em->find_net("cnt");
    EXPECT_TRUE(cnt->is_reg);
    EXPECT_NE(cnt->init, nullptr);
    const NetInfo* s = em->find_net("s");
    EXPECT_TRUE(s->is_signed);
    EXPECT_EQ(s->width, 16u);
}

TEST(Elaborate, ParameterDefaultsAndLocalparam)
{
    auto em = elaborate_ok(R"(
        module M#(parameter N = 8)();
          localparam W = N * 2;
          wire [W-1:0] bus;
        endmodule
    )");
    EXPECT_EQ(em->params.at("N").to_uint64(), 8u);
    EXPECT_EQ(em->params.at("W").to_uint64(), 16u);
    EXPECT_EQ(em->find_net("bus")->width, 16u);
}

TEST(Elaborate, PositionalParameterOverride)
{
    std::vector<Connection> overrides;
    Connection c;
    c.expr = std::make_unique<NumberExpr>(BitVector(32, 4), false, true);
    overrides.push_back(std::move(c));
    auto em = elaborate_ok(
        "module Pad#(parameter WIDTH = 1)(output wire [WIDTH-1:0] val); "
        "endmodule",
        overrides);
    EXPECT_EQ(em->params.at("WIDTH").to_uint64(), 4u);
    EXPECT_EQ(em->find_net("val")->width, 4u);
}

TEST(Elaborate, NamedParameterOverride)
{
    std::vector<Connection> overrides;
    Connection c;
    c.name = "DEPTH";
    c.expr = std::make_unique<NumberExpr>(BitVector(32, 64), false, true);
    overrides.push_back(std::move(c));
    auto em = elaborate_ok(R"(
        module F#(parameter WIDTH = 8, parameter DEPTH = 16)();
          wire [WIDTH-1:0] data;
          wire [DEPTH-1:0] slots;
        endmodule
    )", overrides);
    EXPECT_EQ(em->find_net("data")->width, 8u);
    EXPECT_EQ(em->find_net("slots")->width, 64u);
}

TEST(Elaborate, UnknownOverrideFails)
{
    auto decl = parse_module("module M#(parameter N = 1)(); endmodule");
    std::vector<Connection> overrides;
    Connection c;
    c.name = "BOGUS";
    c.expr = std::make_unique<NumberExpr>(BitVector(32, 1), false, true);
    overrides.push_back(std::move(c));
    Diagnostics diags;
    Elaborator elab(&diags);
    EXPECT_EQ(elab.elaborate(*decl, overrides), nullptr);
}

TEST(Elaborate, LocalparamNotOverridable)
{
    auto decl = parse_module(
        "module M(); localparam W = 4; endmodule");
    std::vector<Connection> overrides;
    Connection c;
    c.name = "W";
    c.expr = std::make_unique<NumberExpr>(BitVector(32, 9), false, true);
    overrides.push_back(std::move(c));
    Diagnostics diags;
    Elaborator elab(&diags);
    EXPECT_EQ(elab.elaborate(*decl, overrides), nullptr);
}

TEST(Elaborate, Memories)
{
    auto em = elaborate_ok(R"(
        module M();
          reg [7:0] mem [0:255];
        endmodule
    )");
    const NetInfo* mem = em->find_net("mem");
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(mem->width, 8u);
    EXPECT_EQ(mem->array_size, 256u);
    EXPECT_EQ(mem->array_base, 0);
}

TEST(Elaborate, NonZeroLsbRange)
{
    auto em = elaborate_ok("module M(); wire [11:4] w; endmodule");
    const NetInfo* w = em->find_net("w");
    EXPECT_EQ(w->width, 8u);
    EXPECT_EQ(w->lsb, 4u);
}

TEST(Elaborate, Errors)
{
    expect_elab_error("module M(); wire w; wire w; endmodule", "duplicate");
    expect_elab_error("module M(input wire x, input wire x); endmodule",
                      "duplicate");
    expect_elab_error("module M(); assign y = 1; endmodule", "undeclared");
    expect_elab_error("module M(); wire w; assign w = q; endmodule",
                      "undeclared");
    expect_elab_error("module M(inout wire io); endmodule", "inout");
    expect_elab_error("module M(input reg r); endmodule", "input ports");
    expect_elab_error("module M(); wire [0:7] w; endmodule", "ascending");
    expect_elab_error("module M(); wire w = 1; endmodule", "regs");
    expect_elab_error("module M(); wire [7:0] a [0:3]; endmodule",
                      "declared reg");
    expect_elab_error(
        "module M(); reg r; always @(*) r = q.v; endmodule",
        "hierarchical");
    expect_elab_error("module M(); Sub s(); endmodule", "not allowed");
    expect_elab_error("module M(); reg r; initial r = f(1); endmodule",
                      "undeclared function");
    expect_elab_error("module M(input wire i); assign i = 1; endmodule",
                      "input port");
    expect_elab_error(
        "module M(); wire w; always @(*) w = 1; endmodule",
        "wire");
    expect_elab_error("module M(); reg r; assign r = 1; endmodule", "reg");
    expect_elab_error(
        "module M(); reg r; always @(posedge c or a) r = 1; endmodule",
        "undeclared");
    expect_elab_error("module M(); initial $bogus(1); endmodule",
                      "unknown system task");
    expect_elab_error("module M(); reg r; initial r = $time(3); endmodule",
                      "no arguments");
    expect_elab_error(
        "module M(); function f; input a; f <= a; endfunction endmodule",
        "function");
}

TEST(Elaborate, MixedEdgeAndLevelRejected)
{
    expect_elab_error(R"(
        module M();
          reg r; wire c; wire d;
          always @(posedge c or d) r = 1;
        endmodule
    )", "mixed edge and level");
}

TEST(Elaborate, FunctionArity)
{
    expect_elab_error(R"(
        module M();
          function [3:0] f;
            input [3:0] a, b;
            f = a + b;
          endfunction
          wire [3:0] q;
          assign q = f(1);
        endmodule
    )", "expects 2 arguments");
}

TEST(Elaborate, HierarchicalRefsWithLibrary)
{
    Diagnostics diags;
    SourceUnit unit = parse(R"(
        module Rol(input wire [7:0] x, output wire [7:0] y);
          assign y = x << 1;
        endmodule
        module Main(input wire clk);
          reg [7:0] cnt = 0;
          Rol r(.x(cnt));
          always @(posedge clk) cnt <= r.y;
        endmodule
    )", &diags);
    ASSERT_FALSE(diags.has_errors());
    ModuleLibrary lib;
    lib.add(std::move(unit.modules[0]));
    const auto main_decl = std::move(unit.modules[1]);
    Elaborator elab(&diags, &lib);
    auto em = elab.elaborate(*main_decl);
    EXPECT_NE(em, nullptr) << diags.str();
}

TEST(Elaborate, HierarchicalRefToMissingPortFails)
{
    Diagnostics diags;
    SourceUnit unit = parse(R"(
        module Sub(input wire a);
        endmodule
        module Main();
          reg r;
          Sub s(.a(r));
          always @(*) r = s.nothere;
        endmodule
    )", &diags);
    ModuleLibrary lib;
    lib.add(std::move(unit.modules[0]));
    Elaborator elab(&diags, &lib);
    EXPECT_EQ(elab.elaborate(*unit.modules[1]), nullptr);
    EXPECT_NE(diags.str().find("no port"), std::string::npos);
}

TEST(Elaborate, InstantiationPortChecks)
{
    Diagnostics diags;
    SourceUnit unit = parse(R"(
        module Sub(input wire a, input wire b);
        endmodule
        module M();
          wire x;
          Sub s(.a(x), .c(x));
        endmodule
    )", &diags);
    ModuleLibrary lib;
    lib.add(std::move(unit.modules[0]));
    Elaborator elab(&diags, &lib);
    EXPECT_EQ(elab.elaborate(*unit.modules[1]), nullptr);
    EXPECT_NE(diags.str().find("no port 'c'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ExprTyper
// ---------------------------------------------------------------------------

struct TypedExpr {
    std::unique_ptr<ElaboratedModule> em;
    const Expr* expr;
};

/// Elaborates a module whose single assign statement's RHS we inspect.
TypedExpr
typed_rhs(const std::string& decls, const std::string& rhs)
{
    TypedExpr out;
    out.em = elaborate_ok("module M(); " + decls +
                          " assign _t = " + rhs + "; wire _t; endmodule");
    for (const auto& item : out.em->decl->items) {
        if (item->kind == ItemKind::ContinuousAssign) {
            out.expr =
                static_cast<const ContinuousAssign&>(*item).rhs.get();
        }
    }
    EXPECT_NE(out.expr, nullptr);
    return out;
}

TEST(Elaborate, DumpTasksAccepted)
{
    elaborate_ok(R"(
        module M(input wire clk);
          reg r = 0;
          initial begin
            $dumpfile("waves.vcd");
            $dumpvars;
          end
          always @(posedge clk) begin
            r <= ~r;
            $dumpoff;
            $dumpon;
          end
        endmodule
    )");
}

TEST(Elaborate, DumpTaskArgumentValidation)
{
    expect_elab_error(
        "module M(); initial $dumpfile(1); endmodule",
        "$dumpfile takes exactly one string argument");
    expect_elab_error(
        "module M(); initial $dumpfile(\"a\", \"b\"); endmodule",
        "$dumpfile takes exactly one string argument");
    // Only whole-design dumps: $dumpvars with a depth/scope is rejected.
    expect_elab_error("module M(); initial $dumpvars(0); endmodule",
                      "$dumpvars takes no arguments");
    expect_elab_error("module M(); reg r = 0; initial $dumpoff(r); "
                      "endmodule",
                      "$dumpoff takes no arguments");
    expect_elab_error("module M(); initial $dumpon(1); endmodule",
                      "$dumpon takes no arguments");
}

TEST(ExprTyper, Widths)
{
    {
        auto t = typed_rhs("wire [7:0] a; wire [15:0] b;", "a + b");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 16u);
    }
    {
        auto t = typed_rhs("wire [7:0] a; wire [15:0] b;", "a == b");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 1u);
    }
    {
        auto t = typed_rhs("wire [7:0] a;", "a << 4");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 8u);
    }
    {
        auto t = typed_rhs("wire [7:0] a; wire [3:0] b;", "{a, b}");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 12u);
    }
    {
        auto t = typed_rhs("wire [7:0] a;", "{3{a}}");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 24u);
    }
    {
        auto t = typed_rhs("wire [7:0] a;", "a[3]");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 1u);
    }
    {
        auto t = typed_rhs("wire [7:0] a;", "a[6:2]");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 5u);
    }
    {
        auto t = typed_rhs("wire [31:0] a; wire [4:0] i;", "a[i +: 8]");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 8u);
    }
    {
        auto t = typed_rhs("wire [7:0] a;", "&a");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 1u);
    }
    {
        auto t = typed_rhs("wire [7:0] a; wire [3:0] s;", "s ? a : 16'd0");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 16u);
    }
    {
        auto t = typed_rhs("reg [7:0] m [0:15]; wire [3:0] i;", "m[i]");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 8u);
    }
    {
        auto t = typed_rhs("", "$time");
        EXPECT_EQ(ExprTyper(*t.em).self_width(*t.expr), 64u);
    }
}

TEST(ExprTyper, Signedness)
{
    {
        auto t = typed_rhs("wire signed [7:0] a; wire signed [7:0] b;",
                           "a + b");
        EXPECT_TRUE(ExprTyper(*t.em).is_signed(*t.expr));
    }
    {
        auto t = typed_rhs("wire signed [7:0] a; wire [7:0] b;", "a + b");
        EXPECT_FALSE(ExprTyper(*t.em).is_signed(*t.expr));
    }
    {
        auto t = typed_rhs("wire signed [7:0] a;", "a >>> 1");
        EXPECT_TRUE(ExprTyper(*t.em).is_signed(*t.expr));
    }
    {
        auto t = typed_rhs("wire signed [7:0] a;", "{a}");
        EXPECT_FALSE(ExprTyper(*t.em).is_signed(*t.expr));
    }
    {
        auto t = typed_rhs("wire [7:0] a;", "$signed(a)");
        EXPECT_TRUE(ExprTyper(*t.em).is_signed(*t.expr));
    }
    {
        auto t = typed_rhs("wire signed [7:0] a;", "$unsigned(a)");
        EXPECT_FALSE(ExprTyper(*t.em).is_signed(*t.expr));
    }
    {
        auto t = typed_rhs("wire signed [7:0] a;", "a < 0");
        EXPECT_FALSE(ExprTyper(*t.em).is_signed(*t.expr));
    }
}

} // namespace
} // namespace cascade::verilog
