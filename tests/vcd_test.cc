/// \file
/// Tests for signal-level observability: the VCD writer itself, runtime
/// waveform capture (engine-identical output across software, hardware,
/// and mid-run adoption), program-driven $dump* tasks, and IEEE $monitor
/// semantics (once per timestep, on change only, same lines from both
/// engines).

#include "sim/vcd.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/runtime.h"

namespace cascade {
namespace {

using runtime::Runtime;

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Drops the $date line, the only non-reproducible part of a VCD.
std::string
strip_date(const std::string& vcd)
{
    std::istringstream in(vcd);
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("$date", 0) == 0) {
            continue;
        }
        out += line;
        out += '\n';
    }
    return out;
}

std::string
temp_path(const std::string& name)
{
    return testing::TempDir() + name;
}

// ---------------------------------------------------------------------
// VcdWriter unit tests
// ---------------------------------------------------------------------

TEST(VcdWriter, HeaderDeclarationsAndInitialSection)
{
    const std::string path = temp_path("vcd_header.vcd");
    sim::VcdWriter w;
    std::string err;
    ASSERT_TRUE(w.open(path, &err)) << err;
    EXPECT_EQ(w.declare("cnt", 8), 0);
    EXPECT_EQ(w.declare("flag", 1), 1);
    EXPECT_EQ(w.declare("cnt", 8), 0) << "duplicate returns existing index";
    EXPECT_EQ(w.signal_count(), 2u);

    const BitVector cnt(8, 0x2A);
    const BitVector flag(1, 1);
    w.sample(0, {&cnt, &flag});
    w.close();

    const std::string text = read_file(path);
    EXPECT_NE(text.find("$timescale 1 ns $end"), std::string::npos);
    EXPECT_NE(text.find("$scope module cascade $end"), std::string::npos);
    EXPECT_NE(text.find("$var wire 8 ! cnt [7:0] $end"), std::string::npos);
    EXPECT_NE(text.find("$var wire 1 \" flag $end"), std::string::npos)
        << text;
    EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
    // Initial $dumpvars section with full values.
    EXPECT_NE(text.find("$dumpvars"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("b00101010 !"), std::string::npos);
    EXPECT_NE(text.find("1\""), std::string::npos);
    // Exactly one $date line, and it is a single line.
    EXPECT_EQ(text.find("$date"), text.rfind("$date"));

    // Declaring after the header was written is refused.
    EXPECT_EQ(w.declare("late", 4), -1);
}

TEST(VcdWriter, ChangeSuppressionAndXForNull)
{
    const std::string path = temp_path("vcd_changes.vcd");
    sim::VcdWriter w;
    ASSERT_TRUE(w.open(path));
    w.declare("a", 4);
    w.declare("b", 1);

    const BitVector a0(4, 3);
    const BitVector a1(4, 7);
    const BitVector b0(1, 0);
    w.sample(0, {&a0, &b0});
    w.sample(2, {&a0, &b0}); // nothing changed: no output at all
    w.sample(4, {&a1, &b0}); // only a changes
    w.sample(6, {nullptr, &b0}); // a becomes unknown
    w.close();

    const std::string text = strip_date(read_file(path));
    EXPECT_EQ(text.find("#2"), std::string::npos)
        << "unchanged sample must not emit a timestamp:\n" << text;
    EXPECT_NE(text.find("#4\nb0111 !\n"), std::string::npos) << text;
    EXPECT_NE(text.find("#6\nbx !\n"), std::string::npos) << text;
    // b never changed after #0: exactly one record for it.
    EXPECT_EQ(text.find("0\""), text.rfind("0\"")) << text;
    EXPECT_EQ(w.samples(), 4u);
    EXPECT_EQ(w.bytes_written(), read_file(path).size());
}

TEST(VcdWriter, DumpOffOn)
{
    const std::string path = temp_path("vcd_offon.vcd");
    sim::VcdWriter w;
    ASSERT_TRUE(w.open(path));
    w.declare("v", 2);

    const BitVector v1(2, 1);
    const BitVector v2(2, 2);
    const BitVector v3(2, 3);
    w.sample(0, {&v1});
    w.dump_off(2);
    EXPECT_FALSE(w.dumping());
    w.sample(4, {&v2}); // ignored while off
    w.dump_on(6, {&v3});
    EXPECT_TRUE(w.dumping());
    w.close();

    const std::string text = strip_date(read_file(path));
    EXPECT_NE(text.find("$dumpoff"), std::string::npos);
    EXPECT_NE(text.find("bx !"), std::string::npos);
    EXPECT_EQ(text.find("#4"), std::string::npos)
        << "samples while off must be dropped:\n" << text;
    EXPECT_NE(text.find("$dumpon"), std::string::npos);
    EXPECT_NE(text.find("b11 !"), std::string::npos);
}

// ---------------------------------------------------------------------
// Runtime capture: the same .vcd regardless of engine placement
// ---------------------------------------------------------------------

const char* kCounterDesign = R"(
    reg [7:0] cnt = 0;
    always @(posedge clk.val)
      cnt <= cnt + 1;
)";

Runtime::Options
sw_only()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    return opts;
}

Runtime::Options
hw_fast()
{
    Runtime::Options opts;
    opts.enable_hardware = true;
    opts.compile_effort = 0.05;
    opts.open_loop_target_wall_s = 0.02;
    return opts;
}

/// Runs kCounterDesign for 3+3 virtual ticks with VCD capture of `cnt`,
/// in one of three engine placements, and returns the date-stripped dump.
enum class Placement { SoftwareOnly, HardwareFirst, AdoptMidRun };

std::string
capture_counter(Placement placement, const std::string& path)
{
    Runtime rt(placement == Placement::SoftwareOnly ? sw_only() : hw_fast());
    rt.on_output = [](const std::string&) {};
    std::string errors;
    EXPECT_TRUE(rt.eval(kCounterDesign, &errors)) << errors;
    if (placement == Placement::HardwareFirst) {
        // Adopt the fabric at virtual tick 0, before any capture window.
        EXPECT_TRUE(rt.wait_for_hardware(30.0));
    }
    std::string err;
    EXPECT_TRUE(rt.add_probe("cnt", &err)) << err;
    EXPECT_TRUE(rt.vcd_open(path, &err)) << err;
    EXPECT_TRUE(rt.vcd_active());
    rt.run_for_ticks(3);
    if (placement == Placement::AdoptMidRun) {
        // Splice: the dump stays open across the sw->hw handoff.
        EXPECT_TRUE(rt.wait_for_hardware(30.0));
        EXPECT_NE(rt.user_location(), runtime::Location::Software);
    }
    rt.run_for_ticks(3);
    rt.close_vcd();
    return strip_date(read_file(path));
}

TEST(RuntimeVcd, GoldenAcrossEnginePlacements)
{
    const std::string sw =
        capture_counter(Placement::SoftwareOnly, temp_path("gold_sw.vcd"));
    ASSERT_FALSE(sw.empty());
    // The software run is the reference; sanity-check its shape.
    EXPECT_NE(sw.find("$var wire 8 ! cnt [7:0] $end"), std::string::npos)
        << sw;
    // First sample lands at the first end-of-timestep window (#1).
    EXPECT_NE(sw.find("#1\n$dumpvars"), std::string::npos) << sw;

    const std::string hw =
        capture_counter(Placement::HardwareFirst, temp_path("gold_hw.vcd"));
    EXPECT_EQ(sw, hw) << "hardware-resident dump diverged from software";

    const std::string mixed =
        capture_counter(Placement::AdoptMidRun, temp_path("gold_mix.vcd"));
    EXPECT_EQ(sw, mixed) << "mid-run adoption dump diverged from software";
}

/// The acceptance scenario verbatim: capture configured by the program
/// itself ($dumpfile/$dumpvars, whole-design dump) instead of explicit
/// probes, still byte-identical across engine placements.
std::string
capture_dumpvars(Placement placement, const std::string& path)
{
    Runtime rt(placement == Placement::SoftwareOnly ? sw_only() : hw_fast());
    rt.on_output = [](const std::string&) {};
    std::string errors;
    // Initial blocks run at eval, in software, before any adoption: the
    // dump configuration is runtime-side state and survives the handoff.
    EXPECT_TRUE(rt.eval("initial begin $dumpfile(\"" + path +
                            "\"); $dumpvars; end\n" + kCounterDesign,
                        &errors))
        << errors;
    if (placement == Placement::HardwareFirst) {
        EXPECT_TRUE(rt.wait_for_hardware(30.0));
    }
    rt.run_for_ticks(3);
    if (placement == Placement::AdoptMidRun) {
        EXPECT_TRUE(rt.wait_for_hardware(30.0));
    }
    rt.run_for_ticks(3);
    rt.close_vcd();
    return strip_date(read_file(path));
}

TEST(RuntimeVcd, GoldenDumpvarsAcrossEnginePlacements)
{
    const std::string sw =
        capture_dumpvars(Placement::SoftwareOnly, temp_path("dv_sw.vcd"));
    ASSERT_FALSE(sw.empty());
    EXPECT_NE(sw.find("cnt"), std::string::npos) << sw;

    const std::string hw =
        capture_dumpvars(Placement::HardwareFirst, temp_path("dv_hw.vcd"));
    EXPECT_EQ(sw, hw) << "$dumpvars dump diverged on the fabric";

    const std::string mixed =
        capture_dumpvars(Placement::AdoptMidRun, temp_path("dv_mix.vcd"));
    EXPECT_EQ(sw, mixed) << "$dumpvars dump diverged across adoption";
}

TEST(RuntimeVcd, ProbeValidationAndFreeze)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(kCounterDesign, &errors)) << errors;

    std::string err;
    EXPECT_FALSE(rt.add_probe("no_such_signal", &err));
    EXPECT_NE(err.find("unknown signal"), std::string::npos) << err;

    ASSERT_TRUE(rt.add_probe("cnt", &err)) << err;
    EXPECT_EQ(rt.probes().size(), 1u);
    EXPECT_TRUE(rt.remove_probe("cnt"));
    EXPECT_FALSE(rt.remove_probe("cnt"));

    ASSERT_TRUE(rt.add_probe("cnt", &err)) << err;
    ASSERT_TRUE(rt.vcd_open(temp_path("freeze.vcd"), &err)) << err;
    rt.run_for_ticks(1); // first sample freezes the signal set
    EXPECT_FALSE(rt.add_probe("cnt", &err));
    EXPECT_NE(err.find("frozen"), std::string::npos) << err;
    EXPECT_FALSE(rt.vcd_open(temp_path("freeze2.vcd"), &err));
}

TEST(RuntimeVcd, DumpTasksFromProgram)
{
    const std::string path = temp_path("task_driven.vcd");
    std::remove(path.c_str());
    Runtime rt(sw_only());
    rt.on_output = [](const std::string&) {};
    std::string errors;
    ASSERT_TRUE(rt.eval("initial begin $dumpfile(\"" + path +
                            "\"); $dumpvars; end\n" + kCounterDesign,
                        &errors))
        << errors;
    rt.run_for_ticks(4);
    rt.close_vcd();
    const std::string text = read_file(path);
    EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos) << text;
    EXPECT_NE(text.find("cnt"), std::string::npos) << text;
    EXPECT_NE(text.find("$dumpvars"), std::string::npos) << text;
}

TEST(RuntimeVcd, CountersAppearInStats)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(kCounterDesign, &errors)) << errors;
    std::string err;
    ASSERT_TRUE(rt.add_probe("cnt", &err)) << err;
    ASSERT_TRUE(rt.vcd_open(temp_path("stats.vcd"), &err)) << err;
    rt.run_for_ticks(2);
    const std::string json = rt.stats_json();
    EXPECT_NE(json.find("\"vcd.samples\""), std::string::npos);
    EXPECT_NE(json.find("\"vcd.bytes_written\""), std::string::npos);
}

// ---------------------------------------------------------------------
// $monitor semantics
// ---------------------------------------------------------------------

/// Runs \p src and returns every $display/$monitor line emitted within
/// \p ticks virtual ticks.
std::vector<std::string>
run_and_collect(const Runtime::Options& opts, const std::string& src,
                uint64_t ticks, bool adopt_hw_first = false)
{
    Runtime rt(opts);
    std::vector<std::string> lines;
    rt.on_output = [&lines](const std::string& s) { lines.push_back(s); };
    std::string errors;
    EXPECT_TRUE(rt.eval(src, &errors)) << errors;
    if (adopt_hw_first) {
        EXPECT_TRUE(rt.wait_for_hardware(30.0));
        lines.clear(); // only compare steady-state monitor output
    }
    rt.run_for_ticks(ticks);
    return lines;
}

TEST(Monitor, PrintsOncePerTimestepOnlyOnChange)
{
    // cnt[1] changes every other posedge, so a monitor on it must print
    // half as often as a $display at the same site would.
    const char* src = R"(
        reg [7:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $monitor("bit=%0d", cnt[1]);
        end
    )";
    const auto lines = run_and_collect(sw_only(), src, 8);
    ASSERT_GE(lines.size(), 3u);
    // Strictly alternating values: every printed line differs from the
    // previous one (the definition of on-change-only).
    for (size_t i = 1; i < lines.size(); ++i) {
        EXPECT_NE(lines[i], lines[i - 1]) << "duplicate monitor line";
    }
    EXPECT_EQ(lines[0], "bit=0\n");
    EXPECT_EQ(lines[1], "bit=1\n");
    // 8 ticks of a bit toggling every 2 ticks: at most 5 distinct prints,
    // versus 8 for $display semantics.
    EXPECT_LE(lines.size(), 5u);
}

TEST(Monitor, ConstantArgumentPrintsOnce)
{
    const char* src = R"(
        reg [7:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $monitor("steady=%0d", 7);
        end
    )";
    const auto lines = run_and_collect(sw_only(), src, 6);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "steady=7\n");
}

TEST(Monitor, SoftwareAndHardwareEmitIdenticalLines)
{
    const char* src = R"(
        reg [7:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $monitor("cnt=%0d", cnt);
        end
    )";
    const auto sw = run_and_collect(sw_only(), src, 6);
    ASSERT_GE(sw.size(), 3u);

    // Hardware-resident from tick 0: identical sequence.
    auto hw_opts = hw_fast();
    Runtime rt(hw_opts);
    std::vector<std::string> hw;
    rt.on_output = [&hw](const std::string& s) { hw.push_back(s); };
    std::string errors;
    ASSERT_TRUE(rt.eval(src, &errors)) << errors;
    ASSERT_TRUE(rt.wait_for_hardware(30.0));
    rt.run_for_ticks(6);
    EXPECT_EQ(sw, hw);
}

TEST(Monitor, SurvivesMidRunAdoptionWithoutDuplicates)
{
    const char* src = R"(
        reg [7:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $monitor("cnt=%0d", cnt);
        end
    )";
    // Reference: pure software for 12 ticks.
    const auto want = run_and_collect(sw_only(), src, 12);

    Runtime rt(hw_fast());
    std::vector<std::string> got;
    rt.on_output = [&got](const std::string& s) { got.push_back(s); };
    std::string errors;
    ASSERT_TRUE(rt.eval(src, &errors)) << errors;
    rt.run_for_ticks(6);
    ASSERT_TRUE(rt.wait_for_hardware(30.0));
    ASSERT_NE(rt.user_location(), runtime::Location::Software);
    rt.run_for_ticks(6);
    // The handoff re-arms the fabric's monitor sites; the runtime's text
    // filter absorbs the duplicate candidate, so the merged stream equals
    // the software reference.
    EXPECT_EQ(want, got);
}

} // namespace
} // namespace cascade
