/// \file
/// The target-specific Engine ABI (paper Fig. 7). An engine is the runtime
/// state of one subprogram; the scheduler talks to every engine through
/// this interface and stays agnostic about whether the engine is a
/// software interpreter or FPGA-resident hardware — the mechanism behind
/// Cascade's interactivity guarantee.

#ifndef CASCADE_RUNTIME_ENGINE_H
#define CASCADE_RUNTIME_ENGINE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "sim/interpreter.h"

namespace cascade::runtime {

/// A change to one subprogram port (index into the subprogram's port
/// order).
struct Event {
    uint32_t port = 0;
    BitVector value;
};

/// Runtime services an engine may invoke: system-task side effects are
/// posted to the interrupt queue (paper §3.4) and $time reads the virtual
/// clock.
class EngineCallbacks {
  public:
    virtual ~EngineCallbacks() = default;

    virtual void on_display(const std::string& text) = 0;
    virtual void on_write(const std::string& text) = 0;
    virtual void on_finish() = 0;
    virtual uint64_t virtual_time() const = 0;

    /// $monitor line from the monitor registered under \p key; emitted at
    /// most once per timestep per monitor by the owning engine. The
    /// runtime suppresses lines whose text matches the previous emission
    /// for the same key (so handing a subprogram from software to hardware
    /// does not re-print). Default: behave like $display.
    virtual void
    on_monitor(const std::string& key, const std::string& text)
    {
        (void)key;
        on_display(text);
    }

    /// @{ Waveform dump control ($dumpfile/$dumpvars/$dumpoff/$dumpon).
    /// The dump lives in the runtime, above any single engine, so it
    /// splices across engine transitions. Defaults ignore.
    virtual void on_dumpfile(const std::string& path) { (void)path; }
    virtual void on_dumpvars() {}
    virtual void on_dumpoff() {}
    virtual void on_dumpon() {}
    /// @}
};

class Engine {
  public:
    virtual ~Engine() = default;

    /// @{ State handoff for software/hardware transitions.
    virtual sim::StateSnapshot get_state() = 0;
    virtual void set_state(const sim::StateSnapshot& snapshot) = 0;
    /// @}

    /// Broadcast of an input-port change (paper: read).
    virtual void read(const Event& event) = 0;
    /// Discovery of output-port changes since the last call (paper: write).
    virtual std::vector<Event> write() = 0;

    /// @{ Scheduler interface (Fig. 6).
    virtual bool there_are_evals() = 0;
    virtual void evaluate() = 0;
    virtual bool there_are_updates() = 0;
    virtual void update() = 0;
    virtual void end_step() {}
    virtual void end() {}
    /// @}

    /// True once the subprogram executed $finish.
    virtual bool finished() const { return false; }

    /// Open-loop scheduling (paper §4.4): run up to \p max_iterations
    /// clock toggles internally; returns the number completed. Engines
    /// that do not support it return 0.
    virtual uint64_t
    open_loop(uint64_t max_iterations)
    {
        (void)max_iterations;
        return 0;
    }
    virtual bool supports_open_loop() const { return false; }

    virtual bool is_hardware() const = 0;

    /// Live value of a named signal, for the debugger's `:peek` and
    /// condition evaluation. Unlike get_state() this reads one signal at
    /// honest cost (a map lookup in software, one MMIO read in hardware).
    /// Returns nullopt for unknown names or engines without name access.
    virtual std::optional<BitVector> peek(const std::string& name)
    {
        (void)name;
        return std::nullopt;
    }

    /// Modeled time consumed since the last call (seconds): fabric cycles
    /// and bus transactions for hardware engines; zero for software (the
    /// runtime measures software wall time directly).
    virtual double take_modeled_seconds() { return 0.0; }
};

} // namespace cascade::runtime

#endif // CASCADE_RUNTIME_ENGINE_H
