/// \file
/// JitKernel: a netlist compiled to native code, presented through the
/// FabricExec surface so HwEngine can drive it exactly like a programmed
/// Bitstream — same MMIO slot map, same task readback, same open-loop FSM.
/// create() runs the whole pipeline: codegen → content-addressed compile
/// (or warm load) → dlopen → instantiate.
///
/// Profiling/debug instrumentation use the FabricExec defaults (none):
/// the debugger hot-swaps an instrumented Bitstream twin when it arms, so
/// a kernel never needs trigger cells. Per-register latch counters are
/// kept (they are part of the profiler's adoption-merge contract).

#ifndef CASCADE_JIT_JIT_KERNEL_H
#define CASCADE_JIT_JIT_KERNEL_H

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fpga/fabric_exec.h"
#include "jit/jit_cache.h"

namespace cascade::jit {

class JitKernel : public fpga::FabricExec {
  public:
    /// Generates, compiles (or cache-loads), and instantiates a kernel
    /// for \p nl. Returns nullptr with \p *error set when the tier is
    /// unavailable (no compiler, compile failure, dlopen failure).
    /// \p digest_out / \p cache_hit report the content address and
    /// whether the compile was skipped.
    static std::unique_ptr<JitKernel>
    create(std::shared_ptr<const fpga::Netlist> nl, std::string* error,
           std::string* digest_out = nullptr, bool* cache_hit = nullptr);

    ~JitKernel() override;

    JitKernel(const JitKernel&) = delete;
    JitKernel& operator=(const JitKernel&) = delete;

    const fpga::Netlist& netlist() const override { return *nl_; }
    const std::string& digest() const { return digest_; }

    void set_input(const std::string& name, const BitVector& value) override;
    const BitVector& output(const std::string& name) const override;
    int input_index(const std::string& name) const override;
    int output_index(const std::string& name) const override;
    void set_input(int index, const BitVector& value) override;
    const BitVector& output(int index) const override;

    void eval_comb() override { mod_->eval(state_); }
    void step() override { mod_->step(state_); }
    uint64_t cycles() const override { return mod_->cycles(state_); }

    const BitVector& reg_value(const std::string& name) const override;
    void set_reg(const std::string& name, const BitVector& value) override;
    const BitVector& mem_value(const std::string& name,
                               uint64_t idx) const override;
    void set_mem(const std::string& name, uint64_t idx,
                 const BitVector& value) override;

    uint64_t latch_count(const std::string& name) const override;

  private:
    JitKernel(std::shared_ptr<const fpga::Netlist> nl, const JitModule* mod,
              void* state, std::string digest);

    std::shared_ptr<const fpga::Netlist> nl_;
    const JitModule* mod_; ///< resident for the process lifetime
    void* state_;          ///< kernel-owned State (freed via the ABI)
    std::string digest_;

    std::unordered_map<std::string, int> input_index_;
    std::unordered_map<std::string, int> output_index_;
    std::unordered_map<std::string, uint32_t> reg_index_;
    std::unordered_map<std::string, uint32_t> mem_index_;

    /// Marshalling caches: the FabricExec read API returns references, so
    /// reads land in per-slot BitVectors refreshed on access.
    mutable std::vector<BitVector> out_cache_;
    mutable std::vector<BitVector> reg_cache_;
    mutable std::map<std::pair<uint32_t, uint64_t>, BitVector> mem_cache_;
    mutable std::vector<uint64_t> scratch_;
};

} // namespace cascade::jit

#endif // CASCADE_JIT_JIT_KERNEL_H
