/// \file
/// Tests for $display format rendering (shared between the software engine
/// and the hardware engine's stub).

#include "sim/format.h"

#include <gtest/gtest.h>

namespace cascade::sim {
namespace {

DisplayValue
dv(uint32_t width, uint64_t value, bool is_signed = false)
{
    DisplayValue out;
    out.value = BitVector(width, value);
    out.is_signed = is_signed;
    return out;
}

TEST(Format, PlainText)
{
    EXPECT_EQ(format_display("hello", {}), "hello");
}

TEST(Format, Decimal)
{
    EXPECT_EQ(format_display("%0d", {dv(8, 42)}), "42");
    EXPECT_EQ(format_display("v=%0d.", {dv(8, 0)}), "v=0.");
}

TEST(Format, PaddedDecimalUsesWidthOfType)
{
    // %d pads to the widest decimal an 8-bit value can be (255 -> 3).
    EXPECT_EQ(format_display("%d", {dv(8, 7)}), "  7");
    EXPECT_EQ(format_display("%d", {dv(8, 255)}), "255");
}

TEST(Format, SignedDecimal)
{
    EXPECT_EQ(format_display("%0d", {dv(8, 0xFE, true)}), "-2");
    EXPECT_EQ(format_display("%d", {dv(8, 0xFE, true)}), "-2");
}

TEST(Format, HexBinaryOctal)
{
    EXPECT_EQ(format_display("%h", {dv(12, 0xABC)}), "abc");
    EXPECT_EQ(format_display("%x", {dv(8, 0x5A)}), "5a");
    EXPECT_EQ(format_display("%b", {dv(4, 0b1010)}), "1010");
    EXPECT_EQ(format_display("%o", {dv(6, 055)}), "55");
}

TEST(Format, Char)
{
    EXPECT_EQ(format_display("%c%c", {dv(8, 'h'), dv(8, 'i')}), "hi");
}

TEST(Format, PercentEscape)
{
    EXPECT_EQ(format_display("100%%", {}), "100%");
}

TEST(Format, MultipleSpecifiers)
{
    EXPECT_EQ(format_display("%0d|%h|%b", {dv(8, 10), dv(8, 10), dv(4, 10)}),
              "10|0a|1010");
}

TEST(Format, MissingValuesRenderZero)
{
    EXPECT_EQ(format_display("%0d %0d", {dv(8, 1)}), "1 0");
}

TEST(Format, ExtraValuesIgnored)
{
    EXPECT_EQ(format_display("%0d", {dv(8, 1), dv(8, 2)}), "1");
}

TEST(Format, TrailingPercent)
{
    EXPECT_EQ(format_display("50%", {}), "50%");
}

TEST(Format, UnknownSpecifierFallsBackToDecimal)
{
    EXPECT_EQ(format_display("%q", {dv(8, 9)}), "9");
}

TEST(Format, NoFormatString)
{
    EXPECT_EQ(format_values({dv(8, 5), dv(8, 0xFE, true)}), "5 -2");
    EXPECT_EQ(format_values({}), "");
}

TEST(Format, TimeSpecifier)
{
    // Without a $timeformat, %t renders as unsigned decimal: %0t is
    // minimal-width, %t pads to the widest value of the type.
    EXPECT_EQ(format_display("%0t", {dv(64, 42)}), "42");
    EXPECT_EQ(format_display("t=%0t.", {dv(64, 0)}), "t=0.");
    EXPECT_EQ(format_display("%t", {dv(8, 7)}), "  7");
    // A 64-bit time pads to 20 digits (the width of 2^64-1).
    EXPECT_EQ(format_display("%t", {dv(64, 5)}),
              std::string(19, ' ') + "5");
    // %t is always unsigned, even for signed arguments ($time is a
    // 64-bit unsigned quantity).
    EXPECT_EQ(format_display("%0t", {dv(8, 0xFE, true)}), "254");
}

TEST(Format, WideValues)
{
    BitVector wide = BitVector::all_ones(128);
    DisplayValue v;
    v.value = wide;
    EXPECT_EQ(format_display("%h", {v}), std::string(32, 'f'));
}

} // namespace
} // namespace cascade::sim
