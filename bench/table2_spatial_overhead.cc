/// \file
/// Table 2 (paper §6.1/§6.2 prose): spatial overhead of Cascade's
/// hardware engines. The Fig. 10 instrumentation — shadow registers,
/// update/task masks, the MMIO mux, get/set_state support — costs fabric.
/// The paper reports 2.9x LEs on proof-of-work and 6.5x on regex+FIFO,
/// and notes native mode is identical to a direct Quartus compile.
///
/// Output: one row per workload: direct LEs, wrapped LEs, overhead ratio.

#include <cstdio>
#include <string>

#include "fpga/compile.h"
#include "ir/hw_wrapper.h"
#include "verilog/parser.h"
#include "workloads/workloads.h"

using namespace cascade;
using namespace cascade::verilog;

namespace {

struct Row {
    const char* name;
    uint64_t direct_les = 0;
    uint64_t wrapped_les = 0;
    double direct_fmax = 0;
    double wrapped_fmax = 0;
};

bool
measure(const char* name, const std::string& module_src,
        const std::string& clock, Row* row)
{
    Diagnostics diags;
    SourceUnit unit = parse(module_src, &diags);
    if (diags.has_errors()) {
        std::fprintf(stderr, "%s parse: %s\n", name, diags.str().c_str());
        return false;
    }
    Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    if (em == nullptr) {
        std::fprintf(stderr, "%s elab: %s\n", name, diags.str().c_str());
        return false;
    }
    fpga::CompileOptions opts;
    opts.effort = 0.15; // area is effort-independent; keep this quick
    auto direct = fpga::compile(*em, opts);
    if (!direct.ok) {
        std::fprintf(stderr, "%s direct: %s\n", name,
                     direct.error.c_str());
        return false;
    }
    ir::WrapperMap map;
    auto wrapper = ir::generate_hw_wrapper(*em, clock, &map, &diags);
    if (wrapper == nullptr) {
        std::fprintf(stderr, "%s wrap: %s\n", name, diags.str().c_str());
        return false;
    }
    Diagnostics d2;
    Elaborator elab2(&d2);
    auto wem = elab2.elaborate(*wrapper);
    if (wem == nullptr) {
        std::fprintf(stderr, "%s welab: %s\n", name, d2.str().c_str());
        return false;
    }
    auto wrapped = fpga::compile(*wem, opts);
    if (!wrapped.ok) {
        std::fprintf(stderr, "%s wrapped: %s\n", name,
                     wrapped.error.c_str());
        return false;
    }
    row->name = name;
    row->direct_les = direct.report.area.les;
    row->wrapped_les = wrapped.report.area.les;
    row->direct_fmax = direct.report.timing.fmax_mhz;
    row->wrapped_fmax = wrapped.report.timing.fmax_mhz;
    return true;
}

} // namespace

int
main()
{
    std::printf("Table 2: spatial overhead of Cascade hardware engines\n");
    std::printf("%-18s %10s %10s %8s %10s %10s   paper\n", "workload",
                "direct_LE", "wrapped_LE", "ratio", "direct_MHz",
                "wrapped_MHz");

    Row pow;
    if (measure("proof_of_work",
                workloads::proof_of_work_module(16), "clk", &pow)) {
        std::printf("%-18s %10llu %10llu %7.1fx %10.1f %10.1f   2.9x\n",
                    pow.name,
                    static_cast<unsigned long long>(pow.direct_les),
                    static_cast<unsigned long long>(pow.wrapped_les),
                    static_cast<double>(pow.wrapped_les) /
                        static_cast<double>(pow.direct_les),
                    pow.direct_fmax, pow.wrapped_fmax);
    }

    Row regex;
    // The regex workload plus the FIFO it streams from (as deployed).
    const std::string regex_with_fifo = R"(
module RegexFifo(input wire clk, input wire [7:0] pins, input wire push,
                 output wire [31:0] nhits);
  reg [7:0] mem [0:63];
  reg [6:0] head = 0;
  reg [6:0] tail = 0;
  wire empty;
  wire full;
  wire [7:0] ch;
  assign empty = head == tail;
  assign full = (tail - head) == 64;
  assign ch = mem[head[5:0]];
  reg [2:0] state = 0;
  reg [31:0] hits = 0;
  wire lower;
  assign lower = (ch >= 8'h61) && (ch <= 8'h7a);
  always @(posedge clk) begin
    if (push && !full) begin
      mem[tail[5:0]] <= pins;
      tail <= tail + 1;
    end
    if (!empty) begin
      head <= head + 1;
      case (state)
        0: state <= (ch == 8'h47) ? 1 : 0;
        1: state <= (ch == 8'h45) ? 2 : ((ch == 8'h47) ? 1 : 0);
        2: state <= (ch == 8'h54) ? 3 : ((ch == 8'h47) ? 1 : 0);
        3: state <= (ch == 8'h20) ? 4 : ((ch == 8'h47) ? 1 : 0);
        4: state <= (ch == 8'h2f) ? 5 : ((ch == 8'h47) ? 1 : 0);
        5: state <= lower ? 6 : ((ch == 8'h47) ? 1 : 0);
        6:
          if (ch == 8'h20) begin
            hits <= hits + 1;
            state <= 0;
          end else
            state <= lower ? 6 : ((ch == 8'h47) ? 1 : 0);
        default: state <= 0;
      endcase
    end
  end
  assign nhits = hits;
endmodule
)";
    if (measure("regex_with_fifo", regex_with_fifo, "clk", &regex)) {
        std::printf("%-18s %10llu %10llu %7.1fx %10.1f %10.1f   6.5x\n",
                    regex.name,
                    static_cast<unsigned long long>(regex.direct_les),
                    static_cast<unsigned long long>(regex.wrapped_les),
                    static_cast<double>(regex.wrapped_les) /
                        static_cast<double>(regex.direct_les),
                    regex.direct_fmax, regex.wrapped_fmax);
    }

    std::printf("\n(native mode compiles the design exactly as written: "
                "identical to the direct column by construction)\n");
    return 0;
}
