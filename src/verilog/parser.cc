#include "verilog/parser.h"

#include <utility>

#include "common/check.h"
#include "verilog/lexer.h"

namespace cascade::verilog {

namespace {

/// Binary operator precedence, higher binds tighter. Mirrors IEEE 1364
/// table 5-4 (ternary and unary handled separately).
int
binary_precedence(TokenKind kind)
{
    switch (kind) {
      case TokenKind::StarStar: return 11;
      case TokenKind::Star:
      case TokenKind::Slash:
      case TokenKind::Percent: return 10;
      case TokenKind::Plus:
      case TokenKind::Minus: return 9;
      case TokenKind::Shl:
      case TokenKind::Shr:
      case TokenKind::AShl:
      case TokenKind::AShr: return 8;
      case TokenKind::Lt:
      case TokenKind::LtEq:
      case TokenKind::Gt:
      case TokenKind::GtEq: return 7;
      case TokenKind::EqEq:
      case TokenKind::BangEq:
      case TokenKind::EqEqEq:
      case TokenKind::BangEqEq: return 6;
      case TokenKind::Amp: return 5;
      case TokenKind::Caret:
      case TokenKind::TildeCaret: return 4;
      case TokenKind::Pipe: return 3;
      case TokenKind::AmpAmp: return 2;
      case TokenKind::PipePipe: return 1;
      default: return -1;
    }
}

BinaryOp
binary_op_for(TokenKind kind)
{
    switch (kind) {
      case TokenKind::StarStar: return BinaryOp::Pow;
      case TokenKind::Star: return BinaryOp::Mul;
      case TokenKind::Slash: return BinaryOp::Div;
      case TokenKind::Percent: return BinaryOp::Mod;
      case TokenKind::Plus: return BinaryOp::Add;
      case TokenKind::Minus: return BinaryOp::Sub;
      case TokenKind::Shl: return BinaryOp::Shl;
      case TokenKind::AShl: return BinaryOp::Shl;
      case TokenKind::Shr: return BinaryOp::Shr;
      case TokenKind::AShr: return BinaryOp::AShr;
      case TokenKind::Lt: return BinaryOp::Lt;
      case TokenKind::LtEq: return BinaryOp::Leq;
      case TokenKind::Gt: return BinaryOp::Gt;
      case TokenKind::GtEq: return BinaryOp::Geq;
      case TokenKind::EqEq: return BinaryOp::Eq;
      case TokenKind::BangEq: return BinaryOp::Neq;
      case TokenKind::EqEqEq: return BinaryOp::CaseEq;
      case TokenKind::BangEqEq: return BinaryOp::CaseNeq;
      case TokenKind::Amp: return BinaryOp::BitAnd;
      case TokenKind::Caret: return BinaryOp::BitXor;
      case TokenKind::TildeCaret: return BinaryOp::BitXnor;
      case TokenKind::Pipe: return BinaryOp::BitOr;
      case TokenKind::AmpAmp: return BinaryOp::LogicalAnd;
      case TokenKind::PipePipe: return BinaryOp::LogicalOr;
      default: CASCADE_UNREACHABLE();
    }
}

} // namespace

Parser::Parser(std::vector<Token> tokens, Diagnostics* diags)
    : tokens_(std::move(tokens)), diags_(diags)
{
    CASCADE_CHECK(!tokens_.empty());
    CASCADE_CHECK(tokens_.back().kind == TokenKind::EndOfFile);
}

const Token&
Parser::peek(size_t ahead) const
{
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
}

const Token&
Parser::advance()
{
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) {
        ++pos_;
    }
    return t;
}

bool
Parser::match(TokenKind kind)
{
    if (check(kind)) {
        advance();
        return true;
    }
    return false;
}

bool
Parser::expect(TokenKind kind, const char* context)
{
    if (check(kind)) {
        advance();
        return true;
    }
    diags_->error(peek().loc, std::string("expected ") +
                                  token_kind_name(kind) + " " + context +
                                  ", found " + token_kind_name(peek().kind));
    return false;
}

void
Parser::error_here(const std::string& msg)
{
    diags_->error(peek().loc, msg);
}

void
Parser::synchronize()
{
    while (!at_end()) {
        const TokenKind k = advance().kind;
        if (k == TokenKind::Semi || k == TokenKind::KwEndmodule ||
            k == TokenKind::KwEnd) {
            return;
        }
        if (check(TokenKind::KwModule)) {
            return;
        }
    }
}

SourceUnit
Parser::parse_source_unit()
{
    SourceUnit unit;
    while (!at_end()) {
        if (check(TokenKind::KwModule)) {
            auto m = parse_module_decl();
            if (m != nullptr) {
                unit.modules.push_back(std::move(m));
            }
        } else if (check(TokenKind::SystemId)) {
            // A bare system task at top level becomes an initial block in
            // the root module, so "$display(x);" works at the REPL.
            StmtPtr stmt = parse_system_task();
            if (stmt != nullptr) {
                const SourceLoc loc = stmt->loc;
                unit.root_items.push_back(
                    std::make_unique<InitialBlock>(std::move(stmt), loc));
            }
        } else {
            ItemPtr item = parse_module_item();
            if (item != nullptr) {
                unit.root_items.push_back(std::move(item));
            } else if (!at_end() && diags_->has_errors()) {
                // parse_module_item already synchronized.
            }
        }
    }
    return unit;
}

std::unique_ptr<ModuleDecl>
Parser::parse_module_decl()
{
    auto mod = std::make_unique<ModuleDecl>();
    mod->loc = peek().loc;
    expect(TokenKind::KwModule, "to start module");
    if (!check(TokenKind::Identifier)) {
        error_here("expected module name");
        synchronize();
        return nullptr;
    }
    mod->name = advance().text;

    if (match(TokenKind::Hash)) {
        if (!expect(TokenKind::LParen, "after '#'")) {
            synchronize();
            return nullptr;
        }
        while (!check(TokenKind::RParen) && !at_end()) {
            if (check(TokenKind::KwParameter)) {
                ItemPtr p = parse_param_decl(/*in_header=*/true);
                if (p != nullptr) {
                    mod->header_params.push_back(std::move(p));
                }
            } else {
                error_here("expected 'parameter' in module header");
                break;
            }
            if (!match(TokenKind::Comma)) {
                break;
            }
        }
        expect(TokenKind::RParen, "to close parameter list");
    }

    if (match(TokenKind::LParen)) {
        if (!check(TokenKind::RParen)) {
            mod->ports = parse_port_list();
        }
        expect(TokenKind::RParen, "to close port list");
    }
    expect(TokenKind::Semi, "after module header");

    while (!check(TokenKind::KwEndmodule) && !at_end()) {
        ItemPtr item = parse_module_item();
        if (item != nullptr) {
            mod->items.push_back(std::move(item));
        }
    }
    expect(TokenKind::KwEndmodule, "to close module");
    return mod;
}

std::vector<Port>
Parser::parse_port_list()
{
    std::vector<Port> ports;
    PortDir dir = PortDir::Input;
    bool have_dir = false;
    bool is_reg = false;
    bool is_signed = false;
    Range range;

    while (!at_end()) {
        if (check(TokenKind::KwInput) || check(TokenKind::KwOutput) ||
            check(TokenKind::KwInout)) {
            const TokenKind k = advance().kind;
            dir = k == TokenKind::KwInput
                      ? PortDir::Input
                      : (k == TokenKind::KwOutput ? PortDir::Output
                                                  : PortDir::Inout);
            have_dir = true;
            is_reg = false;
            is_signed = false;
            range = Range{};
            if (match(TokenKind::KwWire)) {
                // nothing: wire is the default
            } else if (match(TokenKind::KwReg)) {
                is_reg = true;
            }
            if (match(TokenKind::KwSigned)) {
                is_signed = true;
            }
            if (check(TokenKind::LBracket)) {
                range = parse_range();
            }
        }
        if (!have_dir) {
            error_here("expected port direction (ANSI-style header)");
            return ports;
        }
        if (!check(TokenKind::Identifier)) {
            error_here("expected port name");
            return ports;
        }
        Port p;
        p.dir = dir;
        p.is_reg = is_reg;
        p.is_signed = is_signed;
        p.range = range.clone();
        p.loc = peek().loc;
        p.name = advance().text;
        ports.push_back(std::move(p));
        if (!match(TokenKind::Comma)) {
            break;
        }
    }
    return ports;
}

Range
Parser::parse_range()
{
    Range r;
    expect(TokenKind::LBracket, "to open range");
    r.msb = parse_expr();
    expect(TokenKind::Colon, "in range");
    r.lsb = parse_expr();
    expect(TokenKind::RBracket, "to close range");
    return r;
}

ItemPtr
Parser::parse_module_item()
{
    switch (peek().kind) {
      case TokenKind::KwWire:
      case TokenKind::KwReg:
      case TokenKind::KwInteger:
        return parse_net_decl();
      case TokenKind::KwParameter:
      case TokenKind::KwLocalparam: {
        ItemPtr p = parse_param_decl(/*in_header=*/false);
        expect(TokenKind::Semi, "after parameter declaration");
        return p;
      }
      case TokenKind::KwAssign:
        return parse_continuous_assign();
      case TokenKind::KwAlways:
        return parse_always();
      case TokenKind::KwInitial:
        return parse_initial();
      case TokenKind::KwFunction:
        return parse_function_decl();
      case TokenKind::Identifier:
        return parse_instantiation();
      default:
        error_here(std::string("unexpected ") +
                   token_kind_name(peek().kind) + " at module scope");
        synchronize();
        return nullptr;
    }
}

ItemPtr
Parser::parse_net_decl()
{
    auto decl = std::make_unique<NetDecl>();
    decl->loc = peek().loc;
    const TokenKind k = advance().kind;
    if (k == TokenKind::KwInteger) {
        // integer x; is sugar for reg signed [31:0] x;
        decl->is_reg = true;
        decl->is_signed = true;
        decl->range.msb = std::make_unique<NumberExpr>(BitVector(32, 31),
                                                       false, true);
        decl->range.lsb = std::make_unique<NumberExpr>(BitVector(32, 0),
                                                       false, true);
    } else {
        decl->is_reg = k == TokenKind::KwReg;
        if (match(TokenKind::KwSigned)) {
            decl->is_signed = true;
        }
        if (check(TokenKind::LBracket)) {
            decl->range = parse_range();
        }
    }

    while (true) {
        if (!check(TokenKind::Identifier)) {
            error_here("expected net name");
            synchronize();
            return nullptr;
        }
        NetDeclarator d;
        d.name = advance().text;
        if (check(TokenKind::LBracket)) {
            d.array_dim = parse_range();
        }
        if (match(TokenKind::Assign)) {
            d.init = parse_expr();
        }
        decl->decls.push_back(std::move(d));
        if (!match(TokenKind::Comma)) {
            break;
        }
    }
    expect(TokenKind::Semi, "after net declaration");
    return decl;
}

ItemPtr
Parser::parse_param_decl(bool in_header)
{
    auto decl = std::make_unique<ParamDecl>();
    decl->loc = peek().loc;
    decl->local = peek().kind == TokenKind::KwLocalparam;
    advance(); // parameter/localparam
    if (match(TokenKind::KwSigned)) {
        decl->is_signed = true;
    }
    if (check(TokenKind::LBracket)) {
        decl->range = parse_range();
    }
    if (!check(TokenKind::Identifier)) {
        error_here("expected parameter name");
        if (!in_header) {
            synchronize();
        }
        return nullptr;
    }
    decl->name = advance().text;
    if (!expect(TokenKind::Assign, "after parameter name")) {
        return nullptr;
    }
    decl->value = parse_expr();
    return decl;
}

ItemPtr
Parser::parse_continuous_assign()
{
    const SourceLoc loc = peek().loc;
    expect(TokenKind::KwAssign, "to start continuous assign");
    ExprPtr lhs = check(TokenKind::LBrace) ? parse_concat()
                                           : parse_identifier_expr();
    if (lhs == nullptr) {
        synchronize();
        return nullptr;
    }
    if (!expect(TokenKind::Assign, "in continuous assign")) {
        synchronize();
        return nullptr;
    }
    ExprPtr rhs = parse_expr();
    expect(TokenKind::Semi, "after continuous assign");
    if (rhs == nullptr) {
        return nullptr;
    }
    return std::make_unique<ContinuousAssign>(std::move(lhs), std::move(rhs),
                                              loc);
}

ItemPtr
Parser::parse_always()
{
    auto block = std::make_unique<AlwaysBlock>();
    block->loc = peek().loc;
    expect(TokenKind::KwAlways, "to start always block");
    if (!expect(TokenKind::At, "after 'always'")) {
        synchronize();
        return nullptr;
    }
    if (match(TokenKind::Star)) {
        block->star = true;
    } else {
        if (!expect(TokenKind::LParen, "after '@'")) {
            synchronize();
            return nullptr;
        }
        if (match(TokenKind::Star)) {
            block->star = true;
        } else {
            while (!at_end()) {
                SensitivityItem item;
                if (match(TokenKind::KwPosedge)) {
                    item.edge = EdgeKind::Pos;
                } else if (match(TokenKind::KwNegedge)) {
                    item.edge = EdgeKind::Neg;
                }
                item.signal = parse_identifier_expr();
                if (item.signal == nullptr) {
                    synchronize();
                    return nullptr;
                }
                block->sensitivity.push_back(std::move(item));
                if (!match(TokenKind::KwOr) && !match(TokenKind::Comma)) {
                    break;
                }
            }
        }
        expect(TokenKind::RParen, "to close sensitivity list");
    }
    block->body = parse_statement();
    if (block->body == nullptr) {
        return nullptr;
    }
    return block;
}

ItemPtr
Parser::parse_initial()
{
    const SourceLoc loc = peek().loc;
    expect(TokenKind::KwInitial, "to start initial block");
    StmtPtr body = parse_statement();
    if (body == nullptr) {
        return nullptr;
    }
    return std::make_unique<InitialBlock>(std::move(body), loc);
}

ItemPtr
Parser::parse_function_decl()
{
    auto fn = std::make_unique<FunctionDecl>();
    fn->loc = peek().loc;
    expect(TokenKind::KwFunction, "to start function");
    if (match(TokenKind::KwSigned)) {
        fn->ret_signed = true;
    }
    if (check(TokenKind::LBracket)) {
        fn->ret_range = parse_range();
    }
    if (!check(TokenKind::Identifier)) {
        error_here("expected function name");
        synchronize();
        return nullptr;
    }
    fn->name = advance().text;
    expect(TokenKind::Semi, "after function name");

    // Input and local variable declarations.
    while (check(TokenKind::KwInput) || check(TokenKind::KwReg) ||
           check(TokenKind::KwInteger)) {
        const bool is_input = check(TokenKind::KwInput);
        if (is_input) {
            advance();
            auto decl = std::make_unique<NetDecl>();
            decl->loc = peek().loc;
            decl->is_reg = true;
            if (match(TokenKind::KwSigned)) {
                decl->is_signed = true;
            }
            if (check(TokenKind::LBracket)) {
                decl->range = parse_range();
            }
            while (true) {
                if (!check(TokenKind::Identifier)) {
                    error_here("expected input name");
                    synchronize();
                    return nullptr;
                }
                NetDeclarator d;
                d.name = advance().text;
                decl->decls.push_back(std::move(d));
                if (!match(TokenKind::Comma)) {
                    break;
                }
            }
            expect(TokenKind::Semi, "after function input");
            fn->decls.push_back(std::move(decl));
            fn->decl_is_input.push_back(true);
        } else {
            ItemPtr decl = parse_net_decl();
            if (decl == nullptr) {
                return nullptr;
            }
            fn->decls.push_back(std::move(decl));
            fn->decl_is_input.push_back(false);
        }
    }

    fn->body = parse_statement();
    expect(TokenKind::KwEndfunction, "to close function");
    if (fn->body == nullptr) {
        return nullptr;
    }
    return fn;
}

ItemPtr
Parser::parse_instantiation()
{
    auto inst = std::make_unique<Instantiation>();
    inst->loc = peek().loc;
    inst->module_name = advance().text;
    if (match(TokenKind::Hash)) {
        expect(TokenKind::LParen, "after '#'");
        inst->parameters = parse_connection_list();
        expect(TokenKind::RParen, "to close parameter overrides");
    }
    if (!check(TokenKind::Identifier)) {
        error_here("expected instance name (or unknown statement at module "
                   "scope)");
        synchronize();
        return nullptr;
    }
    inst->instance_name = advance().text;
    if (!expect(TokenKind::LParen, "after instance name")) {
        synchronize();
        return nullptr;
    }
    if (!check(TokenKind::RParen)) {
        inst->ports = parse_connection_list();
    }
    expect(TokenKind::RParen, "to close port connections");
    expect(TokenKind::Semi, "after instantiation");
    return inst;
}

std::vector<Connection>
Parser::parse_connection_list()
{
    std::vector<Connection> conns;
    while (!at_end()) {
        Connection c;
        if (match(TokenKind::Dot)) {
            if (!check(TokenKind::Identifier)) {
                error_here("expected connection name after '.'");
                return conns;
            }
            c.name = advance().text;
            expect(TokenKind::LParen, "after connection name");
            if (!check(TokenKind::RParen)) {
                c.expr = parse_expr();
            }
            expect(TokenKind::RParen, "to close connection");
        } else {
            c.expr = parse_expr();
        }
        conns.push_back(std::move(c));
        if (!match(TokenKind::Comma)) {
            break;
        }
    }
    return conns;
}

StmtPtr
Parser::parse_statement()
{
    switch (peek().kind) {
      case TokenKind::KwBegin:
        return parse_block();
      case TokenKind::KwIf:
        return parse_if();
      case TokenKind::KwCase:
        advance();
        return parse_case(CaseKind::Case);
      case TokenKind::KwCasez:
        advance();
        return parse_case(CaseKind::Casez);
      case TokenKind::KwCasex:
        advance();
        return parse_case(CaseKind::Casex);
      case TokenKind::KwFor:
        return parse_for();
      case TokenKind::KwWhile: {
        const SourceLoc loc = advance().loc;
        expect(TokenKind::LParen, "after 'while'");
        ExprPtr cond = parse_expr();
        expect(TokenKind::RParen, "to close while condition");
        StmtPtr body = parse_statement();
        if (cond == nullptr || body == nullptr) {
            return nullptr;
        }
        return std::make_unique<WhileStmt>(std::move(cond), std::move(body),
                                           loc);
      }
      case TokenKind::KwRepeat: {
        const SourceLoc loc = advance().loc;
        expect(TokenKind::LParen, "after 'repeat'");
        ExprPtr count = parse_expr();
        expect(TokenKind::RParen, "to close repeat count");
        StmtPtr body = parse_statement();
        if (count == nullptr || body == nullptr) {
            return nullptr;
        }
        return std::make_unique<RepeatStmt>(std::move(count),
                                            std::move(body), loc);
      }
      case TokenKind::KwForever: {
        const SourceLoc loc = advance().loc;
        StmtPtr body = parse_statement();
        if (body == nullptr) {
            return nullptr;
        }
        return std::make_unique<ForeverStmt>(std::move(body), loc);
      }
      case TokenKind::SystemId:
        return parse_system_task();
      case TokenKind::Semi: {
        const SourceLoc loc = advance().loc;
        return std::make_unique<NullStmt>(loc);
      }
      case TokenKind::Identifier:
      case TokenKind::LBrace:
        return parse_assignment(/*want_semi=*/true);
      default:
        error_here(std::string("unexpected ") +
                   token_kind_name(peek().kind) + " at statement position");
        synchronize();
        return nullptr;
    }
}

StmtPtr
Parser::parse_block()
{
    const SourceLoc loc = peek().loc;
    expect(TokenKind::KwBegin, "to open block");
    // Optional block label: begin : name
    if (match(TokenKind::Colon)) {
        if (check(TokenKind::Identifier)) {
            advance();
        }
    }
    std::vector<StmtPtr> stmts;
    while (!check(TokenKind::KwEnd) && !at_end()) {
        StmtPtr s = parse_statement();
        if (s != nullptr) {
            stmts.push_back(std::move(s));
        }
    }
    expect(TokenKind::KwEnd, "to close block");
    return std::make_unique<BlockStmt>(std::move(stmts), loc);
}

StmtPtr
Parser::parse_if()
{
    const SourceLoc loc = peek().loc;
    expect(TokenKind::KwIf, "to start if");
    expect(TokenKind::LParen, "after 'if'");
    ExprPtr cond = parse_expr();
    expect(TokenKind::RParen, "to close if condition");
    StmtPtr then_stmt = parse_statement();
    StmtPtr else_stmt;
    if (match(TokenKind::KwElse)) {
        else_stmt = parse_statement();
    }
    if (cond == nullptr || then_stmt == nullptr) {
        return nullptr;
    }
    return std::make_unique<IfStmt>(std::move(cond), std::move(then_stmt),
                                    std::move(else_stmt), loc);
}

StmtPtr
Parser::parse_case(CaseKind kind)
{
    const SourceLoc loc = peek().loc;
    expect(TokenKind::LParen, "after 'case'");
    ExprPtr subject = parse_expr();
    expect(TokenKind::RParen, "to close case subject");
    std::vector<CaseItem> items;
    while (!check(TokenKind::KwEndcase) && !at_end()) {
        CaseItem item;
        if (match(TokenKind::KwDefault)) {
            match(TokenKind::Colon);
        } else {
            while (true) {
                ExprPtr label = parse_expr();
                if (label == nullptr) {
                    synchronize();
                    return nullptr;
                }
                item.labels.push_back(std::move(label));
                if (!match(TokenKind::Comma)) {
                    break;
                }
            }
            expect(TokenKind::Colon, "after case labels");
        }
        item.stmt = parse_statement();
        if (item.stmt == nullptr) {
            return nullptr;
        }
        items.push_back(std::move(item));
    }
    expect(TokenKind::KwEndcase, "to close case");
    if (subject == nullptr) {
        return nullptr;
    }
    return std::make_unique<CaseStmt>(kind, std::move(subject),
                                      std::move(items), loc);
}

StmtPtr
Parser::parse_for()
{
    const SourceLoc loc = peek().loc;
    expect(TokenKind::KwFor, "to start for");
    expect(TokenKind::LParen, "after 'for'");
    StmtPtr init = parse_assignment(/*want_semi=*/true);
    ExprPtr cond = parse_expr();
    expect(TokenKind::Semi, "after for condition");
    StmtPtr step = parse_assignment(/*want_semi=*/false);
    expect(TokenKind::RParen, "to close for header");
    StmtPtr body = parse_statement();
    if (init == nullptr || cond == nullptr || step == nullptr ||
        body == nullptr) {
        return nullptr;
    }
    return std::make_unique<ForStmt>(std::move(init), std::move(cond),
                                     std::move(step), std::move(body), loc);
}

StmtPtr
Parser::parse_assignment(bool want_semi)
{
    const SourceLoc loc = peek().loc;
    ExprPtr lhs = check(TokenKind::LBrace) ? parse_concat()
                                           : parse_identifier_expr();
    if (lhs == nullptr) {
        synchronize();
        return nullptr;
    }
    StmtPtr stmt;
    if (match(TokenKind::Assign)) {
        ExprPtr rhs = parse_expr();
        if (rhs == nullptr) {
            return nullptr;
        }
        stmt = std::make_unique<BlockingAssignStmt>(std::move(lhs),
                                                    std::move(rhs), loc);
    } else if (match(TokenKind::LtEq)) {
        ExprPtr rhs = parse_expr();
        if (rhs == nullptr) {
            return nullptr;
        }
        stmt = std::make_unique<NonblockingAssignStmt>(std::move(lhs),
                                                       std::move(rhs), loc);
    } else {
        error_here("expected '=' or '<=' in assignment");
        synchronize();
        return nullptr;
    }
    if (want_semi) {
        expect(TokenKind::Semi, "after assignment");
    }
    return stmt;
}

StmtPtr
Parser::parse_system_task()
{
    const SourceLoc loc = peek().loc;
    std::string name = advance().text;
    std::vector<ExprPtr> args;
    if (match(TokenKind::LParen)) {
        if (!check(TokenKind::RParen)) {
            while (true) {
                ExprPtr arg = parse_expr();
                if (arg == nullptr) {
                    synchronize();
                    return nullptr;
                }
                args.push_back(std::move(arg));
                if (!match(TokenKind::Comma)) {
                    break;
                }
            }
        }
        expect(TokenKind::RParen, "to close system task arguments");
    }
    expect(TokenKind::Semi, "after system task");
    return std::make_unique<SystemTaskStmt>(std::move(name), std::move(args),
                                            loc);
}

ExprPtr
Parser::parse_expr()
{
    return parse_ternary();
}

ExprPtr
Parser::parse_ternary()
{
    ExprPtr cond = parse_binary(0);
    if (cond == nullptr) {
        return nullptr;
    }
    if (!match(TokenKind::Question)) {
        return cond;
    }
    const SourceLoc loc = cond->loc;
    ExprPtr then_expr = parse_ternary();
    if (!expect(TokenKind::Colon, "in ternary expression")) {
        return nullptr;
    }
    ExprPtr else_expr = parse_ternary();
    if (then_expr == nullptr || else_expr == nullptr) {
        return nullptr;
    }
    return std::make_unique<TernaryExpr>(std::move(cond),
                                         std::move(then_expr),
                                         std::move(else_expr), loc);
}

ExprPtr
Parser::parse_binary(int min_prec)
{
    ExprPtr lhs = parse_unary();
    if (lhs == nullptr) {
        return nullptr;
    }
    while (true) {
        const TokenKind k = peek().kind;
        const int prec = binary_precedence(k);
        if (prec < 0 || prec < min_prec) {
            return lhs;
        }
        const SourceLoc loc = peek().loc;
        advance();
        // ** is right-associative; everything else is left-associative.
        const int next_min = k == TokenKind::StarStar ? prec : prec + 1;
        ExprPtr rhs = parse_binary(next_min);
        if (rhs == nullptr) {
            return nullptr;
        }
        lhs = std::make_unique<BinaryExpr>(binary_op_for(k), std::move(lhs),
                                           std::move(rhs), loc);
    }
}

ExprPtr
Parser::parse_unary()
{
    const SourceLoc loc = peek().loc;
    UnaryOp op;
    switch (peek().kind) {
      case TokenKind::Plus: op = UnaryOp::Plus; break;
      case TokenKind::Minus: op = UnaryOp::Minus; break;
      case TokenKind::Bang: op = UnaryOp::LogicalNot; break;
      case TokenKind::Tilde: op = UnaryOp::BitwiseNot; break;
      case TokenKind::Amp: op = UnaryOp::ReduceAnd; break;
      case TokenKind::Pipe: op = UnaryOp::ReduceOr; break;
      case TokenKind::Caret: op = UnaryOp::ReduceXor; break;
      case TokenKind::TildeAmp: op = UnaryOp::ReduceNand; break;
      case TokenKind::TildePipe: op = UnaryOp::ReduceNor; break;
      case TokenKind::TildeCaret: op = UnaryOp::ReduceXnor; break;
      default:
        return parse_primary();
    }
    advance();
    ExprPtr operand = parse_unary();
    if (operand == nullptr) {
        return nullptr;
    }
    return std::make_unique<UnaryExpr>(op, std::move(operand), loc);
}

ExprPtr
Parser::parse_primary()
{
    const SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case TokenKind::Number: {
        const Token& t = advance();
        return std::make_unique<NumberExpr>(t.value, t.sized, t.is_signed,
                                            loc);
      }
      case TokenKind::String: {
        const Token& t = advance();
        return std::make_unique<StringExpr>(t.text, loc);
      }
      case TokenKind::LParen: {
        advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::RParen, "to close parenthesized expression");
        return inner;
      }
      case TokenKind::LBrace:
        return parse_concat();
      case TokenKind::SystemId: {
        std::string name = advance().text;
        std::vector<ExprPtr> args;
        if (match(TokenKind::LParen)) {
            if (!check(TokenKind::RParen)) {
                while (true) {
                    ExprPtr arg = parse_expr();
                    if (arg == nullptr) {
                        return nullptr;
                    }
                    args.push_back(std::move(arg));
                    if (!match(TokenKind::Comma)) {
                        break;
                    }
                }
            }
            expect(TokenKind::RParen, "to close system call");
        }
        return std::make_unique<SystemCallExpr>(std::move(name),
                                                std::move(args), loc);
      }
      case TokenKind::Identifier: {
        // Function call if the (simple) identifier is directly followed by
        // an open paren; otherwise a (possibly selected) name.
        if (peek(1).kind == TokenKind::LParen) {
            std::string callee = advance().text;
            advance(); // (
            std::vector<ExprPtr> args;
            if (!check(TokenKind::RParen)) {
                while (true) {
                    ExprPtr arg = parse_expr();
                    if (arg == nullptr) {
                        return nullptr;
                    }
                    args.push_back(std::move(arg));
                    if (!match(TokenKind::Comma)) {
                        break;
                    }
                }
            }
            expect(TokenKind::RParen, "to close function call");
            return std::make_unique<CallExpr>(std::move(callee),
                                              std::move(args), loc);
        }
        return parse_identifier_expr();
      }
      default:
        error_here(std::string("unexpected ") +
                   token_kind_name(peek().kind) + " in expression");
        advance();
        return nullptr;
    }
}

ExprPtr
Parser::parse_identifier_expr()
{
    if (!check(TokenKind::Identifier)) {
        error_here("expected identifier");
        return nullptr;
    }
    const SourceLoc loc = peek().loc;
    std::vector<std::string> path;
    path.push_back(advance().text);
    while (check(TokenKind::Dot) && peek(1).kind == TokenKind::Identifier) {
        advance();
        path.push_back(advance().text);
    }
    ExprPtr base = std::make_unique<IdentifierExpr>(std::move(path), loc);
    return parse_selects(std::move(base));
}

ExprPtr
Parser::parse_selects(ExprPtr base)
{
    while (check(TokenKind::LBracket)) {
        const SourceLoc loc = peek().loc;
        advance();
        ExprPtr first = parse_expr();
        if (first == nullptr) {
            return nullptr;
        }
        if (match(TokenKind::Colon)) {
            ExprPtr lsb = parse_expr();
            expect(TokenKind::RBracket, "to close range select");
            if (lsb == nullptr) {
                return nullptr;
            }
            base = std::make_unique<RangeSelectExpr>(std::move(base),
                                                     std::move(first),
                                                     std::move(lsb), loc);
        } else if (match(TokenKind::PlusColon)) {
            ExprPtr width = parse_expr();
            expect(TokenKind::RBracket, "to close indexed select");
            if (width == nullptr) {
                return nullptr;
            }
            base = std::make_unique<IndexedSelectExpr>(std::move(base),
                                                       std::move(first),
                                                       std::move(width),
                                                       /*up=*/true, loc);
        } else if (match(TokenKind::MinusColon)) {
            ExprPtr width = parse_expr();
            expect(TokenKind::RBracket, "to close indexed select");
            if (width == nullptr) {
                return nullptr;
            }
            base = std::make_unique<IndexedSelectExpr>(std::move(base),
                                                       std::move(first),
                                                       std::move(width),
                                                       /*up=*/false, loc);
        } else {
            expect(TokenKind::RBracket, "to close bit select");
            base = std::make_unique<IndexExpr>(std::move(base),
                                               std::move(first), loc);
        }
    }
    return base;
}

ExprPtr
Parser::parse_concat()
{
    const SourceLoc loc = peek().loc;
    expect(TokenKind::LBrace, "to open concatenation");
    ExprPtr first = parse_expr();
    if (first == nullptr) {
        return nullptr;
    }
    if (check(TokenKind::LBrace)) {
        // Replication: {count{a, b, ...}}
        advance();
        std::vector<ExprPtr> elements;
        while (true) {
            ExprPtr e = parse_expr();
            if (e == nullptr) {
                return nullptr;
            }
            elements.push_back(std::move(e));
            if (!match(TokenKind::Comma)) {
                break;
            }
        }
        expect(TokenKind::RBrace, "to close replication body");
        expect(TokenKind::RBrace, "to close replication");
        ExprPtr body =
            elements.size() == 1
                ? std::move(elements[0])
                : std::make_unique<ConcatExpr>(std::move(elements), loc);
        return std::make_unique<ReplicateExpr>(std::move(first),
                                               std::move(body), loc);
    }
    std::vector<ExprPtr> elements;
    elements.push_back(std::move(first));
    while (match(TokenKind::Comma)) {
        ExprPtr e = parse_expr();
        if (e == nullptr) {
            return nullptr;
        }
        elements.push_back(std::move(e));
    }
    expect(TokenKind::RBrace, "to close concatenation");
    return std::make_unique<ConcatExpr>(std::move(elements), loc);
}

SourceUnit
parse(std::string_view source, Diagnostics* diags)
{
    Lexer lexer(source, diags);
    Parser parser(lexer.lex_all(), diags);
    return parser.parse_source_unit();
}

} // namespace cascade::verilog
