/// \file
/// Cascade's distributed-system IR (paper §3.3). A program is split into
/// standalone Verilog subprograms, one per module instance. Variables
/// accessed across module boundaries are promoted to ports and renamed
/// (r.y becomes the port r_y, Fig. 4), so no subprogram names anything
/// outside its own syntactic scope. The runtime wires subprogram ports
/// together with global nets carried over the data/control plane.

#ifndef CASCADE_IR_SUBPROGRAM_H
#define CASCADE_IR_SUBPROGRAM_H

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/diagnostics.h"
#include "verilog/ast.h"
#include "verilog/elaborate.h"

namespace cascade::ir {

/// Connects a subprogram port to a global (cross-subprogram) net.
struct PortBinding {
    std::string port;       ///< port name in the subprogram's source
    std::string global_net; ///< e.g. "root.r.x"
};

/// One standalone module instance: transformed source plus wiring metadata.
struct Subprogram {
    std::string path;        ///< hierarchical instance path ("root.r")
    std::string module_name; ///< original declared module type
    std::unique_ptr<verilog::ModuleDecl> source;
    /// Parameter overrides, reduced to literal values.
    std::vector<verilog::Connection> params;
    std::vector<PortBinding> bindings;
    /// True for standard-library components (placed directly in hardware).
    bool is_stdlib = false;
};

/// Splits a hierarchical design rooted at \p root into one subprogram per
/// instance. \p stdlib_types marks module names whose instances become
/// pre-compiled standard components. Returns an empty vector on error.
std::vector<Subprogram>
split_program(const verilog::ModuleDecl& root,
              const verilog::ModuleLibrary& library,
              const std::set<std::string>& stdlib_types,
              Diagnostics* diags);

/// Inlines every non-stdlib instantiation reachable from \p top into a
/// single module (paper §4.2: reduces data/control-plane traffic to zero
/// for user logic). Instantiations of stdlib types are left in place.
/// Returns null on error.
std::unique_ptr<verilog::ModuleDecl>
inline_hierarchy(const verilog::ModuleDecl& top,
                 const verilog::ModuleLibrary& library,
                 const std::set<std::string>& stdlib_types,
                 Diagnostics* diags);

} // namespace cascade::ir

#endif // CASCADE_IR_SUBPROGRAM_H
