/// \file
/// Figure 13: the user study, reproduced as a behavioral simulation.
///
/// The paper ran 20 human subjects debugging a 50-line LED program, half
/// on the Quartus IDE and half on Cascade, and reports: Cascade users
/// performed 43% more compilations, finished 21% faster, and spent 67x
/// less time compiling while test/debug time stayed comparable. We cannot
/// re-run humans (see DESIGN.md §1); instead we simulate the mechanism the
/// paper identifies: a compile-test-debug loop where per-build compile
/// latency comes from the *measured* toolchains in this repository
/// (scaled to the paper's human timescale) and think/test time follows a
/// lognormal human model. The claim reproduced is directional: compile
/// latency dominates the loop, so hiding it yields more builds and less
/// wall time.
///
/// Output: per-subject CSV plus the aggregate comparisons.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>

#include "fpga/compile.h"
#include "runtime/runtime.h"
#include "verilog/parser.h"

namespace {

/// The (fixed) study program: a 50-line button/LED design.
const char* kStudyModule = R"(
module Study(input wire clk, input wire [3:0] pad_val,
             output wire [71:0] led_val);
  reg [71:0] leds = 1;
  reg [7:0] phase = 0;
  reg [23:0] color = 24'hff0000;
  always @(posedge clk) begin
    phase <= phase + 1;
    if (pad_val[0])
      color <= 24'hff0000;
    else if (pad_val[1])
      color <= 24'h00ff00;
    else if (pad_val[2])
      leds <= {leds[70:0], leds[71]};
    else if (phase[3])
      leds <= leds ^ {3{color}};
  end
  assign led_val = leds;
endmodule
)";

double
measure_quartus_compile_s()
{
    cascade::Diagnostics diags;
    auto unit = cascade::verilog::parse(kStudyModule, &diags);
    cascade::verilog::Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    cascade::fpga::CompileOptions opts;
    opts.effort = 1.0;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = cascade::fpga::compile(*em, opts);
    (void)result;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

double
measure_cascade_eval_s()
{
    using cascade::runtime::Runtime;
    Runtime::Options opts;
    opts.enable_hardware = false; // time-to-running-code is what users see
    Runtime rt(opts);
    std::string errors;
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = rt.eval(std::string(kStudyModule) +
                                "\nStudy s(.clk(clk.val));",
                            &errors);
    if (!ok) {
        std::fprintf(stderr, "eval failed: %s\n", errors.c_str());
    }
    rt.run_for_ticks(4);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct SubjectResult {
    int builds = 0;
    double total_min = 0;
    double compile_min = 0;
    double debug_min = 0;
};

/// One simulated subject: iterate think -> edit -> build -> test until all
/// seeded bugs are fixed. Faster feedback shortens each probe and keeps
/// short-term memory fresh (a mild think-time penalty applies when the
/// compile wait is long, as reported in HCI studies of feedback latency).
SubjectResult
simulate_subject(std::mt19937_64& rng, double compile_min,
                 double skill)
{
    std::lognormal_distribution<double> think(std::log(1.6), 0.45);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::poisson_distribution<int> bug_count(2);

    SubjectResult out;
    int bugs = 1 + bug_count(rng);
    // Long feedback loops change behavior two ways (the paper's free
    // responses): subjects batch more changes per build — each build is
    // more likely to contain the fix but takes longer to prepare — while
    // short loops encourage many focused single-hypothesis probes.
    const double latency_drag = 1.0 + std::min(1.0, compile_min / 2.0);
    const double p_fix_base = compile_min > 0.25 ? 0.42 : 0.30;
    while (bugs > 0 && out.builds < 200) {
        const double t_think = think(rng) * latency_drag / skill;
        out.debug_min += t_think;
        out.compile_min += compile_min;
        ++out.builds;
        const double p_fix = p_fix_base * skill;
        if (unit(rng) < p_fix) {
            --bugs;
        }
    }
    out.total_min = out.debug_min + out.compile_min;
    return out;
}

} // namespace

int
main()
{
    // Calibrate per-build compile latency from this repository's own
    // toolchains, scaled to the paper's testbed (their Quartus run took
    // ~1.2 min on the 50-line study program; our simulated toolchain is
    // proportionally faster, so scale by the ratio of headline compile
    // times for the same program).
    const double quartus_raw_s = measure_quartus_compile_s();
    const double cascade_raw_s = measure_cascade_eval_s();
    const double scale = (1.2 * 60.0) / quartus_raw_s;
    const double quartus_min = quartus_raw_s * scale / 60.0;
    const double cascade_min = cascade_raw_s * scale / 60.0;
    std::fprintf(stderr,
                 "# measured compile: quartus %.2f s, cascade %.3f s "
                 "(scale %.0fx) -> per-build %.2f / %.4f min\n",
                 quartus_raw_s, cascade_raw_s, scale, quartus_min,
                 cascade_min);

    std::printf("subject,group,builds,total_min,avg_compile_min,"
                "avg_debug_min\n");
    std::mt19937_64 rng(20190413);
    std::lognormal_distribution<double> skill_dist(0.0, 0.25);

    double q_builds = 0, q_total = 0, q_compile = 0, q_debug = 0;
    double c_builds = 0, c_total = 0, c_compile = 0, c_debug = 0;
    const int n_per_group = 10;
    for (int s = 0; s < 2 * n_per_group; ++s) {
        const bool is_cascade = s % 2 == 1;
        const double skill = skill_dist(rng);
        const SubjectResult r = simulate_subject(
            rng, is_cascade ? cascade_min : quartus_min, skill);
        std::printf("%d,%s,%d,%.1f,%.3f,%.2f\n", s,
                    is_cascade ? "cascade" : "quartus", r.builds,
                    r.total_min, r.compile_min / r.builds,
                    r.debug_min / r.builds);
        if (is_cascade) {
            c_builds += r.builds;
            c_total += r.total_min;
            c_compile += r.compile_min;
            c_debug += r.debug_min;
        } else {
            q_builds += r.builds;
            q_total += r.total_min;
            q_compile += r.compile_min;
            q_debug += r.debug_min;
        }
    }

    std::printf("\n# aggregate (n=%d per group)\n", n_per_group);
    std::printf("# metric,quartus,cascade,paper\n");
    std::printf("# builds_avg,%.1f,%.1f,+43%% for cascade\n",
                q_builds / n_per_group, c_builds / n_per_group);
    std::printf("# total_min_avg,%.1f,%.1f,-21%% for cascade\n",
                q_total / n_per_group, c_total / n_per_group);
    std::printf("# compile_min_total,%.1f,%.2f,67x less for cascade\n",
                q_compile / n_per_group, c_compile / n_per_group);
    std::printf("# debug_min_total,%.1f,%.1f,comparable\n",
                q_debug / n_per_group, c_debug / n_per_group);
    std::printf("# builds_ratio,%.2f\n",
                c_builds / std::max(1.0, q_builds));
    std::printf("# time_ratio,%.2f\n", c_total / std::max(1.0, q_total));
    std::printf("# compile_ratio,%.1fx less\n",
                q_compile / std::max(0.001, c_compile));
    return 0;
}
