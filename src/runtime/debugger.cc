#include "runtime/debugger.h"

#include <algorithm>

namespace cascade::runtime {

bool
Debugger::valid_op(const std::string& op)
{
    return op == "==" || op == "!=" || op == "<" || op == ">" ||
           op == "<=" || op == ">=";
}

bool
Debugger::compare(const BitVector& lhs, const std::string& op,
                  const BitVector& rhs)
{
    const BitVector r = rhs.resized(lhs.width());
    if (op == "==") {
        return BitVector::eq(lhs, r);
    }
    if (op == "!=") {
        return !BitVector::eq(lhs, r);
    }
    if (op == "<") {
        return BitVector::ult(lhs, r);
    }
    if (op == ">") {
        return BitVector::ult(r, lhs);
    }
    if (op == "<=") {
        return BitVector::ule(lhs, r);
    }
    if (op == ">=") {
        return BitVector::ule(r, lhs);
    }
    return false;
}

uint64_t
Debugger::add_break(const std::string& signal, const std::string& op,
                    const BitVector& value)
{
    std::lock_guard<std::mutex> lock(mu_);
    Point p;
    p.id = next_id_++;
    p.kind = Kind::Break;
    p.signal = signal;
    p.op = op;
    p.value = value;
    points_.push_back(std::move(p));
    count_.store(points_.size(), std::memory_order_relaxed);
    return points_.back().id;
}

uint64_t
Debugger::add_watch(const std::string& signal)
{
    std::lock_guard<std::mutex> lock(mu_);
    Point p;
    p.id = next_id_++;
    p.kind = Kind::Watch;
    p.signal = signal;
    points_.push_back(std::move(p));
    count_.store(points_.size(), std::memory_order_relaxed);
    return points_.back().id;
}

bool
Debugger::remove(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it =
        std::find_if(points_.begin(), points_.end(),
                     [id](const Point& p) { return p.id == id; });
    if (it == points_.end()) {
        return false;
    }
    points_.erase(it);
    count_.store(points_.size(), std::memory_order_relaxed);
    return true;
}

void
Debugger::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    points_.clear();
    count_.store(0, std::memory_order_relaxed);
}

size_t
Debugger::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return points_.size();
}

std::vector<Debugger::Point>
Debugger::points() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return points_;
}

std::optional<Debugger::Fire>
Debugger::evaluate(const Lookup& lookup)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::optional<Fire> fire;
    for (Point& p : points_) {
        const BitVector* v = lookup(p.signal);
        if (v == nullptr) {
            continue;
        }
        bool fired = false;
        if (p.kind == Kind::Break) {
            const bool cond = compare(*v, p.op, p.value);
            fired = p.has_last && !p.last_cond && cond;
            p.last_cond = cond;
        } else {
            fired = p.has_last && *v != p.last;
            p.last = *v;
        }
        p.has_last = true;
        if (fired) {
            ++p.hits;
            if (!fire.has_value()) {
                fire = Fire{p.id, p.kind, p.signal, *v};
            }
        }
    }
    if (fire.has_value()) {
        fires_.fetch_add(1, std::memory_order_relaxed);
    }
    return fire;
}

void
Debugger::prime(const Lookup& lookup)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Point& p : points_) {
        const BitVector* v = lookup(p.signal);
        if (v == nullptr) {
            continue;
        }
        if (p.kind == Kind::Break) {
            p.last_cond = compare(*v, p.op, p.value);
        } else {
            p.last = *v;
        }
        p.has_last = true;
    }
}

std::optional<Debugger::Point>
Debugger::note_fire(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it =
        std::find_if(points_.begin(), points_.end(),
                     [id](const Point& p) { return p.id == id; });
    if (it == points_.end()) {
        return std::nullopt;
    }
    ++it->hits;
    fires_.fetch_add(1, std::memory_order_relaxed);
    return *it;
}

} // namespace cascade::runtime
