/// \file
/// Unit tests for the Verilog lexer.

#include "verilog/lexer.h"

#include <gtest/gtest.h>

namespace cascade::verilog {
namespace {

std::vector<Token>
lex_ok(std::string_view src)
{
    Diagnostics diags;
    Lexer lexer(src, &diags);
    auto tokens = lexer.lex_all();
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    return tokens;
}

TEST(Lexer, EmptyInput)
{
    auto t = lex_ok("");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].kind, TokenKind::EndOfFile);
}

TEST(Lexer, KeywordsAndIdentifiers)
{
    auto t = lex_ok("module foo endmodule _bar baz$2");
    EXPECT_EQ(t[0].kind, TokenKind::KwModule);
    EXPECT_EQ(t[1].kind, TokenKind::Identifier);
    EXPECT_EQ(t[1].text, "foo");
    EXPECT_EQ(t[2].kind, TokenKind::KwEndmodule);
    EXPECT_EQ(t[3].text, "_bar");
    EXPECT_EQ(t[4].text, "baz$2");
}

TEST(Lexer, SystemIdentifiers)
{
    auto t = lex_ok("$display $finish $time");
    EXPECT_EQ(t[0].kind, TokenKind::SystemId);
    EXPECT_EQ(t[0].text, "$display");
    EXPECT_EQ(t[1].text, "$finish");
    EXPECT_EQ(t[2].text, "$time");
}

TEST(Lexer, PlainDecimalNumber)
{
    auto t = lex_ok("42");
    EXPECT_EQ(t[0].kind, TokenKind::Number);
    EXPECT_EQ(t[0].value.width(), 32u);
    EXPECT_EQ(t[0].value.to_uint64(), 42u);
    EXPECT_FALSE(t[0].sized);
    EXPECT_TRUE(t[0].is_signed);
}

TEST(Lexer, SizedHexNumber)
{
    auto t = lex_ok("8'h80");
    EXPECT_EQ(t[0].value.width(), 8u);
    EXPECT_EQ(t[0].value.to_uint64(), 0x80u);
    EXPECT_TRUE(t[0].sized);
    EXPECT_FALSE(t[0].is_signed);
}

TEST(Lexer, SizedBinaryAndOctal)
{
    auto t = lex_ok("4'b1010 6'o77");
    EXPECT_EQ(t[0].value.to_uint64(), 0b1010u);
    EXPECT_EQ(t[1].value.to_uint64(), 077u);
}

TEST(Lexer, SignedBasedLiteral)
{
    auto t = lex_ok("4'sb1010");
    EXPECT_TRUE(t[0].is_signed);
    EXPECT_EQ(t[0].value.to_uint64(), 0b1010u);
}

TEST(Lexer, UnsizedBasedLiteral)
{
    auto t = lex_ok("'h1f");
    EXPECT_EQ(t[0].value.width(), 32u);
    EXPECT_EQ(t[0].value.to_uint64(), 0x1fu);
    EXPECT_FALSE(t[0].sized);
}

TEST(Lexer, UnderscoresInNumbers)
{
    auto t = lex_ok("32'h dead_beef 1_000");
    EXPECT_EQ(t[0].value.to_uint64(), 0xdeadbeefu);
    EXPECT_EQ(t[1].value.to_uint64(), 1000u);
}

TEST(Lexer, SizeWithSpaceBeforeTick)
{
    auto t = lex_ok("8 'hFF");
    EXPECT_EQ(t[0].value.width(), 8u);
    EXPECT_EQ(t[0].value.to_uint64(), 0xFFu);
}

TEST(Lexer, DecimalBasedLiteral)
{
    auto t = lex_ok("16'd1234");
    EXPECT_EQ(t[0].value.width(), 16u);
    EXPECT_EQ(t[0].value.to_uint64(), 1234u);
}

TEST(Lexer, TruncatesOverlongLiteral)
{
    auto t = lex_ok("4'hFF");
    EXPECT_EQ(t[0].value.to_uint64(), 0xFu);
}

TEST(Lexer, XZDigitsWarnAndReadAsZero)
{
    Diagnostics diags;
    Lexer lexer("4'b1x0z", &diags);
    auto t = lexer.lex_all();
    EXPECT_FALSE(diags.has_errors());
    EXPECT_EQ(diags.all().size(), 1u); // one warning
    EXPECT_EQ(t[0].value.to_uint64(), 0b1000u);
}

TEST(Lexer, WideLiteral)
{
    auto t = lex_ok("128'hffffffffffffffffffffffffffffffff");
    EXPECT_TRUE(t[0].value.reduce_and());
    EXPECT_EQ(t[0].value.width(), 128u);
}

TEST(Lexer, OperatorsMaximalMunch)
{
    auto t = lex_ok("<= < << <<< = == === ! != !== > >> >>> >= ** * ~& ~| ~^ ^~ +: -:");
    size_t i = 0;
    EXPECT_EQ(t[i++].kind, TokenKind::LtEq);
    EXPECT_EQ(t[i++].kind, TokenKind::Lt);
    EXPECT_EQ(t[i++].kind, TokenKind::Shl);
    EXPECT_EQ(t[i++].kind, TokenKind::AShl);
    EXPECT_EQ(t[i++].kind, TokenKind::Assign);
    EXPECT_EQ(t[i++].kind, TokenKind::EqEq);
    EXPECT_EQ(t[i++].kind, TokenKind::EqEqEq);
    EXPECT_EQ(t[i++].kind, TokenKind::Bang);
    EXPECT_EQ(t[i++].kind, TokenKind::BangEq);
    EXPECT_EQ(t[i++].kind, TokenKind::BangEqEq);
    EXPECT_EQ(t[i++].kind, TokenKind::Gt);
    EXPECT_EQ(t[i++].kind, TokenKind::Shr);
    EXPECT_EQ(t[i++].kind, TokenKind::AShr);
    EXPECT_EQ(t[i++].kind, TokenKind::GtEq);
    EXPECT_EQ(t[i++].kind, TokenKind::StarStar);
    EXPECT_EQ(t[i++].kind, TokenKind::Star);
    EXPECT_EQ(t[i++].kind, TokenKind::TildeAmp);
    EXPECT_EQ(t[i++].kind, TokenKind::TildePipe);
    EXPECT_EQ(t[i++].kind, TokenKind::TildeCaret);
    EXPECT_EQ(t[i++].kind, TokenKind::TildeCaret);
    EXPECT_EQ(t[i++].kind, TokenKind::PlusColon);
    EXPECT_EQ(t[i++].kind, TokenKind::MinusColon);
}

TEST(Lexer, Comments)
{
    auto t = lex_ok("a // line comment\n b /* block\n comment */ c");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].text, "a");
    EXPECT_EQ(t[1].text, "b");
    EXPECT_EQ(t[2].text, "c");
}

TEST(Lexer, UnterminatedBlockCommentErrors)
{
    Diagnostics diags;
    Lexer lexer("a /* never closed", &diags);
    lexer.lex_all();
    EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, StringLiterals)
{
    auto t = lex_ok(R"("hello %d\n" "tab\t")");
    EXPECT_EQ(t[0].kind, TokenKind::String);
    EXPECT_EQ(t[0].text, "hello %d\n");
    EXPECT_EQ(t[1].text, "tab\t");
}

TEST(Lexer, UnterminatedStringErrors)
{
    Diagnostics diags;
    Lexer lexer("\"oops\n", &diags);
    lexer.lex_all();
    EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, SourceLocations)
{
    auto t = lex_ok("a\n  b");
    EXPECT_EQ(t[0].loc.line, 1u);
    EXPECT_EQ(t[0].loc.column, 1u);
    EXPECT_EQ(t[1].loc.line, 2u);
    EXPECT_EQ(t[1].loc.column, 3u);
}

TEST(Lexer, EscapedIdentifier)
{
    auto t = lex_ok("\\weird+name rest");
    EXPECT_EQ(t[0].kind, TokenKind::Identifier);
    EXPECT_EQ(t[0].text, "weird+name");
    EXPECT_EQ(t[1].text, "rest");
}

TEST(Lexer, StrayCharacterErrors)
{
    Diagnostics diags;
    Lexer lexer("a ` b", &diags);
    auto t = lexer.lex_all();
    EXPECT_TRUE(diags.has_errors());
    // Lexing continues past the error.
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[1].text, "b");
}

} // namespace
} // namespace cascade::verilog
