#include "verilog/ast.h"

namespace cascade::verilog {

namespace {

ExprPtr
clone_or_null(const ExprPtr& e)
{
    return e ? e->clone() : nullptr;
}

StmtPtr
clone_or_null(const StmtPtr& s)
{
    return s ? s->clone() : nullptr;
}

std::vector<ExprPtr>
clone_all(const std::vector<ExprPtr>& v)
{
    std::vector<ExprPtr> out;
    out.reserve(v.size());
    for (const auto& e : v) {
        out.push_back(e->clone());
    }
    return out;
}

} // namespace

std::string
IdentifierExpr::full_name() const
{
    std::string out;
    for (size_t i = 0; i < path.size(); ++i) {
        if (i > 0) {
            out += '.';
        }
        out += path[i];
    }
    return out;
}

ExprPtr
NumberExpr::clone() const
{
    return std::make_unique<NumberExpr>(value, sized, is_signed, loc);
}

ExprPtr
StringExpr::clone() const
{
    return std::make_unique<StringExpr>(text, loc);
}

ExprPtr
IdentifierExpr::clone() const
{
    return std::make_unique<IdentifierExpr>(path, loc);
}

ExprPtr
UnaryExpr::clone() const
{
    return std::make_unique<UnaryExpr>(op, operand->clone(), loc);
}

ExprPtr
BinaryExpr::clone() const
{
    return std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone(), loc);
}

ExprPtr
TernaryExpr::clone() const
{
    return std::make_unique<TernaryExpr>(cond->clone(), then_expr->clone(),
                                         else_expr->clone(), loc);
}

ExprPtr
ConcatExpr::clone() const
{
    return std::make_unique<ConcatExpr>(clone_all(elements), loc);
}

ExprPtr
ReplicateExpr::clone() const
{
    return std::make_unique<ReplicateExpr>(count->clone(), body->clone(),
                                           loc);
}

ExprPtr
IndexExpr::clone() const
{
    return std::make_unique<IndexExpr>(base->clone(), index->clone(), loc);
}

ExprPtr
RangeSelectExpr::clone() const
{
    return std::make_unique<RangeSelectExpr>(base->clone(), msb->clone(),
                                             lsb->clone(), loc);
}

ExprPtr
IndexedSelectExpr::clone() const
{
    return std::make_unique<IndexedSelectExpr>(base->clone(),
                                               offset->clone(),
                                               width->clone(), up, loc);
}

ExprPtr
CallExpr::clone() const
{
    return std::make_unique<CallExpr>(callee, clone_all(args), loc);
}

ExprPtr
SystemCallExpr::clone() const
{
    return std::make_unique<SystemCallExpr>(callee, clone_all(args), loc);
}

StmtPtr
BlockStmt::clone() const
{
    std::vector<StmtPtr> out;
    out.reserve(stmts.size());
    for (const auto& s : stmts) {
        out.push_back(s->clone());
    }
    return std::make_unique<BlockStmt>(std::move(out), loc);
}

StmtPtr
BlockingAssignStmt::clone() const
{
    return std::make_unique<BlockingAssignStmt>(lhs->clone(), rhs->clone(),
                                                loc);
}

StmtPtr
NonblockingAssignStmt::clone() const
{
    return std::make_unique<NonblockingAssignStmt>(lhs->clone(),
                                                   rhs->clone(), loc);
}

StmtPtr
IfStmt::clone() const
{
    return std::make_unique<IfStmt>(cond->clone(), then_stmt->clone(),
                                    clone_or_null(else_stmt), loc);
}

StmtPtr
CaseStmt::clone() const
{
    std::vector<CaseItem> out;
    out.reserve(items.size());
    for (const auto& item : items) {
        CaseItem c;
        c.labels = clone_all(item.labels);
        c.stmt = item.stmt->clone();
        out.push_back(std::move(c));
    }
    return std::make_unique<CaseStmt>(case_kind, subject->clone(),
                                      std::move(out), loc);
}

StmtPtr
ForStmt::clone() const
{
    return std::make_unique<ForStmt>(init->clone(), cond->clone(),
                                     step->clone(), body->clone(), loc);
}

StmtPtr
WhileStmt::clone() const
{
    return std::make_unique<WhileStmt>(cond->clone(), body->clone(), loc);
}

StmtPtr
RepeatStmt::clone() const
{
    return std::make_unique<RepeatStmt>(count->clone(), body->clone(), loc);
}

StmtPtr
ForeverStmt::clone() const
{
    return std::make_unique<ForeverStmt>(body->clone(), loc);
}

StmtPtr
SystemTaskStmt::clone() const
{
    return std::make_unique<SystemTaskStmt>(name, clone_all(args), loc);
}

StmtPtr
NullStmt::clone() const
{
    return std::make_unique<NullStmt>(loc);
}

Range
Range::clone() const
{
    Range out;
    out.msb = clone_or_null(msb);
    out.lsb = clone_or_null(lsb);
    return out;
}

NetDeclarator
NetDeclarator::clone() const
{
    NetDeclarator out;
    out.name = name;
    out.array_dim = array_dim.clone();
    out.init = clone_or_null(init);
    return out;
}

ItemPtr
NetDecl::clone() const
{
    auto out = std::make_unique<NetDecl>();
    out->loc = loc;
    out->is_reg = is_reg;
    out->is_signed = is_signed;
    out->range = range.clone();
    out->decls.reserve(decls.size());
    for (const auto& d : decls) {
        out->decls.push_back(d.clone());
    }
    return out;
}

ItemPtr
ParamDecl::clone() const
{
    auto out = std::make_unique<ParamDecl>();
    out->loc = loc;
    out->local = local;
    out->is_signed = is_signed;
    out->range = range.clone();
    out->name = name;
    out->value = clone_or_null(value);
    return out;
}

ItemPtr
ContinuousAssign::clone() const
{
    return std::make_unique<ContinuousAssign>(lhs->clone(), rhs->clone(),
                                              loc);
}

SensitivityItem
SensitivityItem::clone() const
{
    SensitivityItem out;
    out.edge = edge;
    out.signal = clone_or_null(signal);
    return out;
}

ItemPtr
AlwaysBlock::clone() const
{
    auto out = std::make_unique<AlwaysBlock>();
    out->loc = loc;
    out->star = star;
    out->sensitivity.reserve(sensitivity.size());
    for (const auto& s : sensitivity) {
        out->sensitivity.push_back(s.clone());
    }
    out->body = clone_or_null(body);
    return out;
}

ItemPtr
InitialBlock::clone() const
{
    return std::make_unique<InitialBlock>(body->clone(), loc);
}

Connection
Connection::clone() const
{
    Connection out;
    out.name = name;
    out.expr = clone_or_null(expr);
    return out;
}

ItemPtr
Instantiation::clone() const
{
    auto out = std::make_unique<Instantiation>();
    out->loc = loc;
    out->module_name = module_name;
    out->instance_name = instance_name;
    out->parameters.reserve(parameters.size());
    for (const auto& p : parameters) {
        out->parameters.push_back(p.clone());
    }
    out->ports.reserve(ports.size());
    for (const auto& p : ports) {
        out->ports.push_back(p.clone());
    }
    return out;
}

ItemPtr
FunctionDecl::clone() const
{
    auto out = std::make_unique<FunctionDecl>();
    out->loc = loc;
    out->name = name;
    out->ret_signed = ret_signed;
    out->ret_range = ret_range.clone();
    out->decls.reserve(decls.size());
    for (const auto& d : decls) {
        out->decls.push_back(d->clone());
    }
    out->decl_is_input = decl_is_input;
    out->body = clone_or_null(body);
    return out;
}

Port
Port::clone() const
{
    Port out;
    out.dir = dir;
    out.is_reg = is_reg;
    out.is_signed = is_signed;
    out.range = range.clone();
    out.name = name;
    out.loc = loc;
    return out;
}

std::unique_ptr<ModuleDecl>
ModuleDecl::clone() const
{
    auto out = std::make_unique<ModuleDecl>();
    out->name = name;
    out->loc = loc;
    out->header_params.reserve(header_params.size());
    for (const auto& p : header_params) {
        out->header_params.push_back(p->clone());
    }
    out->ports.reserve(ports.size());
    for (const auto& p : ports) {
        out->ports.push_back(p.clone());
    }
    out->items.reserve(items.size());
    for (const auto& item : items) {
        out->items.push_back(item->clone());
    }
    return out;
}

} // namespace cascade::verilog
