#include "telemetry/export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "telemetry/telemetry.h"

namespace cascade::telemetry {

namespace {

bool
name_char(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':') {
        return true;
    }
    return !first && c >= '0' && c <= '9';
}

bool
valid_metric_name(std::string_view name)
{
    if (name.empty()) {
        return false;
    }
    for (size_t i = 0; i < name.size(); ++i) {
        if (!name_char(name[i], i == 0)) {
            return false;
        }
    }
    return true;
}

bool
valid_label_name(std::string_view name)
{
    if (name.empty()) {
        return false;
    }
    for (size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        c == '_' || (i > 0 && c >= '0' && c <= '9');
        if (!ok) {
            return false;
        }
    }
    return true;
}

std::string
format_value(double v)
{
    if (std::isnan(v)) {
        return "NaN";
    }
    if (std::isinf(v)) {
        return v > 0 ? "+Inf" : "-Inf";
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
format_short(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

std::string
prom_sanitize_name(const std::string& name)
{
    std::string out = "cascade_";
    out.reserve(out.size() + name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
prom_escape_label(const std::string& value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

PromWriter::Family*
PromWriter::find(const std::string& name)
{
    for (Family& f : families_) {
        if (f.name == name) {
            return &f;
        }
    }
    return nullptr;
}

void
PromWriter::family(const std::string& name, const std::string& type,
                   const std::string& help)
{
    if (find(name) != nullptr) {
        return;
    }
    families_.push_back(Family{name, type, help, {}});
}

void
PromWriter::sample(const std::string& family, const Labels& labels,
                   double value, const std::string& suffix)
{
    Family* f = find(family);
    if (f == nullptr) {
        return;
    }
    std::string line = family + suffix;
    if (!labels.empty()) {
        line += '{';
        bool first = true;
        for (const auto& [k, v] : labels) {
            if (!first) {
                line += ',';
            }
            first = false;
            line += k + "=\"" + prom_escape_label(v) + '"';
        }
        line += '}';
    }
    line += ' ';
    line += format_value(value);
    f->lines.push_back(std::move(line));
}

void
PromWriter::sample(const std::string& family, const Labels& labels,
                   uint64_t value, const std::string& suffix)
{
    Family* f = find(family);
    if (f == nullptr) {
        return;
    }
    std::string line = family + suffix;
    if (!labels.empty()) {
        line += '{';
        bool first = true;
        for (const auto& [k, v] : labels) {
            if (!first) {
                line += ',';
            }
            first = false;
            line += k + "=\"" + prom_escape_label(v) + '"';
        }
        line += '}';
    }
    line += ' ';
    line += std::to_string(value);
    f->lines.push_back(std::move(line));
}

std::string
PromWriter::render() const
{
    std::string out;
    for (const Family& f : families_) {
        out += "# HELP " + f.name + ' ' + f.help + '\n';
        out += "# TYPE " + f.name + ' ' + f.type + '\n';
        for (const std::string& line : f.lines) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

namespace {

bool
fail(std::string* err, size_t lineno, const std::string& what)
{
    if (err != nullptr) {
        *err = "line " + std::to_string(lineno) + ": " + what;
    }
    return false;
}

bool
parse_sample_line(std::string_view line, std::string* name,
                  std::string* what)
{
    size_t i = 0;
    while (i < line.size() && name_char(line[i], i == 0)) {
        ++i;
    }
    if (i == 0) {
        *what = "sample line does not start with a metric name";
        return false;
    }
    *name = std::string(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
        ++i;
        bool first = true;
        while (true) {
            if (i >= line.size()) {
                *what = "unterminated label set";
                return false;
            }
            if (line[i] == '}') {
                ++i;
                break;
            }
            if (!first) {
                if (line[i] != ',') {
                    *what = "expected ',' between labels";
                    return false;
                }
                ++i;
            }
            first = false;
            const size_t name_start = i;
            while (i < line.size() && line[i] != '=') {
                ++i;
            }
            if (i >= line.size()) {
                *what = "label without '='";
                return false;
            }
            const std::string label(line.substr(name_start,
                                                i - name_start));
            if (!valid_label_name(label)) {
                *what = "bad label name '" + label + "'";
                return false;
            }
            ++i; // '='
            if (i >= line.size() || line[i] != '"') {
                *what = "label value must be double-quoted";
                return false;
            }
            ++i;
            while (i < line.size() && line[i] != '"') {
                if (line[i] == '\\') {
                    if (i + 1 >= line.size() ||
                        (line[i + 1] != '\\' && line[i + 1] != '"' &&
                         line[i + 1] != 'n')) {
                        *what = "bad escape in label value";
                        return false;
                    }
                    ++i;
                }
                ++i;
            }
            if (i >= line.size()) {
                *what = "unterminated label value";
                return false;
            }
            ++i; // closing '"'
        }
    }
    if (i >= line.size() || (line[i] != ' ' && line[i] != '\t')) {
        *what = "missing value";
        return false;
    }
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
        ++i;
    }
    const size_t value_start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
        ++i;
    }
    const std::string value(line.substr(value_start, i - value_start));
    if (value != "NaN" && value != "+Inf" && value != "-Inf" &&
        value != "Inf") {
        char* end = nullptr;
        std::strtod(value.c_str(), &end);
        if (value.empty() || end == nullptr || *end != '\0') {
            *what = "value '" + value + "' is not a float";
            return false;
        }
    }
    // Optional timestamp (integer milliseconds).
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
        ++i;
    }
    if (i < line.size()) {
        const size_t ts_start = i;
        if (line[i] == '-' || line[i] == '+') {
            ++i;
        }
        while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
            ++i;
        }
        if (i != line.size() || i == ts_start) {
            *what = "trailing garbage after value";
            return false;
        }
    }
    return true;
}

} // namespace

bool
validate_prometheus_text(const std::string& text, std::string* err)
{
    if (text.empty()) {
        return fail(err, 0, "empty exposition");
    }
    if (text.back() != '\n') {
        return fail(err, 0, "exposition must end with a newline");
    }
    std::map<std::string, bool> typed;       // family -> TYPE seen
    std::map<std::string, bool> has_sample;  // family -> sample seen
    size_t lineno = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        ++lineno;
        const size_t eol = text.find('\n', pos);
        const std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) {
            continue;
        }
        if (line[0] == '#') {
            const bool is_help = line.rfind("# HELP ", 0) == 0;
            const bool is_type = line.rfind("# TYPE ", 0) == 0;
            if (!is_help && !is_type) {
                continue; // plain comment
            }
            std::string_view rest = line.substr(7);
            const size_t sp = rest.find(' ');
            const std::string fam(rest.substr(0, sp));
            if (!valid_metric_name(fam)) {
                return fail(err, lineno,
                            "bad metric name '" + fam + "'");
            }
            if (is_type) {
                if (sp == std::string_view::npos) {
                    return fail(err, lineno, "TYPE without a type");
                }
                const std::string type(rest.substr(sp + 1));
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped") {
                    return fail(err, lineno,
                                "unknown type '" + type + "'");
                }
                if (typed.count(fam) != 0) {
                    return fail(err, lineno,
                                "duplicate TYPE for '" + fam + "'");
                }
                if (has_sample.count(fam) != 0) {
                    return fail(err, lineno,
                                "TYPE for '" + fam +
                                    "' after its samples");
                }
                typed[fam] = true;
            }
            continue;
        }
        std::string name;
        std::string what;
        if (!parse_sample_line(line, &name, &what)) {
            return fail(err, lineno, what);
        }
        // Attribute summary/counter suffixes back to the declared family
        // so TYPE-before-samples can be enforced per family.
        std::string fam = name;
        for (const char* sfx : {"_sum", "_count", "_total", "_bucket"}) {
            const std::string s(sfx);
            if (name.size() > s.size() &&
                name.compare(name.size() - s.size(), s.size(), s) == 0) {
                const std::string base =
                    name.substr(0, name.size() - s.size());
                if (typed.count(base) != 0) {
                    fam = base;
                    break;
                }
            }
        }
        has_sample[fam] = true;
    }
    return true;
}

TimeSeries::TimeSeries(size_t capacity)
    // Even and >= 2 so compaction halves exactly, keeping the
    // one-point-per-stride invariant uniform across the series.
    : capacity_(std::max<size_t>(2, capacity) & ~size_t{1})
{
}

void
TimeSeries::sample(const std::string& name, double t, double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Series& s = series_[name];
    s.acc_t += t;
    s.acc_v += v;
    if (++s.acc_n < s.stride) {
        return;
    }
    const double n = static_cast<double>(s.acc_n);
    s.points.push_back(Point{s.acc_t / n, s.acc_v / n});
    s.acc_t = 0;
    s.acc_v = 0;
    s.acc_n = 0;
    if (s.points.size() >= capacity_) {
        // Compact in place: average adjacent pairs, halving the series
        // and doubling the number of raw samples per stored point. Old
        // history gets coarser; the whole session always fits, and
        // because future points also accumulate the doubled stride, the
        // samples-per-point invariant stays uniform.
        std::vector<Point> half;
        half.reserve(s.points.size() / 2);
        for (size_t i = 0; i + 1 < s.points.size(); i += 2) {
            half.push_back(
                Point{(s.points[i].t + s.points[i + 1].t) / 2,
                      (s.points[i].v + s.points[i + 1].v) / 2});
        }
        s.points = std::move(half);
        s.stride *= 2;
    }
}

std::vector<TimeSeries::Point>
TimeSeries::snapshot_locked(const Series& s)
{
    std::vector<Point> out = s.points;
    if (s.acc_n > 0) {
        // Surface the partial accumulator as a provisional trailing
        // point so readers always see the freshest sample.
        const double n = static_cast<double>(s.acc_n);
        out.push_back(Point{s.acc_t / n, s.acc_v / n});
    }
    return out;
}

std::vector<std::string>
TimeSeries::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [name, s] : series_) {
        (void)s;
        out.push_back(name);
    }
    return out;
}

std::vector<TimeSeries::Point>
TimeSeries::series(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = series_.find(name);
    return it == series_.end() ? std::vector<Point>{}
                               : snapshot_locked(it->second);
}

uint64_t
TimeSeries::stride(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = series_.find(name);
    return it == series_.end() ? 0 : it->second.stride;
}

std::string
TimeSeries::json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"schema\":\"cascade.timeseries.v1\",\"capacity\":" +
                      std::to_string(capacity_) + ",\"series\":{";
    bool first = true;
    for (const auto& [name, s] : series_) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += '"' + json_escape(name) +
               "\":{\"stride\":" + std::to_string(s.stride) +
               ",\"points\":[";
        bool pfirst = true;
        for (const Point& p : snapshot_locked(s)) {
            if (!pfirst) {
                out += ',';
            }
            pfirst = false;
            out += '[' + format_short(p.t) + ',' + format_short(p.v) + ']';
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

void
TimeSeries::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    series_.clear();
}

SloTracker::SloTracker(const Config& config)
    : config_(config)
{
}

void
SloTracker::push(Window& w, double now, double v)
{
    w.emplace_back(now, v);
    if (w.size() > kMaxWindowPoints) {
        w.pop_front();
    }
}

void
SloTracker::record_cold_compile(double now, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    push(cold_compile_s_, now, seconds);
}

void
SloTracker::record_warm_compile(double now, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    push(warm_compile_s_, now, seconds);
}

void
SloTracker::record_interrupt(double now, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    push(interrupt_s_, now, seconds);
}

void
SloTracker::record_ticks_per_s(double now, const std::string& tenant,
                               double rate)
{
    std::lock_guard<std::mutex> lock(mutex_);
    push(ticks_per_s_[tenant], now, rate);
}

void
SloTracker::prune(double now)
{
    const double horizon = now - config_.window_s;
    const auto drop = [horizon](Window& w) {
        while (!w.empty() && w.front().first < horizon) {
            w.pop_front();
        }
    };
    drop(cold_compile_s_);
    drop(warm_compile_s_);
    drop(interrupt_s_);
    for (auto& [tenant, w] : ticks_per_s_) {
        (void)tenant;
        drop(w);
    }
}

double
SloTracker::percentile(const Window& w, double q)
{
    if (w.empty()) {
        return 0;
    }
    std::vector<double> values;
    values.reserve(w.size());
    for (const auto& [t, v] : w) {
        (void)t;
        values.push_back(v);
    }
    std::sort(values.begin(), values.end());
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(q * static_cast<double>(values.size())));
    return values[rank];
}

void
SloTracker::objectives_locked(double now,
                              std::vector<Objective>* out) const
{
    const double horizon = now - config_.window_s;
    const auto windowed = [horizon](const Window& w) {
        Window in;
        for (const auto& p : w) {
            if (p.first >= horizon) {
                in.push_back(p);
            }
        }
        return in;
    };
    const auto upper = [&](const char* name, const Window& w,
                           double threshold) {
        if (threshold <= 0) {
            return;
        }
        const Window in = windowed(w);
        Objective o;
        o.name = name;
        o.observed = percentile(in, 0.99);
        o.threshold = threshold;
        o.upper_bound = true;
        o.samples = in.size();
        o.breached = o.samples > 0 && o.observed > o.threshold;
        out->push_back(std::move(o));
    };
    upper("cold_compile_p99_s", cold_compile_s_,
          config_.max_cold_compile_p99_s);
    upper("warm_compile_p99_s", warm_compile_s_,
          config_.max_warm_compile_p99_s);
    upper("interrupt_p99_s", interrupt_s_, config_.max_interrupt_p99_s);
    if (config_.min_ticks_per_s > 0) {
        for (const auto& [tenant, w] : ticks_per_s_) {
            const Window in = windowed(w);
            Objective o;
            o.name = "min_ticks_per_s";
            o.tenant = tenant;
            // The floor guards the *typical* rate, so use the median: a
            // single stalled sample should not flap the objective.
            o.observed = percentile(in, 0.5);
            o.threshold = config_.min_ticks_per_s;
            o.upper_bound = false;
            o.samples = in.size();
            o.breached = o.samples > 0 && o.observed < o.threshold;
            out->push_back(std::move(o));
        }
    }
}

void
SloTracker::tick(double now,
                 const std::function<void(const Objective&)>& on_breach)
{
    std::vector<Objective> fired;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        prune(now);
        std::vector<Objective> objectives;
        objectives_locked(now, &objectives);
        for (Objective& o : objectives) {
            const std::string key = o.name + '|' + o.tenant;
            const bool was = breached_[key];
            if (o.breached && !was) {
                ++breaches_[key];
                ++total_breaches_;
                o.breaches = breaches_[key];
                fired.push_back(o);
            }
            breached_[key] = o.breached;
        }
    }
    if (on_breach) {
        for (const Objective& o : fired) {
            on_breach(o);
        }
    }
}

SloTracker::Status
SloTracker::evaluate(double now) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Status status;
    objectives_locked(now, &status.objectives);
    for (Objective& o : status.objectives) {
        const std::string key = o.name + '|' + o.tenant;
        const auto it = breaches_.find(key);
        o.breaches = it == breaches_.end() ? 0 : it->second;
        status.breached = status.breached || o.breached;
    }
    return status;
}

std::string
SloTracker::json(double now) const
{
    const Status status = evaluate(now);
    std::string out = "{\"schema\":\"cascade.slo.v1\",\"breached\":";
    out += status.breached ? "true" : "false";
    out += ",\"window_s\":" + format_short(config_.window_s);
    out += ",\"objectives\":[";
    bool first = true;
    for (const Objective& o : status.objectives) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"name\":\"" + json_escape(o.name) + '"';
        if (!o.tenant.empty()) {
            out += ",\"tenant\":\"" + json_escape(o.tenant) + '"';
        }
        out += ",\"observed\":" + format_short(o.observed);
        out += ",\"threshold\":" + format_short(o.threshold);
        out += std::string(",\"bound\":\"") +
               (o.upper_bound ? "upper" : "lower") + '"';
        out += ",\"samples\":" + std::to_string(o.samples);
        out += std::string(",\"breached\":") +
               (o.breached ? "true" : "false");
        out += ",\"breaches\":" + std::to_string(o.breaches) + '}';
    }
    out += "]}";
    return out;
}

std::string
SloTracker::table(double now) const
{
    const Status status = evaluate(now);
    if (status.objectives.empty()) {
        return "  no SLO thresholds configured (all objectives "
               "disabled)\n";
    }
    std::string out = std::string("  overall: ") +
                      (status.breached ? "BREACHED" : "ok") + '\n';
    char line[256];
    for (const Objective& o : status.objectives) {
        std::string label = o.name;
        if (!o.tenant.empty()) {
            label += "[tenant " + o.tenant + ']';
        }
        std::snprintf(line, sizeof line,
                      "  %-32s %10.4g %s %-10.4g %-8s (%llu in window, "
                      "%llu breaches)\n",
                      label.c_str(), o.observed,
                      o.upper_bound ? "<=" : ">=", o.threshold,
                      o.breached ? "BREACH" : "ok",
                      static_cast<unsigned long long>(o.samples),
                      static_cast<unsigned long long>(o.breaches));
        out += line;
    }
    return out;
}

uint64_t
SloTracker::total_breaches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_breaches_;
}

void
SloTracker::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cold_compile_s_.clear();
    warm_compile_s_.clear();
    interrupt_s_.clear();
    ticks_per_s_.clear();
    breached_.clear();
    breaches_.clear();
    total_breaches_ = 0;
}

} // namespace cascade::telemetry
