/// \file
/// Recursive-descent parser for the Cascade Verilog subset.
///
/// The parser consumes a token stream and produces a SourceUnit: module
/// declarations plus loose items destined for the implicit root module
/// (Cascade's REPL evals are parsed this way, one unit per eval). Errors are
/// reported to Diagnostics and recovery skips to the next ';' / 'endmodule'
/// so multiple problems surface per pass.

#ifndef CASCADE_VERILOG_PARSER_H
#define CASCADE_VERILOG_PARSER_H

#include <string_view>
#include <vector>

#include "common/diagnostics.h"
#include "verilog/ast.h"
#include "verilog/token.h"

namespace cascade::verilog {

class Parser {
  public:
    Parser(std::vector<Token> tokens, Diagnostics* diags);

    /// Parses the whole token stream. On errors the returned unit contains
    /// whatever parsed cleanly; check diags->has_errors().
    SourceUnit parse_source_unit();

  private:
    // Top level.
    std::unique_ptr<ModuleDecl> parse_module_decl();
    std::vector<Port> parse_port_list();
    ItemPtr parse_module_item();
    ItemPtr parse_net_decl();
    ItemPtr parse_param_decl(bool in_header);
    ItemPtr parse_continuous_assign();
    ItemPtr parse_always();
    ItemPtr parse_initial();
    ItemPtr parse_function_decl();
    ItemPtr parse_instantiation();
    std::vector<Connection> parse_connection_list();

    // Statements.
    StmtPtr parse_statement();
    StmtPtr parse_block();
    StmtPtr parse_if();
    StmtPtr parse_case(CaseKind kind);
    StmtPtr parse_for();
    StmtPtr parse_assignment(bool want_semi);
    StmtPtr parse_system_task();

    // Expressions.
    ExprPtr parse_expr();
    ExprPtr parse_ternary();
    ExprPtr parse_binary(int min_prec);
    ExprPtr parse_unary();
    ExprPtr parse_primary();
    ExprPtr parse_identifier_expr();
    ExprPtr parse_selects(ExprPtr base);
    ExprPtr parse_concat();
    Range parse_range();

    // Token utilities.
    const Token& peek(size_t ahead = 0) const;
    const Token& advance();
    bool check(TokenKind kind) const { return peek().kind == kind; }
    bool match(TokenKind kind);
    /// Consumes a token of \p kind or reports an error. Returns success.
    bool expect(TokenKind kind, const char* context);
    bool at_end() const { return check(TokenKind::EndOfFile); }
    void error_here(const std::string& msg);
    /// Skips tokens until after the next ';' (or a safe sync point).
    void synchronize();

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    Diagnostics* diags_;
};

/// Convenience: lex + parse a source string in one call.
SourceUnit parse(std::string_view source, Diagnostics* diags);

} // namespace cascade::verilog

#endif // CASCADE_VERILOG_PARSER_H
