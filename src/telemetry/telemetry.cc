#include "telemetry/telemetry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <vector>

namespace cascade::telemetry {

namespace {

int
bucket_of(uint64_t value)
{
    return value == 0 ? 0 : 64 - std::countl_zero(value);
}

void
atomic_min(std::atomic<uint64_t>& slot, uint64_t v)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

void
atomic_max(std::atomic<uint64_t>& slot, uint64_t v)
{
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

std::string
format_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

void
Histogram::record(uint64_t value)
{
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    atomic_min(min_, value);
    atomic_max(max_, value);
}

uint64_t
Histogram::min() const
{
    const uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

uint64_t
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) /
                              static_cast<double>(n);
}

uint64_t
Histogram::bucket(int b) const
{
    return b < 0 || b >= kBuckets
               ? 0
               : buckets_[b].load(std::memory_order_relaxed);
}

uint64_t
Histogram::quantile(double q) const
{
    const uint64_t n = count();
    if (n == 0) {
        return 0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t rank =
        std::min<uint64_t>(n - 1, static_cast<uint64_t>(q * n));
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += bucket(b);
        if (seen > rank) {
            if (b == 0) {
                return 0;
            }
            // Geometric midpoint of [2^(b-1), 2^b), clamped to the
            // observed range so extremes stay exact.
            const double lo = std::ldexp(1.0, b - 1);
            const double mid = lo * std::sqrt(2.0);
            return std::clamp(static_cast<uint64_t>(mid), min(), max());
        }
    }
    return max();
}

void
Histogram::reset()
{
    for (auto& b : buckets_) {
        b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

Registry&
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter*
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Counter>();
    }
    return slot.get();
}

Gauge*
Registry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Gauge>();
    }
    return slot.get();
}

Histogram*
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Histogram>();
    }
    return slot.get();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
        (void)name;
        c->reset();
    }
    for (const auto& [name, g] : gauges_) {
        (void)name;
        g->reset();
    }
    for (const auto& [name, h] : histograms_) {
        (void)name;
        h->reset();
    }
}

Registry::Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        s.counters.emplace_back(name, c->value());
    }
    s.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        s.gauges.emplace_back(
            name, Snapshot::GaugeValue{g->value(), g->high_water()});
    }
    s.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        s.histograms.emplace_back(
            name,
            Snapshot::HistogramValue{h->count(), h->sum(), h->min(),
                                     h->max(), h->mean(), h->quantile(0.5),
                                     h->quantile(0.9), h->quantile(0.99)});
    }
    return s;
}

std::string
Registry::table() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t width = 24;
    for (const auto& [name, c] : counters_) {
        width = std::max(width, name.size());
    }
    for (const auto& [name, g] : gauges_) {
        width = std::max(width, name.size());
    }
    for (const auto& [name, h] : histograms_) {
        width = std::max(width, name.size());
    }
    std::string out;
    char line[256];
    for (const auto& [name, c] : counters_) {
        std::snprintf(line, sizeof line, "  %-*s %20llu\n",
                      static_cast<int>(width), name.c_str(),
                      static_cast<unsigned long long>(c->value()));
        out += line;
    }
    for (const auto& [name, g] : gauges_) {
        std::snprintf(line, sizeof line,
                      "  %-*s %20lld  (high-water %lld)\n",
                      static_cast<int>(width), name.c_str(),
                      static_cast<long long>(g->value()),
                      static_cast<long long>(g->high_water()));
        out += line;
    }
    for (const auto& [name, h] : histograms_) {
        std::snprintf(
            line, sizeof line,
            "  %-*s %20llu  (mean %.4g  min %llu  p50 %llu  p90 %llu  "
            "p99 %llu  max %llu)\n",
            static_cast<int>(width), name.c_str(),
            static_cast<unsigned long long>(h->count()), h->mean(),
            static_cast<unsigned long long>(h->min()),
            static_cast<unsigned long long>(h->quantile(0.5)),
            static_cast<unsigned long long>(h->quantile(0.9)),
            static_cast<unsigned long long>(h->quantile(0.99)),
            static_cast<unsigned long long>(h->max()));
        out += line;
    }
    return out;
}

std::string
Registry::json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += '"' + json_escape(name) +
               "\":" + std::to_string(c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += '"' + json_escape(name) +
               "\":{\"value\":" + std::to_string(g->value()) +
               ",\"high_water\":" + std::to_string(g->high_water()) + '}';
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += '"' + json_escape(name) +
               "\":{\"count\":" + std::to_string(h->count()) +
               ",\"sum\":" + std::to_string(h->sum()) +
               ",\"min\":" + std::to_string(h->min()) +
               ",\"max\":" + std::to_string(h->max()) +
               ",\"mean\":" + format_double(h->mean()) +
               ",\"p50\":" + std::to_string(h->quantile(0.5)) +
               ",\"p90\":" + std::to_string(h->quantile(0.9)) +
               ",\"p99\":" + std::to_string(h->quantile(0.99)) + '}';
    }
    out += "}}";
    return out;
}

std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace cascade::telemetry
