#include "runtime/runtime.h"

#include <algorithm>
#include <set>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "fpga/synth.h"
#include "hypervisor/fabric_manager.h"
#include "ir/rewrite.h"
#include "jit/jit_kernel.h"
#include "runtime/hw_engine.h"
#include "runtime/sw_engine.h"
#include "service/compile_service.h"
#include "stdlib/stdlib.h"
#include "telemetry/export.h"
#include "telemetry/monitor_server.h"
#include "telemetry/sync.h"
#include "telemetry/trace.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace cascade::runtime {

using namespace verilog;

namespace {

/// Peripheral-facing ("pins") ports per standard-library type, with
/// direction from the device's point of view (true = driven by the host).
const std::vector<std::pair<std::string, bool>>&
peripheral_ports(const std::string& type)
{
    static const std::map<std::string,
                          std::vector<std::pair<std::string, bool>>>
        table = {
            {"Pad", {{"pins", true}}},
            {"Reset", {{"pins", true}}},
            {"Led", {{"pins", false}}},
            {"GPIO", {{"pins", true}, {"out_pins", false}}},
            {"FIFO", {{"pins", true}, {"push", true}}},
        };
    static const std::vector<std::pair<std::string, bool>> empty;
    const auto it = table.find(type);
    return it == table.end() ? empty : it->second;
}

double
wall_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Journal payload for one interrupt: full digest, text capped so a hot
/// $display loop cannot bloat the ring/file (the digest still pins the
/// full content for divergence detection).
std::string
interrupt_payload(const char* kind, const std::string& text)
{
    telemetry::JsonWriter w;
    w.str("kind", kind);
    if (text.size() <= 200) {
        w.str("text", text);
    } else {
        w.str("text", std::string_view(text).substr(0, 200));
        w.num("len", text.size());
    }
    w.str("digest", telemetry::digest_hex(text));
    return w.build();
}

/// Digest over the deterministic fields of a compile report (everything
/// except the wall-clock phase timings), so a replayed compile with the
/// pinned seed produces the identical digest.
std::string
report_digest(const fpga::CompileReport& r)
{
    std::string s;
    s += std::to_string(r.netlist_nodes) + '|';
    s += std::to_string(r.cells) + '|';
    s += std::to_string(r.seed) + '|';
    s += std::to_string(r.area.les) + '|';
    s += std::to_string(r.area.bram_bits) + '|';
    s += std::to_string(r.anneal_moves) + '|';
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g|%.12g|", r.wirelength,
                  r.timing.fmax_mhz);
    s += buf;
    s += r.timing.met ? "1|" : "0|";
    for (const std::string& name : r.critical_path_names) {
        s += name;
        s += ',';
    }
    return telemetry::digest_hex(s);
}

/// FNV digest of a file's contents ("" on IO error) — VCD provenance.
std::string
file_digest_hex(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return "";
    }
    uint64_t h = 14695981039346656037ull;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        for (size_t i = 0; i < n; ++i) {
            h ^= static_cast<unsigned char>(buf[i]);
            h *= 1099511628211ull;
        }
    }
    std::fclose(f);
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(h));
    return hex;
}

} // namespace

const char*
location_name(Location loc)
{
    switch (loc) {
    case Location::Software: return "Software";
    case Location::Hardware: return "Hardware";
    case Location::HardwareForwarded: return "HardwareForwarded";
    case Location::Native: return "Native";
    case Location::Jit: return "Jit";
    }
    return "Unknown";
}

// ---------------------------------------------------------------------------
// ClockEngine: the standard clock is "just another engine" (§4.1) whose
// tick is re-queued by end_step.
// ---------------------------------------------------------------------------

class ClockEngine : public Engine {
  public:
    ClockEngine() : val_(1, 0) {}

    sim::StateSnapshot
    get_state() override
    {
        sim::StateSnapshot snap;
        snap.regs["val"] = val_;
        return snap;
    }

    void
    set_state(const sim::StateSnapshot& snapshot) override
    {
        const auto it = snapshot.regs.find("val");
        if (it != snapshot.regs.end()) {
            val_ = it->second.resized(1);
        }
    }

    void read(const Event&) override {}

    std::vector<Event>
    write() override
    {
        if (!changed_) {
            return {};
        }
        changed_ = false;
        return {{0, val_}};
    }

    bool there_are_evals() override { return false; }
    void evaluate() override {}
    bool there_are_updates() override { return armed_; }

    void
    update() override
    {
        armed_ = false;
        val_ = BitVector(1, val_.is_zero() ? 1 : 0);
        changed_ = true;
    }

    void end_step() override { armed_ = true; }
    bool is_hardware() const override { return true; }

    bool value() const { return !val_.is_zero(); }

    /// Open-loop resynchronization: adopt the clock value the hardware
    /// engine left behind, without emitting an event.
    void
    force_value(bool v)
    {
        val_ = BitVector(1, v ? 1 : 0);
    }

  private:
    BitVector val_;
    bool armed_ = true;
    bool changed_ = false;
};

// ---------------------------------------------------------------------------
// NativeEngine: §4.5 native mode — the design compiled exactly as written
// (no Fig. 10 instrumentation), running at full fabric speed.
// ---------------------------------------------------------------------------

class NativeEngine : public Engine {
  public:
    NativeEngine(std::unique_ptr<fpga::FabricExec> fabric,
                 std::vector<std::string> port_names,
                 std::vector<bool> port_is_input, std::string clock_port,
                 double clock_mhz)
        : fabric_(std::move(fabric)), port_names_(std::move(port_names)),
          port_is_input_(std::move(port_is_input)),
          clock_port_(std::move(clock_port)),
          clock_period_s_(1.0 / (clock_mhz * 1e6))
    {
        for (size_t p = 0; p < port_names_.size(); ++p) {
            if (port_is_input_[p]) {
                port_index_.push_back(
                    fabric_->input_index(port_names_[p]));
            } else {
                port_index_.push_back(
                    fabric_->output_index(port_names_[p]));
                output_cache_.emplace_back();
            }
        }
        output_cache_.clear();
        for (size_t p = 0; p < port_names_.size(); ++p) {
            output_cache_.emplace_back(1, 0);
        }
        fabric_->eval_comb();
    }

    sim::StateSnapshot
    get_state() override
    {
        sim::StateSnapshot snap;
        const fpga::Netlist& nl = fabric_->netlist();
        for (const fpga::RegDef& r : nl.regs) {
            snap.regs[r.name] = fabric_->reg_value(r.name);
        }
        for (const fpga::MemDef& m : nl.mems) {
            std::vector<BitVector> contents;
            contents.reserve(m.size);
            for (uint32_t i = 0; i < m.size; ++i) {
                contents.push_back(fabric_->mem_value(m.name, i));
            }
            snap.memories[m.name] = std::move(contents);
        }
        return snap;
    }

    void
    set_state(const sim::StateSnapshot& snapshot) override
    {
        const fpga::Netlist& nl = fabric_->netlist();
        for (const fpga::RegDef& r : nl.regs) {
            const auto it = snapshot.regs.find(r.name);
            if (it != snapshot.regs.end()) {
                fabric_->set_reg(r.name, it->second);
            }
        }
        for (const fpga::MemDef& m : nl.mems) {
            const auto it = snapshot.memories.find(m.name);
            if (it == snapshot.memories.end()) {
                continue;
            }
            for (size_t i = 0; i < it->second.size() && i < m.size; ++i) {
                fabric_->set_mem(m.name, i, it->second[i]);
            }
        }
        dirty_ = true;
    }

    void
    read(const Event& event) override
    {
        if (port_is_input_[event.port] && port_index_[event.port] >= 0) {
            fabric_->set_input(port_index_[event.port], event.value);
            dirty_ = true;
        }
    }

    std::vector<Event>
    write() override
    {
        std::vector<Event> events;
        for (size_t p = 0; p < port_names_.size(); ++p) {
            if (port_is_input_[p] || port_index_[p] < 0) {
                continue;
            }
            BitVector v = fabric_->output(port_index_[p]);
            if (v != output_cache_[p]) {
                output_cache_[p] = v;
                events.push_back({static_cast<uint32_t>(p), std::move(v)});
            }
        }
        return events;
    }

    bool there_are_evals() override { return dirty_; }

    void
    evaluate() override
    {
        // One fabric step settles logic and latches any input clock edge.
        fabric_->step();
        ++cycles_;
        dirty_ = false;
    }

    bool there_are_updates() override { return false; }
    void update() override {}
    bool is_hardware() const override { return true; }

    uint64_t
    open_loop(uint64_t max_iterations) override
    {
        if (clock_port_.empty()) {
            return 0;
        }
        const int clk = fabric_->input_index(clock_port_);
        if (clk < 0) {
            return 0;
        }
        bool level = clock_level_;
        for (uint64_t i = 0; i < max_iterations; ++i) {
            level = !level;
            fabric_->set_input(clk, BitVector(1, level ? 1 : 0));
            fabric_->step();
        }
        clock_level_ = level;
        cycles_ += max_iterations;
        dirty_ = true;
        return max_iterations;
    }

    bool
    supports_open_loop() const override
    {
        return !clock_port_.empty();
    }

    double
    take_modeled_seconds() override
    {
        const double out =
            static_cast<double>(cycles_) * clock_period_s_;
        cycles_ = 0;
        return out;
    }

    bool clock_level() const { return clock_level_; }

    void
    sync_clock_level(bool level)
    {
        clock_level_ = level;
    }

  private:
    std::unique_ptr<fpga::FabricExec> fabric_;
    std::vector<std::string> port_names_;
    std::vector<bool> port_is_input_;
    std::vector<int> port_index_;
    std::vector<BitVector> output_cache_;
    std::string clock_port_;
    double clock_period_s_;
    bool dirty_ = true;
    bool clock_level_ = false;
    uint64_t cycles_ = 0;
};

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime() : Runtime(Options()) {}

Runtime::Runtime(Options options)
    : Runtime(std::move(options), nullptr, nullptr)
{}

Runtime::Runtime(Options options, service::CompileService& service,
                 hypervisor::FabricManager& fabric)
    : Runtime(std::move(options), &service, &fabric)
{}

Runtime::Runtime(Options options, service::CompileService* service,
                 hypervisor::FabricManager* fabric)
    : options_(std::move(options)),
      device_(options_.device_les, options_.device_bram_bits,
              options_.device_clock_mhz)
{
    // The compile pipeline: the background CompileServer that used to be
    // embedded here is now the process-wide service::CompileService;
    // exclusive construction keeps the old behavior with a private
    // single-worker instance (same thread count, plus the bitstream
    // cache).
    if (service != nullptr) {
        compile_service_ = service;
    } else {
        owned_compile_service_ =
            std::make_unique<service::CompileService>();
        compile_service_ = owned_compile_service_.get();
    }
    compile_client_ = compile_service_->register_client();
    fabric_ = fabric;
    if (fabric_ != nullptr) {
        tenant_ = fabric_->add_tenant(options_.tenant_name,
                                      options_.tenant_le_quota,
                                      options_.tenant_bram_quota);
        // From here on every journal event carries the tenant tag, and
        // this thread's lock waits / trace events attribute to it.
        journal_.set_tenant(tenant_);
        telemetry::set_thread_tenant(tenant_);
    }
    init_metrics();
    journal_.set_clock([this] { return virtual_ticks(); });
    telemetry::SloTracker::Config slo_cfg;
    slo_cfg.window_s = options_.slo_window_s;
    slo_cfg.max_cold_compile_p99_s = options_.slo_max_cold_compile_p99_s;
    slo_cfg.max_warm_compile_p99_s = options_.slo_max_warm_compile_p99_s;
    slo_cfg.max_interrupt_p99_s = options_.slo_max_interrupt_p99_s;
    slo_cfg.min_ticks_per_s = options_.slo_min_ticks_per_s;
    slo_ = std::make_unique<telemetry::SloTracker>(slo_cfg);
    monitor_epoch_wall_ = wall_seconds();
    monitor_last_sample_wall_ = monitor_epoch_wall_;
    monitor_next_sample_wall_ =
        monitor_epoch_wall_ + std::max(0.0, options_.timeseries_interval_s);
    // Register this session with the crash black box: a fatal error dumps
    // the journal ring plus stats/profile/time-series snapshots of every
    // live runtime.
    blackbox_id_ = telemetry::BlackBox::instance().add_source(
        "runtime", [this] {
            std::string out = "{\"events\":" + journal_.ring_json();
            out += ",\"stats\":" + stats_json();
            out += ",\"profile\":" + profile_json();
            out += ",\"timeseries\":" + timeseries_.json();
            out += '}';
            return out;
        });
    telemetry::BlackBox::instance().install_handlers();
    // Load the standard library and implicitly instantiate the Clock
    // (paper §3.2: Clock/Pad/Led are implicitly provided; we instantiate
    // peripherals lazily when the user references them — see eval()).
    SourceUnit unit = parse(stdlib::stdlib_source(), &startup_diags_);
    CASCADE_CHECK(!startup_diags_.has_errors());
    for (auto& m : unit.modules) {
        lib_.add(std::move(m));
    }
    std::string errors;
    bootstrapping_ = true;
    const bool ok = eval("Clock clk();", &errors);
    bootstrapping_ = false;
    CASCADE_CHECK(ok);
    if (options_.monitor_port != 0) {
        std::string merr;
        if (!start_monitor(options_.monitor_port, &merr)) {
            log_event(LogLevel::Warn, "monitor",
                      "monitor failed to start: " + merr);
        }
    }
}

Runtime::~Runtime()
{
    // The monitor server's thread reads this runtime through its
    // providers and the journal tap: it must be gone before anything
    // else is torn down.
    stop_monitor();
    // The black-box provider captures `this`: deregister before members
    // are torn down so a crash during another runtime's dump cannot walk
    // into freed state.
    telemetry::BlackBox::instance().remove_source(blackbox_id_);
    if (fabric_ != nullptr) {
        fabric_->remove_tenant(tenant_);
    }
    compile_service_->unregister_client(compile_client_);
}

void
Runtime::init_metrics()
{
    m_.iterations = telemetry_.counter("scheduler.iterations");
    m_.evals_accepted = telemetry_.counter("repl.evals_accepted");
    m_.evals_rejected = telemetry_.counter("repl.evals_rejected");
    m_.engine_evals_sw = telemetry_.counter("engine.sw.evaluate");
    m_.engine_evals_hw = telemetry_.counter("engine.hw.evaluate");
    m_.engine_updates_sw = telemetry_.counter("engine.sw.update");
    m_.engine_updates_hw = telemetry_.counter("engine.hw.update");
    m_.net_events = telemetry_.counter("net.events_routed");
    m_.interrupts = telemetry_.counter("interrupt.enqueued");
    m_.clock_toggles = telemetry_.counter("clock.toggles");
    m_.compiles_launched = telemetry_.counter("compile.launched");
    m_.compiles_adopted = telemetry_.counter("compile.adopted");
    m_.compiles_rejected = telemetry_.counter("compile.rejected");
    m_.jit_launched = telemetry_.counter("jit.launched");
    m_.jit_adopted = telemetry_.counter("jit.adopted");
    m_.jit_unavailable = telemetry_.counter("jit.unavailable");
    m_.jit_discarded = telemetry_.counter("jit.discarded");
    m_.transitions = telemetry_.counter("transition.count");
    m_.open_loop_iterations = telemetry_.counter("openloop.iterations");
    m_.vcd_samples = telemetry_.counter("vcd.samples");
    m_.vcd_bytes = telemetry_.counter("vcd.bytes_written");
    m_.monitor_lines = telemetry_.counter("monitor.lines");
    m_.monitor_suppressed = telemetry_.counter("monitor.suppressed");
    m_.debug_fires = telemetry_.counter("debug.fires");
    m_.debug_steps = telemetry_.counter("debug.steps");
    m_.debug_peeks = telemetry_.counter("debug.peeks");
    m_.interrupt_depth = telemetry_.gauge("interrupt.queue_depth");
    m_.fifo_backlog = telemetry_.gauge("fifo.backlog");
    m_.debug_points = telemetry_.gauge("debug.points");
    m_.debug_halted = telemetry_.gauge("debug.halted");
    m_.step_ns = telemetry_.histogram("scheduler.step_ns");
    m_.eval_ns = telemetry_.histogram("repl.eval_ns");
    m_.open_loop_batch = telemetry_.histogram("openloop.batch");
    m_.open_loop_wall_ns = telemetry_.histogram("openloop.wall_ns");
    m_.compile_wait_ns = telemetry_.histogram("compile.wait_ns");
}

void
Runtime::bind_thread_tenant() const
{
    if (fabric_ != nullptr) {
        telemetry::set_thread_tenant(tenant_);
    }
}

bool
Runtime::eval(std::string_view source, std::string* errors)
{
    bind_thread_tenant();
    flush_api_steps();
    // The ctor's implicit "Clock clk();" eval is machinery, not a user
    // interaction: keep it out of the repl.* metrics.
    TELEM_SPAN_HIST("runtime.eval",
                    bootstrapping_ ? nullptr : m_.eval_ns);
    // Request tracing: the eval request's id is the journal seq of its
    // `eval` event (recorded at completion, so the id is known only when
    // the request closes — a single-segment request either way).
    const double eval_start_us = telemetry::Tracer::global().now_us();
    const auto track_eval = [&](uint64_t id, bool ok) {
        if (bootstrapping_) {
            return; // the ctor's implicit Clock eval is machinery
        }
        const double now_us = telemetry::Tracer::global().now_us();
        requests_.begin(id, "eval", version_, tenant_, eval_start_us);
        requests_.add_segment(id, "eval", now_us - eval_start_us);
        finish_request(id, "eval", version_, ok, now_us);
    };
    // Every outcome journals an `eval` event: the source text is what
    // replay re-feeds, and the ok/err fields are compared (a rejected
    // eval is as much a part of the session as an accepted one).
    const auto reject = [&](const std::string& err_text) {
        if (errors != nullptr) {
            *errors = err_text;
        }
        m_.evals_rejected->inc();
        const uint64_t id =
            journal_.record("eval", telemetry::JsonWriter()
                                        .boolean("ok", false)
                                        .num("version", version_)
                                        .str("src", source)
                                        .str("err", err_text)
                                        .build());
        track_eval(id, false);
        return false;
    };
    Diagnostics diags;
    SourceUnit unit = parse(source, &diags);
    if (diags.has_errors()) {
        return reject(diags.str());
    }

    // Integrate tentatively, roll back on elaboration failure (the REPL
    // rejects bad evals without disturbing the running program).
    std::vector<std::string> added_modules;
    for (auto& m : unit.modules) {
        if (lib_.find(m->name) != nullptr) {
            return reject("module '" + m->name +
                          "' is already declared (Cascade evals are "
                          "append-only, see paper §7.2)");
        }
        added_modules.push_back(m->name);
        lib_.add(std::move(m));
    }
    const size_t old_item_count = root_items_.size();
    for (auto& item : unit.root_items) {
        root_items_.push_back(std::move(item));
    }

    std::string rebuild_errors;
    if (!rebuild_program(&rebuild_errors, "eval")) {
        // Roll back.
        root_items_.resize(old_item_count);
        for (const std::string& name : added_modules) {
            lib_.remove(name);
        }
        if (!added_modules.empty() || old_item_count != 0 ||
            !root_items_.empty()) {
            std::string ignored;
            rebuild_program(&ignored, "rollback"); // restore previous good
        }
        return reject(rebuild_errors);
    }
    if (!bootstrapping_) {
        m_.evals_accepted->inc();
    }
    const uint64_t id =
        journal_.record("eval", telemetry::JsonWriter()
                                    .boolean("ok", true)
                                    .num("version", version_)
                                    .str("src", source)
                                    .build());
    track_eval(id, true);
    return true;
}

std::unique_ptr<ModuleDecl>
make_root(const std::vector<ItemPtr>& items)
{
    auto root = std::make_unique<ModuleDecl>();
    root->name = "Root";
    for (const auto& item : items) {
        root->items.push_back(item->clone());
    }
    return root;
}

std::vector<bool>
Runtime::initial_skip_mask(const ElaboratedModule& em,
                           const std::string& path, bool record)
{
    std::vector<bool> mask;
    std::map<std::string, int> used;
    auto& executed = executed_initials_[path];
    for (const auto& item : em.decl->items) {
        if (item->kind != ItemKind::Initial) {
            continue;
        }
        const std::string key = print(*item, 0);
        const int ran = [&] {
            const auto it = executed.find(key);
            return it == executed.end() ? 0 : it->second;
        }();
        if (used[key] < ran) {
            mask.push_back(true); // already fired in a past incarnation
        } else {
            mask.push_back(false);
            if (record) {
                ++executed[key];
            }
        }
        ++used[key];
    }
    return mask;
}

bool
Runtime::rebuild_program(std::string* errors, const char* reason)
{
    Diagnostics diags;
    auto root = make_root(root_items_);

    const ModuleDecl* top = root.get();
    std::unique_ptr<ModuleDecl> inlined;
    if (options_.enable_inlining) {
        inlined = ir::inline_hierarchy(*root, lib_,
                                       stdlib::stdlib_type_names(), &diags);
        if (inlined == nullptr) {
            if (errors != nullptr) {
                *errors = diags.str();
            }
            return false;
        }
        top = inlined.get();
    }
    auto subs = ir::split_program(*top, lib_,
                                  stdlib::stdlib_type_names(), &diags);
    if (subs.empty()) {
        if (errors != nullptr) {
            *errors = diags.str();
        }
        return false;
    }

    // Save state and net values from the current incarnation.
    std::map<std::string, sim::StateSnapshot> old_state;
    for (Slot& slot : slots_) {
        if (slot.engine != nullptr) {
            old_state[slot.sub.path] = slot.engine->get_state();
        }
    }
    // A hardware engine's snapshot covers the stdlib components inlined
    // into it; split it back out by prefix.
    if (user_location_ == Location::HardwareForwarded ||
        user_location_ == Location::Native ||
        user_location_ == Location::Jit) {
        const auto it = old_state.find("root");
        if (it != old_state.end()) {
            for (const auto& [instance, prefix] : adopted_prefixes_) {
                sim::StateSnapshot sub_snap;
                for (const auto& [name, value] : it->second.regs) {
                    if (name.rfind(prefix, 0) == 0) {
                        sub_snap.regs[name.substr(prefix.size())] = value;
                    }
                }
                for (const auto& [name, mem] : it->second.memories) {
                    if (name.rfind(prefix, 0) == 0) {
                        sub_snap.memories[name.substr(prefix.size())] =
                            mem;
                    }
                }
                old_state["root." + instance] = std::move(sub_snap);
            }
        }
    }
    std::map<std::string, BitVector> old_nets;
    for (const Net& net : nets_) {
        if (net.has_value) {
            old_nets[net.name] = net.value;
        }
    }

    // Build the new engine set (everything starts in software, §3.3).
    std::vector<Slot> new_slots;
    for (auto& sub : subs) {
        Slot slot;
        slot.sub = std::move(sub);
        const size_t dot = slot.sub.path.rfind('.');
        slot.instance = dot == std::string::npos
                            ? slot.sub.path
                            : slot.sub.path.substr(dot + 1);
        slot.is_stdlib = slot.sub.is_stdlib;
        slot_type_[slot.sub.path] = slot.sub.module_name;
        if (slot.sub.module_name == "Clock") {
            slot.is_clock = true;
            auto clock = std::make_unique<ClockEngine>();
            clock_engine_ = clock.get();
            slot.engine = std::move(clock);
        } else {
            Diagnostics ediags;
            Elaborator elab(&ediags);
            auto em = elab.elaborate(*slot.sub.source, slot.sub.params);
            if (em == nullptr) {
                if (errors != nullptr) {
                    *errors = "internal elaboration failure for '" +
                              slot.sub.path + "':\n" + ediags.str();
                }
                return false;
            }
            std::shared_ptr<const ElaboratedModule> shared(std::move(em));
            const auto mask =
                initial_skip_mask(*shared, slot.sub.path, true);
            auto sw = std::make_unique<SwEngine>(
                shared, this, mask, /*hardware_resident=*/slot.is_stdlib);
            sw->set_profiling(options_.profiling);
            slot.engine = std::move(sw);
        }
        for (const Port& p : slot.sub.source->ports) {
            slot.port_is_input.push_back(p.dir == PortDir::Input);
        }
        const auto st = old_state.find(slot.sub.path);
        if (st != old_state.end()) {
            slot.engine->set_state(st->second);
        }
        new_slots.push_back(std::move(slot));
    }

    // The old engines die with this swap: bank their profile counters
    // first (every failure path above returns with slots_ untouched, so
    // each engine is absorbed exactly once).
    const bool was_fabric = fabric_resident();
    fold_hw_window();
    for (const Slot& slot : slots_) {
        absorb_slot_profile(slot);
    }
    slots_ = std::move(new_slots);
    hw_engine_ = nullptr;
    // The retired fabric (and any debug instrumentation synthesized into
    // it) is gone; software-side condition evaluation takes over until
    // the next adoption re-arms the hardware.
    hw_rebuild_.reset();
    hw_debug_armed_.store(false, std::memory_order_relaxed);
    user_location_ = Location::Software;
    ++version_;
    // Falling off hardware hands our fabric slot back; in shared mode
    // that completes any pending eviction and wakes tenants parked on
    // capacity.
    if (was_fabric && fabric_ != nullptr) {
        fabric_->release_residency(tenant_);
    }

    wire_nets();
    for (const auto& [name, value] : old_nets) {
        inject_net(name, value);
    }
    resolve_peripherals();
    service_peripherals();

    settle_evaluations();

    journal_.record("rebuild", telemetry::JsonWriter()
                                   .num("version", version_)
                                   .str("reason", reason)
                                   .num("slots", slots_.size())
                                   .num("nets", nets_.size())
                                   .build());
    if (options_.enable_hardware) {
        launch_compile();
    }
    return true;
}

void
Runtime::settle_evaluations()
{
    for (int guard = 0; guard < 4096; ++guard) {
        bool any = false;
        for (Slot& slot : slots_) {
            if (slot.engine->there_are_evals()) {
                slot.engine->evaluate();
                any = true;
            }
        }
        if (!any) {
            return;
        }
        route_outputs();
    }
}

void
Runtime::flush_interrupts()
{
    uint64_t flush_id = 0;
    if (!interrupt_queue_.empty()) {
        flush_id = journal_.record("interrupt.flush",
                                   telemetry::JsonWriter()
                                       .num("count",
                                            interrupt_queue_.size())
                                       .build());
    }
    // Queue-residency latency for the SLO window: every stamped entry
    // drains in this batch (the queue empties below), so the stamp deque
    // clears with it. The oldest entry's wait is also the interrupt
    // batch's traced request latency (id = the flush event's seq).
    double oldest_wait_s = 0;
    if (!interrupt_enqueue_wall_.empty()) {
        const double now = wall_seconds();
        oldest_wait_s = now - interrupt_enqueue_wall_.front();
        for (const double t0 : interrupt_enqueue_wall_) {
            slo_->record_interrupt(now, now - t0);
        }
        interrupt_enqueue_wall_.clear();
    }
    if (flush_id != 0) {
        const double now_us = telemetry::Tracer::global().now_us();
        const double dur_us = std::max(0.0, oldest_wait_s * 1e6);
        requests_.begin(flush_id, "interrupt", version_, tenant_,
                        now_us - dur_us);
        requests_.add_segment(flush_id, "queue", dur_us);
        finish_request(flush_id, "interrupt", version_, true, now_us);
    }
    while (!interrupt_queue_.empty()) {
        if (on_output) {
            on_output(interrupt_queue_.front());
        }
        interrupt_queue_.pop_front();
    }
    m_.interrupt_depth->set(0);
}

void
Runtime::wire_nets()
{
    nets_.clear();
    net_index_.clear();
    auto net_of = [this](const std::string& name) -> size_t {
        const auto it = net_index_.find(name);
        if (it != net_index_.end()) {
            return it->second;
        }
        const size_t idx = nets_.size();
        Net net;
        net.name = name;
        nets_.push_back(std::move(net));
        net_index_[name] = idx;
        return idx;
    };
    for (size_t s = 0; s < slots_.size(); ++s) {
        Slot& slot = slots_[s];
        slot.port_net.clear();
        for (size_t p = 0; p < slot.sub.bindings.size(); ++p) {
            const size_t n = net_of(slot.sub.bindings[p].global_net);
            slot.port_net.push_back(static_cast<int32_t>(n));
            if (p < slot.port_is_input.size() && slot.port_is_input[p]) {
                nets_[n].readers.emplace_back(s,
                                              static_cast<uint32_t>(p));
            }
        }
    }
}

int
Runtime::find_net(const std::string& name) const
{
    const auto it = net_index_.find(name);
    return it == net_index_.end() ? -1 : static_cast<int>(it->second);
}

void
Runtime::inject_net(const std::string& name, const BitVector& value)
{
    const int n = find_net(name);
    if (n < 0) {
        return;
    }
    Net& net = nets_[static_cast<size_t>(n)];
    if (net.has_value && net.value == value) {
        return;
    }
    net.value = value;
    net.has_value = true;
    for (const auto& [slot, port] : net.readers) {
        slots_[slot].engine->read({port, value});
    }
}

void
Runtime::route_outputs()
{
    for (size_t s = 0; s < slots_.size(); ++s) {
        Slot& slot = slots_[s];
        for (Event& e : slot.engine->write()) {
            const int32_t n = slot.port_net[e.port];
            if (n < 0) {
                continue;
            }
            Net& net = nets_[static_cast<size_t>(n)];
            if (net.has_value && net.value == e.value) {
                continue;
            }
            net.value = e.value;
            net.has_value = true;
            m_.net_events->inc();
            if (slot.is_clock) {
                ++clock_toggles_;
                m_.clock_toggles->inc();
            }
            for (const auto& [rs, rp] : net.readers) {
                slots_[rs].engine->read({rp, net.value});
            }
        }
    }
}

bool
Runtime::step()
{
    // Journaled lazily as one coalesced api.step{n} event: flushed before
    // the next non-step input event (step_internal itself is also driven
    // by run()/run_for_ticks(), which journal their own inputs).
    bind_thread_tenant();
    ++pending_api_steps_;
    return step_internal();
}

bool
Runtime::step_internal()
{
    // Exclusive sessions skip the span: the tracer push is mutex-guarded
    // and would tax the single-runtime hot path for a one-lane trace.
    if (fabric_ == nullptr) {
        return step_body();
    }
    telemetry::SpanGuard span(telemetry::Tracer::global(), "sched.iter");
    return step_body();
}

bool
Runtime::step_body()
{
    if (finished_) {
        return false;
    }
    if (debug_halted_.load(std::memory_order_relaxed) && !debug_stepping_) {
        // Halted at a fired point: the virtual clock is paused, so the
        // iteration is refused rather than executed. The monitor sampler
        // still runs — a halted session should read as "paused", not
        // "hung", on /timeseries.
        sample_monitor();
        return !finished_;
    }
    const double t0 = wall_seconds();
    ++iterations_;
    m_.iterations->inc();

    // Evaluation phase: run engines with active evaluation events to a
    // cross-engine fixed point (Fig. 6 lines 3-4, batched).
    for (int guard = 0; guard < 4096; ++guard) {
        bool any = false;
        for (Slot& slot : slots_) {
            if (slot.engine->there_are_evals()) {
                slot.engine->evaluate();
                (slot.engine->is_hardware() ? m_.engine_evals_hw
                                            : m_.engine_evals_sw)
                    ->inc();
                any = true;
            }
        }
        if (!any) {
            break;
        }
        route_outputs();
    }

    // Update phase (lines 5-8) or the inter-timestep window (line 10).
    bool any_updates = false;
    for (Slot& slot : slots_) {
        if (slot.engine->there_are_updates()) {
            any_updates = true;
        }
    }
    if (any_updates) {
        for (Slot& slot : slots_) {
            if (slot.engine->there_are_updates()) {
                slot.engine->update();
                (slot.engine->is_hardware() ? m_.engine_updates_hw
                                            : m_.engine_updates_sw)
                    ->inc();
            }
        }
        route_outputs();
    } else {
        window();
    }

    // Timeline: wall time while the user logic is interpreted, modeled
    // device/bus time once it lives in hardware.
    double modeled = 0;
    for (Slot& slot : slots_) {
        modeled += slot.engine->take_modeled_seconds();
    }
    if (user_location_ == Location::Software) {
        timeline_s_ += wall_seconds() - t0;
    } else {
        timeline_s_ += modeled;
    }
    m_.step_ns->record(
        static_cast<uint64_t>((wall_seconds() - t0) * 1e9));
    if (finished_) {
        // Shutdown: drain the interrupt queue so the final $display lines
        // reach the view, and notify engines (Fig. 6 line 14).
        flush_interrupts();
        for (Slot& slot : slots_) {
            slot.engine->end();
        }
        journal_.record("finish", telemetry::JsonWriter()
                                      .num("iteration", iterations_)
                                      .build());
        telemetry::Tracer::global().instant("runtime.finish",
                                            virtual_ticks());
    }
    return !finished_;
}

void
Runtime::window()
{
    // Close an adopted compile request once the fabric ticked (the
    // adoption itself happened in an earlier window's poll_compiles).
    note_first_hw_tick();
    // Ordered interrupt queue -> view.
    flush_interrupts();
    for (Slot& slot : slots_) {
        slot.engine->end_step();
        if (slot.engine->finished()) {
            finished_ = true;
        }
    }
    // end_step is where software engines flush $monitor candidates; drain
    // again so a monitor line reaches the view in the same window as its
    // timestep (the hardware engine's lines, serviced mid-step, already
    // made the first drain).
    flush_interrupts();
    // End-of-timestep waveform sample, before any engine adoption below:
    // the last pre-handoff sample and the first post-handoff sample then
    // bracket the transition with continuous values.
    sample_vcd();
    // Debugger evaluation window: one relaxed atomic load while
    // disarmed. Runs before the eviction checkpoint because a hardware
    // fire evicts to software right here — and in replay the recorded
    // hypervisor.evict for that same iteration then finds the program
    // already in software and no-ops.
    if (!finished_ && debugger_.armed()) {
        debug_eval_window();
    }
    // Eviction checkpoint: a tenant flagged by the hypervisor falls back
    // to software here, between timesteps, where get_state()/set_state()
    // relocation is safe. Replay re-applies recorded evictions at the
    // same iteration so shared-mode sessions stay deterministic.
    if (!finished_) {
        if (replay_) {
            while (!replay_schedule_.evictions.empty() &&
                   replay_schedule_.evictions.front() <= iterations_) {
                replay_schedule_.evictions.pop_front();
                evict_to_software();
            }
        } else if (fabric_ != nullptr &&
                   user_location_ != Location::Software &&
                   fabric_->eviction_pending(tenant_)) {
            evict_to_software();
        }
    }
    // JIT results before fabric results: when both tiers finish inside
    // one window the kernel is adopted first and the fabric immediately
    // upgrades it, so the journal order (jit.adopt before adopt) is the
    // same one replay reproduces.
    poll_jit();
    poll_compiles();
    service_peripherals();
    // Time-series + SLO sampling (README §Monitoring): interval-gated,
    // so between samples this is one wall-clock read.
    sample_monitor();
    // Open-loop free-running skips the per-timestep windows a waveform
    // dump samples in, so it is suspended while a dump is active — and
    // likewise while halted at a fired point, or when debug conditions
    // are armed but not synthesized into the fabric (software-evaluated
    // conditions need every window).
    if (!finished_ && options_.enable_open_loop && !vcd_capture_ &&
        !debug_halted_.load(std::memory_order_relaxed) &&
        (!debugger_.armed() ||
         hw_debug_armed_.load(std::memory_order_relaxed))) {
        run_open_loop();
        // An open-loop batch right after adoption already executed the
        // first hardware ticks; close the request in the same window.
        note_first_hw_tick();
    }
}

bool
Runtime::run_for_ticks(uint64_t ticks)
{
    bind_thread_tenant();
    flush_api_steps();
    journal_.record("api.run_ticks",
                    telemetry::JsonWriter().num("n", ticks).build());
    const uint64_t target = virtual_ticks() + ticks;
    uint64_t guard = 0;
    while (virtual_ticks() < target && !finished_) {
        if (debug_halted_.load(std::memory_order_relaxed)) {
            break; // halted at a breakpoint: the virtual clock is paused
        }
        if (!step_internal()) {
            break;
        }
        if (++guard > ticks * 64 + (1u << 22)) {
            break;
        }
    }
    return finished_;
}

bool
Runtime::run(uint64_t max_iterations)
{
    bind_thread_tenant();
    flush_api_steps();
    journal_.record("api.run",
                    telemetry::JsonWriter().num("n", max_iterations).build());
    for (uint64_t i = 0; i < max_iterations && !finished_; ++i) {
        if (debug_halted_.load(std::memory_order_relaxed)) {
            break; // halted at a breakpoint: the virtual clock is paused
        }
        step_internal();
    }
    return finished_;
}

bool
Runtime::hardware_ready() const
{
    return fabric_resident();
}

bool
Runtime::wait_for_hardware(double timeout_s)
{
    bind_thread_tenant();
    flush_api_steps();
    // Poll the compile service without stepping the scheduler: virtual
    // time does not advance, so an adopted program starts on the fabric
    // at the same tick a software run would start at (tick-0 adoption).
    // The wait blocks on the service's done condition variable (no
    // sleep-polling); time spent here is the `compile.wait` span.
    const double t0 = wall_seconds();
    {
        TELEM_SPAN_HIST("compile.wait", m_.compile_wait_ns);
        while (!fabric_resident()) {
            // A JIT kernel may land (and be adopted) while the fabric
            // compile is still running; the wait continues through it —
            // hardware_ready() means real residency.
            poll_jit();
            poll_compiles();
            if (fabric_resident()) {
                break;
            }
            const double remaining = timeout_s - (wall_seconds() - t0);
            if (remaining <= 0) {
                break;
            }
            if (replay_) {
                // Replay completion is driven by the recorded schedule,
                // not wall time; replay_poll_compiles (inside
                // poll_compiles) blocks until the pinned compile lands.
                if (replay_schedule_.compile_points.empty()) {
                    break;
                }
                continue;
            }
            if (parked_outcome_.has_value() && fabric_ != nullptr) {
                // Admission denied retryably: wake on fabric capacity
                // changes rather than compile completions.
                fabric_->wait_for_change(std::min(remaining, 0.05));
                continue;
            }
            if (!compile_service_->wait_for_done(compile_client_,
                                                 remaining)) {
                // Timed out, or nothing in flight will ever complete.
                if (!compile_service_->busy(compile_client_)) {
                    break;
                }
            }
        }
    }
    const bool ok = fabric_resident();
    journal_.record("api.wait_hw",
                    telemetry::JsonWriter().boolean("ok", ok).build());
    return ok;
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

void
Runtime::flush_api_steps()
{
    // step() is the REPL/driver hot path; journaling each call would write
    // a line per scheduler iteration. Instead steps accumulate and one
    // coalesced api.step{n} is emitted before the next non-step input.
    if (pending_api_steps_ == 0) {
        return;
    }
    const uint64_t n = pending_api_steps_;
    pending_api_steps_ = 0;
    journal_.record("api.step",
                    telemetry::JsonWriter().num("n", n).build());
}

void
Runtime::log_event(LogLevel level, const char* component,
                   const std::string& message)
{
    journal_.record("log", telemetry::JsonWriter()
                               .str("level", log_level_name(level))
                               .str("component", component)
                               .str("msg", message)
                               .build());
    if (Logger::instance().enabled(level)) {
        Logger::instance().write(level, component, message);
    }
}

std::string
Runtime::journal_header_json() const
{
    // Every option that shapes execution, so a replayer can reconstruct an
    // identically-configured Runtime from the journal alone. Doubles are
    // printed round-trip exact (%.17g) by JsonWriter::dbl.
    return telemetry::JsonWriter()
        .boolean("enable_inlining", options_.enable_inlining)
        .boolean("enable_hardware", options_.enable_hardware)
        .boolean("enable_jit", options_.enable_jit)
        .boolean("enable_forwarding", options_.enable_forwarding)
        .boolean("enable_open_loop", options_.enable_open_loop)
        .boolean("native_mode", options_.native_mode)
        .dbl("compile_effort", options_.compile_effort)
        .dbl("device_clock_mhz", options_.device_clock_mhz)
        .dbl("mmio_latency_s", options_.mmio_latency_s)
        .num("device_les", options_.device_les)
        .num("device_bram_bits", options_.device_bram_bits)
        .num("open_loop_iterations", options_.open_loop_iterations)
        .dbl("open_loop_target_wall_s", options_.open_loop_target_wall_s)
        .boolean("profiling", options_.profiling)
        .num("compile_seed", options_.compile_seed)
        .build();
}

bool
Runtime::start_recording(const std::string& path, std::string* err)
{
    if (version_ > 1) {
        if (err != nullptr) {
            *err = "recording must start on a fresh session (the journal "
                   "replays the whole session from its beginning)";
        }
        return false;
    }
    return journal_.start_file(path, journal_header_json(), err);
}

void
Runtime::stop_recording()
{
    flush_api_steps();
    journal_.stop_file();
}

void
Runtime::begin_replay(ReplaySchedule schedule)
{
    replay_ = true;
    replay_schedule_ = std::move(schedule);
}

void
Runtime::on_display(const std::string& text)
{
    interrupt_queue_.push_back(text + "\n");
    journal_.record("interrupt.enqueue",
                    interrupt_payload("display", interrupt_queue_.back()));
    m_.interrupts->inc();
    m_.interrupt_depth->set(
        static_cast<int64_t>(interrupt_queue_.size()));
    if (options_.slo_max_interrupt_p99_s > 0) {
        interrupt_enqueue_wall_.push_back(wall_seconds());
    }
}

void
Runtime::on_write(const std::string& text)
{
    interrupt_queue_.push_back(text);
    journal_.record("interrupt.enqueue",
                    interrupt_payload("write", interrupt_queue_.back()));
    m_.interrupts->inc();
    m_.interrupt_depth->set(
        static_cast<int64_t>(interrupt_queue_.size()));
    if (options_.slo_max_interrupt_p99_s > 0) {
        interrupt_enqueue_wall_.push_back(wall_seconds());
    }
}

void
Runtime::on_finish()
{
    finished_ = true;
}

void
Runtime::on_monitor(const std::string& key, const std::string& text)
{
    // Once-per-change: engines emit candidate lines (the software engine
    // every timestep, the hardware engine on argument change or first fire
    // after a handoff); only a changed text reaches the interrupt queue.
    const auto it = monitor_last_.find(key);
    if (it != monitor_last_.end() && it->second == text) {
        m_.monitor_suppressed->inc();
        return;
    }
    monitor_last_[key] = text;
    m_.monitor_lines->inc();
    journal_.record(
        "monitor.line",
        telemetry::JsonWriter()
            .str("key_digest", telemetry::digest_hex(key))
            .str("text", text)
            .build());
    on_display(text);
}

void
Runtime::on_dumpfile(const std::string& path)
{
    if (vcd_declared_) {
        interrupt_queue_.push_back(
            "vcd: $dumpfile ignored, dump already started\n");
        return;
    }
    vcd_requested_path_ = path;
}

void
Runtime::on_dumpvars()
{
    vcd_probe_all_ = true;
    vcd_capture_ = true;
}

void
Runtime::on_dumpoff()
{
    // Applied at the next end-of-timestep sample point, matching the
    // once-per-timestep granularity of the dump itself.
    vcd_pending_off_ = true;
    vcd_pending_on_ = false;
}

void
Runtime::on_dumpon()
{
    vcd_pending_on_ = true;
    vcd_pending_off_ = false;
}

// ---------------------------------------------------------------------------
// Waveform capture
// ---------------------------------------------------------------------------

bool
Runtime::vcd_open(const std::string& path, std::string* err)
{
    flush_api_steps();
    if (vcd_declared_) {
        if (err != nullptr) {
            *err = "a dump is already in progress (signal set is frozen)";
        }
        return false;
    }
    if (!vcd_.open(path, err)) {
        return false;
    }
    journal_.record("api.vcd",
                    telemetry::JsonWriter().str("path", path).build());
    vcd_requested_path_ = path;
    vcd_bytes_seen_ = 0; // the writer's byte counter restarted at zero
    vcd_capture_ = true;
    return true;
}

void
Runtime::close_vcd()
{
    if (vcd_.is_open()) {
        flush_api_steps();
        journal_.record("api.vcd_close", "{}");
        const std::string path = vcd_requested_path_;
        const uint64_t before = vcd_.bytes_written();
        vcd_.close();
        m_.vcd_bytes->inc(
            static_cast<int64_t>(vcd_.bytes_written() - before));
        vcd_bytes_seen_ = vcd_.bytes_written();
        // Digest the closed waveform: identical stimulus must produce an
        // identical file, so replay compares this event byte-for-byte.
        journal_.record("vcd.digest",
                        telemetry::JsonWriter()
                            .str("path", path)
                            .num("bytes", vcd_.bytes_written())
                            .str("digest", file_digest_hex(path))
                            .build());
    }
    vcd_capture_ = false;
    vcd_declared_ = false;
    vcd_probe_all_ = false;
    vcd_pending_off_ = false;
    vcd_pending_on_ = false;
    vcd_probes_.clear();
    vcd_requested_path_.clear();
}

bool
Runtime::signal_exists(const std::string& name) const
{
    if (net_index_.count(name) != 0) {
        return true;
    }
    for (const Slot& slot : slots_) {
        if (slot.sub.path == "root" && slot.engine != nullptr) {
            const sim::StateSnapshot snap = slot.engine->get_state();
            return snap.regs.count(name) != 0;
        }
    }
    return false;
}

bool
Runtime::add_probe(const std::string& name, std::string* err)
{
    if (vcd_declared_) {
        if (err != nullptr) {
            *err = "dump already started; probes are frozen (open a new "
                   "file with :vcd first)";
        }
        return false;
    }
    if (!signal_exists(name)) {
        if (err != nullptr) {
            *err = "unknown signal '" + name + "'";
        }
        return false;
    }
    if (std::find(probe_names_.begin(), probe_names_.end(), name) ==
        probe_names_.end()) {
        probe_names_.push_back(name);
    }
    flush_api_steps();
    journal_.record("api.probe",
                    telemetry::JsonWriter().str("name", name).build());
    return true;
}

bool
Runtime::remove_probe(const std::string& name)
{
    const auto it =
        std::find(probe_names_.begin(), probe_names_.end(), name);
    if (it == probe_names_.end()) {
        return false;
    }
    probe_names_.erase(it);
    flush_api_steps();
    journal_.record("api.unprobe",
                    telemetry::JsonWriter().str("name", name).build());
    return true;
}

void
Runtime::declare_vcd_signals()
{
    // Freeze point: expand the probe set and declare it, sorted, so the
    // header is deterministic for a given program regardless of engine.
    std::vector<std::string> names = probe_names_;
    if (vcd_probe_all_ || names.empty()) {
        for (const Net& net : nets_) {
            if (net.has_value) {
                names.push_back(net.name);
            }
        }
        // A subprogram's snapshot also lists port images of global nets
        // (cross-module refs promoted to ports, `clk.val` -> `clk_val`).
        // The hardware wrapper exposes those as readable slots while the
        // interpreter does not; skip them so the expanded set — and with
        // it the VCD header — is identical in both engines. The net
        // itself is already in the list above.
        std::set<std::string> port_images;
        for (const Net& net : nets_) {
            std::string flat = net.name;
            if (flat.rfind("root.", 0) == 0) {
                flat.erase(0, 5);
            }
            std::replace(flat.begin(), flat.end(), '.', '_');
            port_images.insert(std::move(flat));
        }
        if (Slot* user = user_slot(); user != nullptr) {
            for (const auto& [reg, value] : user->engine->get_state().regs) {
                if (port_images.count(reg) == 0) {
                    names.push_back(reg);
                }
            }
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());

    sim::StateSnapshot snap;
    if (Slot* user = user_slot(); user != nullptr) {
        snap = user->engine->get_state();
    }
    for (const std::string& name : names) {
        Probe probe;
        probe.name = name;
        probe.net_index = find_net(name);
        probe.is_net = probe.net_index >= 0;
        uint32_t width = 1;
        if (probe.is_net) {
            const Net& net = nets_[static_cast<size_t>(probe.net_index)];
            width = net.has_value ? net.value.width() : 1;
        } else {
            const auto it = snap.regs.find(name);
            if (it == snap.regs.end()) {
                continue; // vanished since add_probe (program re-eval)
            }
            width = it->second.width();
        }
        if (vcd_.declare(name, width) >= 0) {
            vcd_probes_.push_back(std::move(probe));
        }
    }
    vcd_declared_ = true;
}

std::vector<const BitVector*>
Runtime::gather_vcd_values(std::vector<BitVector>* storage)
{
    // Snapshot register values first so pointers stay stable.
    storage->clear();
    storage->reserve(vcd_probes_.size());
    sim::StateSnapshot snap;
    bool have_snap = false;
    std::vector<const BitVector*> values(vcd_probes_.size(), nullptr);
    // Two passes: copy every sampled value into storage, then take
    // addresses (reserve above prevents reallocation in between).
    for (const Probe& probe : vcd_probes_) {
        if (probe.is_net) {
            const Net& net = nets_[static_cast<size_t>(probe.net_index)];
            storage->push_back(net.has_value ? net.value : BitVector());
        } else {
            if (!have_snap) {
                if (Slot* user = user_slot(); user != nullptr) {
                    snap = user->engine->get_state();
                }
                have_snap = true;
            }
            const auto it = snap.regs.find(probe.name);
            storage->push_back(it != snap.regs.end() ? it->second
                                                     : BitVector());
        }
    }
    for (size_t i = 0; i < vcd_probes_.size(); ++i) {
        const Probe& probe = vcd_probes_[i];
        const bool missing =
            probe.is_net
                ? !nets_[static_cast<size_t>(probe.net_index)].has_value
                : (*storage)[i].width() == 0;
        values[i] = missing ? nullptr : &(*storage)[i];
    }
    return values;
}

void
Runtime::sample_vcd()
{
    if (!vcd_capture_) {
        return;
    }
    if (!vcd_.is_open()) {
        // $dumpvars without an explicit $dumpfile falls back to a default.
        const std::string path = vcd_requested_path_.empty()
                                     ? "cascade.vcd"
                                     : vcd_requested_path_;
        std::string err;
        if (!vcd_.open(path, &err)) {
            interrupt_queue_.push_back("vcd: " + err + "\n");
            vcd_capture_ = false;
            return;
        }
        vcd_requested_path_ = path;
    }
    if (!vcd_declared_) {
        declare_vcd_signals();
    }
    std::vector<BitVector> storage;
    if (vcd_pending_off_) {
        vcd_pending_off_ = false;
        vcd_.dump_off(clock_toggles_);
    }
    if (vcd_pending_on_) {
        vcd_pending_on_ = false;
        vcd_.dump_on(clock_toggles_, gather_vcd_values(&storage));
    }
    if (vcd_.dumping()) {
        vcd_.sample(clock_toggles_, gather_vcd_values(&storage));
        m_.vcd_samples->inc();
    }
    vcd_.flush();
    const uint64_t bytes = vcd_.bytes_written();
    if (bytes > vcd_bytes_seen_) {
        m_.vcd_bytes->inc(bytes - vcd_bytes_seen_);
        vcd_bytes_seen_ = bytes;
    }
}

// ---------------------------------------------------------------------------
// Interactive debugger
// ---------------------------------------------------------------------------

const BitVector*
Runtime::debug_read(const std::string& name,
                    std::map<std::string, BitVector>* cache)
{
    const auto cached = cache->find(name);
    if (cached != cache->end()) {
        return &cached->second;
    }
    const int ni = find_net(name);
    if (ni >= 0 && nets_[static_cast<size_t>(ni)].has_value) {
        return &nets_[static_cast<size_t>(ni)].value;
    }
    if (Slot* user = user_slot(); user != nullptr && user->engine) {
        if (auto v = user->engine->peek(name)) {
            return &cache->emplace(name, std::move(*v)).first->second;
        }
    }
    return nullptr;
}

uint64_t
Runtime::debug_break(const std::string& signal, const std::string& op,
                     const std::string& value, std::string* err)
{
    bind_thread_tenant();
    if (!Debugger::valid_op(op)) {
        if (err != nullptr) {
            *err = "unknown comparison '" + op +
                   "' (use == != < > <= >=)";
        }
        return 0;
    }
    const auto parsed = BitVector::from_decimal(64, value);
    if (!parsed.has_value()) {
        if (err != nullptr) {
            *err = "bad value '" + value + "' (unsigned decimal)";
        }
        return 0;
    }
    std::map<std::string, BitVector> cache;
    if (debug_read(signal, &cache) == nullptr) {
        if (err != nullptr) {
            *err = "unknown signal '" + signal + "'";
        }
        return 0;
    }
    flush_api_steps();
    const uint64_t seq =
        journal_.record("api.debug_break", telemetry::JsonWriter()
                                               .str("signal", signal)
                                               .str("op", op)
                                               .str("value", value)
                                               .build());
    const uint64_t id = debugger_.add_break(signal, op, *parsed);
    debug_arm_seq_[id] = seq;
    m_.debug_points->set(static_cast<int64_t>(debugger_.size()));
    // Flow arrow from the arming eval to the eventual fire.
    telemetry::Tracer::global().flow("debug.arm", 's', seq);
    if (hw_engine_ != nullptr) {
        std::string derr;
        if (!rearm_hardware_debug(&derr)) {
            log_event(LogLevel::Warn, "debug",
                      "hardware trigger instrumentation unavailable: " +
                          derr + " (condition evaluates in software; "
                                 "open loop suspended)");
        }
    }
    log_event(LogLevel::Info, "debug",
              "breakpoint #" + std::to_string(id) + " armed: " + signal +
                  " " + op + " " + value);
    return id;
}

uint64_t
Runtime::debug_watch(const std::string& signal, std::string* err)
{
    bind_thread_tenant();
    std::map<std::string, BitVector> cache;
    if (debug_read(signal, &cache) == nullptr) {
        if (err != nullptr) {
            *err = "unknown signal '" + signal + "'";
        }
        return 0;
    }
    flush_api_steps();
    const uint64_t seq =
        journal_.record("api.debug_watch", telemetry::JsonWriter()
                                               .str("signal", signal)
                                               .build());
    const uint64_t id = debugger_.add_watch(signal);
    debug_arm_seq_[id] = seq;
    m_.debug_points->set(static_cast<int64_t>(debugger_.size()));
    telemetry::Tracer::global().flow("debug.arm", 's', seq);
    if (hw_engine_ != nullptr) {
        std::string derr;
        if (!rearm_hardware_debug(&derr)) {
            log_event(LogLevel::Warn, "debug",
                      "hardware trigger instrumentation unavailable: " +
                          derr + " (condition evaluates in software; "
                                 "open loop suspended)");
        }
    }
    log_event(LogLevel::Info, "debug",
              "watchpoint #" + std::to_string(id) + " armed on " + signal);
    return id;
}

bool
Runtime::debug_delete(uint64_t id)
{
    bind_thread_tenant();
    flush_api_steps();
    journal_.record("api.debug_delete",
                    telemetry::JsonWriter().num("id", id).build());
    if (!debugger_.remove(id)) {
        return false;
    }
    debug_arm_seq_.erase(id);
    m_.debug_points->set(static_cast<int64_t>(debugger_.size()));
    if (hw_engine_ != nullptr) {
        std::string derr;
        rearm_hardware_debug(&derr); // drops the point's trigger cell
    }
    return true;
}

bool
Runtime::debug_step(uint64_t cycles, std::string* err)
{
    bind_thread_tenant();
    if (!debug_halted_.load(std::memory_order_relaxed)) {
        if (err != nullptr) {
            *err = "not halted (a :break/:watch must fire first)";
        }
        return false;
    }
    if (finished_) {
        if (err != nullptr) {
            *err = "program finished";
        }
        return false;
    }
    flush_api_steps();
    journal_.record("api.debug_step",
                    telemetry::JsonWriter().num("n", cycles).build());
    m_.debug_steps->inc(cycles);
    journal_.record("debug.step", telemetry::JsonWriter()
                                      .num("n", cycles)
                                      .num("iteration", iterations_)
                                      .num("tick", virtual_ticks())
                                      .build());
    // Let exactly \p cycles virtual clock cycles through the halt gate.
    debug_stepping_ = true;
    const uint64_t target = virtual_ticks() + cycles;
    uint64_t guard = 0;
    while (virtual_ticks() < target && !finished_) {
        step_internal();
        if (++guard > cycles * 64 + (1u << 20)) {
            break; // clockless program: nothing will ever tick
        }
    }
    debug_stepping_ = false;
    return true;
}

bool
Runtime::debug_continue()
{
    bind_thread_tenant();
    if (!debug_halted_.load(std::memory_order_relaxed)) {
        return false;
    }
    flush_api_steps();
    journal_.record("api.debug_continue", telemetry::JsonWriter()
                                              .num("iteration", iterations_)
                                              .build());
    debug_halted_.store(false, std::memory_order_relaxed);
    m_.debug_halted->set(0);
    // The halt is a span on this tenant's trace lane, from fire to here.
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    const double now_us = tracer.now_us();
    if (fabric_ != nullptr) {
        tracer.record_complete_tenant("debug.halt", debug_halt_start_us_,
                                      now_us - debug_halt_start_us_,
                                      tenant_);
    } else {
        tracer.record_complete("debug.halt", debug_halt_start_us_,
                               now_us - debug_halt_start_us_, 0);
    }
    journal_.record("debug.resume", telemetry::JsonWriter()
                                        .num("iteration", iterations_)
                                        .num("tick", virtual_ticks())
                                        .build());
    log_event(LogLevel::Info, "debug",
              "continuing from tick " + std::to_string(virtual_ticks()));
    // Re-admission is already in flight: the eviction's rebuild
    // relaunched the background compile, so the normal poll/adopt path
    // moves the program back to hardware on the next windows.
    return true;
}

std::optional<BitVector>
Runtime::debug_peek(const std::string& signal, std::string* err)
{
    bind_thread_tenant();
    flush_api_steps();
    journal_.record("api.debug_peek",
                    telemetry::JsonWriter().str("signal", signal).build());
    std::map<std::string, BitVector> cache;
    const BitVector* v = debug_read(signal, &cache);
    if (v == nullptr) {
        if (err != nullptr) {
            *err = "unknown signal '" + signal + "'";
        }
        return std::nullopt;
    }
    m_.debug_peeks->inc();
    // Compared on replay: a replayed peek cross-checks the recorded
    // value, so state divergence surfaces at the first peek.
    journal_.record("debug.peek",
                    telemetry::JsonWriter()
                        .str("signal", signal)
                        .str("value", "0x" + v->to_hex_string())
                        .num("width", v->width())
                        .num("tick", virtual_ticks())
                        .build());
    return *v;
}

void
Runtime::debug_eval_window()
{
    std::map<std::string, BitVector> cache;
    const bool hw_armed = hw_debug_armed_.load(std::memory_order_relaxed);
    if (!hw_armed) {
        // Pre-trigger ring: mirror the probed signals each window. While
        // the triggers live in the fabric its own capture ring records
        // instead (these windows never see open-loop cycles anyway).
        sample_debug_ring(&cache);
    }
    std::optional<Debugger::Fire> fire;
    bool hw_fire = false;
    if (hw_armed && hw_engine_ != nullptr) {
        const uint64_t id = hw_engine_->debug_fired();
        if (id != 0) {
            const auto point = debugger_.note_fire(id);
            if (point.has_value()) {
                Debugger::Fire f;
                f.id = id;
                f.kind = point->kind;
                f.signal = point->signal;
                if (auto v = hw_engine_->peek(point->signal)) {
                    f.value = std::move(*v);
                }
                fire = std::move(f);
                hw_fire = true;
            }
        }
    } else {
        fire = debugger_.evaluate(
            [this, &cache](const std::string& name) {
                return debug_read(name, &cache);
            });
    }
    if (fire.has_value()) {
        handle_debug_fire(*fire, hw_fire);
    }
}

void
Runtime::handle_debug_fire(const Debugger::Fire& fire, bool hw_fire)
{
    const bool was_halted =
        debug_halted_.load(std::memory_order_relaxed);
    const char* kind =
        fire.kind == Debugger::Kind::Watch ? "watch" : "break";
    // Replay compares this event: a fire is pinned by its recorded
    // iteration, exactly like an eviction. The payload stays value-free
    // except the signal identity (values are cross-checked by peeks).
    journal_.record("debug.fire", telemetry::JsonWriter()
                                      .num("id", fire.id)
                                      .str("kind", kind)
                                      .str("signal", fire.signal)
                                      .num("iteration", iterations_)
                                      .num("tick", virtual_ticks())
                                      .str("origin", hw_fire ? "hw" : "sw")
                                      .build());
    m_.debug_fires->inc();
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    tracer.instant("debug.fire", fire.id);
    const auto arm = debug_arm_seq_.find(fire.id);
    if (arm != debug_arm_seq_.end()) {
        // Close the causal arrow opened when the point was armed.
        tracer.flow("debug.arm", 'f', arm->second);
    }
    std::string line = "debug: ";
    line += fire.kind == Debugger::Kind::Watch ? "watchpoint #"
                                               : "breakpoint #";
    line += std::to_string(fire.id) + " fired on " + fire.signal;
    if (fire.value.width() != 0) {
        line += " (value 0x" + fire.value.to_hex_string() + ")";
    }
    line += " at tick " + std::to_string(virtual_ticks()) +
            (hw_fire ? " [hardware]" : "") + "\n";
    interrupt_queue_.push_back(std::move(line));
    m_.interrupts->inc();
    if (was_halted) {
        // Fired while single-stepping: report it, stay halted.
        flush_interrupts();
        return;
    }
    // Dump the pre-trigger window before any eviction tears the fabric
    // (and its capture ring) down.
    dump_debug_window(hw_fire);
    debug_halt_start_us_ = tracer.now_us();
    debug_halted_.store(true, std::memory_order_relaxed);
    m_.debug_halted->set(1);
    log_event(LogLevel::Info, "debug",
              std::string(kind) + "point #" + std::to_string(fire.id) +
                  " fired on " + fire.signal + " at iteration " +
                  std::to_string(iterations_) +
                  (hw_fire ? " (hardware trigger; evicting to software "
                             "for cycle-stepping)"
                           : ""));
    if (user_location_ != Location::Software && !finished_) {
        // Cooperative eviction over the state-transfer ABI: the user
        // cycle-steps in the interpreter; :continue re-admits via the
        // compile the rebuild relaunches.
        evict_to_software();
        // The fabric already reported this edge; re-baseline the
        // software evaluator so the same condition does not fire again
        // on the next window.
        std::map<std::string, BitVector> cache;
        debugger_.prime([this, &cache](const std::string& name) {
            return debug_read(name, &cache);
        });
    }
    flush_interrupts();
}

void
Runtime::sample_debug_ring(std::map<std::string, BitVector>* cache)
{
    // Signal set: the frozen VCD probes when a dump is active (same
    // order, so the dumped window's identifier codes byte-match the main
    // file's), else explicit probes, else the armed signals themselves.
    std::vector<std::string> names;
    if (vcd_declared_) {
        names.reserve(vcd_probes_.size());
        for (const Probe& p : vcd_probes_) {
            names.push_back(p.name);
        }
    } else if (!probe_names_.empty()) {
        names = probe_names_;
        std::sort(names.begin(), names.end());
        names.erase(std::unique(names.begin(), names.end()), names.end());
    } else {
        for (const auto& p : debugger_.points()) {
            names.push_back(p.signal);
        }
        std::sort(names.begin(), names.end());
        names.erase(std::unique(names.begin(), names.end()), names.end());
    }
    if (names != debug_ring_.names) {
        debug_ring_.reset();
        debug_ring_.names = std::move(names);
    }
    CaptureRing::Sample sample;
    sample.time = clock_toggles_;
    if (vcd_declared_) {
        // Identical gather as sample_vcd() in this same window, so the
        // ring's values (and the change records they render to) equal
        // the main dump's.
        std::vector<BitVector> storage;
        gather_vcd_values(&storage);
        sample.values = std::move(storage);
    } else {
        sample.values.reserve(debug_ring_.names.size());
        for (const std::string& name : debug_ring_.names) {
            const BitVector* v = debug_read(name, cache);
            sample.values.push_back(v != nullptr ? *v : BitVector());
        }
    }
    debug_ring_.push(sample.time, std::move(sample.values));
}

void
Runtime::dump_debug_window(bool hw_fire)
{
    sim::VcdWriter window;
    std::string err;
    if (!window.open(debug_window_path_, &err)) {
        log_event(LogLevel::Warn, "debug",
                  "pre-trigger window dump failed: " + err);
        return;
    }
    size_t samples = 0;
    const bool use_hw_ring = hw_fire && hw_engine_ != nullptr &&
                             !hw_engine_->debug_ring().empty();
    if (use_hw_ring) {
        // The fabric's capture ring: probed outputs of the instrumented
        // twin, timestamped in fabric cycles.
        const auto& probes = hw_engine_->debug_probes();
        for (const auto& p : probes) {
            window.declare(p.name, p.width);
        }
        for (const auto& s : hw_engine_->debug_ring()) {
            std::vector<const BitVector*> values;
            values.reserve(s.values.size());
            for (const BitVector& v : s.values) {
                values.push_back(&v);
            }
            window.sample(s.cycle, values);
            ++samples;
        }
    } else {
        // The runtime's mirror ring (virtual-clock timestamps).
        for (size_t i = 0; i < debug_ring_.names.size(); ++i) {
            uint32_t width = 1;
            for (const auto& s : debug_ring_.samples) {
                if (i < s.values.size() && s.values[i].width() != 0) {
                    width = s.values[i].width();
                    break;
                }
            }
            window.declare(debug_ring_.names[i], width);
        }
        for (const auto& s : debug_ring_.samples) {
            std::vector<const BitVector*> values;
            values.reserve(s.values.size());
            for (const BitVector& v : s.values) {
                values.push_back(v.width() != 0 ? &v : nullptr);
            }
            window.sample(s.time, values);
            ++samples;
        }
    }
    window.flush();
    window.close();
    // Info-class provenance (not compared: the digest covers wall-free
    // content, but the event exists only on sessions that dump).
    journal_.record("debug.window",
                    telemetry::JsonWriter()
                        .str("path", debug_window_path_)
                        .num("samples", samples)
                        .str("source", use_hw_ring ? "hw" : "sw")
                        .str("digest", file_digest_hex(debug_window_path_))
                        .build());
    interrupt_queue_.push_back("debug: pre-trigger window (" +
                               std::to_string(samples) + " samples) -> " +
                               debug_window_path_ + "\n");
    m_.interrupts->inc();
}

bool
Runtime::rearm_hardware_debug(std::string* err)
{
    hw_debug_armed_.store(false, std::memory_order_relaxed);
    if (hw_engine_ == nullptr || !hw_rebuild_.has_value()) {
        if (err != nullptr) {
            *err = "no rebuildable hardware engine";
        }
        return false;
    }
    Slot* user = user_slot();
    if (user == nullptr || user->engine.get() != hw_engine_) {
        if (err != nullptr) {
            *err = "user slot is not the hardware engine";
        }
        return false;
    }
    const auto points = debugger_.points();
    std::vector<fpga::DebugTriggerSpec> specs;
    specs.reserve(points.size());
    for (const auto& p : points) {
        fpga::DebugTriggerSpec spec;
        spec.id = p.id;
        spec.signal = p.signal;
        spec.watch = p.kind == Debugger::Kind::Watch;
        spec.op = p.op;
        spec.value = p.value;
        specs.push_back(std::move(spec));
    }
    // Ring probes: the explicit probe set if any, else the armed signals.
    std::vector<std::string> probes = probe_names_;
    if (probes.empty()) {
        for (const auto& p : points) {
            probes.push_back(p.signal);
        }
    }
    std::sort(probes.begin(), probes.end());
    probes.erase(std::unique(probes.begin(), probes.end()), probes.end());

    std::unique_ptr<fpga::Bitstream> fabric;
    std::vector<fpga::Bitstream::DebugTrigger> triggers;
    std::vector<fpga::Bitstream::DebugProbe> ring_probes;
    if (!specs.empty()) {
        std::string ierr;
        fpga::DebugInstrumented inst = fpga::instrument_debug_triggers(
            *hw_rebuild_->netlist, specs, probes, &ierr);
        if (inst.netlist == nullptr) {
            if (err != nullptr) {
                *err = ierr;
            }
            return false;
        }
        std::shared_ptr<const fpga::Netlist> twin(std::move(inst.netlist));
        fabric = std::make_unique<fpga::Bitstream>(twin);
        for (size_t i = 0; i < specs.size(); ++i) {
            fpga::Bitstream::DebugTrigger t;
            t.id = specs[i].id;
            t.output = static_cast<int>(inst.trigger_outputs[i]);
            t.watch = specs[i].watch;
            triggers.push_back(std::move(t));
        }
        for (size_t i = 0; i < inst.probe_names.size(); ++i) {
            fpga::Bitstream::DebugProbe p;
            p.name = inst.probe_names[i];
            p.output = static_cast<int>(inst.probe_outputs[i]);
            p.width = inst.probe_widths[i];
            ring_probes.push_back(std::move(p));
        }
        fabric->arm_debug(triggers, ring_probes, debug_ring_.depth);
    } else {
        // Last point deleted: swap back to the uninstrumented twin.
        fabric = std::make_unique<fpga::Bitstream>(hw_rebuild_->netlist);
    }

    // Hot-swap the engine around the new fabric: the same name-based
    // state transfer as an adoption, minus the slot rebuild.
    size_t slot_index = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
        if (&slots_[i] == user) {
            slot_index = i;
            break;
        }
    }
    sim::StateSnapshot snap = user->engine->get_state();
    auto e = std::make_unique<HwEngine>(
        std::move(fabric), hw_rebuild_->map, hw_rebuild_->port_names,
        hw_rebuild_->port_is_input, this, hw_rebuild_->clock_mhz,
        options_.mmio_latency_s);
    HwEngine* hw = e.get();
    user->engine = std::move(e);
    hw_engine_ = hw;
    // Re-deliver current input levels (clock phase, pads); any spurious
    // edge is neutralized by the state restore, as at adoption.
    for (Net& net : nets_) {
        if (!net.has_value) {
            continue;
        }
        for (const auto& [s, p] : net.readers) {
            if (s == slot_index) {
                slots_[s].engine->read({p, net.value});
            }
        }
    }
    if (hw->there_are_updates()) {
        hw->update();
    }
    hw->set_state(snap);
    hw->discard_pending_tasks();
    hw->set_profiling(options_.profiling);
    hw_debug_armed_.store(!triggers.empty(), std::memory_order_relaxed);
    journal_.record("debug.rearm",
                    telemetry::JsonWriter()
                        .num("triggers", triggers.size())
                        .num("probes", ring_probes.size())
                        .boolean("armed", !triggers.empty())
                        .build());
    log_event(LogLevel::Info, "debug",
              !triggers.empty()
                  ? "fabric re-armed with " +
                        std::to_string(triggers.size()) +
                        " synthesized trigger cell(s), " +
                        std::to_string(ring_probes.size()) +
                        " capture-ring probe(s)"
                  : "fabric debug instrumentation removed");
    return true;
}

std::string
Runtime::debug_table() const
{
    const auto points = debugger_.points();
    std::string out;
    out += "debugger: ";
    out += debug_halted_.load(std::memory_order_relaxed)
               ? "HALTED at tick " + std::to_string(virtual_ticks())
               : "running";
    out += hw_debug_armed_.load(std::memory_order_relaxed)
               ? " (triggers in fabric)"
               : "";
    out += "\n";
    if (points.empty()) {
        out += "  no points armed (:break <sig> <op> <val>, "
               ":watch <sig>)\n";
        return out;
    }
    for (const auto& p : points) {
        out += "  #" + std::to_string(p.id);
        if (p.kind == Debugger::Kind::Watch) {
            out += " watch " + p.signal;
        } else {
            out += " break " + p.signal + " " + p.op + " " +
                   p.value.to_dec_string();
        }
        out += " [hits " + std::to_string(p.hits) + "]\n";
    }
    return out;
}

std::string
Runtime::debug_json() const
{
    // Thread-safe: the monitor server calls this off-thread (the point
    // table is snapshotted under the debugger's lock, the rest is
    // atomics).
    const auto points = debugger_.points();
    telemetry::JsonWriter w;
    w.str("schema", "cascade.debug.v1");
    w.boolean("halted", debug_halted_.load(std::memory_order_relaxed));
    w.boolean("hw_armed",
              hw_debug_armed_.load(std::memory_order_relaxed));
    w.num("fires", debugger_.total_fires());
    w.num("points", points.size());
    std::string items = "[";
    bool first = true;
    for (const auto& p : points) {
        telemetry::JsonWriter pw;
        pw.num("id", p.id);
        pw.str("kind", p.kind == Debugger::Kind::Watch ? "watch"
                                                       : "break");
        pw.str("signal", p.signal);
        if (p.kind == Debugger::Kind::Break) {
            pw.str("op", p.op);
            pw.str("value", p.value.to_dec_string());
        }
        pw.num("hits", p.hits);
        if (!first) {
            items += ",";
        }
        first = false;
        items += pw.build();
    }
    items += "]";
    w.raw("table", items);
    return w.build();
}

// ---------------------------------------------------------------------------
// Peripherals
// ---------------------------------------------------------------------------

void
Runtime::resolve_peripherals()
{
    pads_.clear();
    leds_.clear();
    fifos_.clear();
    for (const Slot& slot : slots_) {
        if (!slot.is_stdlib) {
            continue;
        }
        const std::string& type = slot.sub.module_name;
        if (type == "Pad" || type == "Reset") {
            pads_.push_back(slot.sub.path + ".pins");
        } else if (type == "Led") {
            leds_.push_back(slot.sub.path + ".pins");
        } else if (type == "GPIO") {
            pads_.push_back(slot.sub.path + ".pins");
            leds_.push_back(slot.sub.path + ".out_pins");
        } else if (type == "FIFO") {
            FifoBinding f;
            f.pins_net = slot.sub.path + ".pins";
            f.push_net = slot.sub.path + ".push";
            f.full_net = slot.sub.path + ".full";
            f.prefix = slot.instance + "__";
            fifos_.push_back(std::move(f));
        }
    }
    // In hardware shapes the stdlib slots are gone, but the nets persist
    // through the adopted engine's bindings; remember them from adoption.
    for (const auto& net : adopted_pads_) {
        pads_.push_back(net);
    }
    for (const auto& net : adopted_leds_) {
        leds_.push_back(net);
    }
    for (const auto& f : adopted_fifos_) {
        fifos_.push_back(f);
    }
}

void
Runtime::set_pad(uint64_t buttons)
{
    flush_api_steps();
    journal_.record("api.set_pad",
                    telemetry::JsonWriter().num("value", buttons).build());
    pad_value_ = buttons;
    for (const std::string& net : pads_) {
        const int n = find_net(net);
        if (n < 0) {
            continue;
        }
        // Width from the existing value, default 4 (the classic pad).
        const uint32_t width = nets_[static_cast<size_t>(n)].has_value
                                   ? nets_[static_cast<size_t>(n)]
                                         .value.width()
                                   : pad_width_hint(net);
        inject_net(net, BitVector(width, buttons));
    }
}

uint32_t
Runtime::pad_width_hint(const std::string& net) const
{
    // Find the stdlib slot whose pins net this is and use its elaborated
    // port width.
    for (const Slot& slot : slots_) {
        if (slot.sub.source == nullptr ||
            net.rfind(slot.sub.path + ".", 0) != 0) {
            continue;
        }
        Diagnostics diags;
        Elaborator elab(&diags);
        auto em = elab.elaborate(*slot.sub.source, slot.sub.params);
        if (em != nullptr) {
            const NetInfo* pins = em->find_net("pins");
            if (pins != nullptr) {
                return pins->width;
            }
        }
    }
    return 4;
}

BitVector
Runtime::led_state()
{
    flush_api_steps();
    // Refresh output nets (a free-running hardware engine's outputs are
    // only polled on demand).
    route_outputs();
    BitVector out(8, 0);
    for (const std::string& net : leds_) {
        const int n = find_net(net);
        if (n >= 0 && nets_[static_cast<size_t>(n)].has_value) {
            out = nets_[static_cast<size_t>(n)].value;
            break;
        }
    }
    journal_.record("api.led", telemetry::JsonWriter()
                                   .num("width", out.width())
                                   .num("value", out.to_uint64())
                                   .build());
    return out;
}

void
Runtime::fifo_push(const std::vector<uint8_t>& bytes)
{
    flush_api_steps();
    std::string hex;
    hex.reserve(bytes.size() * 2);
    for (const uint8_t b : bytes) {
        char buf[4];
        std::snprintf(buf, sizeof(buf), "%02x", b);
        hex += buf;
    }
    journal_.record("api.fifo_push", telemetry::JsonWriter()
                                         .num("count", bytes.size())
                                         .str("hex", hex)
                                         .build());
    fifo_queue_.insert(fifo_queue_.end(), bytes.begin(), bytes.end());
    m_.fifo_backlog->set(static_cast<int64_t>(fifo_queue_.size()));
}

void
Runtime::service_peripherals()
{
    if (fifos_.empty()) {
        return;
    }
    // Hardware-forwarded FIFOs are fed between open-loop batches through
    // direct state writes (run_open_loop); step-mode feeding happens here,
    // one byte per clock cycle, gated on the clock being low.
    if (user_location_ == Location::HardwareForwarded ||
        user_location_ == Location::Native ||
        (user_location_ == Location::Jit && !adopted_fifos_.empty())) {
        return;
    }
    if (clock_engine_ == nullptr || clock_engine_->value()) {
        return;
    }
    const FifoBinding& f = fifos_.front();
    const int full_net = find_net(f.full_net);
    const bool full = full_net >= 0 &&
                      nets_[static_cast<size_t>(full_net)].has_value &&
                      !nets_[static_cast<size_t>(full_net)].value.is_zero();
    if (!fifo_queue_.empty() && !full) {
        inject_net(f.pins_net, BitVector(8, fifo_queue_.front()));
        inject_net(f.push_net, BitVector(1, 1));
        fifo_queue_.pop_front();
        ++fifo_consumed_;
        m_.fifo_backlog->set(static_cast<int64_t>(fifo_queue_.size()));
        fifo_push_high_ = true;
    } else if (fifo_push_high_) {
        inject_net(f.push_net, BitVector(1, 0));
        fifo_push_high_ = false;
    }
}

// ---------------------------------------------------------------------------
// Background compilation and engine transitions
// ---------------------------------------------------------------------------

void
Runtime::launch_compile()
{
    if (root_items_.empty()) {
        return;
    }
    Diagnostics diags;
    auto root = make_root(root_items_);

    CompileOutcome outcome;
    outcome.version = version_;
    outcome.native = options_.native_mode;

    const bool merge_stdlib =
        options_.native_mode ||
        (options_.enable_forwarding && options_.enable_inlining);

    std::unique_ptr<ModuleDecl> merged;
    std::set<std::string> stops;
    if (merge_stdlib) {
        stops = {"Clock"};
    } else {
        stops = stdlib::stdlib_type_names();
    }
    merged = ir::inline_hierarchy(*root, lib_, stops, &diags);
    if (merged == nullptr) {
        return;
    }

    // Promote peripheral pins of merged stdlib instances to module ports
    // so the runtime can keep driving/observing them.
    std::vector<std::tuple<std::string, std::string, bool>> pin_ports;
    if (merge_stdlib) {
        for (const Slot& slot : slots_) {
            if (!slot.is_stdlib || slot.is_clock) {
                continue;
            }
            for (const auto& [port, is_input] :
                 peripheral_ports(slot.sub.module_name)) {
                const std::string net_name = slot.instance + "__" + port;
                pin_ports.emplace_back(net_name,
                                       slot.sub.path + "." + port,
                                       is_input);
                outcome.prefixes[slot.instance] = slot.instance + "__";
            }
            // Non-peripheral stdlib (Memory) still needs its state
            // prefix recorded for handoff.
            outcome.prefixes.emplace(slot.instance,
                                     slot.instance + "__");
        }
        if (!promote_pins(merged.get(), pin_ports)) {
            return;
        }
    }

    auto subs = ir::split_program(*merged, lib_, {"Clock"}, &diags);
    if (subs.empty()) {
        return;
    }
    ir::Subprogram* user = nullptr;
    std::string clock_path;
    for (auto& sub : subs) {
        if (sub.path == "root") {
            user = &sub;
        } else if (sub.module_name == "Clock") {
            clock_path = sub.path;
        }
    }
    if (user == nullptr) {
        return;
    }

    // Identify the promoted clock port (bound to <clock instance>.val).
    std::string clock_port;
    for (const auto& b : user->bindings) {
        if (!clock_path.empty() && b.global_net == clock_path + ".val") {
            clock_port = b.port;
            outcome.clock_net = b.global_net;
        }
    }

    // Pins ports keep their original peripheral net names so the drivers
    // and the view observe the same nets across the transition.
    std::map<std::string, std::string> pin_net_of;
    for (const auto& [port, net, is_input] : pin_ports) {
        pin_net_of[port] = net;
    }
    for (size_t p = 0; p < user->source->ports.size(); ++p) {
        const std::string& name = user->source->ports[p].name;
        const auto it = pin_net_of.find(name);
        outcome.ports.emplace_back(
            name,
            it != pin_net_of.end() ? it->second
                                   : user->bindings[p].global_net,
            user->source->ports[p].dir == PortDir::Input);
    }

    Diagnostics ediags;
    Elaborator elab(&ediags);
    std::shared_ptr<const ElaboratedModule> em;
    if (options_.native_mode) {
        auto raw = elab.elaborate(*user->source, user->params);
        if (raw == nullptr) {
            return;
        }
        em = std::shared_ptr<const ElaboratedModule>(std::move(raw));
        outcome.clock_net =
            clock_port.empty() ? "" : outcome.clock_net;
        outcome.map.clock_input = clock_port;
    } else {
        auto raw = elab.elaborate(*user->source, user->params);
        if (raw == nullptr) {
            return;
        }
        auto wrapper = ir::generate_hw_wrapper(*raw, clock_port,
                                               &outcome.map, &diags);
        if (wrapper == nullptr) {
            // Unsynthesizable in a way the wrapper cannot absorb; the
            // subprogram stays in software.
            return;
        }
        Diagnostics wdiags;
        Elaborator welab(&wdiags);
        auto wem = welab.elaborate(*wrapper);
        if (wem == nullptr) {
            return;
        }
        em = std::shared_ptr<const ElaboratedModule>(std::move(wem));
    }

    // Placement seed: per-version by default (each rebuild explores a new
    // placement), a fixed option when the user wants run-to-run identical
    // compiles, and the journaled value when replaying a recording.
    uint64_t seed =
        options_.compile_seed != 0 ? options_.compile_seed : version_;
    if (replay_) {
        const auto it = replay_schedule_.seeds.find(version_);
        if (it != replay_schedule_.seeds.end()) {
            seed = it->second;
        }
    }

    // Request tracing: this launch supersedes any in-flight compile
    // request (its result will surface as compile.stale, if at all);
    // close those before opening the new request. The new id is the
    // journal seq of the compile.launch event, recorded before
    // submission so the workers see it on the job.
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    const double submit_us = tracer.now_us();
    if (pending_outcome_.has_value() && pending_outcome_->request != 0) {
        finish_request(pending_outcome_->request, "compile",
                       pending_outcome_->version, false, submit_us);
    }
    if (parked_outcome_.has_value() && parked_outcome_->request != 0) {
        finish_request(parked_outcome_->request, "compile",
                       parked_outcome_->version, false, submit_us);
    }
    m_.compiles_launched->inc();
    const uint64_t request =
        journal_.record("compile.launch", telemetry::JsonWriter()
                                              .num("version", version_)
                                              .num("seed", seed)
                                              .build());
    outcome.request = request;
    outcome.submit_us = submit_us;
    requests_.begin(request, "compile", version_, tenant_, submit_us);
    // Flow start: the causal arrow leaves the runtime thread here and
    // lands in the worker's compile.exec span (phase "t"), then back at
    // adoption (phase "f").
    tracer.flow("request", 's', request);

    // Shadow the fabric compile with a JIT-tier build of the same
    // wrapper module (the middle rung of the interpreter → JIT → fabric
    // ladder). Native mode already runs the netlist in-process, so the
    // tier would be redundant there.
    if (options_.enable_jit && !options_.native_mode) {
        launch_jit(em, outcome);
    }

    pending_outcome_ = std::move(outcome);
    parked_outcome_.reset();
    compile_inflight_version_ = version_;
    service::CompileService::Job job;
    job.version = version_;
    job.request = request;
    job.module = em;
    job.options.effort = options_.compile_effort;
    job.options.target_clock_mhz = options_.device_clock_mhz;
    job.options.seed = seed;
    compile_submit_wall_[version_] = wall_seconds();
    compile_service_->submit(compile_client_, std::move(job));
    telemetry::Tracer::global().instant("compile.launch", version_);
}

void
Runtime::poll_compiles()
{
    if (replay_) {
        replay_poll_compiles();
        return;
    }
    for (service::CompileService::Done& done :
         compile_service_->poll(compile_client_)) {
        if (done.version != version_ || !pending_outcome_.has_value()) {
            // Stale: the program changed since submission. Info-class
            // event (never compared): whether a stale result surfaces
            // before the queue clears is a wall-clock race.
            journal_.record("compile.stale",
                            telemetry::JsonWriter()
                                .num("version", done.version)
                                .num("req", done.request)
                                .build());
            if (done.request != 0) {
                finish_request(done.request, "compile", done.version,
                               false,
                               telemetry::Tracer::global().now_us());
            }
            continue;
        }
        CompileOutcome outcome = std::move(*pending_outcome_);
        pending_outcome_.reset();
        outcome.result = std::move(done.result);
        outcome.svc_cache_us = done.cache_us;
        outcome.svc_enqueue_us = done.enqueue_us;
        outcome.svc_dequeue_us = done.dequeue_us;
        outcome.svc_done_us = done.done_us;
        outcome.polled_us = telemetry::Tracer::global().now_us();
        maybe_admit_and_act(std::move(outcome));
    }
    retry_parked();
}

void
Runtime::maybe_admit_and_act(CompileOutcome outcome)
{
    // Shared mode gates adoption on hypervisor admission, and the grant
    // is requested BEFORE compile.done is journaled so the compared
    // compile.done/adopt pair stays adjacent in both record and replay.
    if (fabric_ == nullptr || !outcome.result.ok) {
        act_on_compile(std::move(outcome), nullptr);
        return;
    }
    hypervisor::Admission adm =
        fabric_->request_residency(tenant_, outcome.result);
    if (adm.bitstream == nullptr && adm.retryable) {
        // Capacity pressure: park the finished compile and re-request
        // when the fabric changes. Info-class journal event — replay
        // runs on an exclusive device where the denial never recurs.
        journal_.record("hypervisor.defer",
                        telemetry::JsonWriter()
                            .num("version", outcome.version)
                            .num("req", outcome.request)
                            .str("reason", adm.error)
                            .build());
        log_event(LogLevel::Info, "hypervisor",
                  "admission deferred for v" +
                      std::to_string(outcome.version) + ": " + adm.error);
        parked_epoch_ = fabric_->capacity_epoch();
        parked_outcome_ = std::move(outcome);
        return;
    }
    act_on_compile(std::move(outcome), &adm);
}

void
Runtime::retry_parked()
{
    if (!parked_outcome_.has_value()) {
        return;
    }
    if (parked_outcome_->version != version_) {
        parked_outcome_.reset(); // obsoleted by a newer eval
        return;
    }
    if (fabric_ != nullptr &&
        fabric_->capacity_epoch() == parked_epoch_) {
        return; // nothing changed; asking again would re-flag a victim
    }
    CompileOutcome outcome = std::move(*parked_outcome_);
    parked_outcome_.reset();
    maybe_admit_and_act(std::move(outcome));
}

void
Runtime::act_on_compile(CompileOutcome outcome,
                        hypervisor::Admission* admission)
{
    last_report_ = outcome.result.report;
    const fpga::CompileReport& r = outcome.result.report;
    // End-to-end compile latency (submit -> acted on) for the SLO
    // window; warm = answered from the bitstream cache. Superseded
    // versions never reach here, so sweep everything up to this one.
    const auto submitted = compile_submit_wall_.find(outcome.version);
    if (submitted != compile_submit_wall_.end()) {
        const double now = wall_seconds();
        const double latency = now - submitted->second;
        if (r.cache_hit) {
            slo_->record_warm_compile(now, latency);
        } else {
            slo_->record_cold_compile(now, latency);
        }
        compile_submit_wall_.erase(compile_submit_wall_.begin(),
                                   std::next(submitted));
    }
    // Cache attribution rides in its own info-class event: cache_hit is
    // a wall-clock artifact (who compiled first), so it must stay out of
    // the compared compile.done payload.
    journal_.record("compile.cache",
                    telemetry::JsonWriter()
                        .num("version", outcome.version)
                        .boolean("hit", r.cache_hit)
                        .build());
    journal_.record("compile.done",
                    telemetry::JsonWriter()
                        .num("version", outcome.version)
                        .boolean("ok", outcome.result.ok)
                        .num("seed", r.seed)
                        .str("digest", report_digest(r))
                        .num("les", r.area.les)
                        .num("cells", r.cells)
                        .boolean("timing_met", r.timing.met)
                        .build());

    // Critical-path decomposition: the timeline anchors (submit ->
    // service done -> polled -> here) and the report's flow phases
    // partition the request's wall time into consecutive segments, so
    // the segment sum equals end-to-end latency by construction.
    // "overhead" absorbs the service-side slack the named segments
    // don't cover (submit lock wait, cache insert, clock jitter).
    const uint64_t request = outcome.request;
    const uint64_t request_version = outcome.version;
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    const double act_start_us = tracer.now_us();
    if (request != 0) {
        const auto clamp0 = [](double us) { return std::max(0.0, us); };
        const double queue_us =
            clamp0(outcome.svc_dequeue_us - outcome.svc_enqueue_us);
        const double phases_us = r.phase_sum_seconds() * 1e6;
        requests_.annotate_cache(request, r.cache_hit);
        requests_.add_segment(request, "cache", outcome.svc_cache_us);
        requests_.add_segment(request, "queue", queue_us);
        requests_.add_segment(request, "synth", r.synth_seconds * 1e6);
        requests_.add_segment(request, "techmap",
                              r.techmap_seconds * 1e6);
        requests_.add_segment(request, "place", r.place_seconds * 1e6);
        requests_.add_segment(request, "timing",
                              r.timing_seconds * 1e6);
        requests_.add_segment(
            request, "overhead",
            clamp0((outcome.svc_done_us - outcome.submit_us) -
                   outcome.svc_cache_us - queue_us - phases_us));
        requests_.add_segment(
            request, "wait",
            clamp0(outcome.polled_us - outcome.svc_done_us));
        requests_.add_segment(
            request, "admission",
            clamp0(act_start_us - outcome.polled_us));
    }
    const bool adopted = adopt_hardware(std::move(outcome), admission);
    if (request != 0) {
        const double now_us = tracer.now_us();
        requests_.add_segment(request, "adoption",
                              now_us - act_start_us);
        if (adopted) {
            // The request stays open until the fabric executes its
            // first post-adoption tick (note_first_hw_tick). The flow
            // arrow lands back on the runtime thread here.
            tracer.flow("request", 'f', request);
            first_tick_request_ = request;
            first_tick_version_ = request_version;
            first_tick_adopt_us_ = now_us;
        } else {
            finish_request(request, "compile", request_version, false,
                           now_us);
        }
    }
}

bool
Runtime::adopt_hardware(CompileOutcome outcome,
                        hypervisor::Admission* admission)
{
    std::string error;
    double actual_clock_mhz = device_.clock_mhz();
    std::unique_ptr<fpga::Bitstream> fabric;
    if (replay_) {
        // A recorded rejection is forced verbatim: hypervisor denials
        // (quota, capacity) cannot be re-derived on the exclusive replay
        // device, and device-level failures reproduce anyway.
        const auto it = replay_schedule_.rejections.find(outcome.version);
        if (it != replay_schedule_.rejections.end()) {
            error = it->second;
        } else {
            fabric = device_.program(outcome.result, &error,
                                     /*allow_derated_clock=*/true,
                                     &actual_clock_mhz);
        }
    } else if (admission != nullptr) {
        fabric = std::move(admission->bitstream);
        error = admission->error;
        if (admission->clock_mhz > 0) {
            actual_clock_mhz = admission->clock_mhz;
        }
    } else {
        fabric = device_.program(outcome.result, &error,
                                 /*allow_derated_clock=*/true,
                                 &actual_clock_mhz);
    }
    if (fabric == nullptr) {
        // Timing or fit failure: report and stay in software (the UT
        // study's "ran in simulation but did not pass timing closure").
        interrupt_queue_.push_back("cascade: hardware compilation "
                                   "rejected: " + error + "\n");
        m_.compiles_rejected->inc();
        journal_.record("compile.rejected",
                        telemetry::JsonWriter()
                            .num("version", outcome.version)
                            .num("iteration", iterations_)
                            .str("error", error)
                            .build());
        log_event(LogLevel::Warn, "compile",
                  "hardware compilation rejected: " + error);
        telemetry::Tracer::global().instant("compile.rejected",
                                            outcome.version);
        return false;
    }
    return adopt_fabric(std::move(outcome), std::move(fabric),
                        actual_clock_mhz, admission, /*is_jit=*/false);
}

bool
Runtime::adopt_fabric(CompileOutcome outcome,
                      std::unique_ptr<fpga::FabricExec> fabric,
                      double actual_clock_mhz,
                      hypervisor::Admission* admission, bool is_jit,
                      const std::string& jit_digest)
{
    // Upgrading: the real fabric landed while the same version was
    // running on the JIT tier. The wrapper metadata is identical (both
    // tiers come from the same launch), so the adopted peripheral lists
    // carry over verbatim — the stdlib slots they were computed from
    // retired at JIT adoption and cannot be recomputed here.
    const bool upgrading = user_location_ == Location::Jit;
    if (upgrading) {
        // Attribute the kernel's window before the engine swap. Not
        // fold_hw_window(): the clock-port map survives the upgrade (the
        // fabric keeps the same clock wiring and the retired stdlib
        // slots it was computed from no longer exist to recompute it).
        attribute_hw_ticks(&profile_acc_,
                           posedges_seen() - hw_adopt_ticks_);
        hw_adopt_ticks_ = posedges_seen();
        m_.jit_discarded->inc();
        // Info-class: replay infers the same upgrade from the compared
        // adopt event that follows.
        journal_.record("jit.discard",
                        telemetry::JsonWriter()
                            .num("version", outcome.version)
                            .str("reason", "fabric")
                            .build());
    }

    // Gather state: the user subprogram plus (under forwarding) each
    // stdlib component, re-prefixed to the merged module's names.
    sim::StateSnapshot combined;
    std::vector<Slot> kept;
    for (Slot& slot : slots_) {
        if (slot.sub.path == "root") {
            combined = slot.engine->get_state();
        }
    }
    for (Slot& slot : slots_) {
        if (slot.is_clock || slot.sub.path == "root") {
            continue;
        }
        const auto it = outcome.prefixes.find(slot.instance);
        if (it == outcome.prefixes.end()) {
            continue;
        }
        sim::StateSnapshot snap = slot.engine->get_state();
        for (auto& [name, value] : snap.regs) {
            combined.regs[it->second + name] = value;
        }
        for (auto& [name, mem] : snap.memories) {
            combined.memories[it->second + name] = mem;
        }
    }

    std::vector<std::string> port_names;
    std::vector<bool> port_is_input;
    for (const auto& [port, net, is_input] : outcome.ports) {
        port_names.push_back(port);
        port_is_input.push_back(is_input);
    }

    std::unique_ptr<Engine> engine;
    NativeEngine* native = nullptr;
    HwEngine* hw = nullptr;
    if (outcome.native) {
        auto e = std::make_unique<NativeEngine>(
            std::move(fabric), port_names, port_is_input,
            outcome.map.clock_input, actual_clock_mhz);
        native = e.get();
        engine = std::move(e);
    } else {
        // The JIT kernel is in-process: the MMIO slot protocol is the
        // same, but each access is a function call, not a bus round
        // trip, so the modeled MMIO latency is zero for that tier.
        auto e = std::make_unique<HwEngine>(
            std::move(fabric), outcome.map, port_names, port_is_input,
            this, actual_clock_mhz,
            is_jit ? 0.0 : options_.mmio_latency_s);
        hw = e.get();
        engine = std::move(e);
    }
    Engine* adopted = engine.get();

    // Rebuild the slot set: clock + the hardware engine.
    const bool merged = !outcome.prefixes.empty() || outcome.native;

    // Every slot the fabric replaces retires here: bank its interpreter
    // profile and record the local port name its clock entered through,
    // so device ticks can be attributed to its clock-driven processes
    // (trigger descriptions use subprogram-local net names).
    if (!upgrading) {
        hw_clock_ports_.clear();
        for (const Slot& slot : slots_) {
            if (slot.sub.path != "root" && !(merged && !slot.is_clock)) {
                continue; // survives the adoption; absorbed on retire
            }
            absorb_slot_profile(slot);
            if (!outcome.clock_net.empty()) {
                for (const auto& b : slot.sub.bindings) {
                    if (b.global_net == outcome.clock_net) {
                        hw_clock_ports_[slot.instance] = b.port;
                    }
                }
            }
        }
    }

    std::vector<Slot> new_slots;
    if (!upgrading) {
        adopted_pads_.clear();
        adopted_leds_.clear();
        adopted_fifos_.clear();
    }
    for (Slot& slot : slots_) {
        if (slot.is_clock) {
            new_slots.push_back(std::move(slot));
            continue;
        }
        if (slot.sub.path == "root") {
            continue; // replaced below
        }
        if (merged && !upgrading) {
            // Forwarded into the hardware engine; remember peripherals.
            const std::string& type = slot.sub.module_name;
            if (type == "Pad" || type == "Reset") {
                adopted_pads_.push_back(slot.sub.path + ".pins");
            } else if (type == "Led") {
                adopted_leds_.push_back(slot.sub.path + ".pins");
            } else if (type == "GPIO") {
                adopted_pads_.push_back(slot.sub.path + ".pins");
                adopted_leds_.push_back(slot.sub.path + ".out_pins");
            } else if (type == "FIFO") {
                FifoBinding f;
                f.pins_net = slot.sub.path + ".pins";
                f.push_net = slot.sub.path + ".push";
                f.full_net = slot.sub.path + ".full";
                f.prefix = slot.instance + "__";
                adopted_fifos_.push_back(std::move(f));
            }
        } else {
            new_slots.push_back(std::move(slot));
        }
    }

    Slot hw_slot;
    hw_slot.sub.path = "root";
    hw_slot.sub.module_name = "Root";
    hw_slot.instance = "root";
    for (const auto& [port, net, is_input] : outcome.ports) {
        hw_slot.sub.bindings.push_back({port, net});
        hw_slot.port_is_input.push_back(is_input);
    }
    hw_slot.engine = std::move(engine);
    new_slots.push_back(std::move(hw_slot));

    slots_ = std::move(new_slots);
    hw_engine_ = hw;
    native_engine_ = native;
    adopted_prefixes_ = outcome.prefixes;
    user_location_ =
        is_jit ? Location::Jit
               : (outcome.native ? Location::Native
                                 : (merged ? Location::HardwareForwarded
                                           : Location::Hardware));
    clock_net_name_ = outcome.clock_net;

    // Net values must survive the rewiring (pad levels, clock phase, ...).
    std::map<std::string, BitVector> old_nets;
    for (const Net& net : nets_) {
        if (net.has_value) {
            old_nets[net.name] = net.value;
        }
    }
    wire_nets();
    resolve_peripherals();
    // Re-deliver current input values (clock level, pad pins, ...). Any
    // spurious clock edge this produces is neutralized by restoring the
    // state snapshot afterwards: the snapshot is the source of truth.
    for (Net& net : nets_) {
        const auto it = old_nets.find(net.name);
        if (it != old_nets.end()) {
            net.value = it->second;
            net.has_value = true;
        }
        if (net.has_value) {
            const BitVector v = net.value;
            for (const auto& [slot, port] : net.readers) {
                slots_[slot].engine->read({port, v});
            }
        }
    }
    // Hardware-forwarded FIFOs are fed through direct state writes, not
    // the pins/push ports: park the step-mode drive lines low so a push
    // left high by the software phase cannot free-run.
    for (const FifoBinding& f : adopted_fifos_) {
        inject_net(f.push_net, BitVector(1, 0));
    }
    fifo_push_high_ = false;
    // Flush any spurious shadow updates the edge produced, then restore.
    if (adopted->there_are_updates()) {
        adopted->update();
    }
    adopted->set_state(combined);
    if (hw != nullptr) {
        // Adoption-time MMIO traffic (net re-delivery, the update flush,
        // set_state itself) can latch task bits against pre-restore
        // register values; those side effects either already happened in
        // software or never happened at all.
        hw->discard_pending_tasks();
        hw->set_profiling(options_.profiling);
    }
    if (clock_engine_ != nullptr && native_engine_ != nullptr) {
        native_engine_->sync_clock_level(clock_engine_->value());
    }

    // The software-to-hardware (or software-to-JIT) transition, tagged
    // with the adopted version (the event SYNERGY-style schedulers key
    // off).
    if (is_jit) {
        m_.jit_adopted->inc();
    } else {
        m_.compiles_adopted->inc();
    }
    m_.transitions->inc();
    TransitionRecord rec;
    rec.version = outcome.version;
    rec.to = user_location_;
    rec.timeline_seconds = timeline_s_;
    rec.trace_ts_us = telemetry::Tracer::global().now_us();
    rec.clock_mhz = actual_clock_mhz;
    transitions_.push_back(rec);
    if (is_jit) {
        // Compared: the kernel digest is deterministic (content-addressed
        // codegen over the synthesized netlist), unlike build timing or
        // cache residency, which stay in the info-class jit.cache event.
        journal_.record("jit.adopt",
                        telemetry::JsonWriter()
                            .num("version", outcome.version)
                            .num("iteration", iterations_)
                            .str("digest", jit_digest)
                            .build());
    } else {
        journal_.record("adopt",
                        telemetry::JsonWriter()
                            .num("version", outcome.version)
                            .num("iteration", iterations_)
                            .str("location",
                                 location_name(user_location_))
                            .dbl("clock_mhz", actual_clock_mhz)
                            .build());
    }
    if (fabric_ != nullptr && admission != nullptr) {
        // Info-class slot record: where on the shared fabric this tenant
        // landed (first-fit, so placement depends on neighbors).
        journal_.record("hypervisor.admit",
                        telemetry::JsonWriter()
                            .num("version", outcome.version)
                            .num("le_start", admission->le_start)
                            .num("le_count", admission->le_count)
                            .dbl("clock_mhz", actual_clock_mhz)
                            .build());
    }
    log_event(LogLevel::Info, is_jit ? "jit" : "adopt",
              std::string("program v") +
                  std::to_string(outcome.version) + " moved to " +
                  location_name(user_location_) + " at iteration " +
                  std::to_string(iterations_));
    telemetry::Tracer::global().instant(
        is_jit ? "transition.sw_to_jit"
               : (upgrading ? "transition.jit_to_hw"
                            : "transition.sw_to_hw"),
        outcome.version);
    // Debugger support: keep everything needed to rebuild this engine
    // around an instrumented bitstream (the compiled netlist is
    // cache-shared and const — arming a trigger synthesizes comparator
    // cells into a copy and hot-swaps the engine). Native engines run
    // uninstrumented by definition, so conditions on them stay in
    // software.
    if (hw != nullptr && outcome.result.netlist != nullptr) {
        HwRebuildInfo info;
        info.netlist = outcome.result.netlist;
        info.map = outcome.map;
        info.port_names = port_names;
        info.port_is_input = port_is_input;
        info.clock_mhz = actual_clock_mhz;
        hw_rebuild_ = std::move(info);
        if (debugger_.armed()) {
            std::string derr;
            if (!rearm_hardware_debug(&derr)) {
                log_event(LogLevel::Warn, "debug",
                          "hardware trigger instrumentation unavailable: " +
                              derr +
                              " (conditions evaluate in software; "
                              "open loop suspended)");
            }
        }
    } else {
        hw_rebuild_.reset();
        hw_debug_armed_.store(false, std::memory_order_relaxed);
    }
    // The hardware attribution window opens now: ticks from here on
    // execute on the fabric (any spurious adoption-time fabric edges
    // above are invisible to tick-based attribution). Posedge-exact: a
    // mid-window adoption right after a posedge must not re-attribute
    // the tick the retiring engine already executed.
    hw_adopt_ticks_ = posedges_seen();
    return true;
}

void
Runtime::launch_jit(std::shared_ptr<const verilog::ElaboratedModule> em,
                    const CompileOutcome& outcome)
{
    // The JIT tier shadows every fabric compile: same wrapper module,
    // lowered to native code on an async worker instead of LEs on the
    // compile service. At most one build is in flight — a newer launch
    // overwrites the job and poll_jit() discards the orphaned result as
    // stale by version when its future eventually resolves.
    m_.jit_launched->inc();
    journal_.record("jit.launch", telemetry::JsonWriter()
                                      .num("version", outcome.version)
                                      .build());
    telemetry::Tracer::global().instant("jit.launch", outcome.version);
    JitJob job;
    job.version = outcome.version;
    job.map = outcome.map;
    job.ports = outcome.ports;
    job.prefixes = outcome.prefixes;
    job.clock_net = outcome.clock_net;
    job.future = std::async(std::launch::async, [em]() {
        JitBuild build;
        Diagnostics diags;
        auto nl = fpga::synthesize(*em, &diags);
        if (nl == nullptr) {
            build.error = "synthesis failed: " + diags.str();
            return build;
        }
        std::shared_ptr<const fpga::Netlist> shared(std::move(nl));
        build.kernel = jit::JitKernel::create(shared, &build.error,
                                              &build.digest,
                                              &build.cache_hit);
        if (build.kernel != nullptr) {
            build.netlist = std::move(shared);
        }
        return build;
    });
    jit_job_ = std::move(job);
}

void
Runtime::poll_jit()
{
    if (replay_) {
        replay_poll_jit();
        return;
    }
    // A halted debugger pins the program in the interpreter — that is
    // where the user is cycle-stepping. The build stays pending (a warm
    // cache hit can otherwise land in the very window a hardware fire
    // evicted the tenant) and adopts when execution resumes.
    if (debug_halted_.load(std::memory_order_relaxed)) {
        return;
    }
    if (!jit_job_.has_value() ||
        jit_job_->future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
        return;
    }
    JitJob job = std::move(*jit_job_);
    jit_job_.reset();
    JitBuild build = job.future.get();
    if (job.version != version_ ||
        user_location_ != Location::Software || finished_) {
        // Stale (the program changed since launch) or the tenant is
        // already somewhere faster than software. Info-class event:
        // whether an orphaned build surfaces before the queue clears is
        // a wall-clock race, exactly like compile.stale.
        journal_.record("jit.discard",
                        telemetry::JsonWriter()
                            .num("version", job.version)
                            .str("reason", "stale")
                            .build());
        m_.jit_discarded->inc();
        return;
    }
    if (build.kernel == nullptr) {
        // Graceful degradation: no usable compiler (or codegen/compile
        // failure) leaves the tenant on the interpreter tier until the
        // fabric compile lands. Compared payload carries no error text —
        // it contains machine-dependent paths.
        m_.jit_unavailable->inc();
        journal_.record("jit.unavailable",
                        telemetry::JsonWriter()
                            .num("version", job.version)
                            .num("iteration", iterations_)
                            .build());
        log_event(LogLevel::Warn, "jit",
                  "native tier unavailable for v" +
                      std::to_string(job.version) + ": " + build.error);
        telemetry::Tracer::global().instant("jit.unavailable",
                                            job.version);
        return;
    }
    // Cache attribution is info-class for the same reason compile.cache
    // is: who built the kernel first is a wall-clock artifact.
    journal_.record("jit.cache", telemetry::JsonWriter()
                                     .num("version", job.version)
                                     .boolean("hit", build.cache_hit)
                                     .build());
    adopt_jit(std::move(job), std::move(build));
}

void
Runtime::replay_poll_jit()
{
    // Replay pins the JIT tier's decisions to their recorded scheduler
    // iterations, mirroring replay_poll_compiles: the kernel build still
    // runs for real (codegen is content-addressed, so the digest in the
    // compared jit.adopt reproduces), but it is acted on only at the
    // iteration the recording acted.
    if (replay_schedule_.jit_points.empty() ||
        replay_schedule_.jit_points.front().iteration != iterations_) {
        return;
    }
    const ReplaySchedule::CompilePoint point =
        replay_schedule_.jit_points.front();
    replay_schedule_.jit_points.pop_front();
    if (replay_schedule_.jit_unavailable.count(point.version) != 0) {
        // Forced verbatim: the recording host had no usable JIT
        // toolchain. Re-probing here would diverge on hosts where one
        // exists, so the in-flight build (if any) is dropped unseen.
        jit_job_.reset();
        m_.jit_unavailable->inc();
        journal_.record("jit.unavailable",
                        telemetry::JsonWriter()
                            .num("version", point.version)
                            .num("iteration", iterations_)
                            .build());
        return;
    }
    if (!jit_job_.has_value() || jit_job_->version != point.version) {
        log_event(LogLevel::Warn, "replay",
                  "recorded jit adoption for v" +
                      std::to_string(point.version) +
                      " has no matching in-flight build");
        return;
    }
    const double t0 = wall_seconds();
    while (wall_seconds() - t0 < 300.0) {
        if (jit_job_->future.wait_for(std::chrono::milliseconds(250)) !=
            std::future_status::ready) {
            continue;
        }
        JitJob job = std::move(*jit_job_);
        jit_job_.reset();
        JitBuild build = job.future.get();
        if (build.kernel == nullptr) {
            // The recording adopted a kernel this host cannot build;
            // journal the divergence honestly and stay in software.
            m_.jit_unavailable->inc();
            journal_.record("jit.unavailable",
                            telemetry::JsonWriter()
                                .num("version", job.version)
                                .num("iteration", iterations_)
                                .build());
            log_event(LogLevel::Warn, "replay",
                      "recorded jit adoption for v" +
                          std::to_string(job.version) +
                          " failed to rebuild: " + build.error);
            return;
        }
        journal_.record("jit.cache", telemetry::JsonWriter()
                                         .num("version", job.version)
                                         .boolean("hit", build.cache_hit)
                                         .build());
        adopt_jit(std::move(job), std::move(build));
        return;
    }
    log_event(LogLevel::Warn, "replay",
              "jit build for v" + std::to_string(point.version) +
                  " did not finish within the replay wait bound");
}

bool
Runtime::adopt_jit(JitJob job, JitBuild build)
{
    // The kernel adopts through the same back half as the fabric: the
    // wrapper metadata recorded at launch makes an outcome
    // indistinguishable from a fabric compile's, and the kernel rides in
    // as the FabricExec behind a standard HwEngine.
    CompileOutcome outcome;
    outcome.version = job.version;
    outcome.native = false;
    outcome.map = std::move(job.map);
    outcome.ports = std::move(job.ports);
    outcome.prefixes = std::move(job.prefixes);
    outcome.clock_net = std::move(job.clock_net);
    outcome.result.ok = true;
    // The JIT-synthesized netlist backs the debugger's instrumented-twin
    // rebuild (rearm_hardware_debug), exactly like a fabric netlist.
    outcome.result.netlist = build.netlist;
    return adopt_fabric(std::move(outcome), std::move(build.kernel),
                        device_.clock_mhz(), nullptr, /*is_jit=*/true,
                        build.digest);
}

void
Runtime::evict_to_software()
{
    if (user_location_ == Location::Software || finished_) {
        return;
    }
    // Journal first: replay keys the eviction off this event's iteration
    // and must see it before the rebuild it triggers. The hw->sw move
    // itself is the standard Cascade state-transfer (get_state() off the
    // fabric engine, set_state() into fresh software engines), so the
    // program's architectural state — including $monitor, VCD and
    // profile continuity — carries across unchanged.
    const uint64_t request =
        journal_.record("hypervisor.evict",
                        telemetry::JsonWriter()
                            .num("iteration", iterations_)
                            .num("version", version_)
                            .build());
    telemetry::Tracer::global().instant("hypervisor.evict", version_);
    telemetry::Tracer::global().instant("transition.hw_to_sw",
                                        version_);
    // The eviction is itself a traced request (id = the evict event's
    // seq): its latency is the hw->sw rebuild the tenant experiences.
    const double evict_start_us = telemetry::Tracer::global().now_us();
    requests_.begin(request, "evict", version_, tenant_,
                    evict_start_us);
    std::string err;
    rebuild_program(&err, "evict");
    const double now_us = telemetry::Tracer::global().now_us();
    requests_.add_segment(request, "rebuild", now_us - evict_start_us);
    finish_request(request, "evict", version_, err.empty(), now_us);
    log_event(LogLevel::Info, "hypervisor",
              "tenant evicted to software at iteration " +
                  std::to_string(iterations_));
}

void
Runtime::note_first_hw_tick()
{
    if (first_tick_request_ == 0) {
        return;
    }
    if (user_location_ == Location::Software) {
        // Evicted (or rebuilt) before the fabric ever ticked for this
        // request: it ends at its adoption point — the hardware ran no
        // cycles on its behalf, so there is no first_tick segment.
        finish_request(first_tick_request_, "compile",
                       first_tick_version_, true, first_tick_adopt_us_);
        first_tick_request_ = 0;
        return;
    }
    if (virtual_ticks() <= hw_adopt_ticks_) {
        return; // no post-adoption tick yet
    }
    const double now_us = telemetry::Tracer::global().now_us();
    requests_.add_segment(first_tick_request_, "first_tick",
                          now_us - first_tick_adopt_us_);
    finish_request(first_tick_request_, "compile", first_tick_version_,
                   true, now_us);
    first_tick_request_ = 0;
}

void
Runtime::finish_request(uint64_t id, const char* kind, uint64_t version,
                        bool ok, double end_us)
{
    if (!requests_.end(id, ok, end_us)) {
        return; // already closed (superseded) or never tracked
    }
    // Info-class completion marker threading the request id into the
    // journal. The payload is deliberately wall-clock-free (ids are
    // journal seqs, durations stay in the tracker), so re-recorded
    // replay journals remain byte-identical with tracing on.
    journal_.record("request.done", telemetry::JsonWriter()
                                        .num("id", id)
                                        .str("kind", kind)
                                        .num("version", version)
                                        .boolean("ok", ok)
                                        .build());
}

void
Runtime::replay_poll_compiles()
{
    // Replay pins adoption to the recorded scheduler iteration: the
    // compile still runs for real on the server thread (with the pinned
    // seed), but its result is acted on only at the iteration the
    // recording adopted (or rejected) it — never earlier, never later.
    if (replay_schedule_.compile_points.empty() ||
        replay_schedule_.compile_points.front().iteration != iterations_) {
        return;
    }
    const ReplaySchedule::CompilePoint point =
        replay_schedule_.compile_points.front();
    replay_schedule_.compile_points.pop_front();
    const double t0 = wall_seconds();
    TELEM_SPAN_HIST("compile.wait", m_.compile_wait_ns);
    while (wall_seconds() - t0 < 300.0) {
        for (service::CompileService::Done& done :
             compile_service_->poll(compile_client_)) {
            if (done.version != point.version ||
                !pending_outcome_.has_value()) {
                // No compile.stale journal event here: whether a stale
                // result surfaces before the adoption point is a
                // wall-clock race, and a replayed session's journal must
                // be byte-deterministic (CI diffs two replays of the
                // same recording).
                if (done.request != 0) {
                    finish_request(
                        done.request, "compile", done.version, false,
                        telemetry::Tracer::global().now_us());
                }
                continue;
            }
            CompileOutcome outcome = std::move(*pending_outcome_);
            pending_outcome_.reset();
            outcome.result = std::move(done.result);
            outcome.svc_cache_us = done.cache_us;
            outcome.svc_enqueue_us = done.enqueue_us;
            outcome.svc_dequeue_us = done.dequeue_us;
            outcome.svc_done_us = done.done_us;
            outcome.polled_us = telemetry::Tracer::global().now_us();
            act_on_compile(std::move(outcome), nullptr);
            return;
        }
        // Block on the service's done CV (no sleep-polling); a false
        // return with nothing in flight means the result can never
        // arrive, so fall through to the divergence report.
        if (!compile_service_->wait_for_done(compile_client_, 0.25) &&
            !compile_service_->busy(compile_client_)) {
            break;
        }
    }
    log_event(LogLevel::Error, "replay",
              "compile for v" + std::to_string(point.version) +
                  " did not finish within 300s; replay will diverge");
}

void
Runtime::run_open_loop()
{
    // The JIT tier free-runs only in the forwarded-equivalent shape
    // (stdlib merged into the kernel): with software peripherals still
    // alongside — the plain-Hardware analogue — every tick must
    // interleave with their step-mode servicing.
    if (user_location_ != Location::HardwareForwarded &&
        user_location_ != Location::Native &&
        !(user_location_ == Location::Jit &&
          !adopted_prefixes_.empty())) {
        return;
    }
    Slot* user = nullptr;
    for (Slot& slot : slots_) {
        if (slot.sub.path == "root") {
            user = &slot;
        }
    }
    if (user == nullptr || !user->engine->supports_open_loop()) {
        return;
    }
    // Feed the hardware FIFO before relinquishing control.
    if (hw_engine_ != nullptr) {
        for (const FifoBinding& f : adopted_fifos_) {
            feed_fifo_hw(f);
        }
    }
    // Adaptive profiling (§4.4): size batches so the engine relinquishes
    // control roughly every open_loop_target_wall_s of host time.
    if (open_loop_batch_ == 0) {
        open_loop_batch_ = std::max<uint64_t>(64,
                                              options_.open_loop_iterations);
    }
    uint64_t grant = open_loop_batch_;
    if (replay_ && !replay_schedule_.grants.empty()) {
        // Grant sizes were tuned against the recording host's wall clock;
        // consume the journaled sequence instead of re-adapting.
        grant = replay_schedule_.grants.front();
        replay_schedule_.grants.pop_front();
        open_loop_batch_ = grant;
    } else if (!replay_ && fabric_ != nullptr) {
        // Fair-share ticking: the hypervisor trims the grant when other
        // tenants are resident so no one monopolizes the fabric between
        // scheduler windows. The adaptive batch below still tracks the
        // untrimmed target.
        grant = fabric_->grant_open_loop(tenant_, open_loop_batch_);
    }
    const double wall0 = wall_seconds();
    uint64_t itrs = 0;
    {
        TELEM_SPAN_HIST("openloop.batch", m_.open_loop_wall_ns);
        itrs = user->engine->open_loop(grant);
    }
    const double wall = wall_seconds() - wall0;
    m_.open_loop_batch->record(grant);
    m_.open_loop_iterations->inc(itrs);
    if (fabric_ != nullptr) {
        // Report executed (not granted) ticks: the fleet view's ticks/s
        // reflects work done, even when a batch ends early on $finish.
        fabric_->note_ticks(tenant_, itrs);
    }
    journal_.record("openloop.grant", telemetry::JsonWriter()
                                          .num("batch", grant)
                                          .num("itrs", itrs)
                                          .build());
    static const bool oloop_env =
        std::getenv("CASCADE_DEBUG_OLOOP") != nullptr;
    if (oloop_env || Logger::instance().enabled(LogLevel::Debug)) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "itrs=%llu batch=%llu wall=%.3f",
                      static_cast<unsigned long long>(itrs),
                      static_cast<unsigned long long>(open_loop_batch_),
                      wall);
        Logger::instance().write(LogLevel::Debug, "openloop", buf);
    }
    if (!replay_) {
        const double target =
            std::max(0.01, options_.open_loop_target_wall_s);
        if (wall > 1.5 * target) {
            open_loop_batch_ = std::max<uint64_t>(64, open_loop_batch_ / 2);
        } else if (wall < 0.5 * target && itrs == grant) {
            open_loop_batch_ = std::min<uint64_t>(1u << 22,
                                                  open_loop_batch_ * 2);
        }
    }
    if (itrs == 0) {
        return;
    }
    clock_toggles_ += itrs;

    // Resynchronize the runtime's clock with the level the engine left.
    bool level = clock_engine_ != nullptr && clock_engine_->value();
    if (hw_engine_ != nullptr && !hw_engine_->map().clock_input.empty()) {
        const ir::VarSlot* clk =
            hw_engine_->map().find(hw_engine_->map().clock_input);
        if (clk != nullptr) {
            level = !hw_engine_->read_var(*clk).is_zero();
        }
    } else if (native_engine_ != nullptr) {
        level = native_engine_->clock_level();
    }
    if (clock_engine_ != nullptr) {
        clock_engine_->force_value(level);
    }
    const int clk_net = find_net(clock_net_name_);
    if (clk_net >= 0) {
        nets_[static_cast<size_t>(clk_net)].value = BitVector(1, level);
        nets_[static_cast<size_t>(clk_net)].has_value = true;
    }
    route_outputs();
    for (Slot& slot : slots_) {
        if (slot.engine->finished()) {
            finished_ = true;
        }
    }
}

void
Runtime::feed_fifo_hw(const FifoBinding& f)
{
    if (fifo_queue_.empty() || hw_engine_ == nullptr) {
        return;
    }
    const ir::WrapperMap& map = hw_engine_->map();
    const ir::VarSlot* mem = map.find(f.prefix + "mem");
    const ir::VarSlot* head = map.find(f.prefix + "head");
    const ir::VarSlot* tail = map.find(f.prefix + "tail");
    if (mem == nullptr || head == nullptr || tail == nullptr) {
        return;
    }
    const uint64_t depth = mem->elems;
    const uint64_t ptr_mask = (uint64_t{1} << head->width) - 1;
    uint64_t h = hw_engine_->read_var(*head).to_uint64();
    uint64_t t = hw_engine_->read_var(*tail).to_uint64();
    bool wrote = false;
    while (!fifo_queue_.empty() &&
           ((t - h) & ptr_mask) < depth) {
        hw_engine_->write_var(*mem, BitVector(8, fifo_queue_.front()),
                              t & (depth - 1));
        fifo_queue_.pop_front();
        ++fifo_consumed_;
        t = (t + 1) & ptr_mask;
        wrote = true;
    }
    if (wrote) {
        hw_engine_->write_var(*tail, BitVector(tail->width, t));
    }
}

bool
Runtime::promote_pins(
    ModuleDecl* merged,
    const std::vector<std::tuple<std::string, std::string, bool>>& pins)
{
    for (const auto& [name, net, is_input] : pins) {
        // Find and remove the net declaration, carrying its range over.
        Range range;
        bool found = false;
        for (auto it = merged->items.begin(); it != merged->items.end();
             ++it) {
            if ((*it)->kind != ItemKind::NetDecl) {
                continue;
            }
            auto* nd = static_cast<NetDecl*>(it->get());
            for (auto dit = nd->decls.begin(); dit != nd->decls.end();
                 ++dit) {
                if (dit->name == name) {
                    range = nd->range.clone();
                    nd->decls.erase(dit);
                    found = true;
                    break;
                }
            }
            if (found) {
                if (nd->decls.empty()) {
                    merged->items.erase(it);
                }
                break;
            }
        }
        if (!found) {
            continue; // instance exists but pin net optimized away
        }
        Port port;
        port.name = name;
        port.dir = is_input ? PortDir::Input : PortDir::Output;
        port.range = std::move(range);
        merged->ports.push_back(std::move(port));
    }
    return true;
}

const Runtime::Slot*
Runtime::find_stdlib(const std::string& type) const
{
    for (const Slot& slot : slots_) {
        if (slot.sub.module_name == type) {
            return &slot;
        }
    }
    return nullptr;
}

Runtime::Slot*
Runtime::user_slot()
{
    for (Slot& slot : slots_) {
        if (slot.sub.path == "root") {
            return &slot;
        }
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// Telemetry snapshots
// ---------------------------------------------------------------------------

namespace {

std::string
json_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

using telemetry::json_escape;

} // namespace

std::string
Runtime::stats_json() const
{
    // Interpreter-level aggregates across the live software engines.
    uint64_t interp_evals = 0;
    uint64_t interp_updates = 0;
    uint64_t interp_processes = 0;
    for (const Slot& slot : slots_) {
        if (const auto* sw =
                dynamic_cast<const SwEngine*>(slot.engine.get())) {
            interp_evals += sw->evaluate_calls();
            interp_updates += sw->update_calls();
            interp_processes += sw->process_executions();
        }
    }

    std::string out = "{\"schema\":\"cascade.stats.v1\"";
    out += ",\"location\":\"";
    out += location_name(user_location_);
    out += "\",\"virtual_ticks\":" + std::to_string(virtual_ticks());
    out += ",\"timeline_seconds\":" + json_double(timeline_s_);
    out += ",\"scheduler_iterations\":" + std::to_string(iterations_);
    out += ",\"finished\":" + std::string(finished_ ? "true" : "false");
    out += ",\"fifo\":{\"consumed\":" + std::to_string(fifo_consumed_) +
           ",\"backlog\":" + std::to_string(fifo_queue_.size()) + '}';
    out += ",\"interpreter\":{\"evaluate_calls\":" +
           std::to_string(interp_evals) +
           ",\"update_calls\":" + std::to_string(interp_updates) +
           ",\"process_executions\":" + std::to_string(interp_processes) +
           '}';
    if (hw_engine_ != nullptr) {
        out += ",\"hw_engine\":{\"mmio_transactions\":" +
               std::to_string(hw_engine_->mmio_transactions()) +
               ",\"fabric_cycles\":" +
               std::to_string(hw_engine_->fabric_cycles()) + '}';
    }
    out += ",\"compile_service\":{\"cache_hits\":" +
           std::to_string(compile_service_->cache_hits()) +
           ",\"cache_misses\":" +
           std::to_string(compile_service_->cache_misses()) +
           ",\"cache_hit_rate\":" +
           json_double(compile_service_->cache_hit_rate()) +
           ",\"queue_depth\":" +
           std::to_string(compile_service_->queued_jobs()) + '}';
    out += ",\"metrics\":" + telemetry_.json();
    out += ",\"process_metrics\":" + telemetry::Registry::global().json();
    if (last_report_.has_value()) {
        const fpga::CompileReport& r = *last_report_;
        out += ",\"compile\":{\"synth_seconds\":" +
               json_double(r.synth_seconds) +
               ",\"techmap_seconds\":" + json_double(r.techmap_seconds) +
               ",\"place_seconds\":" + json_double(r.place_seconds) +
               ",\"timing_seconds\":" + json_double(r.timing_seconds) +
               ",\"total_seconds\":" + json_double(r.total_seconds) +
               ",\"area_les\":" + std::to_string(r.area.les) +
               ",\"area_bram_bits\":" + std::to_string(r.area.bram_bits) +
               ",\"fmax_mhz\":" + json_double(r.timing.fmax_mhz) +
               ",\"timing_met\":" +
               (r.timing.met ? "true" : "false") +
               ",\"seed\":" + std::to_string(r.seed) +
               ",\"cache_hit\":" + (r.cache_hit ? "true" : "false") +
               '}';
    }
    out += ",\"transitions\":[";
    for (size_t i = 0; i < transitions_.size(); ++i) {
        const TransitionRecord& t = transitions_[i];
        if (i != 0) {
            out += ',';
        }
        out += "{\"version\":" + std::to_string(t.version) +
               ",\"to\":\"" + location_name(t.to) +
               "\",\"timeline_seconds\":" +
               json_double(t.timeline_seconds) +
               ",\"trace_ts_us\":" + json_double(t.trace_ts_us) +
               ",\"clock_mhz\":" + json_double(t.clock_mhz) + '}';
    }
    out += "]}";
    return out;
}

std::string
Runtime::top_table() const
{
    if (fabric_ != nullptr) {
        return fabric_->fleet_table();
    }
    char line[160];
    std::string out = "exclusive session (no hypervisor)\n";
    std::snprintf(line, sizeof line,
                  "  location %-9s ticks %llu  iterations %llu  "
                  "timeline %.6fs\n",
                  location_name(user_location_),
                  static_cast<unsigned long long>(virtual_ticks()),
                  static_cast<unsigned long long>(iterations_),
                  timeline_s_);
    out += line;
    return out;
}

std::string
Runtime::stats_table() const
{
    char line[160];
    std::string out = "cascade stats\n";
    std::snprintf(line, sizeof line, "  %-26s %s\n", "location",
                  location_name(user_location_));
    out += line;
    std::snprintf(line, sizeof line, "  %-26s %llu\n", "virtual ticks",
                  static_cast<unsigned long long>(virtual_ticks()));
    out += line;
    std::snprintf(line, sizeof line, "  %-26s %.6f\n", "timeline seconds",
                  timeline_s_);
    out += line;
    out += "compile service\n";
    std::snprintf(line, sizeof line,
                  "  %-26s %.1f%% (%llu hits / %llu misses)\n",
                  "cache hit rate",
                  100.0 * compile_service_->cache_hit_rate(),
                  static_cast<unsigned long long>(
                      compile_service_->cache_hits()),
                  static_cast<unsigned long long>(
                      compile_service_->cache_misses()));
    out += line;
    std::snprintf(line, sizeof line, "  %-26s %zu\n", "queue depth",
                  compile_service_->queued_jobs());
    out += line;
    out += "runtime metrics\n";
    out += telemetry_.table();
    out += "process metrics\n";
    out += telemetry::Registry::global().table();
    if (last_report_.has_value()) {
        const fpga::CompileReport& r = *last_report_;
        out += "last compile\n";
        std::snprintf(line, sizeof line,
                      "  synth %.4fs  techmap %.4fs  place %.4fs  "
                      "timing %.4fs  total %.4fs\n",
                      r.synth_seconds, r.techmap_seconds, r.place_seconds,
                      r.timing_seconds, r.total_seconds);
        out += line;
        std::snprintf(line, sizeof line,
                      "  %llu LEs  %llu BRAM bits  Fmax %.1f MHz  "
                      "timing %s\n",
                      static_cast<unsigned long long>(r.area.les),
                      static_cast<unsigned long long>(r.area.bram_bits),
                      r.timing.fmax_mhz, r.timing.met ? "met" : "missed");
        out += line;
    }
    if (!transitions_.empty()) {
        out += "transitions\n";
        for (const TransitionRecord& t : transitions_) {
            std::snprintf(line, sizeof line,
                          "  v%llu -> %s at timeline %.6fs "
                          "(%.1f MHz fabric clock)\n",
                          static_cast<unsigned long long>(t.version),
                          location_name(t.to), t.timeline_seconds,
                          t.clock_mhz);
            out += line;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Live monitoring (README §Monitoring)
// ---------------------------------------------------------------------------

std::string
Runtime::monitor_tenant_label() const
{
    if (fabric_ == nullptr) {
        return "";
    }
    return options_.tenant_name.empty()
               ? "tenant-" + std::to_string(tenant_)
               : options_.tenant_name;
}

void
Runtime::sample_monitor()
{
    if (options_.timeseries_interval_s <= 0) {
        return;
    }
    const double now = wall_seconds();
    if (now < monitor_next_sample_wall_) {
        return;
    }
    monitor_next_sample_wall_ = now + options_.timeseries_interval_s;
    const double t = now - monitor_epoch_wall_;
    const double dt = now - monitor_last_sample_wall_;
    // Rates are deltas against the previous sample; counters can move
    // backwards across a :stats reset, in which case the delta restarts.
    const uint64_t toggles = m_.clock_toggles->value();
    const uint64_t dtoggles = toggles >= monitor_last_sample_toggles_
                                  ? toggles - monitor_last_sample_toggles_
                                  : toggles;
    const double ticks_per_s =
        dt > 0 ? (static_cast<double>(dtoggles) / 2.0) / dt : 0.0;
    monitor_last_sample_wall_ = now;
    monitor_last_sample_toggles_ = toggles;

    timeseries_.sample("runtime.ticks_per_s", t, ticks_per_s);
    timeseries_.sample(
        "runtime.interrupt_depth", t,
        static_cast<double>(m_.interrupt_depth->value()));
    timeseries_.sample(
        "runtime.resident", t,
        user_location_ != Location::Software ? 1.0 : 0.0);
    timeseries_.sample(
        "runtime.halted", t,
        debug_halted_.load(std::memory_order_relaxed) ? 1.0 : 0.0);
    timeseries_.sample(
        "service.queue_depth", t,
        static_cast<double>(compile_service_->queued_jobs()));
    timeseries_.sample("service.cache_hit_rate", t,
                       compile_service_->cache_hit_rate());
    if (fabric_ != nullptr) {
        const auto waits =
            telemetry::SyncRegistry::global().tenant_waits();
        const auto it = waits.find(tenant_);
        const uint64_t wait_ns = it == waits.end() ? 0 : it->second;
        const uint64_t dwait = wait_ns >= monitor_last_tenant_wait_ns_
                                   ? wait_ns - monitor_last_tenant_wait_ns_
                                   : wait_ns;
        monitor_last_tenant_wait_ns_ = wait_ns;
        const double share =
            dt > 0 ? std::min(1.0, static_cast<double>(dwait) / 1e9 / dt)
                   : 0.0;
        timeseries_.sample("runtime.lock_wait_share", t, share);
        timeseries_.sample(
            "tenant." + monitor_tenant_label() + ".ticks_per_s", t,
            ticks_per_s);
    }
    slo_->record_ticks_per_s(now, monitor_tenant_label(), ticks_per_s);
    slo_->tick(now, [this](const telemetry::SloTracker::Objective& o) {
        telemetry::JsonWriter w;
        w.str("objective", o.name);
        if (!o.tenant.empty()) {
            w.str("tenant", o.tenant);
        }
        w.dbl("observed", o.observed);
        w.dbl("threshold", o.threshold);
        w.num("breaches", o.breaches);
        journal_.record("slo.breach", w.build());
    });
}

bool
Runtime::start_monitor(uint16_t port, std::string* err)
{
    if (monitoring()) {
        if (err != nullptr) {
            *err = "monitor already running on port " +
                   std::to_string(monitor_port());
        }
        return false;
    }
    auto server = std::make_unique<telemetry::MonitorServer>();
    server->handle("/metrics",
                   "text/plain; version=0.0.4; charset=utf-8",
                   [this] { return metrics_text(); });
    server->handle("/slo", "application/json",
                   [this] { return slo_json(); });
    server->handle("/healthz", "application/json", [this] {
        const bool breached = slo_breached();
        std::string out = "{\"status\":\"";
        out += breached ? "breached" : "ok";
        out += "\",\"breached\":";
        out += breached ? "true" : "false";
        out += "}\n";
        return out;
    });
    server->handle("/timeseries", "application/json", [this] {
        // While halted at a debugger point the scheduler — and with it
        // the in-window sampler — is parked, which used to flatline the
        // series mid-halt. Heartbeat from the scrape itself instead:
        // TimeSeries is internally locked, so the server thread may
        // sample concurrently with the scheduler.
        if (debug_halted_.load(std::memory_order_relaxed)) {
            const double t = wall_seconds() - monitor_epoch_wall_;
            timeseries_.sample("runtime.halted", t, 1.0);
            timeseries_.sample("runtime.ticks_per_s", t, 0.0);
        }
        return timeseries_json();
    });
    server->handle("/debug", "application/json",
                   [this] { return debug_json(); });
    server->handle("/requests", "application/x-ndjson",
                   [this] { return requests_ndjson(); });
    server->attach_journal(&journal_);
    if (!server->start(port, err)) {
        return false;
    }
    monitor_ = std::move(server);
    return true;
}

void
Runtime::stop_monitor()
{
    if (monitor_ != nullptr) {
        monitor_->stop();
        monitor_.reset();
    }
}

bool
Runtime::monitoring() const
{
    return monitor_ != nullptr && monitor_->running();
}

uint16_t
Runtime::monitor_port() const
{
    return monitor_ != nullptr ? monitor_->port() : 0;
}

std::string
Runtime::slo_json() const
{
    return slo_->json(wall_seconds());
}

std::string
Runtime::slo_table() const
{
    return slo_->table(wall_seconds());
}

bool
Runtime::slo_breached() const
{
    return slo_->evaluate(wall_seconds()).breached;
}

void
Runtime::reset_stats()
{
    // One reset clears every measurement surface (:stats reset): both
    // metric registries, the sync sites + blocked-on matrix + per-tenant
    // wait totals, the time-series rings, and SLO windows/breach
    // counters. Monitor delta state restarts via the backwards-counter
    // guards in sample_monitor().
    telemetry_.reset();
    telemetry::Registry::global().reset();
    telemetry::SyncRegistry::global().reset();
    timeseries_.reset();
    slo_->reset();
    monitor_last_sample_toggles_ = 0;
    monitor_last_tenant_wait_ns_ = 0;
}

std::string
Runtime::metrics_text() const
{
    using telemetry::PromWriter;
    PromWriter w;
    const double now = wall_seconds();

    w.family("cascade_up", "gauge", "1 while this runtime is live.");
    w.sample("cascade_up", {}, uint64_t{1});
    w.family("cascade_virtual_ticks", "gauge",
             "Virtual clock ticks executed by this runtime.");
    w.sample("cascade_virtual_ticks", {}, m_.clock_toggles->value() / 2);

    // Registry dumps: this runtime's scoped registry plus the process
    // registry. The scope label keeps identically-named series apart;
    // shared-mode runtime series additionally carry the tenant.
    const auto render = [&w](const telemetry::Registry::Snapshot& snap,
                             const PromWriter::Labels& labels) {
        for (const auto& [name, value] : snap.counters) {
            const std::string fam =
                telemetry::prom_sanitize_name(name) + "_total";
            w.family(fam, "counter", "Counter " + name + ".");
            w.sample(fam, labels, value);
        }
        for (const auto& [name, g] : snap.gauges) {
            const std::string fam = telemetry::prom_sanitize_name(name);
            w.family(fam, "gauge", "Gauge " + name + ".");
            w.sample(fam, labels, static_cast<double>(g.value));
            const std::string hw = fam + "_high_water";
            w.family(hw, "gauge", "High-water mark of " + name + ".");
            w.sample(hw, labels, static_cast<double>(g.high_water));
        }
        for (const auto& [name, h] : snap.histograms) {
            const std::string fam = telemetry::prom_sanitize_name(name);
            w.family(fam, "summary", "Histogram " + name + ".");
            PromWriter::Labels q = labels;
            q.emplace_back("quantile", "0.5");
            w.sample(fam, q, static_cast<double>(h.p50));
            q.back().second = "0.9";
            w.sample(fam, q, static_cast<double>(h.p90));
            q.back().second = "0.99";
            w.sample(fam, q, static_cast<double>(h.p99));
            w.sample(fam, labels, h.sum, "_sum");
            w.sample(fam, labels, h.count, "_count");
        }
    };
    PromWriter::Labels runtime_labels = {{"scope", "runtime"}};
    if (fabric_ != nullptr) {
        runtime_labels.emplace_back("tenant", monitor_tenant_label());
    }
    render(telemetry_.snapshot(), runtime_labels);
    render(telemetry::Registry::global().snapshot(),
           {{"scope", "process"}});

    // Fleet view (shared mode): one labeled series per tenant from the
    // hypervisor's slot map and the sync registry's wait totals.
    if (fabric_ != nullptr) {
        w.family("cascade_tenant_resident", "gauge",
                 "1 while the tenant's user logic is on the fabric.");
        w.family("cascade_tenant_ticks_per_s", "gauge",
                 "Open-loop ticks per second per tenant (fleet view).");
        w.family("cascade_tenant_le_used", "gauge",
                 "Logic elements occupied by the tenant's slot.");
        w.family("cascade_tenant_evictions_total", "counter",
                 "Completed evictions of the tenant.");
        w.family("cascade_tenant_lock_wait_seconds_total", "counter",
                 "Blocked time accrued by the tenant's threads.");
        w.family("cascade_tenant_lock_wait_share", "gauge",
                 "The tenant's share of the fleet's total blocked time.");
        const auto waits =
            telemetry::SyncRegistry::global().tenant_waits();
        uint64_t total_wait_ns = 0;
        for (const auto& [tenant, ns] : waits) {
            (void)tenant;
            total_wait_ns += ns;
        }
        for (const auto& s : fabric_->slot_map()) {
            const PromWriter::Labels l = {{"tenant", s.name}};
            w.sample("cascade_tenant_resident", l,
                     uint64_t{s.resident ? 1u : 0u});
            w.sample("cascade_tenant_ticks_per_s", l,
                     s.active_s > 0
                         ? static_cast<double>(s.ticks_done) / s.active_s
                         : 0.0);
            w.sample("cascade_tenant_le_used", l, s.le_count);
            w.sample("cascade_tenant_evictions_total", l, s.evictions);
            const auto it = waits.find(s.tenant);
            const uint64_t ns = it == waits.end() ? 0 : it->second;
            w.sample("cascade_tenant_lock_wait_seconds_total", l,
                     static_cast<double>(ns) / 1e9);
            w.sample("cascade_tenant_lock_wait_share", l,
                     total_wait_ns > 0 ? static_cast<double>(ns) /
                                             static_cast<double>(
                                                 total_wait_ns)
                                       : 0.0);
        }
    }

    // Lock contention, one series per named site (PR 6's sync registry).
    const auto sites = telemetry::SyncRegistry::global().snapshot();
    if (!sites.empty()) {
        w.family("cascade_lock_acquisitions_total", "counter",
                 "Lock/CV acquisitions per sync site.");
        w.family("cascade_lock_contended_total", "counter",
                 "Acquisitions that blocked, per sync site.");
        w.family("cascade_lock_wait_seconds_total", "counter",
                 "Total blocked seconds per sync site.");
        w.family("cascade_lock_wait_p99_seconds", "gauge",
                 "p99 blocked time per sync site.");
        w.family("cascade_lock_hold_seconds_total", "counter",
                 "Total hold seconds per sync site (mutex sites).");
        for (const auto& s : sites) {
            const PromWriter::Labels l = {{"site", s.name},
                                          {"kind", s.kind}};
            w.sample("cascade_lock_acquisitions_total", l,
                     s.acquisitions);
            w.sample("cascade_lock_contended_total", l, s.contended);
            w.sample("cascade_lock_wait_seconds_total", l,
                     static_cast<double>(s.wait_sum_ns) / 1e9);
            w.sample("cascade_lock_wait_p99_seconds", l,
                     static_cast<double>(s.wait_p99_ns) / 1e9);
            w.sample("cascade_lock_hold_seconds_total", l,
                     static_cast<double>(s.hold_sum_ns) / 1e9);
        }
    }

    // Compile service (distinct names from the registry's compile.*
    // metrics so the explicit gauges never collide with a registry dump).
    w.family("cascade_compile_service_queue_depth", "gauge",
             "Jobs queued in the pooled compile service.");
    w.sample("cascade_compile_service_queue_depth", {},
             uint64_t{compile_service_->queued_jobs()});
    w.family("cascade_compile_service_cache_entries", "gauge",
             "Bitstreams resident in the compile cache.");
    w.sample("cascade_compile_service_cache_entries", {},
             uint64_t{compile_service_->cache_entries()});
    w.family("cascade_compile_service_cache_hit_rate", "gauge",
             "Bitstream-cache hit rate since process start.");
    w.sample("cascade_compile_service_cache_hit_rate", {},
             compile_service_->cache_hit_rate());

    // SLO status (also at /slo in JSON).
    const telemetry::SloTracker::Status status = slo_->evaluate(now);
    w.family("cascade_slo_breached", "gauge",
             "1 while any SLO objective is in breach.");
    w.sample("cascade_slo_breached", {},
             uint64_t{status.breached ? 1u : 0u});
    w.family("cascade_slo_breaches_total", "counter",
             "Cumulative OK->breach transitions across objectives.");
    w.sample("cascade_slo_breaches_total", {}, slo_->total_breaches());
    if (!status.objectives.empty()) {
        w.family("cascade_slo_objective_observed", "gauge",
                 "Rolling-window statistic per SLO objective.");
        w.family("cascade_slo_objective_threshold", "gauge",
                 "Configured threshold per SLO objective.");
        w.family("cascade_slo_objective_breached", "gauge",
                 "1 while the objective is in breach.");
        for (const auto& o : status.objectives) {
            PromWriter::Labels l = {{"objective", o.name}};
            if (!o.tenant.empty()) {
                l.emplace_back("tenant", o.tenant);
            }
            w.sample("cascade_slo_objective_observed", l, o.observed);
            w.sample("cascade_slo_objective_threshold", l, o.threshold);
            w.sample("cascade_slo_objective_breached", l,
                     uint64_t{o.breached ? 1u : 0u});
        }
    }

    // Request tracing: lifetime counts here; the per-segment latency
    // histograms (cascade_request_<segment>_ns) ride in the runtime
    // registry dump above, fed by the tracker as requests complete.
    w.family("cascade_requests_completed_total", "counter",
             "Finished traced requests (evals, compiles, interrupt "
             "batches, evictions).");
    w.sample("cascade_requests_completed_total", {},
             requests_.completed_total());
    w.family("cascade_requests_open", "gauge",
             "Traced requests currently in flight.");
    w.sample("cascade_requests_open", {},
             uint64_t{requests_.open_count()});

    if (monitor_ != nullptr) {
        w.family("cascade_monitor_events_dropped_total", "counter",
                 "/events lines dropped to streaming backpressure.");
        w.sample("cascade_monitor_events_dropped_total", {},
                 monitor_->events_dropped());
    }
    return w.render();
}

// ---------------------------------------------------------------------------
// Source-level profiler (README §Profiling)
// ---------------------------------------------------------------------------

void
Runtime::set_profiling(bool on)
{
    flush_api_steps();
    journal_.record("api.profiling",
                    telemetry::JsonWriter().boolean("on", on).build());
    options_.profiling = on;
    for (Slot& slot : slots_) {
        if (auto* sw = dynamic_cast<SwEngine*>(slot.engine.get())) {
            sw->set_profiling(on);
        }
    }
    if (hw_engine_ != nullptr) {
        hw_engine_->set_profiling(on);
    }
}

void
Runtime::absorb_slot_profile(const Slot& slot)
{
    const auto* sw = dynamic_cast<const SwEngine*>(slot.engine.get());
    if (sw == nullptr) {
        return;
    }
    auto& per_instance = profile_acc_[slot.instance];
    for (const sim::ProcessProfile& p : sw->profile()) {
        ProcAccum& a = per_instance[p.key];
        if (a.label.empty()) {
            a.label = p.label;
            a.kind = p.kind;
            a.triggers = p.triggers;
        }
        a.executions += p.executions;
        a.eval_ns += p.eval_ns;
    }
}

void
Runtime::attribute_hw_ticks(
    std::map<std::string, std::map<std::string, ProcAccum>>* acc,
    uint64_t ticks) const
{
    if (ticks == 0 || hw_clock_ports_.empty()) {
        return;
    }
    for (const auto& [instance, clock_port] : hw_clock_ports_) {
        const auto it = acc->find(instance);
        if (it == acc->end()) {
            continue;
        }
        const std::string pos = "posedge " + clock_port;
        const std::string neg = "negedge " + clock_port;
        for (auto& [key, a] : it->second) {
            if (a.triggers.empty()) {
                continue;
            }
            uint64_t matches = 0;
            for (const std::string& t : a.triggers) {
                if (t == pos || t == neg) {
                    ++matches;
                }
            }
            if (matches == a.triggers.size()) {
                // Each virtual tick toggles the clock 0 -> 1 -> 0, so
                // every posedge and every negedge trigger fires exactly
                // once per tick. Processes with non-clock sensitivities
                // get no tick attribution (their fabric activity shows
                // in the :fabric per-source counters instead).
                a.hw_triggers += ticks * matches;
            }
        }
    }
}

void
Runtime::fold_hw_window()
{
    if (hw_clock_ports_.empty()) {
        return;
    }
    attribute_hw_ticks(&profile_acc_, posedges_seen() - hw_adopt_ticks_);
    hw_adopt_ticks_ = posedges_seen();
    hw_clock_ports_.clear();
}

std::vector<Runtime::ProfileEntry>
Runtime::profile() const
{
    // Merge banked accumulators, live interpreter counters, and the open
    // hardware attribution window, all keyed by (instance, canonical
    // printed item) — so counts splice across engine transitions.
    auto acc = profile_acc_;
    for (const Slot& slot : slots_) {
        const auto* sw = dynamic_cast<const SwEngine*>(slot.engine.get());
        if (sw == nullptr) {
            continue;
        }
        auto& per_instance = acc[slot.instance];
        for (const sim::ProcessProfile& p : sw->profile()) {
            ProcAccum& a = per_instance[p.key];
            if (a.label.empty()) {
                a.label = p.label;
                a.kind = p.kind;
                a.triggers = p.triggers;
            }
            a.executions += p.executions;
            a.eval_ns += p.eval_ns;
        }
    }
    attribute_hw_ticks(&acc, posedges_seen() - hw_adopt_ticks_);

    std::vector<ProfileEntry> out;
    for (const auto& [instance, procs] : acc) {
        for (const auto& [key, a] : procs) {
            ProfileEntry e;
            e.instance = instance;
            e.key = key;
            e.label = a.label;
            e.kind = a.kind;
            e.triggers = a.triggers;
            e.sw_triggers = a.executions;
            e.hw_triggers = a.hw_triggers;
            e.eval_ns = a.eval_ns;
            out.push_back(std::move(e));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ProfileEntry& l, const ProfileEntry& r) {
                  if (l.eval_ns != r.eval_ns) {
                      return l.eval_ns > r.eval_ns;
                  }
                  if (l.total_triggers() != r.total_triggers()) {
                      return l.total_triggers() > r.total_triggers();
                  }
                  if (l.instance != r.instance) {
                      return l.instance < r.instance;
                  }
                  return l.key < r.key;
              });
    return out;
}

std::string
Runtime::profile_json() const
{
    std::string out = "{\"schema\":\"cascade.profile.v1\"";
    out += ",\"profiling\":";
    out += options_.profiling ? "true" : "false";
    out += ",\"location\":\"";
    out += location_name(user_location_);
    out += "\",\"virtual_ticks\":" + std::to_string(virtual_ticks());
    out += ",\"entries\":[";
    bool first = true;
    for (const ProfileEntry& e : profile()) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"instance\":\"" + json_escape(e.instance) + '"';
        out += ",\"kind\":\"" + e.kind + '"';
        out += ",\"label\":\"" + json_escape(e.label) + '"';
        out += ",\"key\":\"" + json_escape(e.key) + '"';
        out += ",\"triggers\":[";
        for (size_t i = 0; i < e.triggers.size(); ++i) {
            if (i != 0) {
                out += ',';
            }
            out += '"' + json_escape(e.triggers[i]) + '"';
        }
        out += "],\"sw_triggers\":" + std::to_string(e.sw_triggers);
        out += ",\"hw_triggers\":" + std::to_string(e.hw_triggers);
        out += ",\"total_triggers\":" + std::to_string(e.total_triggers());
        out += ",\"eval_ns\":" + std::to_string(e.eval_ns);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string
Runtime::profile_table() const
{
    char line[256];
    std::string out = "cascade profile (timing ";
    out += options_.profiling ? "on" : "off";
    out += ", location ";
    out += location_name(user_location_);
    out += ")\n";
    const auto entries = profile();
    if (entries.empty()) {
        out += "  (no processes)\n";
        return out;
    }
    std::snprintf(line, sizeof line, "  %-10s %-10s %12s %12s %11s  %s\n",
                  "instance", "kind", "sw-trig", "hw-trig", "eval-ms",
                  "process");
    out += line;
    for (const ProfileEntry& e : entries) {
        std::snprintf(line, sizeof line,
                      "  %-10s %-10s %12llu %12llu %11.3f  %s\n",
                      e.instance.c_str(), e.kind.c_str(),
                      static_cast<unsigned long long>(e.sw_triggers),
                      static_cast<unsigned long long>(e.hw_triggers),
                      static_cast<double>(e.eval_ns) / 1e6,
                      e.label.c_str());
        out += line;
    }
    return out;
}

bool
Runtime::write_flamegraph(const std::string& path, std::string* err) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        if (err != nullptr) {
            *err = "cannot open '" + path + "' for writing";
        }
        return false;
    }
    // Collapsed-stack format: "frame;frame;frame weight" per line, as
    // consumed by flamegraph.pl and speedscope. Weight is wall time when
    // timing was collected, trigger counts otherwise.
    for (const ProfileEntry& e : profile()) {
        const uint64_t weight =
            e.eval_ns != 0 ? e.eval_ns : e.total_triggers();
        if (weight == 0) {
            continue;
        }
        std::string frames = e.instance + ';' + e.kind + ';' + e.label;
        for (size_t i = e.instance.size() + e.kind.size() + 2;
             i < frames.size(); ++i) {
            if (frames[i] == ';') {
                frames[i] = ',';
            }
        }
        std::fprintf(f, "%s %llu\n", frames.c_str(),
                     static_cast<unsigned long long>(weight));
    }
    std::fclose(f);
    return true;
}

std::string
Runtime::fabric_table() const
{
    char line[256];
    std::string out = "cascade fabric\n";
    std::snprintf(line, sizeof line, "  %-26s %s\n", "user location",
                  location_name(user_location_));
    out += line;
    if (!last_report_.has_value()) {
        out += "  (no hardware compile has completed)\n";
        if (fabric_ != nullptr) {
            out += fabric_->slot_map_table();
        }
        return out;
    }
    const fpga::CompileReport& r = *last_report_;
    const double util =
        options_.device_les != 0
            ? 100.0 * static_cast<double>(r.area.les) /
                  static_cast<double>(options_.device_les)
            : 0.0;
    std::snprintf(line, sizeof line, "  %-26s %llu / %llu (%.1f%%)\n",
                  "logic elements",
                  static_cast<unsigned long long>(r.area.les),
                  static_cast<unsigned long long>(options_.device_les),
                  util);
    out += line;
    std::snprintf(line, sizeof line, "  %-26s %llu\n", "BRAM bits",
                  static_cast<unsigned long long>(r.area.bram_bits));
    out += line;
    std::snprintf(line, sizeof line, "  %-26s %llu\n", "mapped cells",
                  static_cast<unsigned long long>(r.cells));
    out += line;
    std::snprintf(line, sizeof line, "  %-26s %.1f MHz (target %.1f, %s)\n",
                  "fmax", r.timing.fmax_mhz, options_.device_clock_mhz,
                  r.timing.met ? "met" : "missed");
    out += line;
    out += "critical path\n";
    if (r.critical_path_names.empty()) {
        out += "  (no combinational path)\n";
    }
    for (size_t i = 0; i < r.critical_path_names.size(); ++i) {
        std::snprintf(line, sizeof line, "  %8.3f ns  %s\n",
                      r.critical_path_arrival_ns[i],
                      r.critical_path_names[i].c_str());
        out += line;
    }
    if (hw_engine_ != nullptr && hw_engine_->profiling()) {
        out += "fabric activity (per source construct)\n";
        const auto activity = hw_engine_->fabric_activity();
        std::vector<std::pair<std::string, fpga::Bitstream::SourceActivity>>
            rows(activity.begin(), activity.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto& l, const auto& r2) {
                      if (l.second.toggles != r2.second.toggles) {
                          return l.second.toggles > r2.second.toggles;
                      }
                      return l.first < r2.first;
                  });
        for (const auto& [source, act] : rows) {
            std::snprintf(line, sizeof line,
                          "  %12llu evals %12llu toggles  %s\n",
                          static_cast<unsigned long long>(act.evals),
                          static_cast<unsigned long long>(act.toggles),
                          source.c_str());
            out += line;
        }
        if (rows.empty()) {
            out += "  (no fabric evaluations yet)\n";
        }
    } else if (hw_engine_ != nullptr) {
        out += "  (\":profile on\" enables per-source fabric activity)\n";
    }
    if (fabric_ != nullptr) {
        out += fabric_->slot_map_table();
    }
    return out;
}

} // namespace cascade::runtime
