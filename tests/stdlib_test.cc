/// \file
/// Tests for the standard library components (paper §3.2): Memory, FIFO,
/// GPIO, Reset semantics through the runtime, and REPL behavior.

#include <sstream>

#include <gtest/gtest.h>

#include "runtime/repl.h"
#include "runtime/runtime.h"
#include "stdlib/stdlib.h"
#include "verilog/parser.h"

namespace cascade::runtime {
namespace {

Runtime::Options
sw_only()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    return opts;
}

TEST(Stdlib, SourceParsesAndDeclaresAllTypes)
{
    Diagnostics diags;
    verilog::SourceUnit unit =
        verilog::parse(stdlib::stdlib_source(), &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    std::set<std::string> found;
    for (const auto& m : unit.modules) {
        found.insert(m->name);
    }
    for (const std::string& name : stdlib::stdlib_type_names()) {
        EXPECT_TRUE(found.count(name)) << name;
    }
}

TEST(Stdlib, MemoryDualPortRead)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Led#(8) led();
        Memory#(4, 8) mem(.clk(clk.val), .wen(we), .waddr(wa),
                          .wdata(wd), .raddr1(ra1), .rdata1(rd1),
                          .raddr2(ra2), .rdata2(rd2));
        reg we = 1;
        reg [3:0] wa = 0;
        reg [7:0] wd = 10;
        wire [3:0] ra1; wire [3:0] ra2;
        wire [7:0] rd1; wire [7:0] rd2;
        assign ra1 = 0;
        assign ra2 = 1;
        always @(posedge clk.val) begin
          wa <= wa + 1;
          wd <= wd + 10;
        end
        assign led.val = rd1 + rd2;
    )", &errors)) << errors;
    rt.run_for_ticks(4);
    // mem[0] = 10, mem[1] = 20 -> led = 30.
    EXPECT_EQ(rt.led_state().to_uint64(), 30u);
}

TEST(Stdlib, ResetDrivesFromHost)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(R"(
        Reset rst();
        Led#(8) led();
        reg [7:0] cnt = 0;
        always @(posedge clk.val)
          if (rst.val)
            cnt <= 0;
          else
            cnt <= cnt + 1;
        assign led.val = cnt;
    )", &errors)) << errors;
    rt.run_for_ticks(3);
    EXPECT_EQ(rt.led_state().to_uint64(), 3u);
    rt.set_pad(1); // drives all host-facing input pins, including Reset
    rt.run_for_ticks(2);
    EXPECT_EQ(rt.led_state().to_uint64(), 0u);
}

TEST(Stdlib, FifoBackpressure)
{
    Runtime rt(sw_only());
    std::string errors;
    // Reader never pops: the FIFO fills and asserts full; pushes stop.
    ASSERT_TRUE(rt.eval(R"(
        FIFO#(2, 8) f(.clk(clk.val), .rreq(1'b0));
    )", &errors)) << errors;
    rt.fifo_push({1, 2, 3, 4, 5, 6, 7, 8});
    rt.run_for_ticks(64);
    // Depth 4 FIFO: exactly 4 bytes accepted.
    EXPECT_EQ(rt.fifo_bytes_consumed(), 4u);
    EXPECT_EQ(rt.fifo_backlog(), 4u);
}

TEST(Repl, AccumulatesMultiLineModules)
{
    Runtime rt(sw_only());
    std::ostringstream out;
    Repl repl(&rt, &out);
    EXPECT_TRUE(repl.feed("module Add(input wire [3:0] a,\n"));
    EXPECT_TRUE(repl.feed("           input wire [3:0] b,\n"));
    EXPECT_TRUE(repl.feed("           output wire [3:0] s);\n"));
    EXPECT_TRUE(repl.feed("  assign s = a + b;\n"));
    EXPECT_TRUE(repl.feed("endmodule\n"));
    EXPECT_TRUE(repl.feed("Led#(4) led(); wire [3:0] q;\n"));
    EXPECT_TRUE(repl.feed("Add add(.a(4'd2), .b(4'd3), .s(q));\n"));
    EXPECT_TRUE(repl.feed("assign led.val = q;\n"));
    rt.run(8);
    EXPECT_EQ(rt.led_state().to_uint64(), 5u);
}

TEST(Repl, ReportsErrorsAndContinues)
{
    Runtime rt(sw_only());
    std::ostringstream out;
    Repl repl(&rt, &out);
    EXPECT_FALSE(repl.feed("assign q = nothere;\n"));
    EXPECT_NE(out.str().find("error"), std::string::npos);
    // The session is still usable.
    EXPECT_TRUE(repl.feed("Led#(8) led(); assign led.val = 8'd9;\n"));
    rt.run(8);
    EXPECT_EQ(rt.led_state().to_uint64(), 9u);
}

TEST(Repl, BatchModeRunsToFinish)
{
    Runtime rt(sw_only());
    std::ostringstream out;
    Repl repl(&rt, &out);
    std::istringstream in(R"(
        reg [3:0] cnt = 0;
        always @(posedge clk.val) begin
          cnt <= cnt + 1;
          $display("tick %0d", cnt);
          if (cnt == 1)
            $finish;
        end
    )");
    repl.run_batch(in, 100000);
    EXPECT_TRUE(rt.finished());
    EXPECT_NE(out.str().find("tick 0"), std::string::npos);
    EXPECT_NE(out.str().find("tick 1"), std::string::npos);
}

} // namespace
} // namespace cascade::runtime
