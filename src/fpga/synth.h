/// \file
/// RTL synthesis: lowers an elaborated, hierarchy-free module to a
/// word-level netlist by symbolic execution. Combinational processes are
/// topologically ordered and executed once; sequential processes produce
/// per-register next-state expressions with guarded (mux-merged) updates,
/// and memories synthesize to read nodes plus clocked write ports. This is
/// the first of the two NP-hard-in-general steps the paper describes for
/// the FPGA toolchain (the second, place and route, lives in place.h).

#ifndef CASCADE_FPGA_SYNTH_H
#define CASCADE_FPGA_SYNTH_H

#include <memory>

#include "common/diagnostics.h"
#include "fpga/netlist.h"
#include "verilog/elaborate.h"

namespace cascade::fpga {

/// Synthesizes \p em into a netlist. Returns null and reports diagnostics
/// on failure (combinational cycles, unsupported constructs, system tasks
/// that survived wrapping, non-static loop bounds).
std::unique_ptr<Netlist> synthesize(const verilog::ElaboratedModule& em,
                                    Diagnostics* diags);

} // namespace cascade::fpga

#endif // CASCADE_FPGA_SYNTH_H
