namespace cascade {
// placeholder translation unit; replaced as the stdlib subsystem lands.
}
