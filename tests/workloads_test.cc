/// \file
/// Functional tests for the evaluation workloads: the SHA-256 proof-of-work
/// core must reproduce a reference software SHA round sequence, the regex
/// matcher must count exactly the right matches, and Needleman-Wunsch must
/// produce the known alignment score.

#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include "runtime/runtime.h"

namespace cascade::workloads {
namespace {

using runtime::Runtime;

Runtime::Options
sw_only()
{
    Runtime::Options opts;
    opts.enable_hardware = false;
    return opts;
}

/// Reference model of the workload's (single-block, nonce-in-word-0)
/// SHA-256 compression, returning a + t1 + t2 + H0 at round 63.
uint32_t
reference_pow_hash(uint32_t nonce)
{
    static const uint32_t K[64] = {
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
        0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
        0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
        0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
        0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
        0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
        0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
        0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
        0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
        0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
        0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
        0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
    auto rotr = [](uint32_t x, int n) {
        return (x >> n) | (x << (32 - n));
    };
    uint32_t w[64];
    w[0] = nonce;
    w[1] = 0x80000000;
    for (int i = 2; i < 15; ++i) {
        w[i] = 0;
    }
    w[15] = 32;
    for (int i = 16; i < 64; ++i) {
        const uint32_t s0 =
            rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        const uint32_t s1 =
            rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = 0x6a09e667, b = 0xbb67ae85, c = 0x3c6ef372,
             d = 0xa54ff53a, e = 0x510e527f, f = 0x9b05688c,
             g = 0x1f83d9ab, h = 0x5be0cd19;
    uint32_t final_a = 0;
    for (int i = 0; i < 64; ++i) {
        const uint32_t S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const uint32_t ch = (e & f) ^ (~e & g);
        const uint32_t t1 = h + S1 + ch + K[i] + w[i];
        const uint32_t S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const uint32_t t2 = S0 + maj;
        if (i == 63) {
            final_a = a + t1 + t2 + 0x6a09e667;
        }
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    return final_a;
}

TEST(Workloads, PowMatchesReferenceSha)
{
    // Pick the difficulty so we can predict exactly which of the first
    // nonces hit.
    const uint32_t bits = 4;
    int expected_hits = 0;
    for (uint32_t nonce = 0; nonce < 8; ++nonce) {
        if ((reference_pow_hash(nonce) >> (32 - bits)) == 0) {
            ++expected_hits;
        }
    }
    Runtime rt(sw_only());
    std::vector<std::string> output;
    rt.on_output = [&output](const std::string& s) {
        output.push_back(s);
    };
    std::string errors;
    ASSERT_TRUE(rt.eval(proof_of_work_source(bits), &errors)) << errors;
    // 8 nonces x 64 rounds.
    rt.run_for_ticks(8 * 64);
    EXPECT_EQ(static_cast<int>(rt.led_state().to_uint64()),
              expected_hits);
    EXPECT_EQ(output.size(), static_cast<size_t>(expected_hits));
}

TEST(Workloads, PowModuleVariantElaborates)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(proof_of_work_module(4) + "\n Pow p(.clk(clk.val));",
                        &errors)) << errors;
    rt.run_for_ticks(8);
}

TEST(Workloads, RegexCountsMatches)
{
    Runtime rt(sw_only());
    std::string errors;
    ASSERT_TRUE(rt.eval(regex_stream_source(false), &errors)) << errors;
    const std::string text =
        "GET /index x GET/nope GGET /ab  POST / GET /z ";
    std::vector<uint8_t> bytes(text.begin(), text.end());
    rt.fifo_push(bytes);
    rt.run_for_ticks(4 * bytes.size() + 64);
    // Matches: "GET /index ", "GET /ab ", "GET /z ".
    EXPECT_EQ(rt.led_state().to_uint64(), 3u);
    EXPECT_EQ(rt.fifo_bytes_consumed(), bytes.size());
}

/// Reference Needleman-Wunsch with the workload's sequences and scoring.
int
reference_nw(uint32_t n)
{
    std::vector<int> a(n), b(n);
    for (uint32_t t = 0; t < n; ++t) {
        a[t] = static_cast<int>((t * 7 + 3) % 4);
        b[t] = static_cast<int>((t * 5 + 1) % 4);
    }
    std::vector<std::vector<int>> m(n + 1, std::vector<int>(n + 1));
    for (uint32_t i = 0; i <= n; ++i) {
        m[i][0] = -static_cast<int>(i);
        m[0][i] = -static_cast<int>(i);
    }
    for (uint32_t i = 1; i <= n; ++i) {
        for (uint32_t j = 1; j <= n; ++j) {
            const int diag =
                m[i - 1][j - 1] + (a[i - 1] == b[j - 1] ? 2 : -1);
            m[i][j] = std::max(diag, std::max(m[i - 1][j] - 1,
                                              m[i][j - 1] - 1));
        }
    }
    return m[n][n];
}

class NwStyle : public ::testing::TestWithParam<int> {};

TEST_P(NwStyle, ScoreMatchesReference)
{
    const uint32_t n = 8;
    Runtime rt(sw_only());
    std::vector<std::string> output;
    rt.on_output = [&output](const std::string& s) {
        output.push_back(s);
    };
    std::string errors;
    ASSERT_TRUE(rt.eval(needleman_wunsch_source(n, GetParam()), &errors))
        << errors;
    rt.run_for_ticks((n + 1) * (n + 1) * 2 + n * n * 2 + 64);
    ASSERT_TRUE(rt.finished());
    ASSERT_FALSE(output.empty());
    const std::string expected =
        "score = " + std::to_string(reference_nw(n)) + "\n";
    EXPECT_EQ(output.back(), expected);
}

INSTANTIATE_TEST_SUITE_P(Styles, NwStyle, ::testing::Values(0, 1, 2));

} // namespace
} // namespace cascade::workloads
