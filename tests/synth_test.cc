/// \file
/// Synthesis + bitstream tests. The load-bearing check is differential:
/// for a suite of modules, drive the reference interpreter and the
/// synthesized levelized netlist with identical random stimulus and
/// require bit-identical outputs every cycle.

#include "fpga/synth.h"

#include <random>

#include <gtest/gtest.h>

#include "fpga/bitstream.h"
#include "sim/interpreter.h"
#include "verilog/parser.h"

namespace cascade::fpga {
namespace {

using namespace verilog;

std::shared_ptr<const ElaboratedModule>
elaborate_src(std::string_view src)
{
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    EXPECT_NE(em, nullptr) << diags.str();
    return std::shared_ptr<const ElaboratedModule>(std::move(em));
}

std::unique_ptr<Netlist>
synth_ok(std::shared_ptr<const ElaboratedModule> em)
{
    Diagnostics diags;
    auto nl = synthesize(*em, &diags);
    EXPECT_NE(nl, nullptr) << diags.str();
    return nl;
}

/// Runs interpreter and bitstream side by side under random inputs.
/// Inputs named "clk" are toggled; all others are randomized each cycle.
void
differential_test(std::string_view src, int cycles, uint64_t seed)
{
    auto em = elaborate_src(src);
    auto nl = synth_ok(em);
    ASSERT_NE(nl, nullptr);
    Bitstream hw(std::shared_ptr<const Netlist>(std::move(nl)));

    sim::ModuleInterpreter sw(em, nullptr);
    sw.run_initials();
    auto settle = [&sw] {
        for (int i = 0; i < 64; ++i) {
            sw.evaluate();
            if (!sw.there_are_updates()) {
                return;
            }
            sw.update();
        }
        FAIL() << "interpreter did not settle";
    };
    settle();
    hw.eval_comb();

    std::mt19937_64 rng(seed);
    const bool has_clk = em->find_net("clk") != nullptr;

    for (int cycle = 0; cycle < cycles; ++cycle) {
        // New random values for all non-clock inputs.
        for (const NetInfo& net : em->nets) {
            if (!net.is_port || net.dir != PortDir::Input ||
                net.name == "clk") {
                continue;
            }
            BitVector v(net.width);
            for (uint32_t w = 0; w < v.num_words(); ++w) {
                v.set_word(w, rng());
            }
            sw.set_input(net.name, v);
            hw.set_input(net.name, v);
        }
        settle();
        hw.eval_comb();
        if (has_clk) {
            sw.set_input("clk", BitVector(1, 1));
            settle();
            hw.set_input("clk", BitVector(1, 1));
            hw.step();
            sw.set_input("clk", BitVector(1, 0));
            settle();
            hw.set_input("clk", BitVector(1, 0));
            hw.step();
        }
        for (const NetInfo& net : em->nets) {
            if (!net.is_port || net.dir != PortDir::Output) {
                continue;
            }
            ASSERT_EQ(sw.get(net.name), hw.output(net.name))
                << "cycle " << cycle << " output " << net.name
                << "\n  sw=" << sw.get(net.name).to_hex_string()
                << "\n  hw=" << hw.output(net.name).to_hex_string();
        }
    }
}

TEST(Synth, CombinationalOperators)
{
    differential_test(R"(
        module M(input wire [7:0] a, input wire [7:0] b,
                 input wire [3:0] sh,
                 output wire [15:0] o1, output wire [7:0] o2,
                 output wire [7:0] o3, output wire o4, output wire o5);
          assign o1 = a * b;
          assign o2 = (a + b) ^ (a & b) | ~(a - b);
          assign o3 = (a << sh) | (b >> sh);
          assign o4 = (a < b) && (a != b) || (&a) ^ (^b);
          assign o5 = (a == b) | (|b);
        endmodule
    )", 200, 1);
}

TEST(Synth, DivisionAndModulo)
{
    differential_test(R"(
        module M(input wire [7:0] a, input wire [7:0] b,
                 output wire [7:0] q, output wire [7:0] r,
                 output wire signed [7:0] sq, output wire signed [7:0] sr);
          wire signed [7:0] sa;
          wire signed [7:0] sb;
          assign sa = a;
          assign sb = b;
          assign q = a / b;
          assign r = a % b;
          assign sq = sa / sb;
          assign sr = sa % sb;
        endmodule
    )", 200, 2);
}

TEST(Synth, SignedComparisonsAndShifts)
{
    differential_test(R"(
        module M(input wire [7:0] a, input wire [7:0] b,
                 input wire [2:0] sh,
                 output wire lt, output wire ge,
                 output wire signed [7:0] sar);
          wire signed [7:0] sa;
          wire signed [7:0] sb;
          assign sa = a;
          assign sb = b;
          assign lt = sa < sb;
          assign ge = sa >= sb;
          assign sar = sa >>> sh;
        endmodule
    )", 200, 3);
}

TEST(Synth, TernaryConcatReplicateSelects)
{
    differential_test(R"(
        module M(input wire [7:0] a, input wire [3:0] i,
                 output wire [15:0] o1, output wire o2,
                 output wire [3:0] o3, output wire [7:0] o4);
          assign o1 = {a, {2{i}}};
          assign o2 = a[i];
          assign o3 = a[6:3];
          assign o4 = (i > 7) ? {a[3:0], a[7:4]} : a;
        endmodule
    )", 200, 4);
}

TEST(Synth, IndexedSelects)
{
    differential_test(R"(
        module M(input wire [31:0] a, input wire [2:0] i,
                 output wire [7:0] up, output wire [7:0] down);
          assign up = a[i*4 +: 8];
          assign down = a[i*4+7 -: 8];
        endmodule
    )", 200, 5);
}

TEST(Synth, CombAlwaysWithCase)
{
    differential_test(R"(
        module M(input wire [1:0] sel, input wire [7:0] a,
                 input wire [7:0] b, output wire [7:0] o);
          reg [7:0] r;
          always @(*)
            case (sel)
              2'd0: r = a;
              2'd1: r = b;
              2'd2: r = a + b;
              default: r = 8'hFF;
            endcase
          assign o = r;
        endmodule
    )", 200, 6);
}

TEST(Synth, SequentialCounter)
{
    differential_test(R"(
        module M(input wire clk, input wire rst, input wire en,
                 output wire [7:0] o);
          reg [7:0] cnt = 5;
          always @(posedge clk)
            if (rst)
              cnt <= 0;
            else if (en)
              cnt <= cnt + 1;
          assign o = cnt;
        endmodule
    )", 100, 7);
}

TEST(Synth, NonblockingSwap)
{
    differential_test(R"(
        module M(input wire clk, output wire [3:0] ao,
                 output wire [3:0] bo);
          reg [3:0] a = 1, b = 2;
          always @(posedge clk) begin
            a <= b;
            b <= a;
          end
          assign ao = a;
          assign bo = b;
        endmodule
    )", 20, 8);
}

TEST(Synth, BlockingThenNonblockingInSeq)
{
    differential_test(R"(
        module M(input wire clk, input wire [3:0] x,
                 output wire [3:0] o);
          reg [3:0] t = 0;
          reg [3:0] r = 0;
          always @(posedge clk) begin
            t = x + 1;
            r <= t ^ x;
          end
          assign o = r;
        endmodule
    )", 100, 9);
}

TEST(Synth, MemoryReadWrite)
{
    differential_test(R"(
        module M(input wire clk, input wire we, input wire [3:0] waddr,
                 input wire [3:0] raddr, input wire [7:0] wdata,
                 output wire [7:0] rdata);
          reg [7:0] mem [0:15];
          always @(posedge clk)
            if (we)
              mem[waddr] <= wdata;
          assign rdata = mem[raddr];
        endmodule
    )", 200, 10);
}

TEST(Synth, SliceTargets)
{
    differential_test(R"(
        module M(input wire clk, input wire [1:0] i, input wire [3:0] v,
                 output wire [15:0] o);
          reg [15:0] r = 0;
          always @(posedge clk) begin
            r[3:0] <= v;
            r[i*4+4 +: 4] <= ~v;
          end
          assign o = r;
        endmodule
    )", 100, 11);
}

TEST(Synth, FunctionInlining)
{
    differential_test(R"(
        module M(input wire [7:0] x, output wire [7:0] y,
                 output wire [15:0] z);
          function [7:0] rol;
            input [7:0] v;
            rol = (v == 8'h80) ? 8'h01 : (v << 1);
          endfunction
          function [15:0] sq;
            input [7:0] v;
            integer i;
            begin
              sq = 0;
              for (i = 0; i < 4; i = i + 1)
                sq = sq + v;
            end
          endfunction
          assign y = rol(x);
          assign z = sq(x);
        endmodule
    )", 200, 12);
}

TEST(Synth, ForLoopUnrolling)
{
    differential_test(R"(
        module M(input wire [31:0] a, output wire [5:0] ones);
          reg [5:0] acc;
          integer i;
          always @(*) begin
            acc = 0;
            for (i = 0; i < 32; i = i + 1)
              acc = acc + a[i];
          end
          assign ones = acc;
        endmodule
    )", 100, 13);
}

TEST(Synth, InitialBlockConstants)
{
    differential_test(R"(
        module M(input wire clk, output wire [7:0] o,
                 output wire [7:0] m0);
          reg [7:0] r = 0;
          reg [7:0] mem [0:3];
          integer i;
          initial begin
            r = 42;
            for (i = 0; i < 4; i = i + 1)
              mem[i] <= i * 3;
          end
          always @(posedge clk) r <= r + 1;
          assign o = r;
          assign m0 = mem[1];
        endmodule
    )", 20, 14);
}

TEST(Synth, WideDatapath)
{
    differential_test(R"(
        module M(input wire [127:0] a, input wire [127:0] b,
                 output wire [127:0] s, output wire [63:0] hi);
          assign s = a + b;
          assign hi = s[127:64] ^ {64{a[0]}};
        endmodule
    )", 100, 15);
}

TEST(Synth, ChainedCombProcesses)
{
    differential_test(R"(
        module M(input wire [7:0] a, output wire [7:0] o);
          wire [7:0] w1;
          wire [7:0] w2;
          // Declared out of dependency order on purpose.
          assign o = w2 + 1;
          assign w2 = w1 ^ 8'h55;
          assign w1 = a << 1;
        endmodule
    )", 100, 16);
}

TEST(Synth, GatedClockDomain)
{
    differential_test(R"(
        module M(input wire clk, input wire en, output wire [3:0] o);
          wire gclk;
          assign gclk = clk & en;
          reg [3:0] cnt = 0;
          always @(posedge gclk) cnt <= cnt + 1;
          assign o = cnt;
        endmodule
    )", 100, 17);
}

TEST(Synth, NegedgeDomain)
{
    differential_test(R"(
        module M(input wire clk, output wire [3:0] o);
          reg [3:0] cnt = 0;
          always @(negedge clk) cnt <= cnt + 1;
          assign o = cnt;
        endmodule
    )", 50, 18);
}

TEST(Synth, RejectsCombinationalCycle)
{
    auto em = elaborate_src(R"(
        module M(output wire o);
          wire a, b;
          assign a = ~b;
          assign b = a;
          assign o = a;
        endmodule
    )");
    Diagnostics diags;
    EXPECT_EQ(synthesize(*em, &diags), nullptr);
    EXPECT_NE(diags.str().find("combinational cycle"), std::string::npos);
}

TEST(Synth, RejectsMultipleDrivers)
{
    auto em = elaborate_src(R"(
        module M(input wire a, output wire o);
          assign o = a;
          assign o = ~a;
        endmodule
    )");
    Diagnostics diags;
    EXPECT_EQ(synthesize(*em, &diags), nullptr);
    EXPECT_NE(diags.str().find("multiple drivers"), std::string::npos);
}

TEST(Synth, RejectsUnwrappedSystemTask)
{
    auto em = elaborate_src(R"(
        module M(input wire clk);
          always @(posedge clk) $display("hi");
        endmodule
    )");
    Diagnostics diags;
    EXPECT_EQ(synthesize(*em, &diags), nullptr);
}

TEST(Synth, HashConsingSharesNodes)
{
    auto em = elaborate_src(R"(
        module M(input wire [7:0] a, input wire [7:0] b,
                 output wire [7:0] x, output wire [7:0] y);
          assign x = (a + b) ^ 8'h01;
          assign y = (a + b) ^ 8'h02;
        endmodule
    )");
    auto nl = synth_ok(em);
    // Count Add nodes: the shared a+b must appear exactly once.
    int adds = 0;
    for (const Node& n : nl->nodes) {
        if (n.op == Op::Add) {
            ++adds;
        }
    }
    EXPECT_EQ(adds, 1);
}

TEST(Synth, ConstantFolding)
{
    auto em = elaborate_src(R"(
        module M(output wire [7:0] o);
          localparam A = 3;
          assign o = (A * 5) + (2 ** 3) - 1;
        endmodule
    )");
    auto nl = synth_ok(em);
    Bitstream hw(std::shared_ptr<const Netlist>(std::move(nl)));
    hw.eval_comb();
    EXPECT_EQ(hw.output("o").to_uint64(), 22u);
}

} // namespace
} // namespace cascade::fpga
