/// \file
/// Unit tests for the Verilog parser, including print→parse round trips.

#include "verilog/parser.h"

#include <gtest/gtest.h>

#include "verilog/printer.h"

namespace cascade::verilog {
namespace {

SourceUnit
parse_ok(std::string_view src)
{
    Diagnostics diags;
    SourceUnit unit = parse(src, &diags);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    return unit;
}

void
expect_parse_error(std::string_view src)
{
    Diagnostics diags;
    parse(src, &diags);
    EXPECT_TRUE(diags.has_errors()) << "input unexpectedly parsed: " << src;
}

const ModuleDecl&
single_module(const SourceUnit& unit)
{
    EXPECT_EQ(unit.modules.size(), 1u);
    return *unit.modules.front();
}

TEST(Parser, EmptyModule)
{
    auto unit = parse_ok("module M(); endmodule");
    const auto& m = single_module(unit);
    EXPECT_EQ(m.name, "M");
    EXPECT_TRUE(m.ports.empty());
    EXPECT_TRUE(m.items.empty());
}

TEST(Parser, ModuleWithoutPortList)
{
    auto unit = parse_ok("module M; endmodule");
    EXPECT_EQ(single_module(unit).name, "M");
}

TEST(Parser, AnsiPorts)
{
    auto unit = parse_ok(R"(
        module M(
            input wire clk,
            input wire [3:0] pad,
            output reg [7:0] led,
            inout wire io
        );
        endmodule
    )");
    const auto& m = single_module(unit);
    ASSERT_EQ(m.ports.size(), 4u);
    EXPECT_EQ(m.ports[0].dir, PortDir::Input);
    EXPECT_EQ(m.ports[0].name, "clk");
    EXPECT_FALSE(m.ports[0].range.valid());
    EXPECT_EQ(m.ports[1].name, "pad");
    EXPECT_TRUE(m.ports[1].range.valid());
    EXPECT_EQ(m.ports[2].dir, PortDir::Output);
    EXPECT_TRUE(m.ports[2].is_reg);
    EXPECT_EQ(m.ports[3].dir, PortDir::Inout);
}

TEST(Parser, PortDirectionPersistsAcrossCommas)
{
    auto unit = parse_ok("module M(input wire a, b, output wire c); endmodule");
    const auto& m = single_module(unit);
    ASSERT_EQ(m.ports.size(), 3u);
    EXPECT_EQ(m.ports[1].dir, PortDir::Input);
    EXPECT_EQ(m.ports[2].dir, PortDir::Output);
}

TEST(Parser, HeaderParameters)
{
    auto unit = parse_ok(
        "module M#(parameter N = 8, parameter [3:0] W = 4)(); endmodule");
    const auto& m = single_module(unit);
    ASSERT_EQ(m.header_params.size(), 2u);
    const auto& p0 = static_cast<const ParamDecl&>(*m.header_params[0]);
    EXPECT_EQ(p0.name, "N");
    EXPECT_FALSE(p0.local);
}

TEST(Parser, NetDeclarations)
{
    auto unit = parse_ok(R"(
        module M();
          wire w;
          reg [7:0] r = 1, s;
          reg [7:0] mem [0:255];
          integer i;
          wire signed [15:0] sw;
        endmodule
    )");
    const auto& m = single_module(unit);
    ASSERT_EQ(m.items.size(), 5u);
    const auto& r = static_cast<const NetDecl&>(*m.items[1]);
    EXPECT_TRUE(r.is_reg);
    ASSERT_EQ(r.decls.size(), 2u);
    EXPECT_NE(r.decls[0].init, nullptr);
    EXPECT_EQ(r.decls[1].init, nullptr);
    const auto& mem = static_cast<const NetDecl&>(*m.items[2]);
    EXPECT_TRUE(mem.decls[0].array_dim.valid());
    const auto& i = static_cast<const NetDecl&>(*m.items[3]);
    EXPECT_TRUE(i.is_reg);
    EXPECT_TRUE(i.is_signed);
    EXPECT_TRUE(i.range.valid());
    const auto& sw = static_cast<const NetDecl&>(*m.items[4]);
    EXPECT_TRUE(sw.is_signed);
    EXPECT_FALSE(sw.is_reg);
}

TEST(Parser, RunningExample)
{
    // Figure 1 from the paper, nearly verbatim.
    auto unit = parse_ok(R"(
        module Rol(
          input wire [7:0] x,
          output wire [7:0] y
        );
          assign y = (x == 8'h80) ? 1 : (x<<1);
        endmodule

        module Main(
          input wire clk,
          input wire [3:0] pad,
          output wire [7:0] led
        );
          reg [7:0] cnt = 1;
          Rol r(.x(cnt));
          always @(posedge clk)
            if (pad == 0)
              cnt <= r.y;
            else begin
              $display(cnt);
              $finish;
            end
          assign led = cnt;
        endmodule
    )");
    EXPECT_EQ(unit.modules.size(), 2u);
    const auto& main = *unit.modules[1];
    ASSERT_EQ(main.items.size(), 4u);
    EXPECT_EQ(main.items[0]->kind, ItemKind::NetDecl);
    EXPECT_EQ(main.items[1]->kind, ItemKind::Instantiation);
    EXPECT_EQ(main.items[2]->kind, ItemKind::Always);
    EXPECT_EQ(main.items[3]->kind, ItemKind::ContinuousAssign);

    const auto& always = static_cast<const AlwaysBlock&>(*main.items[2]);
    ASSERT_EQ(always.sensitivity.size(), 1u);
    EXPECT_EQ(always.sensitivity[0].edge, EdgeKind::Pos);
    const auto& ifs = static_cast<const IfStmt&>(*always.body);
    EXPECT_EQ(ifs.then_stmt->kind, StmtKind::NonblockingAssign);
    const auto& nb =
        static_cast<const NonblockingAssignStmt&>(*ifs.then_stmt);
    const auto& rhs = static_cast<const IdentifierExpr&>(*nb.rhs);
    EXPECT_EQ(rhs.full_name(), "r.y");
}

TEST(Parser, InstantiationForms)
{
    auto unit = parse_ok(R"(
        module M();
          Pad#(4) pad();
          Rol r(.x(cnt), .y());
          Adder a(x, y, z);
          Fifo#(.DEPTH(16), .WIDTH(8)) f(.clk(clk));
        endmodule
    )");
    const auto& m = single_module(unit);
    const auto& pad = static_cast<const Instantiation&>(*m.items[0]);
    EXPECT_EQ(pad.module_name, "Pad");
    ASSERT_EQ(pad.parameters.size(), 1u);
    EXPECT_TRUE(pad.parameters[0].name.empty());
    const auto& r = static_cast<const Instantiation&>(*m.items[1]);
    ASSERT_EQ(r.ports.size(), 2u);
    EXPECT_EQ(r.ports[0].name, "x");
    EXPECT_EQ(r.ports[1].expr, nullptr); // unconnected .y()
    const auto& a = static_cast<const Instantiation&>(*m.items[2]);
    EXPECT_EQ(a.ports.size(), 3u);
    EXPECT_TRUE(a.ports[0].name.empty());
    const auto& f = static_cast<const Instantiation&>(*m.items[3]);
    ASSERT_EQ(f.parameters.size(), 2u);
    EXPECT_EQ(f.parameters[0].name, "DEPTH");
}

TEST(Parser, OperatorPrecedence)
{
    auto unit = parse_ok("module M(); assign x = a + b * c; endmodule");
    const auto& m = single_module(unit);
    const auto& a = static_cast<const ContinuousAssign&>(*m.items[0]);
    const auto& add = static_cast<const BinaryExpr&>(*a.rhs);
    EXPECT_EQ(add.op, BinaryOp::Add);
    const auto& mul = static_cast<const BinaryExpr&>(*add.rhs);
    EXPECT_EQ(mul.op, BinaryOp::Mul);
}

TEST(Parser, PowerIsRightAssociative)
{
    auto unit = parse_ok("module M(); assign x = a ** b ** c; endmodule");
    const auto& m = single_module(unit);
    const auto& a = static_cast<const ContinuousAssign&>(*m.items[0]);
    const auto& outer = static_cast<const BinaryExpr&>(*a.rhs);
    EXPECT_EQ(outer.op, BinaryOp::Pow);
    EXPECT_EQ(outer.rhs->kind, ExprKind::Binary);
    EXPECT_EQ(outer.lhs->kind, ExprKind::Identifier);
}

TEST(Parser, TernaryNests)
{
    auto unit =
        parse_ok("module M(); assign x = a ? b : c ? d : e; endmodule");
    const auto& m = single_module(unit);
    const auto& a = static_cast<const ContinuousAssign&>(*m.items[0]);
    const auto& t = static_cast<const TernaryExpr&>(*a.rhs);
    EXPECT_EQ(t.else_expr->kind, ExprKind::Ternary);
}

TEST(Parser, ConcatAndReplicate)
{
    auto unit = parse_ok(
        "module M(); assign x = {a, 2'b01, {4{b}}, {2{c, d}}}; endmodule");
    const auto& m = single_module(unit);
    const auto& a = static_cast<const ContinuousAssign&>(*m.items[0]);
    const auto& cat = static_cast<const ConcatExpr&>(*a.rhs);
    ASSERT_EQ(cat.elements.size(), 4u);
    EXPECT_EQ(cat.elements[2]->kind, ExprKind::Replicate);
    const auto& rep2 = static_cast<const ReplicateExpr&>(*cat.elements[3]);
    EXPECT_EQ(rep2.body->kind, ExprKind::Concat);
}

TEST(Parser, Selects)
{
    auto unit = parse_ok(R"(
        module M();
          assign a = v[3];
          assign b = v[7:4];
          assign c = v[i +: 8];
          assign d = v[i -: 8];
          assign e = mem[addr][3];
        endmodule
    )");
    const auto& m = single_module(unit);
    EXPECT_EQ(static_cast<const ContinuousAssign&>(*m.items[0]).rhs->kind,
              ExprKind::Index);
    EXPECT_EQ(static_cast<const ContinuousAssign&>(*m.items[1]).rhs->kind,
              ExprKind::RangeSelect);
    const auto& c = static_cast<const ContinuousAssign&>(*m.items[2]);
    EXPECT_TRUE(static_cast<const IndexedSelectExpr&>(*c.rhs).up);
    const auto& d = static_cast<const ContinuousAssign&>(*m.items[3]);
    EXPECT_FALSE(static_cast<const IndexedSelectExpr&>(*d.rhs).up);
    const auto& e = static_cast<const ContinuousAssign&>(*m.items[4]);
    EXPECT_EQ(e.rhs->kind, ExprKind::Index);
    EXPECT_EQ(static_cast<const IndexExpr&>(*e.rhs).base->kind,
              ExprKind::Index);
}

TEST(Parser, CaseStatement)
{
    auto unit = parse_ok(R"(
        module M();
          always @(*)
            case (sel)
              2'b00: y = a;
              2'b01, 2'b10: y = b;
              default: y = c;
            endcase
        endmodule
    )");
    const auto& m = single_module(unit);
    const auto& always = static_cast<const AlwaysBlock&>(*m.items[0]);
    const auto& cs = static_cast<const CaseStmt&>(*always.body);
    ASSERT_EQ(cs.items.size(), 3u);
    EXPECT_EQ(cs.items[1].labels.size(), 2u);
    EXPECT_TRUE(cs.items[2].labels.empty());
}

TEST(Parser, LoopStatements)
{
    auto unit = parse_ok(R"(
        module M();
          initial begin
            for (i = 0; i < 8; i = i + 1)
              v = v + i;
            while (v > 0)
              v = v - 1;
            repeat (4)
              v = v + 2;
          end
        endmodule
    )");
    const auto& m = single_module(unit);
    const auto& init = static_cast<const InitialBlock&>(*m.items[0]);
    const auto& blk = static_cast<const BlockStmt&>(*init.body);
    ASSERT_EQ(blk.stmts.size(), 3u);
    EXPECT_EQ(blk.stmts[0]->kind, StmtKind::For);
    EXPECT_EQ(blk.stmts[1]->kind, StmtKind::While);
    EXPECT_EQ(blk.stmts[2]->kind, StmtKind::Repeat);
}

TEST(Parser, SensitivityListForms)
{
    auto unit = parse_ok(R"(
        module M();
          always @* x = a;
          always @(*) x = a;
          always @(a or b) x = a;
          always @(a, b) x = a;
          always @(posedge clk or negedge rst) x <= a;
        endmodule
    )");
    const auto& m = single_module(unit);
    EXPECT_TRUE(static_cast<const AlwaysBlock&>(*m.items[0]).star);
    EXPECT_TRUE(static_cast<const AlwaysBlock&>(*m.items[1]).star);
    EXPECT_EQ(static_cast<const AlwaysBlock&>(*m.items[2]).sensitivity.size(),
              2u);
    EXPECT_EQ(static_cast<const AlwaysBlock&>(*m.items[3]).sensitivity.size(),
              2u);
    const auto& a4 = static_cast<const AlwaysBlock&>(*m.items[4]);
    EXPECT_EQ(a4.sensitivity[0].edge, EdgeKind::Pos);
    EXPECT_EQ(a4.sensitivity[1].edge, EdgeKind::Neg);
}

TEST(Parser, SystemTasksAndCalls)
{
    auto unit = parse_ok(R"(
        module M();
          initial begin
            $display("cnt = %d", cnt);
            $write("x");
            $finish;
          end
          assign t = $time;
          assign s = $signed(x) >>> 2;
        endmodule
    )");
    const auto& m = single_module(unit);
    const auto& init = static_cast<const InitialBlock&>(*m.items[0]);
    const auto& blk = static_cast<const BlockStmt&>(*init.body);
    const auto& disp = static_cast<const SystemTaskStmt&>(*blk.stmts[0]);
    EXPECT_EQ(disp.name, "$display");
    ASSERT_EQ(disp.args.size(), 2u);
    EXPECT_EQ(disp.args[0]->kind, ExprKind::String);
    const auto& fin = static_cast<const SystemTaskStmt&>(*blk.stmts[2]);
    EXPECT_TRUE(fin.args.empty());
    const auto& t = static_cast<const ContinuousAssign&>(*m.items[1]);
    EXPECT_EQ(t.rhs->kind, ExprKind::SystemCall);
}

TEST(Parser, FunctionDecl)
{
    auto unit = parse_ok(R"(
        module M();
          function [7:0] rol;
            input [7:0] x;
            rol = (x == 8'h80) ? 8'h01 : (x << 1);
          endfunction
          assign y = rol(v);
        endmodule
    )");
    const auto& m = single_module(unit);
    const auto& f = static_cast<const FunctionDecl&>(*m.items[0]);
    EXPECT_EQ(f.name, "rol");
    ASSERT_EQ(f.decls.size(), 1u);
    EXPECT_TRUE(f.decl_is_input[0]);
    const auto& a = static_cast<const ContinuousAssign&>(*m.items[1]);
    EXPECT_EQ(a.rhs->kind, ExprKind::Call);
}

TEST(Parser, RootItemsForRepl)
{
    auto unit = parse_ok(R"(
        reg [7:0] cnt = 1;
        Rol r(.x(cnt));
        always @(posedge clk.val) cnt <= r.y;
        assign led.val = cnt;
        $display(cnt);
    )");
    EXPECT_TRUE(unit.modules.empty());
    ASSERT_EQ(unit.root_items.size(), 5u);
    EXPECT_EQ(unit.root_items[0]->kind, ItemKind::NetDecl);
    EXPECT_EQ(unit.root_items[1]->kind, ItemKind::Instantiation);
    EXPECT_EQ(unit.root_items[2]->kind, ItemKind::Always);
    EXPECT_EQ(unit.root_items[3]->kind, ItemKind::ContinuousAssign);
    // Bare system task becomes an initial block.
    EXPECT_EQ(unit.root_items[4]->kind, ItemKind::Initial);
}

TEST(Parser, ConcatLvalue)
{
    auto unit = parse_ok(
        "module M(); always @(*) {c, s} = a + b; endmodule");
    const auto& m = single_module(unit);
    const auto& always = static_cast<const AlwaysBlock&>(*m.items[0]);
    const auto& assign =
        static_cast<const BlockingAssignStmt&>(*always.body);
    EXPECT_EQ(assign.lhs->kind, ExprKind::Concat);
}

TEST(Parser, LocalparamAndParameterItems)
{
    auto unit = parse_ok(R"(
        module M();
          parameter N = 4;
          localparam W = N * 2;
        endmodule
    )");
    const auto& m = single_module(unit);
    EXPECT_FALSE(static_cast<const ParamDecl&>(*m.items[0]).local);
    EXPECT_TRUE(static_cast<const ParamDecl&>(*m.items[1]).local);
}

TEST(Parser, Errors)
{
    expect_parse_error("module; endmodule");
    expect_parse_error("module M( endmodule");
    expect_parse_error("module M(); assign = 4; endmodule");
    expect_parse_error("module M(); always @(posedge) x <= 1; endmodule");
    expect_parse_error("module M(); case endcase endmodule");
    expect_parse_error("module M(); wire w = ; endmodule");
    expect_parse_error("module M(); x <= ; endmodule");
}

TEST(Parser, RecoversAfterError)
{
    Diagnostics diags;
    SourceUnit unit = parse(R"(
        module Bad(); assign = 1; endmodule
        module Good(); wire w; endmodule
    )", &diags);
    EXPECT_TRUE(diags.has_errors());
    // The second module still parses.
    bool found_good = false;
    for (const auto& m : unit.modules) {
        if (m->name == "Good") {
            found_good = true;
        }
    }
    EXPECT_TRUE(found_good);
}

// Round-trip: print(parse(x)) must itself parse to an equal-printing AST.
class ParserRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTrip, PrintParsePrintIsStable)
{
    Diagnostics diags;
    SourceUnit unit = parse(GetParam(), &diags);
    ASSERT_FALSE(diags.has_errors()) << diags.str();
    const std::string printed = print(unit);
    Diagnostics diags2;
    SourceUnit unit2 = parse(printed, &diags2);
    ASSERT_FALSE(diags2.has_errors())
        << diags2.str() << "\nprinted source:\n" << printed;
    EXPECT_EQ(printed, print(unit2)) << "printed source:\n" << printed;
}

INSTANTIATE_TEST_SUITE_P(
    Sources, ParserRoundTrip,
    ::testing::Values(
        "module M(); endmodule",
        "module M(input wire [7:0] a, output reg b); endmodule",
        "module M#(parameter N = 8)(); wire [N-1:0] w; endmodule",
        "module M(); assign y = (x == 8'h80) ? 1 : (x<<1); endmodule",
        "module M(); reg [7:0] m [0:255]; always @(posedge c) m[a] <= d; endmodule",
        "module M(); always @(*) case (s) 0: y = a; default: y = b; endcase endmodule",
        "module M(); initial begin for (i = 0; i < 4; i = i + 1) x = x + i; end endmodule",
        "module M(); assign x = {2{a, b}}; assign y = v[3 +: 4]; endmodule",
        "module M(); function [3:0] f; input [3:0] a; f = a + 1; endfunction assign q = f(2); endmodule",
        "module M(); initial $display(\"v=%d\", v); endmodule",
        "module M(); Sub#(.N(4)) s(.a(x), .b()); endmodule",
        "module M(); wire signed [15:0] sw; assign sw = $signed(a) >>> 3; endmodule",
        "reg [7:0] cnt = 1; always @(posedge clk.val) cnt <= cnt + 1;"));

} // namespace
} // namespace cascade::verilog
