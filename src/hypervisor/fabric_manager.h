/// \file
/// The fabric hypervisor: one shared FpgaDevice hosting multiple tenant
/// Runtimes via spatial partitioning of the LE grid into slots. Each
/// tenant carries optional LE/BRAM quotas; admission control places a
/// finished compile into a contiguous free LE range (first fit), and
/// under capacity pressure the least-recently-active resident tenant is
/// flagged for eviction back to its software engines — safe at any
/// scheduler iteration precisely because of the Cascade state-transfer
/// ABI (get_state()/set_state() make a running program relocatable, the
/// primitive SYNERGY-style FPGA virtualization builds on). Eviction is
/// cooperative: the manager only raises a flag; the owning Runtime
/// observes it at its next inter-timestep window and relocates itself, so
/// no tenant's engine state is ever touched from another thread.
/// Open-loop ticking of resident tenants is kept fair by capping each
/// tenant's batch grant to an equal share of the fabric.

#ifndef CASCADE_HYPERVISOR_FABRIC_MANAGER_H
#define CASCADE_HYPERVISOR_FABRIC_MANAGER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "fpga/compile.h"
#include "telemetry/sync.h"
#include "telemetry/telemetry.h"

namespace cascade::hypervisor {

/// The outcome of one admission request. On success \p bitstream is the
/// programmed fabric slice (the tenant's Runtime adopts it like an
/// exclusive device's bitstream) and \p le_start/le_count describe the
/// slot. On denial \p bitstream is null: \p retryable distinguishes
/// transient capacity pressure (an eviction was requested; ask again when
/// the fabric changes) from hard failures (over quota, does not fit the
/// device, failed compile).
struct Admission {
    std::unique_ptr<fpga::Bitstream> bitstream;
    std::string error;
    bool retryable = false;
    double clock_mhz = 0;
    uint64_t le_start = 0;
    uint64_t le_count = 0;
};

/// One row of the slot map (the REPL's :fabric rendering and tests).
struct SlotInfo {
    uint64_t tenant = 0;
    std::string name;
    bool resident = false;
    bool evict_requested = false;
    uint64_t le_start = 0;
    uint64_t le_count = 0;
    uint64_t bram_bits = 0;
    uint64_t le_quota = 0;   ///< 0 = unlimited (device capacity applies)
    uint64_t bram_quota = 0; ///< 0 = unlimited
    uint64_t evictions = 0;  ///< completed evictions of this tenant
    uint64_t ticks_granted = 0; ///< open-loop ticks granted while resident
    uint64_t ticks_done = 0; ///< ticks actually executed (note_ticks)
    double active_s = 0;     ///< wall seconds since the tenant registered
};

class FabricManager {
  public:
    explicit FabricManager(fpga::FpgaDevice device = fpga::FpgaDevice());

    FabricManager(const FabricManager&) = delete;
    FabricManager& operator=(const FabricManager&) = delete;

    /// @{ Tenant registry. A Runtime in shared mode registers itself at
    /// construction and removes itself at destruction (which releases any
    /// residency). An empty \p name becomes "tenant-<id>".
    uint64_t add_tenant(const std::string& name, uint64_t le_quota = 0,
                        uint64_t bram_quota = 0);
    void remove_tenant(uint64_t tenant);
    /// @}

    /// Admission control: quota check, then first-fit allocation of a
    /// contiguous LE range and BRAM budget. When the design fits the
    /// device but no slot is free, the least-recently-active resident
    /// tenant (never the requester) is flagged for eviction and the
    /// request is denied retryable — the caller parks the outcome and
    /// retries after the fabric changes.
    Admission request_residency(uint64_t tenant,
                                const fpga::CompileResult& result);

    /// Releases \p tenant's slot (no-op if not resident). Completes a
    /// pending eviction: the eviction counters only move when the slot is
    /// actually vacated.
    void release_residency(uint64_t tenant);

    /// Flags \p tenant for eviction (tests and external policy); the
    /// owning Runtime self-evicts at its next window.
    void request_eviction(uint64_t tenant);
    bool eviction_pending(uint64_t tenant) const;

    /// Fair round-robin ticking: a resident tenant's open-loop batch is
    /// capped to an equal share of the fabric so control interleaves
    /// among tenants instead of one tenant free-running. Also refreshes
    /// the tenant's activity stamp (the eviction-victim LRU order).
    uint64_t grant_open_loop(uint64_t tenant, uint64_t requested);

    /// Records \p ticks open-loop ticks actually executed by \p tenant
    /// (the Runtime reports back after each batch; grant_open_loop only
    /// knows what was *offered*). Feeds the fleet view's ticks/s.
    void note_ticks(uint64_t tenant, uint64_t ticks);

    /// @{ Capacity-change notification. The epoch bumps on every
    /// admission, release, or tenant removal; parked admissions re-try
    /// only when it moved (lock-free read), and wait_for_change() blocks
    /// a waiter until it moves (or the timeout expires).
    uint64_t capacity_epoch() const
    {
        return capacity_epoch_.load(std::memory_order_acquire);
    }
    void wait_for_change(double timeout_s);
    /// @}

    /// @{ Introspection.
    std::vector<SlotInfo> slot_map() const; ///< sorted by tenant id
    /// The REPL's :fabric rendering of the slot map.
    std::string slot_map_table() const;
    /// The REPL's :top rendering: one row per tenant with live ticks/s,
    /// resident/evicted state, and wait-time share (each tenant's slice
    /// of the fleet's total blocked time, from the SyncRegistry).
    std::string fleet_table() const;
    const fpga::FpgaDevice& device() const { return device_; }
    size_t tenant_count() const;
    size_t resident_count() const;
    /// @}

  private:
    struct Tenant {
        std::string name;
        uint64_t le_quota = 0;
        uint64_t bram_quota = 0;
        bool resident = false;
        bool evict_requested = false;
        uint64_t le_start = 0;
        uint64_t le_count = 0;
        uint64_t bram_bits = 0;
        uint64_t last_active = 0; ///< logical activity stamp (LRU order)
        uint64_t evictions = 0;
        uint64_t ticks_granted = 0;
        uint64_t ticks_done = 0;
        std::chrono::steady_clock::time_point registered_at;
    };

    size_t resident_count_locked() const;
    /// First-fit contiguous free LE range of at least \p les elements;
    /// returns false when no gap is large enough.
    bool find_slot_locked(uint64_t les, uint64_t* start) const;
    uint64_t free_bram_locked() const;
    void bump_capacity_epoch_locked();

    const fpga::FpgaDevice device_;

    mutable telemetry::Mutex mutex_{"fabric.slots"};
    telemetry::CondVar change_cv_{"fabric.change_cv"};
    std::map<uint64_t, Tenant> tenants_;
    /// Tenants parked on a retryable denial. While any tenant is waiting,
    /// non-waiters are denied admission even into free capacity: without
    /// this, an evicted tenant whose recompile hits the bitstream cache
    /// re-admits itself in the same scheduler window and starves the
    /// waiter forever.
    std::set<uint64_t> waiters_;
    uint64_t next_tenant_ = 0;
    uint64_t activity_clock_ = 0;
    std::atomic<uint64_t> capacity_epoch_{0};

    telemetry::Gauge* tenants_gauge_ = nullptr;
    telemetry::Gauge* resident_gauge_ = nullptr;
    telemetry::Counter* evictions_ = nullptr;
    telemetry::Counter* admissions_ = nullptr;
    telemetry::Counter* denials_ = nullptr;
};

} // namespace cascade::hypervisor

#endif // CASCADE_HYPERVISOR_FABRIC_MANAGER_H
