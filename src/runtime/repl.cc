#include "runtime/repl.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <regex>
#include <sstream>

#include "common/check.h"
#include "runtime/replay.h"
#include "telemetry/journal.h"
#include "telemetry/sync.h"
#include "telemetry/trace.h"

namespace cascade::runtime {

Repl::Repl(Runtime* runtime, std::ostream* out)
    : runtime_(runtime), out_(out)
{
    CASCADE_CHECK(runtime != nullptr);
    runtime_->on_output = [this](const std::string& text) {
        if (out_ != nullptr) {
            *out_ << text;
        }
    };
}

const std::string&
Repl::prompt() const
{
    static const std::string p = "CASCADE >>> ";
    return p;
}

bool
Repl::buffer_complete() const
{
    // Count module/endmodule nesting and require a terminated final item.
    // This is a line-accumulation heuristic, not a parse: the parser is
    // the authority once we submit.
    int depth = 0;
    std::string token;
    bool last_semi_or_end = false;
    for (size_t i = 0; i <= buffer_.size(); ++i) {
        const char c = i < buffer_.size() ? buffer_[i] : ' ';
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '$') {
            token += c;
            continue;
        }
        if (token == "module" || token == "begin" || token == "case" ||
            token == "casez" || token == "casex" || token == "function") {
            ++depth;
        } else if (token == "endmodule" || token == "end" ||
                   token == "endcase" || token == "endfunction") {
            --depth;
            last_semi_or_end = true;
        } else if (!token.empty()) {
            last_semi_or_end = false;
        }
        token.clear();
        if (c == ';') {
            last_semi_or_end = true;
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            last_semi_or_end = false;
        }
    }
    return depth <= 0 && last_semi_or_end;
}

bool
Repl::run_meta_command(const std::string& line)
{
    std::istringstream words(line);
    std::string cmd;
    std::string arg;
    std::string arg2;
    std::string arg3;
    words >> cmd >> arg >> arg2 >> arg3;
    if (cmd == ":stats" && arg == "json") {
        if (out_ != nullptr) {
            *out_ << runtime_->stats_json() << "\n";
        }
    } else if (cmd == ":stats" && arg == "reset") {
        runtime_->reset_stats();
        if (out_ != nullptr) {
            *out_ << "stats reset (registries, sync sites, time series, "
                     "SLO windows)\n";
        }
    } else if (cmd == ":stats") {
        if (out_ != nullptr) {
            *out_ << runtime_->stats_table();
        }
    } else if (cmd == ":profile" && arg == "json") {
        if (out_ != nullptr) {
            *out_ << runtime_->profile_json() << "\n";
        }
    } else if (cmd == ":profile" && (arg == "on" || arg == "off")) {
        runtime_->set_profiling(arg == "on");
        if (out_ != nullptr) {
            *out_ << "profiling " << arg
                  << (arg == "on"
                          ? " (interpreter timing + fabric activity)\n"
                          : " (trigger counts remain collected)\n");
        }
    } else if (cmd == ":profile" && arg == "flame") {
        if (arg2.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :profile flame <file>\n";
            }
        } else {
            std::string err;
            if (runtime_->write_flamegraph(arg2, &err)) {
                if (out_ != nullptr) {
                    *out_ << "collapsed stacks written to " << arg2
                          << " (feed to flamegraph.pl or speedscope)\n";
                }
            } else if (out_ != nullptr) {
                *out_ << "cannot write flamegraph: " << err << "\n";
            }
        }
    } else if (cmd == ":profile") {
        if (out_ != nullptr) {
            *out_ << runtime_->profile_table();
        }
    } else if (cmd == ":fabric") {
        if (out_ != nullptr) {
            *out_ << runtime_->fabric_table();
        }
    } else if (cmd == ":top") {
        if (out_ != nullptr) {
            *out_ << runtime_->top_table();
        }
    } else if (cmd == ":requests" && arg == "json") {
        if (out_ != nullptr) {
            *out_ << runtime_->requests_json();
        }
    } else if (cmd == ":requests") {
        if (out_ != nullptr) {
            *out_ << runtime_->requests_table();
        }
    } else if (cmd == ":why") {
        char* end = nullptr;
        const unsigned long long id =
            std::strtoull(arg.c_str(), &end, 10);
        if (arg.empty() || end == nullptr || *end != '\0') {
            if (out_ != nullptr) {
                *out_ << "usage: :why <request id> (see :requests)\n";
            }
        } else if (out_ != nullptr) {
            *out_ << runtime_->request_why(id);
        }
    } else if (cmd == ":contention" && arg == "json") {
        if (out_ != nullptr) {
            *out_ << telemetry::SyncRegistry::global().contention_json()
                  << "\n";
        }
    } else if (cmd == ":contention" && arg == "reset") {
        telemetry::SyncRegistry::global().reset();
        if (out_ != nullptr) {
            *out_ << "contention stats reset\n";
        }
    } else if (cmd == ":contention") {
        if (out_ != nullptr) {
            *out_ << telemetry::SyncRegistry::global().contention_table();
        }
    } else if (cmd == ":monitor" && arg == "off") {
        if (runtime_->monitoring()) {
            runtime_->stop_monitor();
            if (out_ != nullptr) {
                *out_ << "monitor stopped\n";
            }
        } else if (out_ != nullptr) {
            *out_ << "monitor is not running\n";
        }
    } else if (cmd == ":monitor") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                if (runtime_->monitoring()) {
                    *out_ << "monitoring on 127.0.0.1:"
                          << runtime_->monitor_port()
                          << " (/metrics /healthz /slo /timeseries "
                             "/debug /events /requests)\n";
                } else {
                    *out_ << "usage: :monitor <port|off>\n";
                }
            }
        } else {
            char* end = nullptr;
            const long port = std::strtol(arg.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || port < 0 ||
                port > 65535) {
                if (out_ != nullptr) {
                    *out_ << "usage: :monitor <port|off>\n";
                }
            } else {
                std::string err;
                if (runtime_->start_monitor(
                        static_cast<uint16_t>(port), &err)) {
                    if (out_ != nullptr) {
                        *out_ << "monitoring on 127.0.0.1:"
                              << runtime_->monitor_port()
                              << " (/metrics /healthz /slo /timeseries "
                                 "/debug /events /requests)\n";
                    }
                } else if (out_ != nullptr) {
                    *out_ << "cannot start monitor: " << err << "\n";
                }
            }
        }
    } else if (cmd == ":slo" && arg == "json") {
        if (out_ != nullptr) {
            *out_ << runtime_->slo_json() << "\n";
        }
    } else if (cmd == ":slo") {
        if (out_ != nullptr) {
            *out_ << runtime_->slo_table();
        }
    } else if (cmd == ":trace") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :trace <file>\n";
            }
        } else if (telemetry::Tracer::global().write_chrome_json(arg)) {
            if (out_ != nullptr) {
                *out_ << "trace written to " << arg
                      << " (load in chrome://tracing or Perfetto)\n";
            }
        } else if (out_ != nullptr) {
            *out_ << "cannot write " << arg << "\n";
        }
    } else if (cmd == ":probe") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :probe <signal>\n";
            }
        } else {
            std::string err;
            if (runtime_->add_probe(arg, &err)) {
                if (out_ != nullptr) {
                    *out_ << "probing " << arg << "\n";
                }
            } else if (out_ != nullptr) {
                *out_ << "cannot probe " << arg << ": " << err << "\n";
            }
        }
    } else if (cmd == ":unprobe") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :unprobe <signal>\n";
            }
        } else if (runtime_->remove_probe(arg)) {
            if (out_ != nullptr) {
                *out_ << "unprobed " << arg << "\n";
            }
        } else if (out_ != nullptr) {
            *out_ << "no probe on " << arg << "\n";
        }
    } else if (cmd == ":vcd") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :vcd <file>\n";
            }
        } else {
            std::string err;
            if (runtime_->vcd_open(arg, &err)) {
                if (out_ != nullptr) {
                    *out_ << "vcd capture to " << arg
                          << " (probed signals; all if none probed)\n";
                }
            } else if (out_ != nullptr) {
                *out_ << "cannot open vcd: " << err << "\n";
            }
        }
    } else if (cmd == ":record") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                if (runtime_->recording()) {
                    *out_ << "recording to " << runtime_->journal().path()
                          << "\n";
                } else {
                    *out_ << "not recording (usage: :record <file>, "
                             ":record stop)\n";
                }
            }
        } else if (arg == "stop") {
            if (runtime_->recording()) {
                const std::string path = runtime_->journal().path();
                runtime_->stop_recording();
                if (out_ != nullptr) {
                    *out_ << "recording stopped (" << path << ")\n";
                }
            } else if (out_ != nullptr) {
                *out_ << "not recording\n";
            }
        } else {
            std::string err;
            if (runtime_->start_recording(arg, &err)) {
                if (out_ != nullptr) {
                    *out_ << "recording session to " << arg
                          << " (replay with :replay or --replay)\n";
                }
            } else if (out_ != nullptr) {
                *out_ << "cannot record: " << err << "\n";
            }
        }
    } else if (cmd == ":replay") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :replay <file>   (re-executes a recorded "
                         "journal in a fresh runtime and reports the "
                         "first divergence, if any)\n";
            }
        } else {
            const ReplayReport report = replay_journal(arg);
            if (out_ != nullptr) {
                *out_ << report.summary() << "\n";
            }
        }
    } else if (cmd == ":break") {
        if (arg.empty() || arg2.empty() || arg3.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :break <signal> <op> <value>   (op: == != "
                         "< > <= >=; value: unsigned decimal)\n";
            }
        } else {
            std::string err;
            const uint64_t id = runtime_->debug_break(arg, arg2, arg3, &err);
            if (id != 0) {
                if (out_ != nullptr) {
                    *out_ << "breakpoint #" << id << " armed: " << arg
                          << " " << arg2 << " " << arg3
                          << (runtime_->user_location() !=
                                      Location::Software
                                  ? " (synthesized into the fabric)"
                                  : "")
                          << "\n";
                }
            } else if (out_ != nullptr) {
                *out_ << "cannot break: " << err << "\n";
            }
        }
    } else if (cmd == ":watch") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :watch <signal>\n";
            }
        } else {
            std::string err;
            const uint64_t id = runtime_->debug_watch(arg, &err);
            if (id != 0) {
                if (out_ != nullptr) {
                    *out_ << "watchpoint #" << id << " armed on " << arg
                          << "\n";
                }
            } else if (out_ != nullptr) {
                *out_ << "cannot watch: " << err << "\n";
            }
        }
    } else if (cmd == ":delete") {
        char* end = nullptr;
        const unsigned long long id = std::strtoull(arg.c_str(), &end, 10);
        if (arg.empty() || end == nullptr || *end != '\0') {
            if (out_ != nullptr) {
                *out_ << "usage: :delete <point id> (see :debug)\n";
            }
        } else if (runtime_->debug_delete(id)) {
            if (out_ != nullptr) {
                *out_ << "point #" << id << " deleted\n";
            }
        } else if (out_ != nullptr) {
            *out_ << "no point #" << id << "\n";
        }
    } else if (cmd == ":step") {
        uint64_t n = 1;
        if (!arg.empty()) {
            char* end = nullptr;
            n = std::strtoull(arg.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || n == 0) {
                if (out_ != nullptr) {
                    *out_ << "usage: :step [n]\n";
                }
                return true;
            }
        }
        std::string err;
        if (runtime_->debug_step(n, &err)) {
            if (out_ != nullptr) {
                *out_ << "stepped " << n << " cycle" << (n == 1 ? "" : "s")
                      << "; now at tick " << runtime_->virtual_ticks()
                      << "\n";
            }
        } else if (out_ != nullptr) {
            *out_ << "cannot step: " << err << "\n";
        }
    } else if (cmd == ":continue") {
        if (runtime_->debug_continue()) {
            if (out_ != nullptr) {
                *out_ << "continuing from tick "
                      << runtime_->virtual_ticks() << "\n";
            }
        } else if (out_ != nullptr) {
            *out_ << "not halted\n";
        }
    } else if (cmd == ":peek") {
        if (arg.empty()) {
            if (out_ != nullptr) {
                *out_ << "usage: :peek <signal>\n";
            }
        } else {
            std::string err;
            const auto v = runtime_->debug_peek(arg, &err);
            if (v.has_value()) {
                if (out_ != nullptr) {
                    *out_ << arg << " = " << v->to_dec_string() << " (0x"
                          << v->to_hex_string() << ", " << v->width()
                          << " bit" << (v->width() == 1 ? "" : "s")
                          << ")\n";
                }
            } else if (out_ != nullptr) {
                *out_ << "cannot peek: " << err << "\n";
            }
        }
    } else if (cmd == ":debug") {
        if (out_ != nullptr) {
            *out_ << runtime_->debug_table();
        }
    } else if (cmd == ":help") {
        if (out_ != nullptr) {
            *out_ << ":stats          telemetry table (counters, gauges, "
                     "histograms, transitions)\n"
                     ":stats json     the same snapshot as JSON\n"
                     ":stats reset    zero every metric (registries, sync "
                     "sites, time series, SLO windows)\n"
                     ":profile        per-process profile (trigger counts, "
                     "eval time, sw+hw)\n"
                     ":profile json   the same profile as JSON\n"
                     ":profile on|off toggle timing/fabric instrumentation\n"
                     ":profile flame <file>  write collapsed stacks for "
                     "flamegraph.pl\n"
                     ":fabric         fabric residency: LE utilization, "
                     "Fmax, named critical path\n"
                     ":requests       recent traced requests (evals, "
                     "compiles, interrupts, evictions)\n"
                     ":requests json  the same as cascade.requests.v1 "
                     "JSON\n"
                     ":why <id>       critical-path latency decomposition "
                     "of one request\n"
                     ":top            fleet view: per-tenant ticks/s, "
                     "state, wait-time share\n"
                     ":contention     lock/CV wait table ranked by tenant "
                     "wait, blocked-on matrix\n"
                     ":contention json  the same as cascade.contention.v1 "
                     "JSON\n"
                     ":contention reset zero the contention registry\n"
                     ":monitor <port> serve /metrics /healthz /slo "
                     "/timeseries /debug /events /requests on 127.0.0.1\n"
                     ":monitor off    stop the monitoring server\n"
                     ":slo            SLO status over the rolling window "
                     "(breached objectives first)\n"
                     ":slo json       the same as cascade.slo.v1 JSON\n"
                     ":trace <file>   dump phase spans as Chrome "
                     "trace_event JSON\n"
                     ":probe <signal> add a waveform probe (net or "
                     "register)\n"
                     ":unprobe <sig>  remove a probe\n"
                     ":vcd <file>     start VCD waveform capture "
                     "(GTKWave-compatible)\n"
                     ":break <sig> <op> <val>  arm a conditional "
                     "breakpoint (synthesized into the fabric when "
                     "hardware-resident)\n"
                     ":watch <signal> arm a value-change watchpoint\n"
                     ":delete <id>    disarm a break/watch point\n"
                     ":debug          list armed points and halt state\n"
                     ":step [n]       while halted: advance n clock "
                     "cycles (default 1)\n"
                     ":continue       resume from a halt (re-admits to "
                     "hardware when compiled)\n"
                     ":peek <signal>  read one live signal value\n"
                     ":record <file>  record this session's event journal "
                     "(JSONL; fresh sessions only)\n"
                     ":record stop    stop recording\n"
                     ":replay <file>  deterministically re-execute a "
                     "recorded journal and diff outputs\n"
                     ":help           this text\n";
        }
    } else {
        if (out_ != nullptr) {
            *out_ << "unknown command '" << cmd
                  << "' (try :help)\n";
        }
    }
    return true;
}

bool
Repl::feed(const std::string& text)
{
    // Info-class journal event: what the user actually typed (the eval
    // event later records the accumulated program text that was
    // submitted; this records the raw interaction for the black box).
    runtime_->journal().record(
        "repl.input",
        telemetry::JsonWriter().str("text", text).build());
    // Meta-commands are line-oriented and only recognized when no Verilog
    // is being accumulated (':' cannot start a Verilog item).
    if (buffer_.find_first_not_of(" \t\r\n") == std::string::npos) {
        const size_t first = text.find_first_not_of(" \t\r\n");
        if (first != std::string::npos && text[first] == ':') {
            buffer_.clear();
            return run_meta_command(text.substr(first));
        }
    }
    buffer_ += text;
    if (buffer_.find_first_not_of(" \t\r\n") == std::string::npos) {
        buffer_.clear();
        return true;
    }
    if (!buffer_complete()) {
        return true; // keep accumulating
    }
    std::string source;
    source.swap(buffer_);
    std::string errors;
    if (!runtime_->eval(source, &errors)) {
        if (out_ != nullptr) {
            *out_ << errors;
        }
        return false;
    }
    return true;
}

bool
Repl::run_batch(std::istream& in, uint64_t max_iterations)
{
    std::string line;
    bool ok = true;
    while (std::getline(in, line)) {
        ok &= feed(line + "\n");
    }
    if (!buffer_.empty()) {
        // Force-submit whatever is left.
        std::string source;
        source.swap(buffer_);
        std::string errors;
        if (!runtime_->eval(source, &errors)) {
            if (out_ != nullptr) {
                *out_ << errors;
            }
            ok = false;
        }
    }
    runtime_->run(max_iterations);
    return ok;
}

} // namespace cascade::runtime
