/// \file
/// AST rewriting utilities shared by the IR transforms: in-place identifier
/// renaming (hierarchical-reference promotion, inliner prefixing) and
/// expression walks.

#ifndef CASCADE_IR_REWRITE_H
#define CASCADE_IR_REWRITE_H

#include <functional>
#include <string>
#include <vector>

#include "verilog/ast.h"

namespace cascade::ir {

/// Visits every expression reachable from \p item (including nested
/// statements), invoking \p fn. Identifier mutation happens in place, so a
/// rename callback can simply rewrite IdentifierExpr::path.
void for_each_expr(verilog::ModuleItem* item,
                   const std::function<void(verilog::Expr*)>& fn);
void for_each_expr(verilog::Stmt* stmt,
                   const std::function<void(verilog::Expr*)>& fn);
void for_each_expr(verilog::Expr* expr,
                   const std::function<void(verilog::Expr*)>& fn);

/// Const variants for analyses.
void for_each_expr(const verilog::ModuleItem& item,
                   const std::function<void(const verilog::Expr&)>& fn);
void for_each_expr(const verilog::Stmt& stmt,
                   const std::function<void(const verilog::Expr&)>& fn);
void for_each_expr(const verilog::Expr& expr,
                   const std::function<void(const verilog::Expr&)>& fn);

/// Renames every simple identifier occurrence per \p mapping (old -> new).
/// Hierarchical paths have each component renamed only when the full path's
/// first component matches (instance renames are handled separately).
void rename_identifiers(
    verilog::ModuleDecl* module,
    const std::function<void(std::vector<std::string>* path)>& fn);

} // namespace cascade::ir

#endif // CASCADE_IR_REWRITE_H
