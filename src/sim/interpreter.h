/// \file
/// Cycle-accurate event-driven interpretation of a single elaborated module
/// (one Cascade subprogram), in the style of iVerilog (paper §5.1).
///
/// The interpreter exposes the evaluate/update split of the Verilog
/// reference scheduler (Fig. 2): evaluate() runs combinational processes to
/// a fixed point and executes edge-triggered processes, queueing their
/// nonblocking assignments; update() commits those assignments. Software
/// engines wrap this class behind the Engine ABI (Fig. 7); dependency
/// tracking keeps re-evaluation lazy, only processes whose inputs changed
/// run again.

#ifndef CASCADE_SIM_INTERPRETER_H
#define CASCADE_SIM_INTERPRETER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitvector.h"
#include "common/diagnostics.h"
#include "sim/format.h"
#include "verilog/elaborate.h"

namespace cascade::sim {

/// Receiver for unsynthesizable side effects. The Cascade runtime routes
/// these through its interrupt queue (paper §3.4); tests capture them
/// directly.
class SystemTaskHandler {
  public:
    virtual ~SystemTaskHandler() = default;

    /// $display (newline already excluded; caller appends).
    virtual void on_display(const std::string& text) = 0;
    /// $write.
    virtual void on_write(const std::string& text) = 0;
    /// $finish.
    virtual void on_finish() = 0;
    /// Logical time for $time.
    virtual uint64_t current_time() const = 0;

    /// $monitor output, emitted once per timestep by flush_monitors().
    /// \p key identifies the registered monitor statement (stable across
    /// engine incarnations) so the receiver can suppress lines whose text
    /// did not change. The default forwards to on_display, which keeps
    /// simple capture handlers working but prints every timestep.
    virtual void
    on_monitor(const std::string& key, const std::string& text)
    {
        (void)key;
        on_display(text);
    }

    /// @{ $dumpfile/$dumpvars/$dumpoff/$dumpon. Waveform capture is a
    /// runtime concern (the dump spans engines); handlers that do not
    /// support it ignore these.
    virtual void on_dumpfile(const std::string& path) { (void)path; }
    virtual void on_dumpvars() {}
    virtual void on_dumpoff() {}
    virtual void on_dumpon() {}
    /// @}
};

/// A saved register/memory snapshot, used for engine state handoff when a
/// subprogram migrates between software and hardware (get_state/set_state
/// in the Engine ABI).
struct StateSnapshot {
    std::map<std::string, BitVector> regs;
    std::map<std::string, std::vector<BitVector>> memories;

    bool operator==(const StateSnapshot&) const = default;
};

/// Per-process profile sample (see ModuleInterpreter::profile). Trigger
/// counts are always collected; eval_ns accumulates only while
/// set_profiling(true) is in effect.
struct ProcessProfile {
    /// Canonical id: the source print of the originating module item.
    /// Stable across engine incarnations of the same subprogram, so the
    /// runtime can splice profiles over rebuilds and the sw -> hw handoff
    /// (same idiom as $monitor keys).
    std::string key;
    /// Compressed one-line display label derived from the key.
    std::string label;
    /// "continuous" | "comb" | "seq" | "initial".
    std::string kind;
    /// For seq processes: trigger descriptions ("posedge clk_val").
    std::vector<std::string> triggers;
    uint64_t executions = 0; ///< times run_process fired this process
    uint64_t eval_ns = 0;    ///< cumulative wall time (0 when disabled)
};

class ModuleInterpreter {
  public:
    /// \p handler may be null when the module contains no system tasks.
    ModuleInterpreter(std::shared_ptr<const verilog::ElaboratedModule> em,
                      SystemTaskHandler* handler);

    const verilog::ElaboratedModule& module() const { return *em_; }

    /// Runs initial blocks (once, at t=0), skipping the first
    /// \p skip_first of them (REPL evals append items; initials that fired
    /// in a prior engine incarnation must not re-fire). Nonblocking
    /// assignments in initial blocks are queued like any others.
    void run_initials(size_t skip_first = 0);

    /// Runs initial blocks with a per-block skip mask (index = position of
    /// the initial block in item order; missing entries mean "run").
    void run_initials_masked(const std::vector<bool>& skip);

    /// Number of initial blocks in the module.
    size_t initial_count() const;

    /// @{ Value access by net name (ports, regs, wires alike).
    const BitVector& get(const std::string& name) const;
    const BitVector& get(uint32_t net_id) const;
    /// Like get(), but returns nullptr for unknown names (debugger
    /// `:peek`/condition evaluation probes speculatively).
    const BitVector* find(const std::string& name) const;
    /// Drives an input port (or any net) from outside; triggers edge
    /// detection and marks dependents for re-evaluation.
    void set_input(const std::string& name, const BitVector& value);
    void set_input(uint32_t net_id, const BitVector& value);
    /// Memory element access (tests, state handoff, stdlib engines).
    const BitVector& get_element(const std::string& name, uint64_t idx) const;
    void set_element(const std::string& name, uint64_t idx,
                     const BitVector& value);
    /// @}

    /// @{ The reference-scheduler interface (Fig. 2 / Fig. 7).
    bool there_are_evals() const;
    void evaluate();
    bool there_are_updates() const { return !nb_queue_.empty(); }
    void update();
    /// @}

    /// True once $finish has executed.
    bool finished() const { return finished_; }

    /// Evaluates every registered $monitor statement against current net
    /// values and emits SystemTaskHandler::on_monitor for each. IEEE-1364
    /// semantics: executing $monitor registers it; output happens at end
    /// of timestep, so the engine calls this from its end_step hook. The
    /// handler owns on-change suppression (it survives engine handoff).
    void flush_monitors();

    /// Number of $monitor statements registered so far.
    size_t monitor_count() const { return monitors_.size(); }

    /// Net ids of output ports whose value changed since the last call.
    std::vector<uint32_t> take_changed_outputs();

    /// @{ State handoff for engine transitions (sw -> hw and back).
    StateSnapshot get_state() const;
    void set_state(const StateSnapshot& snapshot);
    /// @}

    /// @{ Telemetry. Plain members, not atomics: bumping them costs one
    /// add on the interpreter hot path; aggregation into a
    /// telemetry::Registry happens at stats-snapshot time (Runtime owns
    /// that), keeping the <5% micro-bench overhead budget.
    /// Number of processes that executed since construction (profiling).
    uint64_t process_executions() const { return process_executions_; }
    /// Number of evaluate() / update() scheduler calls.
    uint64_t evaluate_calls() const { return evaluate_calls_; }
    uint64_t update_calls() const { return update_calls_; }
    /// @}

    /// @{ Source-level profiling. Per-process trigger counts are always
    /// collected (one indexed add on the run_process path, same cost class
    /// as process_executions_). Wall-clock attribution reads the steady
    /// clock twice per process execution, so it sits behind this flag and
    /// costs nothing when off (the guarded fast path never touches a
    /// clock).
    void set_profiling(bool on) { profiling_ = on; }
    bool profiling() const { return profiling_; }
    /// Snapshot of every process's profile, in item order. Keys/labels
    /// are rebuilt on each call (query path, not hot path).
    std::vector<ProcessProfile> profile() const;
    /// @}

  private:
    struct Trigger {
        uint32_t net = 0;
        verilog::EdgeKind edge = verilog::EdgeKind::Pos;
    };

    struct Process {
        enum class Kind { Continuous, Comb, Seq, Initial };
        Kind kind = Kind::Comb;
        /// For Continuous: the item; for blocks: the body statement.
        const verilog::ContinuousAssign* assign = nullptr;
        const verilog::Stmt* body = nullptr;
        /// Originating module item (profiling: canonical process ids).
        const verilog::ModuleItem* item = nullptr;
        std::vector<uint32_t> reads;    ///< comb dependency net ids
        std::vector<Trigger> triggers;  ///< seq edge triggers
    };

    /// Hot-path profile storage, indexed like processes_.
    struct ProcStat {
        uint64_t executions = 0;
        uint64_t eval_ns = 0;
    };

    struct NbUpdate {
        /// Target lvalue (re-resolved at commit for slices; the value and
        /// any dynamic indices were captured at enqueue time).
        const verilog::Expr* lhs = nullptr;
        /// Pre-resolved dynamic index values, in lvalue nesting order.
        std::vector<uint64_t> indices;
        BitVector value;
    };

    friend class Evaluator;

    void build_processes();
    void collect_reads(const verilog::Expr& expr,
                       std::vector<uint32_t>* out) const;
    void collect_reads(const verilog::Stmt& stmt,
                       std::vector<uint32_t>* out) const;
    void collect_lvalue_index_reads(const verilog::Expr& lhs,
                                    std::vector<uint32_t>* out) const;
    /// Root nets assigned anywhere in \p stmt.
    void collect_defs(const verilog::Stmt& stmt,
                      std::vector<uint32_t>* out) const;

    /// Writes \p value to net \p id, recording changes, waking dependent
    /// combinational processes, and latching edge triggers.
    void commit_net(uint32_t id, BitVector value);
    void commit_element(uint32_t id, uint64_t index, BitVector value);

    void run_process(size_t index);
    void dispatch_process(const Process& p);
    void execute_stmt(const verilog::Stmt& stmt, bool nonblocking_allowed);

    /// Registers \p stmt as an active monitor (idempotent per statement).
    void register_monitor(const verilog::SystemTaskStmt& stmt);
    /// Renders a $display-family task's argument list against current net
    /// values (string-format or space-separated-decimal form).
    std::string format_task_text(const verilog::SystemTaskStmt& stmt);

    std::shared_ptr<const verilog::ElaboratedModule> em_;
    SystemTaskHandler* handler_;

    std::vector<BitVector> values_;                 ///< scalar nets
    std::vector<std::vector<BitVector>> memories_;  ///< array nets
    std::vector<Process> processes_;
    /// net id -> comb process indices that read it.
    std::vector<std::vector<uint32_t>> comb_deps_;
    /// net id -> (process index, trigger) for seq processes.
    std::vector<std::vector<std::pair<uint32_t, verilog::EdgeKind>>>
        seq_deps_;

    std::vector<bool> comb_pending_;
    std::vector<uint32_t> comb_queue_;
    std::vector<bool> seq_pending_;
    std::vector<uint32_t> seq_queue_;
    std::vector<NbUpdate> nb_queue_;

    struct MonitorReg {
        const verilog::SystemTaskStmt* stmt = nullptr;
        /// Canonical source print of the statement: stable across engine
        /// incarnations of the same subprogram, so the runtime's on-change
        /// suppression splices over a sw -> hw handoff.
        std::string key;
        /// Candidate text rendered at the trigger site (the hardware
        /// wrapper's argument-save registers sample at the same point),
        /// emitted by flush_monitors at end of timestep.
        std::string pending;
        bool has_pending = false;
    };
    std::vector<MonitorReg> monitors_;
    std::unordered_set<const verilog::Stmt*> monitor_registered_;

    std::unordered_set<uint32_t> changed_outputs_;
    bool finished_ = false;
    bool profiling_ = false;
    std::vector<ProcStat> proc_stats_;
    uint64_t process_executions_ = 0;
    uint64_t evaluate_calls_ = 0;
    uint64_t update_calls_ = 0;
    Diagnostics runtime_diags_;
};

} // namespace cascade::sim

#endif // CASCADE_SIM_INTERPRETER_H
