/// \file
/// Tests for the Fig. 10 hardware wrapper. The generated module is driven
/// through its AXI-style MMIO interface using the reference interpreter as
/// the "device", which validates exactly the protocol the hardware engine's
/// software stub speaks: SET writes, LATCH commits, task-mask polling,
/// argument readback, and open-loop execution.

#include "ir/hw_wrapper.h"

#include <gtest/gtest.h>

#include "sim/interpreter.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace cascade::ir {
namespace {

using namespace verilog;

/// Drives a wrapper module over MMIO through the interpreter.
class MmioDriver {
  public:
    MmioDriver(std::string_view src, const std::string& clock_input)
    {
        init(src, clock_input);
    }

    void
    init(std::string_view src, const std::string& clock_input)
    {
        Diagnostics diags;
        SourceUnit unit = parse(src, &diags);
        EXPECT_FALSE(diags.has_errors()) << diags.str();
        Elaborator elab(&diags);
        auto em = elab.elaborate(*unit.modules[0]);
        ASSERT_NE(em, nullptr) << diags.str();
        wrapper_ = generate_hw_wrapper(*em, clock_input, &map_, &diags);
        ASSERT_NE(wrapper_, nullptr) << diags.str();

        Diagnostics d2;
        Elaborator elab2(&d2);
        auto wem = elab2.elaborate(*wrapper_);
        ASSERT_NE(wem, nullptr)
            << d2.str() << "\n" << print(*wrapper_);
        interp_ = std::make_unique<sim::ModuleInterpreter>(
            std::shared_ptr<const ElaboratedModule>(std::move(wem)),
            nullptr);
        interp_->run_initials();
        settle();
    }

    void
    settle()
    {
        for (int i = 0; i < 256; ++i) {
            interp_->evaluate();
            if (!interp_->there_are_updates()) {
                return;
            }
            interp_->update();
        }
        FAIL() << "wrapper did not settle";
    }

    /// One CLK pulse.
    void
    pulse()
    {
        interp_->set_input("CLK", BitVector(1, 1));
        settle();
        interp_->set_input("CLK", BitVector(1, 0));
        settle();
    }

    void
    mmio_write(uint32_t addr, uint32_t value)
    {
        interp_->set_input("RW", BitVector(1, 1));
        interp_->set_input("ADDR", BitVector(32, addr));
        interp_->set_input("IN", BitVector(32, value));
        settle();
        pulse();
        interp_->set_input("RW", BitVector(1, 0));
        settle();
    }

    uint32_t
    mmio_read(uint32_t addr)
    {
        interp_->set_input("RW", BitVector(1, 0));
        interp_->set_input("ADDR", BitVector(32, addr));
        settle();
        return static_cast<uint32_t>(interp_->get("OUT").to_uint64());
    }

    /// Writes all words of a variable slot.
    void
    write_var(const std::string& name, uint64_t value)
    {
        const VarSlot* slot = map_.find(name);
        ASSERT_NE(slot, nullptr) << name;
        for (uint32_t j = 0; j < slot->words; ++j) {
            mmio_write(slot->base + j,
                       static_cast<uint32_t>(value >> (32 * j)));
        }
    }

    uint64_t
    read_var(const std::string& name)
    {
        const VarSlot* slot = map_.find(name);
        EXPECT_NE(slot, nullptr) << name;
        uint64_t v = 0;
        for (uint32_t j = 0; j < slot->words && j < 2; ++j) {
            v |= static_cast<uint64_t>(mmio_read(slot->base + j))
                 << (32 * j);
        }
        if (slot->width < 64) {
            v &= (uint64_t{1} << slot->width) - 1;
        }
        return v;
    }

    /// One virtual clock tick under runtime control: clock up, latch,
    /// clock down, latch.
    void
    virtual_tick(const std::string& clk = "clk")
    {
        write_var(clk, 1);
        if (mmio_read(map_.ctrl.updates) != 0) {
            mmio_write(map_.ctrl.latch, 1);
        }
        write_var(clk, 0);
        if (mmio_read(map_.ctrl.updates) != 0) {
            mmio_write(map_.ctrl.latch, 1);
        }
    }

    WrapperMap& map() { return map_; }
    const ModuleDecl& wrapper() const { return *wrapper_; }
    sim::ModuleInterpreter& interp() { return *interp_; }

  private:
    WrapperMap map_;
    std::unique_ptr<ModuleDecl> wrapper_;
    std::unique_ptr<sim::ModuleInterpreter> interp_;
};

const char* kCounter = R"(
    module Cnt(input wire clk, input wire rst, output wire [7:0] led);
      reg [7:0] cnt = 0;
      always @(posedge clk)
        if (rst)
          cnt <= 0;
        else
          cnt <= cnt + 1;
      assign led = cnt;
    endmodule
)";

TEST(HwWrapper, MapLayout)
{
    MmioDriver d(kCounter, "clk");
    const WrapperMap& m = d.map();
    ASSERT_EQ(m.vars.size(), 4u);
    EXPECT_EQ(m.vars[0].name, "clk");
    EXPECT_TRUE(m.vars[0].writable);
    EXPECT_EQ(m.vars[1].name, "rst");
    EXPECT_EQ(m.vars[2].name, "cnt");
    EXPECT_TRUE(m.vars[2].writable);
    EXPECT_EQ(m.vars[3].name, "led");
    EXPECT_FALSE(m.vars[3].writable);
    EXPECT_EQ(m.clock_input, "clk");
}

TEST(HwWrapper, RuntimeDrivenTicks)
{
    MmioDriver d(kCounter, "clk");
    EXPECT_EQ(d.read_var("led"), 0u);
    d.virtual_tick();
    EXPECT_EQ(d.read_var("led"), 1u);
    d.virtual_tick();
    d.virtual_tick();
    EXPECT_EQ(d.read_var("led"), 3u);
    // Reset behaves.
    d.write_var("rst", 1);
    d.virtual_tick();
    EXPECT_EQ(d.read_var("led"), 0u);
}

TEST(HwWrapper, UpdatesFlagTracksShadows)
{
    MmioDriver d(kCounter, "clk");
    EXPECT_EQ(d.mmio_read(d.map().ctrl.updates), 0u);
    d.write_var("clk", 1); // fires the user block; shadows pending
    EXPECT_EQ(d.mmio_read(d.map().ctrl.updates), 1u);
    d.mmio_write(d.map().ctrl.latch, 1);
    EXPECT_EQ(d.mmio_read(d.map().ctrl.updates), 0u);
    EXPECT_EQ(d.read_var("cnt"), 1u);
}

TEST(HwWrapper, SetStateThroughMmio)
{
    MmioDriver d(kCounter, "clk");
    d.write_var("cnt", 42); // state handoff: set_state writes registers
    EXPECT_EQ(d.read_var("led"), 42u);
    d.virtual_tick();
    EXPECT_EQ(d.read_var("led"), 43u);
}

TEST(HwWrapper, OpenLoopRunsToBudget)
{
    MmioDriver d(kCounter, "clk");
    d.mmio_write(d.map().ctrl.oloop, 20);
    // The device's own clock now drives everything; just pulse CLK.
    int cycles = 0;
    while (d.interp().get("WAIT").to_uint64() != 0 && cycles < 200) {
        d.pulse();
        ++cycles;
    }
    EXPECT_LT(cycles, 200);
    EXPECT_EQ(d.mmio_read(d.map().ctrl.itrs), 20u);
    // 20 toggles = 10 rising edges.
    EXPECT_EQ(d.read_var("cnt"), 10u);
    // Virtual time advanced by 10 completed cycles.
    EXPECT_EQ(d.mmio_read(d.map().ctrl.vtime), 10u);
}

TEST(HwWrapper, DisplayTaskFromHardware)
{
    MmioDriver d(R"(
        module Dsp(input wire clk, input wire [3:0] pad);
          reg [7:0] cnt = 0;
          always @(posedge clk)
            if (pad == 0)
              cnt <= cnt + 1;
            else begin
              $display("cnt = %d", cnt);
              $finish;
            end
        endmodule
    )", "clk");
    ASSERT_EQ(d.map().tasks.size(), 2u);
    EXPECT_EQ(d.map().tasks[0].kind, TaskKind::Display);
    EXPECT_TRUE(d.map().tasks[0].has_format);
    EXPECT_EQ(d.map().tasks[0].format, "cnt = %d");
    ASSERT_EQ(d.map().tasks[0].arg_slots.size(), 1u);
    EXPECT_EQ(d.map().tasks[1].kind, TaskKind::Finish);

    // Run two quiet ticks, then press the button.
    d.virtual_tick();
    d.virtual_tick();
    EXPECT_EQ(d.mmio_read(d.map().ctrl.tasks), 0u);
    d.write_var("pad", 1);
    d.write_var("clk", 1);
    // Both the display and the finish sites fire.
    const uint32_t pending = d.mmio_read(d.map().ctrl.tasks);
    EXPECT_EQ(pending, 0b11u);
    // Read back the saved argument: cnt was 2 when the task fired.
    const VarSlot& arg = d.map().vars[d.map().tasks[0].arg_slots[0]];
    EXPECT_EQ(d.mmio_read(arg.base), 2u);
    // Acknowledge; the mask clears.
    d.mmio_write(d.map().ctrl.clear, 1);
    EXPECT_EQ(d.mmio_read(d.map().ctrl.tasks), 0u);
}

TEST(HwWrapper, OpenLoopStopsOnTask)
{
    MmioDriver d(R"(
        module T(input wire clk);
          reg [7:0] cnt = 0;
          always @(posedge clk) begin
            cnt <= cnt + 1;
            if (cnt == 3)
              $display(cnt);
          end
        endmodule
    )", "clk");
    d.mmio_write(d.map().ctrl.oloop, 100);
    int cycles = 0;
    while (d.interp().get("WAIT").to_uint64() != 0 && cycles < 300) {
        d.pulse();
        ++cycles;
    }
    ASSERT_LT(cycles, 300);
    // The loop bailed out early with the task pending.
    EXPECT_EQ(d.mmio_read(d.map().ctrl.tasks), 1u);
    EXPECT_LT(d.mmio_read(d.map().ctrl.itrs), 100u);
    // cnt stopped right after the display fired.
    EXPECT_GE(d.read_var("cnt"), 4u);
    EXPECT_LE(d.read_var("cnt"), 5u);
}

TEST(HwWrapper, MemoriesAccessibleOverMmio)
{
    MmioDriver d(R"(
        module Mem(input wire clk, input wire [1:0] addr,
                   input wire [7:0] wdata, input wire we,
                   output wire [7:0] rdata);
          reg [7:0] mem [0:3];
          always @(posedge clk)
            if (we)
              mem[addr] <= wdata;
          assign rdata = mem[addr];
        endmodule
    )", "clk");
    const VarSlot* mem = d.map().find("mem");
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(mem->elems, 4u);
    EXPECT_TRUE(mem->writable);

    // Functional path: write via the design.
    d.write_var("we", 1);
    d.write_var("addr", 2);
    d.write_var("wdata", 0x5A);
    d.virtual_tick();
    EXPECT_EQ(d.read_var("rdata"), 0x5Au);
    // State path: read and write elements directly over MMIO.
    EXPECT_EQ(d.mmio_read(mem->base + 2), 0x5Au);
    d.mmio_write(mem->base + 3, 0x77);
    d.write_var("addr", 3);
    EXPECT_EQ(d.read_var("rdata"), 0x77u);
}

TEST(HwWrapper, WideValuesSpanWords)
{
    MmioDriver d(R"(
        module Wide(input wire clk, input wire [63:0] a,
                    output wire [63:0] o);
          reg [63:0] r = 0;
          always @(posedge clk) r <= a + 1;
          assign o = r;
        endmodule
    )", "clk");
    const VarSlot* a = d.map().find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->words, 2u);
    d.write_var("a", 0xFFFFFFFFull);
    d.virtual_tick();
    EXPECT_EQ(d.read_var("o"), 0x100000000ull);
}

TEST(HwWrapper, DynamicIndexTargetCapturesIndex)
{
    MmioDriver d(R"(
        module Dyn(input wire clk, input wire [1:0] i,
                   output wire [15:0] o);
          reg [15:0] r = 0;
          always @(posedge clk)
            r[i*4 +: 4] <= 4'hF;
          assign o = r;
        endmodule
    )", "clk");
    d.write_var("i", 2);
    d.virtual_tick();
    EXPECT_EQ(d.read_var("o"), 0x0F00u);
    d.write_var("i", 0);
    d.virtual_tick();
    EXPECT_EQ(d.read_var("o"), 0x0F0Fu);
}

TEST(HwWrapper, RejectsTasksInCombinationalBlocks)
{
    Diagnostics diags;
    SourceUnit unit = parse(R"(
        module Bad(input wire [3:0] a);
          always @(*) $display(a);
        endmodule
    )", &diags);
    Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    ASSERT_NE(em, nullptr);
    WrapperMap map;
    EXPECT_EQ(generate_hw_wrapper(*em, "", &map, &diags), nullptr);
    EXPECT_TRUE(diags.has_errors());
}

TEST(HwWrapper, RejectsBadClockName)
{
    Diagnostics diags;
    SourceUnit unit =
        parse("module M(input wire clk); endmodule", &diags);
    Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    ASSERT_NE(em, nullptr);
    WrapperMap map;
    EXPECT_EQ(generate_hw_wrapper(*em, "nope", &map, &diags), nullptr);
}

TEST(HwWrapper, RejectsDumpTasks)
{
    // $dump* is software-side observability; a subprogram using it must
    // fail hardware compilation (and so stay in the software engine).
    Diagnostics diags;
    SourceUnit unit = parse(R"(
        module M(input wire clk);
          reg r = 0;
          always @(posedge clk) begin
            r <= ~r;
            $dumpvars;
          end
        endmodule
    )", &diags);
    ASSERT_FALSE(diags.has_errors()) << diags.str();
    Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    ASSERT_NE(em, nullptr) << diags.str();
    WrapperMap map;
    EXPECT_EQ(generate_hw_wrapper(*em, "clk", &map, &diags), nullptr);
    EXPECT_NE(diags.str().find("waveform dump tasks cannot be compiled"),
              std::string::npos)
        << diags.str();
}

TEST(HwWrapper, MonitorSiteRecordsKeyAndChangeGate)
{
    Diagnostics diags;
    SourceUnit unit = parse(R"(
        module M(input wire clk);
          reg [7:0] cnt = 0;
          always @(posedge clk) begin
            cnt <= cnt + 1;
            $monitor("cnt=%0d", cnt);
          end
        endmodule
    )", &diags);
    ASSERT_FALSE(diags.has_errors()) << diags.str();
    Elaborator elab(&diags);
    auto em = elab.elaborate(*unit.modules[0]);
    ASSERT_NE(em, nullptr) << diags.str();
    WrapperMap map;
    auto wrapper = generate_hw_wrapper(*em, "clk", &map, &diags);
    ASSERT_NE(wrapper, nullptr) << diags.str();
    ASSERT_EQ(map.tasks.size(), 1u);
    EXPECT_EQ(map.tasks[0].kind, TaskKind::Monitor);
    // The key is the canonical print of the pre-rewrite statement; the
    // software interpreter registers the identical key, which is what
    // splices monitor suppression across an engine handoff.
    EXPECT_EQ(map.tasks[0].key, "$monitor(\"cnt=%0d\", cnt);");
    ASSERT_EQ(map.tasks[0].arg_slots.size(), 1u);
    // The generated logic gates the toggle on first-fire/argument change:
    // a _mf0 fired flag must exist and the site must compare the saved
    // argument against the live value.
    const std::string text = print(*wrapper);
    EXPECT_NE(text.find("_mf0"), std::string::npos) << text;
}

} // namespace
} // namespace cascade::ir
